#!/bin/sh
# Offline CI gate for the routergeo workspace. Every step runs without
# network access; failures stop the script immediately. A per-step
# timing table prints on exit — including on failure — so slow or hung
# gates are visible from the log alone. Machine-readable gate reports
# are collected under target/ci-artifacts/ and listed in the summary.
set -eu

cd "$(dirname "$0")"

ART_DIR=target/ci-artifacts
mkdir -p "$ART_DIR"

STEP_LOG=$(mktemp)
CURRENT_STEP=""
CURRENT_START=0

summary() {
    status=$?
    if [ -n "$CURRENT_STEP" ]; then
        # The step that was running when we exited never logged itself.
        echo "$CURRENT_STEP $(( $(date +%s) - CURRENT_START )) INTERRUPTED" >> "$STEP_LOG"
    fi
    echo ""
    echo "==> ci.sh step timing summary"
    awk '{ printf "    %-28s %4ss  %s\n", $1, $2, $3 }' "$STEP_LOG"
    rm -f "$STEP_LOG"
    echo ""
    echo "==> ci.sh artifacts ($ART_DIR)"
    for art in "$ART_DIR"/*; do
        [ -f "$art" ] || continue
        echo "    $(basename "$art") ($(wc -c < "$art") bytes)"
    done
    if [ "$status" -eq 0 ]; then
        echo "ci.sh: all gates passed"
    else
        echo "ci.sh: FAILED (exit $status)" >&2
    fi
    exit "$status"
}
trap summary EXIT

# step <name> <cmd...>: run a gate, echo a banner, record wall time.
step() {
    CURRENT_STEP=$1
    shift
    echo "==> $CURRENT_STEP"
    CURRENT_START=$(date +%s)
    "$@"
    echo "$CURRENT_STEP $(( $(date +%s) - CURRENT_START )) ok" >> "$STEP_LOG"
    CURRENT_STEP=""
}

# step_budget <name> <secs> <cmd...>: like step, but fail the run if the
# gate exceeds its wall-clock budget. Budgets catch regressions the
# gate's own assertions can't see — real sleeps where an injected clock
# belongs, a parallel stage gone quadratic, a wedged reader.
step_budget() {
    budget_name=$1
    budget_secs=$2
    shift 2
    budget_start=$(date +%s)
    step "$budget_name" "$@"
    budget_elapsed=$(( $(date +%s) - budget_start ))
    if [ "$budget_elapsed" -gt "$budget_secs" ]; then
        echo "ci.sh: $budget_name took ${budget_elapsed}s (> ${budget_secs}s budget)" >&2
        exit 1
    fi
}

step fmt cargo fmt --all --check

# Lint gate: machine-readable output (archived as a CI artifact) with a
# wall-clock budget on the scan itself. The engine is a single-pass
# token walk per file; a blowout means a rule regressed to something
# quadratic. The xtask binary is built in a separate step so compile
# time never eats the scan budget.
step lint-build cargo build -q -p xtask
step_budget lint 30 sh -c "cargo xtask lint --json > $ART_DIR/lint_ci.json"

# Unsafe audit: every `unsafe` site in the tree (tests and benches
# included) must carry a `// SAFETY:` comment.
step unsafe-audit cargo xtask unsafe-audit

step deps cargo xtask deps

# Fault-matrix gate: the resilient bulk-whois path must stay wall-clock
# deterministic. Backoff sleeps run on an injected clock, so the whole
# matrix — retries, timeouts, circuit breaker — completes in seconds of
# real time; the budget catches any regression to real sleeps.
step fault-matrix-build cargo test -q -p routergeo-cymru --test fault_matrix --no-run
step_budget fault-matrix 60 cargo test -q -p routergeo-cymru --test fault_matrix

step build-release cargo build --release

# Determinism gate: the full Tiny-scale report must be byte-identical at
# 1, 2, and 8 worker threads. The budget bounds the three lab builds —
# a blowout means a parallel stage fell back to something quadratic or a
# worker is deadlocked on the shard queue.
step determinism-build cargo test -q --test parallel_determinism --no-run
step_budget determinism-gate 120 cargo test -q --test parallel_determinism

# Perf gate: fresh repro --timings vs the committed BENCH_pipeline.json
# baseline; fails on a >2x per-stage wall-clock regression after
# median-normalising away machine speed. Refresh with
# `cargo xtask bench-check --bless` when a slowdown is intentional.
step bench-check cargo xtask bench-check

# Observability gate: a traced Tiny run must satisfy every structural
# invariant of the obs JSONL schema — span open/close accounting,
# counter identities (cdf/cymru/pool/serve), histogram bucket totals.
step obs-trace env ROUTERGEO_SCALE=tiny ROUTERGEO_SEED=20170301 \
    sh -c "cargo run --release -q -p routergeo-bench --bin repro -- \
        table1 coverage consistency fig2 --obs $ART_DIR/obs_ci.jsonl > /dev/null"
step obs-check cargo xtask obs-check "$ART_DIR/obs_ci.jsonl"

# Fuzz gate: the seeded mutation/protocol/differential harness must
# come back clean, and its JSON report (archived as a CI artifact) is
# deterministic for a given budget. The trial plan is a pure function
# of --budget-ms — it never reads the wall clock — so the budget check
# bounds harness wall time, not trial count: a blowout means a mutated
# image wedged the reader or a protocol scenario hit real sleeps
# instead of the injected clock.
step fuzz-build cargo build -q -p xtask -p routergeo-fuzz
step_budget fuzz 45 sh -c "cargo xtask fuzz --budget-ms 30000 --json > $ART_DIR/fuzz_ci.json"

# Serve gate: the lookup daemon must hold its production discipline
# under a deterministic loadgen — virtual-time sim (byte-identical
# serve_ci.json at any thread count), one hot swap under concurrent
# load with zero failed lookups and zero torn reads, raw-socket and
# faultnet abuse fully attributed, and wall-clock latency/throughput
# gated by machine-speed-cancelling ratios. The budget catches a
# wedged worker pool or a drain that never completes.
step serve-build cargo build --release -q -p routergeo-serve
step_budget serve-loadgen 90 cargo xtask serve-check --budget-ms 8000

# Resolve gate: the paper-scale lookup workload — four synthetic vendor
# databases written as RGDB v2.1 images, 1.5 M interface addresses
# pushed through ResolvedView's batched lookup path — must finish its
# resolve stage inside the wall budget, and the per-lookup cost is
# ratio-gated against BENCH_resolve.json. This is the §5 hot path at
# the paper's real size; a blowout means the root-table reader or the
# batched frontier walk regressed to per-lookup parsing or allocation.
# The v2.1 engine landed the budget at 20 s (from v2's 45 s); the outer
# budget adds slack for synthesis and image writing around the gated
# stage.
step resolve-build cargo build --release -q -p routergeo-bench
step_budget resolve-smoke 90 cargo xtask resolve-check --budget-ms 20000

step test cargo test -q
step test-workspace cargo test --workspace -q

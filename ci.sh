#!/bin/sh
# Offline CI gate for the routergeo workspace. Every step runs without
# network access; failures stop the script immediately.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo xtask lint"
cargo xtask lint

echo "==> cargo xtask deps"
cargo xtask deps

# Fault-matrix gate: the resilient bulk-whois path must stay wall-clock
# deterministic. Backoff sleeps run on an injected clock, so the whole
# matrix — retries, timeouts, circuit breaker — completes in seconds of
# real time; a wall-clock budget catches any regression to real sleeps.
echo "==> fault matrix (wall-clock budget 60s)"
cargo test -q -p routergeo-cymru --test fault_matrix --no-run
fm_start=$(date +%s)
cargo test -q -p routergeo-cymru --test fault_matrix
fm_elapsed=$(( $(date +%s) - fm_start ))
echo "fault matrix completed in ${fm_elapsed}s"
if [ "$fm_elapsed" -gt 60 ]; then
    echo "ci.sh: fault matrix took ${fm_elapsed}s (> 60s) — backoff is sleeping on wall time" >&2
    exit 1
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "ci.sh: all gates passed"

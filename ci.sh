#!/bin/sh
# Offline CI gate for the routergeo workspace. Every step runs without
# network access; failures stop the script immediately. A per-step
# timing table prints on exit — including on failure — so slow or hung
# gates are visible from the log alone.
set -eu

cd "$(dirname "$0")"

STEP_LOG=$(mktemp)
CURRENT_STEP=""
CURRENT_START=0

summary() {
    status=$?
    if [ -n "$CURRENT_STEP" ]; then
        # The step that was running when we exited never logged itself.
        echo "$CURRENT_STEP $(( $(date +%s) - CURRENT_START )) INTERRUPTED" >> "$STEP_LOG"
    fi
    echo ""
    echo "==> ci.sh step timing summary"
    awk '{ printf "    %-28s %4ss  %s\n", $1, $2, $3 }' "$STEP_LOG"
    rm -f "$STEP_LOG"
    if [ "$status" -eq 0 ]; then
        echo "ci.sh: all gates passed"
    else
        echo "ci.sh: FAILED (exit $status)" >&2
    fi
    exit "$status"
}
trap summary EXIT

# step <name> <cmd...>: run a gate, echo a banner, record wall time.
step() {
    CURRENT_STEP=$1
    shift
    echo "==> $CURRENT_STEP"
    CURRENT_START=$(date +%s)
    "$@"
    echo "$CURRENT_STEP $(( $(date +%s) - CURRENT_START )) ok" >> "$STEP_LOG"
    CURRENT_STEP=""
}

step fmt cargo fmt --all --check

# Lint gate: machine-readable output (archived as a CI artifact) with a
# wall-clock budget on the scan itself. The engine is a single-pass
# token walk per file; a blowout means a rule regressed to something
# quadratic. The xtask binary is built in a separate step so compile
# time never eats the scan budget.
step lint-build cargo build -q -p xtask
mkdir -p target
lint_start=$(date +%s)
step lint sh -c 'cargo xtask lint --json > target/lint_ci.json'
lint_elapsed=$(( $(date +%s) - lint_start ))
if [ "$lint_elapsed" -gt 30 ]; then
    echo "ci.sh: lint scan took ${lint_elapsed}s (> 30s) — a rule pass regressed" >&2
    exit 1
fi

# Unsafe audit: every `unsafe` site in the tree (tests and benches
# included) must carry a `// SAFETY:` comment.
step unsafe-audit cargo xtask unsafe-audit

step deps cargo xtask deps

# Fault-matrix gate: the resilient bulk-whois path must stay wall-clock
# deterministic. Backoff sleeps run on an injected clock, so the whole
# matrix — retries, timeouts, circuit breaker — completes in seconds of
# real time; a wall-clock budget catches any regression to real sleeps.
step fault-matrix-build cargo test -q -p routergeo-cymru --test fault_matrix --no-run
fm_start=$(date +%s)
step fault-matrix cargo test -q -p routergeo-cymru --test fault_matrix
fm_elapsed=$(( $(date +%s) - fm_start ))
if [ "$fm_elapsed" -gt 60 ]; then
    echo "ci.sh: fault matrix took ${fm_elapsed}s (> 60s) — backoff is sleeping on wall time" >&2
    exit 1
fi

step build-release cargo build --release

# Determinism gate: the full Tiny-scale report must be byte-identical at
# 1, 2, and 8 worker threads. The budget bounds the three lab builds —
# a blowout means a parallel stage fell back to something quadratic or a
# worker is deadlocked on the shard queue.
step determinism-build cargo test -q --test parallel_determinism --no-run
pd_start=$(date +%s)
step determinism-gate cargo test -q --test parallel_determinism
pd_elapsed=$(( $(date +%s) - pd_start ))
if [ "$pd_elapsed" -gt 120 ]; then
    echo "ci.sh: determinism gate took ${pd_elapsed}s (> 120s) — parallel stages regressed" >&2
    exit 1
fi

# Perf gate: fresh repro --timings vs the committed BENCH_pipeline.json
# baseline; fails on a >2x per-stage wall-clock regression after
# median-normalising away machine speed. Refresh with
# `cargo xtask bench-check --bless` when a slowdown is intentional.
step bench-check cargo xtask bench-check

# Observability gate: a traced Tiny run must satisfy every structural
# invariant of the obs JSONL schema — span open/close accounting,
# counter identities (cdf/cymru/pool), histogram bucket totals.
step obs-trace env ROUTERGEO_SCALE=tiny ROUTERGEO_SEED=20170301 \
    sh -c 'cargo run --release -q -p routergeo-bench --bin repro -- \
        table1 coverage consistency fig2 --obs target/obs_ci.jsonl > /dev/null'
step obs-check cargo xtask obs-check target/obs_ci.jsonl

# Fuzz gate: the seeded mutation/protocol/differential harness must
# come back clean, and its JSON report (archived as a CI artifact) is
# deterministic for a given budget. The trial plan is a pure function
# of --budget-ms — it never reads the wall clock — so the budget check
# below bounds harness wall time, not trial count: a blowout means a
# mutated image wedged the reader or a protocol scenario hit real
# sleeps instead of the injected clock.
step fuzz-build cargo build -q -p xtask -p routergeo-fuzz
fz_start=$(date +%s)
step fuzz sh -c 'cargo xtask fuzz --budget-ms 30000 --json > target/fuzz_ci.json'
fz_elapsed=$(( $(date +%s) - fz_start ))
if [ "$fz_elapsed" -gt 45 ]; then
    echo "ci.sh: fuzz gate took ${fz_elapsed}s (> 45s) — a trial is wedging or sleeping on wall time" >&2
    exit 1
fi

step test cargo test -q
step test-workspace cargo test --workspace -q

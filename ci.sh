#!/bin/sh
# Offline CI gate for the routergeo workspace. Every step runs without
# network access; failures stop the script immediately.
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo xtask lint"
cargo xtask lint

echo "==> cargo xtask deps"
cargo xtask deps

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "ci.sh: all gates passed"

//! routergeo-faultnet — deterministic fault injection for socket paths.
//!
//! Resilience claims need a hostile network to test against. This crate
//! provides the two pieces the workspace's fault-matrix tests are built
//! on:
//!
//! - [`proxy::ChaosProxy`], a loopback TCP proxy executing a scripted
//!   [`proxy::FaultPlan`] — connection refusal, accept-then-silence,
//!   mid-stream truncation at byte N, per-chunk latency, seeded byte
//!   corruption, early FIN. Fault assignment is by accepted-connection
//!   index, so a fixed plan yields the same failure schedule every run.
//! - [`clock::Clock`], an injectable time source. Retry/backoff code
//!   sleeps through it; [`clock::TestClock`] makes those sleeps virtual
//!   and records the exact schedule, keeping the fault matrix free of
//!   wall-clock sleeps (and therefore deterministic in CI).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod proxy;

pub use clock::{Clock, SystemClock, TestClock};
pub use proxy::{ChaosProxy, ConnRecord, Fault, FaultPlan, ProxyStats};

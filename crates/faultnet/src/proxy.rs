//! `ChaosProxy` — a deterministic fault-injecting TCP proxy.
//!
//! The proxy sits between a client and an upstream server on loopback and
//! executes a scripted [`FaultPlan`]: connection `i` receives the plan's
//! `i`-th fault. Every fault is deterministic for a fixed plan and seed,
//! so a resilience test can assert *exact* retry counts and outcomes.
//!
//! Request/response framing follows the bulk-whois shape this workspace
//! exercises (client writes its whole request, then shuts down its write
//! half; the response streams back until EOF), which lets the proxy relay
//! sequentially without a second thread per connection.

use crate::clock::Clock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Relay buffer size; also the latency-injection chunk granularity.
const CHUNK: usize = 512;

/// Socket deadline used on the proxy's own sockets so a misbehaving peer
/// can never wedge a proxy worker.
const IO_DEADLINE: Duration = Duration::from_secs(5);

/// One scripted fault, applied to a single proxied connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Relay faithfully.
    PassThrough,
    /// Close the accepted connection immediately — the client observes a
    /// refusal-like failure before any protocol byte.
    Refuse,
    /// Accept and consume the request but never answer; the connection
    /// is held open for `hold` of real time — pick it larger than the
    /// client's read deadline so the client provably gives up first.
    AcceptSilence {
        /// How long to keep the silent connection open before closing.
        hold: Duration,
    },
    /// Relay the request, then forward only the first `n` response bytes
    /// before closing — a mid-stream truncation at byte `n`.
    TruncateAfter(usize),
    /// Relay faithfully but sleep `per_chunk` on the injected clock
    /// before forwarding each response chunk.
    Delay {
        /// Injected latency per relayed response chunk.
        per_chunk: Duration,
    },
    /// Relay the response but flip each byte with probability
    /// `rate_pct`/100, drawn from a generator seeded with `seed` — the
    /// corruption pattern is identical on every run.
    CorruptBytes {
        /// Percent of response bytes to corrupt (0–100).
        rate_pct: u8,
        /// RNG seed for the corruption pattern.
        seed: u64,
    },
    /// Consume the request, then FIN the client-facing socket without
    /// contacting the upstream at all.
    EarlyFin,
}

impl Fault {
    /// Short stable label for stats and debugging output.
    pub fn label(&self) -> &'static str {
        match self {
            Fault::PassThrough => "pass-through",
            Fault::Refuse => "refuse",
            Fault::AcceptSilence { .. } => "accept-silence",
            Fault::TruncateAfter(_) => "truncate",
            Fault::Delay { .. } => "delay",
            Fault::CorruptBytes { .. } => "corrupt",
            Fault::EarlyFin => "early-fin",
        }
    }
}

/// How the scripted faults map onto the connection sequence.
#[derive(Debug, Clone)]
enum PlanMode {
    /// Connections beyond the script relay faithfully.
    SequenceThenPass,
    /// The script repeats forever.
    Cycle,
}

/// A scripted sequence of faults, indexed by accepted-connection order.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    faults: Vec<Fault>,
    mode: PlanMode,
}

impl FaultPlan {
    /// Relay every connection faithfully.
    pub fn pass_through() -> FaultPlan {
        FaultPlan::sequence(Vec::new())
    }

    /// Connection `i` gets `faults[i]`; connections past the end of the
    /// script relay faithfully. The natural shape for retry tests:
    /// `sequence(vec![Refuse])` fails the first attempt only.
    pub fn sequence(faults: Vec<Fault>) -> FaultPlan {
        FaultPlan {
            faults,
            mode: PlanMode::SequenceThenPass,
        }
    }

    /// Every connection gets the same fault.
    pub fn always(fault: Fault) -> FaultPlan {
        FaultPlan::cycle(vec![fault])
    }

    /// The script repeats forever: connection `i` gets
    /// `faults[i % len]`. `cycle(vec![Refuse, Refuse, PassThrough])`
    /// models a service failing two of every three connections.
    pub fn cycle(faults: Vec<Fault>) -> FaultPlan {
        FaultPlan {
            faults,
            mode: PlanMode::Cycle,
        }
    }

    fn for_conn(&self, idx: usize) -> Fault {
        if self.faults.is_empty() {
            return Fault::PassThrough;
        }
        match self.mode {
            PlanMode::SequenceThenPass => {
                self.faults.get(idx).cloned().unwrap_or(Fault::PassThrough)
            }
            PlanMode::Cycle => self.faults[idx % self.faults.len()].clone(),
        }
    }
}

/// Per-connection accounting, in accept order.
#[derive(Debug, Clone)]
pub struct ConnRecord {
    /// Label of the fault the connection was given.
    pub fault: &'static str,
    /// Request bytes relayed (or consumed) from the client.
    pub bytes_up: u64,
    /// Response bytes delivered to the client.
    pub bytes_down: u64,
    /// Latency injected on this connection (virtual under a `TestClock`).
    pub injected_delay: Duration,
}

/// Aggregated proxy observations, for test assertions.
#[derive(Debug, Clone, Default)]
pub struct ProxyStats {
    /// One record per accepted connection, in accept order.
    pub conns: Vec<ConnRecord>,
}

impl ProxyStats {
    /// Number of connections accepted.
    pub fn connections(&self) -> usize {
        self.conns.len()
    }

    /// Total latency injected across all connections.
    pub fn injected_delay(&self) -> Duration {
        self.conns.iter().map(|c| c.injected_delay).sum()
    }

    /// Fault labels in accept order — lets a scripted scenario assert
    /// that each connection received exactly the fault the plan
    /// assigned it (connection `i` → `plan[i]`).
    pub fn fault_labels(&self) -> Vec<&'static str> {
        self.conns.iter().map(|c| c.fault).collect()
    }
}

struct ProxyShared {
    upstream: SocketAddr,
    plan: FaultPlan,
    clock: Arc<dyn Clock>,
    stats: Mutex<ProxyStats>,
    active: AtomicUsize,
}

/// Handle to a running fault-injecting proxy.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shared: Arc<ProxyShared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Bind `127.0.0.1:0` and start proxying to `upstream` under `plan`.
    /// Injected latency sleeps on `clock`, so a virtual clock makes delay
    /// faults free of wall time.
    pub fn spawn(
        upstream: SocketAddr,
        plan: FaultPlan,
        clock: Arc<dyn Clock>,
    ) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(ProxyShared {
            upstream,
            plan,
            clock,
            stats: Mutex::new(ProxyStats::default()),
            active: AtomicUsize::new(0),
        });
        let stop2 = Arc::clone(&stop);
        let shared2 = Arc::clone(&shared);
        // xtask-allow: RG007 accept loop must outlive this call; pool shards are scoped
        let accept_thread = std::thread::spawn(move || {
            let mut idx = 0usize;
            for conn in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let shared = Arc::clone(&shared2);
                let conn_idx = idx;
                idx += 1;
                shared.active.fetch_add(1, Ordering::SeqCst);
                // xtask-allow: RG007 per-connection chaos thread, detached by design
                std::thread::spawn(move || {
                    let record = handle(stream, conn_idx, &shared);
                    if let Ok(mut stats) = shared.stats.lock() {
                        // Accept order can race between worker threads;
                        // index the slot explicitly.
                        if stats.conns.len() <= conn_idx {
                            stats.conns.resize(
                                conn_idx + 1,
                                ConnRecord {
                                    fault: "pending",
                                    bytes_up: 0,
                                    bytes_down: 0,
                                    injected_delay: Duration::ZERO,
                                },
                            );
                        }
                        stats.conns[conn_idx] = record;
                    }
                    shared.active.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        Ok(ChaosProxy {
            addr,
            stop,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listening address — point the client here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the per-connection observations so far.
    pub fn stats(&self) -> ProxyStats {
        self.shared
            .stats
            .lock()
            .map(|g| g.clone())
            .unwrap_or_default()
    }

    /// Stop accepting, join the accept thread, and drain workers
    /// (bounded). Returns the number of still-active connections that
    /// could not be drained.
    pub fn shutdown(&mut self) -> usize {
        if self.accept_thread.is_none() {
            return 0;
        }
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for _ in 0..200 {
            if self.shared.active.load(Ordering::SeqCst) == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        self.shared.active.load(Ordering::SeqCst)
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Consume the client's request until its write half closes, returning
/// the bytes read.
fn read_request(client: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; CHUNK];
    loop {
        match client.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(e),
        }
    }
    Ok(buf)
}

fn handle(mut client: TcpStream, idx: usize, shared: &ProxyShared) -> ConnRecord {
    let fault = shared.plan.for_conn(idx);
    let mut record = ConnRecord {
        fault: fault.label(),
        bytes_up: 0,
        bytes_down: 0,
        injected_delay: Duration::ZERO,
    };
    let _ = client.set_read_timeout(Some(IO_DEADLINE));
    let _ = client.set_write_timeout(Some(IO_DEADLINE));

    match fault {
        Fault::Refuse => {
            // Closing without reading makes the kernel send RST on the
            // client's next interaction — a refusal-shaped failure.
            let _ = client.shutdown(Shutdown::Both);
        }
        Fault::AcceptSilence { hold } => {
            // Swallow the request, answer nothing, and keep the socket
            // open (bounded real hold) so the client's read deadline —
            // not an EOF — is what ends the attempt.
            if let Ok(req) = read_request(&mut client) {
                record.bytes_up = req.len() as u64;
            }
            std::thread::sleep(hold.min(IO_DEADLINE));
        }
        Fault::EarlyFin => {
            if let Ok(req) = read_request(&mut client) {
                record.bytes_up = req.len() as u64;
            }
            let _ = client.shutdown(Shutdown::Both);
        }
        Fault::PassThrough
        | Fault::TruncateAfter(_)
        | Fault::Delay { .. }
        | Fault::CorruptBytes { .. } => {
            // xtask-allow: RG012 a broken relay is an injected fault doing its job; the record still captures what moved
            let _ = relay(&mut client, &fault, shared, &mut record);
        }
    }
    record
}

/// Relay request upstream and stream the response back, applying the
/// response-path faults.
fn relay(
    client: &mut TcpStream,
    fault: &Fault,
    shared: &ProxyShared,
    record: &mut ConnRecord,
) -> std::io::Result<()> {
    let request = read_request(client)?;
    record.bytes_up = request.len() as u64;

    let mut upstream = TcpStream::connect_timeout(&shared.upstream, IO_DEADLINE)?;
    upstream.set_read_timeout(Some(IO_DEADLINE))?;
    upstream.set_write_timeout(Some(IO_DEADLINE))?;
    upstream.write_all(&request)?;
    upstream.shutdown(Shutdown::Write)?;

    let mut corrupt_rng = match fault {
        Fault::CorruptBytes { seed, .. } => Some(StdRng::seed_from_u64(*seed)),
        _ => None,
    };
    let truncate_at = match fault {
        Fault::TruncateAfter(n) => Some(*n),
        _ => None,
    };

    let mut forwarded = 0usize;
    let mut chunk = [0u8; CHUNK];
    loop {
        let n = match upstream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) => return Err(e),
        };
        let mut slice = chunk[..n].to_vec();
        if let Fault::Delay { per_chunk } = fault {
            shared.clock.sleep(*per_chunk);
            record.injected_delay += *per_chunk;
        }
        if let (Some(rng), Fault::CorruptBytes { rate_pct, .. }) = (corrupt_rng.as_mut(), fault) {
            let rate = f64::from((*rate_pct).min(100)) / 100.0;
            for b in slice.iter_mut() {
                if rng.gen_bool(rate) {
                    *b ^= 0x55;
                }
            }
        }
        let take = match truncate_at {
            Some(limit) => limit.saturating_sub(forwarded).min(slice.len()),
            None => slice.len(),
        };
        if take > 0 {
            client.write_all(&slice[..take])?;
            record.bytes_down += take as u64;
            forwarded += take;
        }
        if truncate_at.is_some_and(|limit| forwarded >= limit) {
            let _ = client.shutdown(Shutdown::Both);
            return Ok(());
        }
    }
    client.flush()?;
    let _ = client.shutdown(Shutdown::Write);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{SystemClock, TestClock};
    use std::time::Instant;

    /// A tiny upstream echo server: replies `echo: <request>` and closes.
    fn echo_upstream() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind echo upstream");
        let addr = listener.local_addr().expect("local addr");
        let t = std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(mut s) = conn else { break };
                let mut req = Vec::new();
                if s.read_to_end(&mut req).is_err() {
                    continue;
                }
                if req.is_empty() {
                    break; // shutdown nudge
                }
                let _ = s.write_all(b"echo: ");
                let _ = s.write_all(&req);
            }
        });
        (addr, t)
    }

    fn talk(addr: SocketAddr, req: &str) -> std::io::Result<String> {
        let mut s = TcpStream::connect(addr)?;
        s.set_read_timeout(Some(Duration::from_secs(2)))?;
        s.write_all(req.as_bytes())?;
        s.shutdown(Shutdown::Write)?;
        let mut out = String::new();
        s.read_to_string(&mut out)?;
        Ok(out)
    }

    fn stop_upstream(addr: SocketAddr, t: JoinHandle<()>) {
        let _ = TcpStream::connect(addr).map(|s| s.shutdown(Shutdown::Both));
        let _ = t.join();
    }

    #[test]
    fn pass_through_is_transparent() {
        let (up, t) = echo_upstream();
        let mut proxy =
            ChaosProxy::spawn(up, FaultPlan::pass_through(), SystemClock::shared()).expect("spawn");
        let out = talk(proxy.addr(), "hello").expect("proxied round trip");
        assert_eq!(out, "echo: hello");
        let stats = proxy.stats();
        assert_eq!(stats.connections(), 1);
        assert_eq!(stats.conns[0].bytes_up, 5);
        assert_eq!(stats.conns[0].bytes_down, 11);
        assert_eq!(proxy.shutdown(), 0);
        stop_upstream(up, t);
    }

    #[test]
    fn sequence_applies_faults_in_connection_order() {
        let (up, t) = echo_upstream();
        let plan = FaultPlan::sequence(vec![Fault::Refuse]);
        let mut proxy = ChaosProxy::spawn(up, plan, SystemClock::shared()).expect("spawn");
        // First connection dies before any response byte.
        let first = talk(proxy.addr(), "a");
        assert!(
            first.map(|s| s.is_empty()).unwrap_or(true),
            "no echo on refuse"
        );
        // Second passes through.
        let second = talk(proxy.addr(), "b").expect("second conn relays");
        assert_eq!(second, "echo: b");
        proxy.shutdown();
        stop_upstream(up, t);
    }

    #[test]
    fn truncation_cuts_the_response_at_the_requested_byte() {
        let (up, t) = echo_upstream();
        let plan = FaultPlan::always(Fault::TruncateAfter(4));
        let mut proxy = ChaosProxy::spawn(up, plan, SystemClock::shared()).expect("spawn");
        let out = talk(proxy.addr(), "payload").expect("read truncated");
        assert_eq!(out, "echo");
        assert_eq!(proxy.stats().conns[0].bytes_down, 4);
        proxy.shutdown();
        stop_upstream(up, t);
    }

    #[test]
    fn corruption_is_deterministic_for_a_seed() {
        let (up, t) = echo_upstream();
        let plan = FaultPlan::always(Fault::CorruptBytes {
            rate_pct: 100,
            seed: 9,
        });
        let mut proxy = ChaosProxy::spawn(up, plan, SystemClock::shared()).expect("spawn");
        let a = talk(proxy.addr(), "xy").expect("first");
        let b = talk(proxy.addr(), "xy").expect("second");
        assert_eq!(a, b, "same seed, same corruption");
        assert_ne!(a, "echo: xy", "all bytes flipped");
        proxy.shutdown();
        stop_upstream(up, t);
    }

    #[test]
    fn delay_fault_sleeps_on_the_injected_clock_only() {
        let (up, t) = echo_upstream();
        let (clock, handle) = TestClock::shared();
        let plan = FaultPlan::always(Fault::Delay {
            per_chunk: Duration::from_secs(30),
        });
        let mut proxy = ChaosProxy::spawn(up, plan, handle).expect("spawn");
        let started = Instant::now();
        let out = talk(proxy.addr(), "slow").expect("relayed");
        assert_eq!(out, "echo: slow");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "virtual delay slept for real"
        );
        assert!(clock.total_slept() >= Duration::from_secs(30));
        assert!(proxy.stats().injected_delay() >= Duration::from_secs(30));
        proxy.shutdown();
        stop_upstream(up, t);
    }

    #[test]
    fn cycle_plan_repeats() {
        let plan = FaultPlan::cycle(vec![Fault::Refuse, Fault::PassThrough]);
        assert_eq!(plan.for_conn(0), Fault::Refuse);
        assert_eq!(plan.for_conn(1), Fault::PassThrough);
        assert_eq!(plan.for_conn(2), Fault::Refuse);
        let seq = FaultPlan::sequence(vec![Fault::EarlyFin]);
        assert_eq!(seq.for_conn(0), Fault::EarlyFin);
        assert_eq!(seq.for_conn(5), Fault::PassThrough);
    }
}

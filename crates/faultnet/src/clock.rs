//! Injectable time source.
//!
//! Retry/backoff code sleeps through a [`Clock`] instead of
//! `std::thread::sleep`, so tests drive the schedule on virtual time:
//! a [`TestClock`] makes every backoff instantaneous while recording the
//! exact durations requested, which lets the fault-matrix tests assert
//! the full schedule without a single real sleep.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A monotonic time source with a sleep primitive.
///
/// `now()` reports time elapsed since the clock's epoch (its creation);
/// only differences of `now()` values are meaningful.
pub trait Clock: Send + Sync {
    /// Monotonic elapsed time since the clock's epoch.
    fn now(&self) -> Duration;

    /// Block the caller for `d` (really, or virtually).
    fn sleep(&self, d: Duration);
}

/// The real wall clock: `Instant` + `thread::sleep`.
#[derive(Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// A clock whose epoch is "now".
    pub fn new() -> SystemClock {
        SystemClock {
            // xtask-allow: RG008 the one real wall-clock read behind the injectable Clock trait
            epoch: Instant::now(),
        }
    }

    /// Convenience: a shareable system clock.
    pub fn shared() -> Arc<dyn Clock> {
        Arc::new(SystemClock::new())
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A virtual clock: `sleep` advances time instantly and records the
/// requested duration. Cloning shares the same underlying time line.
#[derive(Debug, Clone, Default)]
pub struct TestClock {
    inner: Arc<TestClockInner>,
}

#[derive(Debug, Default)]
struct TestClockInner {
    now_nanos: AtomicU64,
    sleeps: Mutex<Vec<Duration>>,
}

impl TestClock {
    /// A virtual clock starting at zero.
    pub fn new() -> TestClock {
        TestClock::default()
    }

    /// Convenience: the clock plus a trait-object handle to it.
    pub fn shared() -> (TestClock, Arc<dyn Clock>) {
        let clock = TestClock::new();
        let handle: Arc<dyn Clock> = Arc::new(clock.clone());
        (clock, handle)
    }

    /// Every duration passed to `sleep`, in call order.
    pub fn sleeps(&self) -> Vec<Duration> {
        self.inner
            .sleeps
            .lock()
            .map(|g| g.clone())
            .unwrap_or_default()
    }

    /// Total virtual time slept.
    pub fn total_slept(&self) -> Duration {
        self.sleeps().iter().sum()
    }

    /// Advance virtual time without recording a sleep (e.g. to model
    /// elapsed work between retries).
    pub fn advance(&self, d: Duration) {
        let nanos = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.inner.now_nanos.fetch_add(nanos, Ordering::SeqCst);
    }
}

impl Clock for TestClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.inner.now_nanos.load(Ordering::SeqCst))
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
        if let Ok(mut g) = self.inner.sleeps.lock() {
            g.push(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_clock_records_sleeps_without_waiting() {
        let (clock, handle) = TestClock::shared();
        let start = Instant::now();
        handle.sleep(Duration::from_secs(3600));
        handle.sleep(Duration::from_millis(250));
        assert!(start.elapsed() < Duration::from_secs(1), "slept for real");
        assert_eq!(
            clock.sleeps(),
            vec![Duration::from_secs(3600), Duration::from_millis(250)]
        );
        assert_eq!(
            clock.now(),
            Duration::from_secs(3600) + Duration::from_millis(250)
        );
    }

    #[test]
    fn clones_share_the_time_line() {
        let a = TestClock::new();
        let b = a.clone();
        a.sleep(Duration::from_secs(5));
        assert_eq!(b.now(), Duration::from_secs(5));
        assert_eq!(b.sleeps().len(), 1);
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }
}

//! The §5.2.3 ARIN case study.
//!
//! Why is city-level accuracy worst in ARIN? The paper dissects
//! MaxMind-Paid: most non-US ARIN ground-truth addresses are *geolocated
//! to the US anyway* (registry data), and among the wrong US city answers
//! the overwhelming majority are block-level entries — whole blocks
//! assigned one location even though their routers are elsewhere.

use crate::groundtruth::GroundTruth;
use routergeo_db::GeoDatabase;
use routergeo_geo::{CountryCode, Rir, CITY_RANGE_KM};

/// The §5.2.3 counters for one database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArinCaseStudy {
    /// Database name.
    pub database: String,
    /// ARIN ground-truth addresses.
    pub arin_total: usize,
    /// …of which located outside the US (per ground truth).
    pub arin_non_us: usize,
    /// …of which the database nevertheless geolocates to the US.
    pub non_us_pulled_to_us: usize,
    /// …of which carry a city-level answer.
    pub pulled_with_city: usize,
    /// …of which are more than 1,000 km from the true location.
    pub pulled_city_over_1000km: usize,
    /// Ground-truth addresses located in the US (any RIR).
    pub us_total: usize,
    /// ARIN ∩ US addresses with a city-level answer.
    pub us_city_answers: usize,
    /// …of which have error > 40 km (wrong city).
    pub us_city_wrong: usize,
    /// Block-level share among the wrong city answers.
    pub wrong_block_level: usize,
    /// Block-level share among the correct city answers.
    pub right_block_level: usize,
}

impl ArinCaseStudy {
    /// Fraction of non-US ARIN addresses pulled to the US.
    pub fn pull_rate(&self) -> f64 {
        routergeo_geo::stats::ratio(self.non_us_pulled_to_us, self.arin_non_us)
    }

    /// Fraction of ARIN-US city answers that are wrong (> 40 km).
    pub fn us_city_wrong_rate(&self) -> f64 {
        routergeo_geo::stats::ratio(self.us_city_wrong, self.us_city_answers)
    }
}

/// Run the case study for one database.
pub fn arin_case_study<D: GeoDatabase>(db: &D, gt: &GroundTruth) -> ArinCaseStudy {
    let us: CountryCode = "US".parse().expect("US is valid");
    let mut out = ArinCaseStudy {
        database: db.name().to_string(),
        arin_total: 0,
        arin_non_us: 0,
        non_us_pulled_to_us: 0,
        pulled_with_city: 0,
        pulled_city_over_1000km: 0,
        us_total: 0,
        us_city_answers: 0,
        us_city_wrong: 0,
        wrong_block_level: 0,
        right_block_level: 0,
    };

    for e in &gt.entries {
        let is_arin = e.rir == Some(Rir::Arin);
        let truly_us = e.country == us;
        if truly_us {
            out.us_total += 1;
        }
        if !is_arin {
            continue;
        }
        out.arin_total += 1;
        let rec = db.lookup(e.ip);

        if !truly_us {
            out.arin_non_us += 1;
            if let Some(rec) = &rec {
                if rec.country == Some(us) {
                    out.non_us_pulled_to_us += 1;
                    if rec.has_city() {
                        out.pulled_with_city += 1;
                        let d = rec.coord.expect("city").distance_km(&e.coord);
                        if d > 1000.0 {
                            out.pulled_city_over_1000km += 1;
                        }
                    }
                }
            }
        } else if let Some(rec) = &rec {
            if rec.has_city() {
                out.us_city_answers += 1;
                let d = rec.coord.expect("city").distance_km(&e.coord);
                if d > CITY_RANGE_KM {
                    out.us_city_wrong += 1;
                    if rec.granularity.is_block_level() {
                        out.wrong_block_level += 1;
                    }
                } else if rec.granularity.is_block_level() {
                    out.right_block_level += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groundtruth::{GtEntry, GtMethod};
    use routergeo_db::inmem::InMemoryDbBuilder;
    use routergeo_db::{Granularity, LocationRecord};
    use routergeo_geo::Coordinate;

    fn entry(ip: &str, cc: &str, lat: f64, lon: f64, rir: Rir) -> GtEntry {
        GtEntry {
            ip: ip.parse().unwrap(),
            coord: Coordinate::new(lat, lon).unwrap(),
            country: cc.parse().unwrap(),
            rir: Some(rir),
            method: GtMethod::DnsBased,
            domain: None,
        }
    }

    #[test]
    fn registry_pull_counted_with_distance() {
        // An ARIN router truly in Germany; the DB claims a US city
        // thousands of km away, from a block-level entry.
        let gt = GroundTruth {
            entries: vec![
                entry("6.0.0.1", "DE", 51.0, 9.0, Rir::Arin),
                entry("6.0.1.1", "US", 40.0, -100.0, Rir::Arin),
            ],
            overlap: vec![],
            degraded: vec![],
        };
        let mut b = InMemoryDbBuilder::new("mm");
        let us_city = LocationRecord {
            country: Some("US".parse().unwrap()),
            region: None,
            city: Some("HQ".into()),
            coord: Some(Coordinate::new(40.0, -100.0).unwrap()),
            granularity: Granularity::Aggregate,
        };
        b.push_prefix("6.0.0.0/24".parse().unwrap(), us_city.clone());
        b.push_prefix("6.0.1.0/24".parse().unwrap(), us_city);
        let db = b.build().unwrap();

        let case = arin_case_study(&db, &gt);
        assert_eq!(case.arin_total, 2);
        assert_eq!(case.arin_non_us, 1);
        assert_eq!(case.non_us_pulled_to_us, 1);
        assert_eq!(case.pulled_with_city, 1);
        assert_eq!(case.pulled_city_over_1000km, 1);
        assert_eq!(case.pull_rate(), 1.0);
        // The genuinely-US address is answered correctly at city level.
        assert_eq!(case.us_total, 1);
        assert_eq!(case.us_city_answers, 1);
        assert_eq!(case.us_city_wrong, 0);
        assert_eq!(case.right_block_level, 1);
    }

    #[test]
    fn wrong_us_city_blocks_counted() {
        // US router, DB picks a US city 1500 km away (block-level).
        let gt = GroundTruth {
            entries: vec![entry("6.0.0.1", "US", 40.0, -100.0, Rir::Arin)],
            overlap: vec![],
            degraded: vec![],
        };
        let mut b = InMemoryDbBuilder::new("mm");
        b.push_prefix(
            "6.0.0.0/24".parse().unwrap(),
            LocationRecord {
                country: Some("US".parse().unwrap()),
                region: None,
                city: Some("Elsewhere".into()),
                coord: Some(Coordinate::new(40.0, -80.0).unwrap()),
                granularity: Granularity::Block24,
            },
        );
        let db = b.build().unwrap();
        let case = arin_case_study(&db, &gt);
        assert_eq!(case.us_city_answers, 1);
        assert_eq!(case.us_city_wrong, 1);
        assert_eq!(case.wrong_block_level, 1);
        assert_eq!(case.us_city_wrong_rate(), 1.0);
    }

    #[test]
    fn non_arin_entries_are_ignored() {
        let gt = GroundTruth {
            entries: vec![entry("31.0.0.1", "DE", 51.0, 9.0, Rir::RipeNcc)],
            overlap: vec![],
            degraded: vec![],
        };
        let db = InMemoryDbBuilder::new("mm").build().unwrap();
        let case = arin_case_study(&db, &gt);
        assert_eq!(case.arin_total, 0);
        assert_eq!(case.us_total, 0);
    }
}

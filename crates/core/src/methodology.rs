//! The §4 methodology checks.
//!
//! Before trusting 40 km as "same city", the paper verifies two things
//! over the Ark address set:
//!
//! 1. databases put a city's coordinates within 40 km of the GeoNames
//!    gazetteer entry for that (city, region, country) more than 99% of
//!    the time — i.e. records with city names really carry city-level
//!    coordinates;
//! 2. any two databases place *the same city name* within 40 km of each
//!    other more than 99% of the time — so coordinate comparison is a
//!    sound substitute for city-name comparison.

use routergeo_db::GeoDatabase;
use routergeo_gazetteer::Gazetteer;
use routergeo_geo::stats::ratio;
use routergeo_geo::CITY_RANGE_KM;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Result of the §4 sanity checks.
#[derive(Debug, Clone)]
pub struct MethodologyReport {
    /// Per database: (name, city records checked against the gazetteer,
    /// matches within the city range).
    pub gazetteer_check: Vec<(String, usize, usize)>,
    /// Per database pair: (name a, name b, shared city names compared,
    /// pairs within the city range).
    pub cross_db_check: Vec<(String, String, usize, usize)>,
}

impl MethodologyReport {
    /// Worst per-database gazetteer agreement fraction.
    pub fn min_gazetteer_agreement(&self) -> f64 {
        self.gazetteer_check
            .iter()
            .map(|(_, total, ok)| ratio(*ok, *total))
            .fold(1.0, f64::min)
    }

    /// Worst cross-database same-city agreement fraction.
    pub fn min_cross_db_agreement(&self) -> f64 {
        self.cross_db_check
            .iter()
            .map(|(_, _, total, ok)| ratio(*ok, *total))
            .fold(1.0, f64::min)
    }
}

/// Run both checks over an address sample.
pub fn methodology_checks<D: GeoDatabase>(
    dbs: &[D],
    gazetteer: &Gazetteer,
    ips: &[Ipv4Addr],
) -> MethodologyReport {
    // Collect each database's city coordinate table as observed through
    // lookups: city name (+country) → coordinate.
    let mut per_db_cities: Vec<
        HashMap<(String, routergeo_geo::CountryCode), routergeo_geo::Coordinate>,
    > = vec![HashMap::new(); dbs.len()];
    for ip in ips {
        for (i, db) in dbs.iter().enumerate() {
            let Some(rec) = db.lookup(*ip) else { continue };
            if !rec.has_city() {
                continue;
            }
            let (Some(city), Some(country), Some(coord)) =
                (rec.city.clone(), rec.country, rec.coord)
            else {
                continue;
            };
            per_db_cities[i].entry((city, country)).or_insert(coord);
        }
    }

    // Check 1: vs the gazetteer.
    let mut gazetteer_check = Vec::new();
    for (i, db) in dbs.iter().enumerate() {
        let mut total = 0usize;
        let mut ok = 0usize;
        for ((city, country), coord) in &per_db_cities[i] {
            if let Some(entry) = gazetteer.lookup(city, None, *country) {
                total += 1;
                if coord.distance_km(&entry.coord) <= CITY_RANGE_KM {
                    ok += 1;
                }
            }
        }
        gazetteer_check.push((db.name().to_string(), total, ok));
    }

    // Check 2: same city name across database pairs.
    let mut cross_db_check = Vec::new();
    for i in 0..dbs.len() {
        for j in i + 1..dbs.len() {
            let mut total = 0usize;
            let mut ok = 0usize;
            for (key, coord_a) in &per_db_cities[i] {
                if let Some(coord_b) = per_db_cities[j].get(key) {
                    total += 1;
                    if coord_a.distance_km(coord_b) <= CITY_RANGE_KM {
                        ok += 1;
                    }
                }
            }
            cross_db_check.push((
                dbs[i].name().to_string(),
                dbs[j].name().to_string(),
                total,
                ok,
            ));
        }
    }

    MethodologyReport {
        gazetteer_check,
        cross_db_check,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routergeo_db::synth::{build_vendor, SignalWorld, VendorProfile};
    use routergeo_world::{World, WorldConfig};

    #[test]
    fn synthetic_vendors_pass_the_paper_checks() {
        let w = World::generate(WorldConfig::tiny(211));
        let signals = SignalWorld::new(&w);
        let dbs: Vec<_> = VendorProfile::all_presets()
            .iter()
            .map(|p| build_vendor(&signals, p))
            .collect();
        let gazetteer = Gazetteer::from_world(&w, 3, 3.0);
        let ips: Vec<Ipv4Addr> = w.interfaces.iter().step_by(3).map(|i| i.ip).collect();
        let report = methodology_checks(&dbs, &gazetteer, &ips);

        assert_eq!(report.gazetteer_check.len(), 4);
        assert_eq!(report.cross_db_check.len(), 6);
        for (name, total, _) in &report.gazetteer_check {
            assert!(*total > 50, "{name} checked only {total} cities");
        }
        // The paper's ">99% within 40 km" both ways.
        assert!(
            report.min_gazetteer_agreement() > 0.99,
            "gazetteer agreement {}",
            report.min_gazetteer_agreement()
        );
        assert!(
            report.min_cross_db_agreement() > 0.99,
            "cross-db agreement {}",
            report.min_cross_db_agreement()
        );
    }

    #[test]
    fn empty_inputs_are_harmless() {
        let w = World::generate(WorldConfig::tiny(212));
        let gazetteer = Gazetteer::from_world(&w, 3, 3.0);
        let dbs: Vec<routergeo_db::InMemoryDb> = vec![];
        let report = methodology_checks(&dbs, &gazetteer, &[]);
        assert!(report.gazetteer_check.is_empty());
        assert_eq!(report.min_gazetteer_agreement(), 1.0);
    }
}

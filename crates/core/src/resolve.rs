//! The resolve-once lookup engine (§5 hot path).
//!
//! Coverage, consistency, and accuracy all ask every database about the
//! same address sets. Instead of re-querying per analysis, a
//! [`ResolvedView`] resolves each (IP, database) pair exactly once into
//! columnar struct-of-arrays storage: one `Vec<Option<CompactRecord>>`
//! column per database, with region/city names interned into a shared
//! [`LocationInterner`]. The analyses then tally over the flat columns
//! without a single per-lookup allocation.
//!
//! Construction is sharded through `routergeo_pool`: each shard resolves
//! its slice into a *local* interner and local column chunks, and the
//! merge absorbs the locals in shard order, remapping symbol ids into
//! the global table. Shard boundaries depend only on the input length,
//! so the view — ids included — is byte-identical at any thread count.

use routergeo_db::{CompactRecord, GeoDatabase, LocationInterner};
use routergeo_pool::Pool;
use std::net::Ipv4Addr;

/// Addresses per shard for the parallel resolvers and evaluators in
/// this crate. Lookups draw no randomness, so the shard seed is
/// irrelevant; the size is fixed (never thread-derived) to keep merge
/// order stable. Sized so the batched readers amortize their
/// per-chunk work (sort, dense memo tables) over many addresses —
/// each distinct record decodes once per shard, so bigger shards mean
/// strictly fewer decodes — while still splitting paper-scale inputs
/// into ~90 shards, plenty of parallelism for any realistic pool.
pub(crate) const LOOKUP_SHARD_SIZE: usize = 16384;

/// Columnar resolve-once answers: `column(db)[i]` is database `db`'s
/// compact answer for the `i`-th input address.
#[derive(Debug, PartialEq)]
pub struct ResolvedView {
    databases: Vec<String>,
    total: usize,
    interner: LocationInterner,
    columns: Vec<Vec<Option<CompactRecord>>>,
}

impl ResolvedView {
    /// Resolve every (IP, database) pair once. Thread count from the
    /// environment ([`Pool::from_env`]).
    pub fn build<D: GeoDatabase + Sync>(dbs: &[D], ips: &[Ipv4Addr]) -> ResolvedView {
        ResolvedView::build_with(dbs, ips, &Pool::from_env())
    }

    /// [`ResolvedView::build`] on an explicit pool: shards resolve into
    /// local interners and column chunks, merged in shard order with
    /// symbol-id remapping, so the view is identical at every thread
    /// count.
    pub fn build_with<D: GeoDatabase + Sync>(
        dbs: &[D],
        ips: &[Ipv4Addr],
        pool: &Pool,
    ) -> ResolvedView {
        let n = dbs.len();
        let mut span = routergeo_obs::span!("core.resolve", databases = n, addresses = ips.len());
        // Register every resolve counter on the orchestrating thread in
        // fixed order, before any worker can first-touch one, so the
        // metrics snapshot renders identically at any thread count.
        let c_lookups = routergeo_obs::counter("resolve.lookups");
        let c_hits = routergeo_obs::counter("resolve.hits");
        let c_misses = routergeo_obs::counter("resolve.misses");
        let c_strings = routergeo_obs::counter("resolve.interner_strings");
        let c_refs = routergeo_obs::counter("resolve.interner_refs");

        let mut interner = LocationInterner::new();
        let mut columns: Vec<Vec<Option<CompactRecord>>> = vec![Vec::with_capacity(ips.len()); n];
        let mut hits = 0u64;
        let mut refs = 0u64;
        if pool.threads() <= 1 {
            // Serial fast path: resolve chunk-major straight into the
            // global interner. First-seen order is exactly the order the
            // sharded merge below replays, so ids — and therefore the
            // whole view — are bit-identical to the threaded build, with
            // none of the local-table absorb/remap machinery. Going
            // through `for_each_shard` keeps the pool's shard counters
            // and spans identical to the threaded plan.
            pool.for_each_shard(0, ips, LOOKUP_SHARD_SIZE, |_, chunk| {
                for (column, db) in columns.iter_mut().zip(dbs) {
                    let part = db.lookup_batch(chunk, &mut interner);
                    hits += part.iter().filter(|r| r.is_some()).count() as u64;
                    column.extend(part);
                }
            });
            refs = interner.ref_count();
        } else {
            let shards = pool.map_shards(0, ips, LOOKUP_SHARD_SIZE, |_, chunk| {
                let mut local = LocationInterner::new();
                let mut cols: Vec<Vec<Option<CompactRecord>>> =
                    vec![Vec::with_capacity(chunk.len()); n];
                for (col, db) in cols.iter_mut().zip(dbs) {
                    // Batched resolve: backends exploit the whole-chunk
                    // view (sorted range/trie sweeps, per-record
                    // memoizing) while guaranteeing the same answers and
                    // interner ids as the per-address loop.
                    col.extend(db.lookup_batch(chunk, &mut local));
                }
                (local, cols)
            });

            for (local, cols) in shards {
                refs += local.ref_count();
                let remap = interner.absorb(&local);
                for (column, chunk) in columns.iter_mut().zip(cols) {
                    for rec in chunk {
                        if rec.is_some() {
                            hits += 1;
                        }
                        column.push(rec.map(|r| r.remapped(&remap)));
                    }
                }
            }
        }

        let lookups = (ips.len() as u64) * (n as u64);
        c_lookups.add(lookups);
        c_hits.add(hits);
        c_misses.add(lookups - hits);
        c_strings.add(interner.len() as u64);
        c_refs.add(refs);
        span.attr("hits", hits);
        span.attr("interned", interner.len());

        ResolvedView {
            databases: dbs.iter().map(|d| d.name().to_string()).collect(),
            total: ips.len(),
            interner,
            columns,
        }
    }

    /// Database display names, defining the column index order.
    pub fn databases(&self) -> &[String] {
        &self.databases
    }

    /// Number of databases (columns).
    pub fn db_count(&self) -> usize {
        self.databases.len()
    }

    /// Number of resolved addresses (rows).
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the view covers no addresses.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The shared symbol table for region/city ids.
    pub fn interner(&self) -> &LocationInterner {
        &self.interner
    }

    /// The full answer column of database `db`.
    pub fn column(&self, db: usize) -> &[Option<CompactRecord>] {
        &self.columns[db]
    }

    /// Database `db`'s answer for the `i`-th address.
    pub fn record(&self, db: usize, i: usize) -> Option<CompactRecord> {
        self.columns[db][i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routergeo_db::inmem::{InMemoryDb, InMemoryDbBuilder};
    use routergeo_db::{Granularity, LocationRecord};
    use routergeo_geo::Coordinate;

    /// A database whose city names vary per /24 so distinct symbols keep
    /// appearing across shard boundaries.
    fn striped_db(name: &str, blocks: u8, stride: u8) -> InMemoryDb {
        let mut b = InMemoryDbBuilder::new(name);
        for i in (0..blocks).step_by(usize::from(stride)) {
            b.push_prefix(
                format!("10.{i}.0.0/16").parse().unwrap(),
                LocationRecord {
                    country: Some("US".parse().unwrap()),
                    region: Some(format!("region-{}", i % 7)),
                    city: Some(format!("city-{}-{}", name, i % 13)),
                    coord: Some(Coordinate::new(f64::from(i) / 4.0, -100.0).unwrap()),
                    granularity: Granularity::Block24,
                },
            );
        }
        b.build().unwrap()
    }

    fn sample_ips(count: u32) -> Vec<Ipv4Addr> {
        (0..count)
            .map(|i| Ipv4Addr::from(0x0A00_0000u32 + (i << 10)))
            .collect()
    }

    #[test]
    fn parallel_view_is_identical_to_serial() {
        let dbs = [striped_db("a", 120, 1), striped_db("b", 120, 3)];
        // > 2 shards of 4096 so the merge path actually runs.
        let ips = sample_ips(10_000);
        let serial = ResolvedView::build_with(&dbs, &ips, &Pool::new(1));
        for threads in [2, 8] {
            let parallel = ResolvedView::build_with(&dbs, &ips, &Pool::new(threads));
            assert_eq!(
                serial, parallel,
                "view differs between 1 and {threads} threads"
            );
        }
        assert_eq!(serial.len(), 10_000);
        assert_eq!(serial.db_count(), 2);
        assert!(serial.interner().len() > 10, "symbols were interned");
    }

    #[test]
    fn view_answers_match_direct_lookups() {
        let dbs = [striped_db("a", 40, 1), striped_db("b", 40, 2)];
        let ips = sample_ips(500);
        let view = ResolvedView::build_with(&dbs, &ips, &Pool::new(2));
        for (d, db) in dbs.iter().enumerate() {
            for (i, ip) in ips.iter().enumerate() {
                let expanded = view.record(d, i).map(|c| c.to_record(view.interner()));
                assert_eq!(expanded, db.lookup(*ip), "db {d} ip {ip}");
            }
        }
    }

    #[test]
    fn v21_views_are_identical_across_threads_and_image_sources() {
        // The multi-threaded resolve default rests on this: a view
        // built over v2.1 root-table readers — the batched frontier
        // walk, not the per-address loop — must be byte-identical at
        // 1, 2, and 8 threads, and a file-backed image must answer
        // exactly like the heap-backed bytes it was written from.
        use routergeo_db::rgdb2::{self, Rgdb2Reader};
        use routergeo_db::FileImage;
        use routergeo_net::Prefix;

        let sources = [striped_db("a", 120, 1), striped_db("b", 120, 3)];
        let images: Vec<_> = sources
            .iter()
            .map(|db| {
                let entries: Vec<_> = db
                    .iter()
                    .flat_map(|(start, end, rec)| {
                        Prefix::cover_range(start, end)
                            .into_iter()
                            .map(move |p| (p, rec))
                    })
                    .collect();
                rgdb2::write_v21(db.name(), entries)
            })
            .collect();
        let heap: Vec<Rgdb2Reader> = images
            .iter()
            .map(|img| Rgdb2Reader::open(img.clone()).unwrap())
            .collect();
        assert!(heap.iter().all(Rgdb2Reader::has_root_table));

        let dir = std::env::temp_dir();
        let paths: Vec<_> = (0..images.len())
            .map(|ix| {
                dir.join(format!(
                    "routergeo-resolve-det-{}-{ix}.rgdb",
                    std::process::id()
                ))
            })
            .collect();
        for (path, img) in paths.iter().zip(&images) {
            std::fs::write(path, img).unwrap();
        }
        let file_backed: Vec<Rgdb2Reader> = paths
            .iter()
            .map(|p| Rgdb2Reader::open(FileImage::load(p).unwrap().into_bytes()).unwrap())
            .collect();
        for path in &paths {
            let _ = std::fs::remove_file(path);
        }

        let ips = sample_ips(10_000);
        let serial = ResolvedView::build_with(&heap, &ips, &Pool::new(1));
        for threads in [2, 8] {
            let parallel = ResolvedView::build_with(&heap, &ips, &Pool::new(threads));
            assert_eq!(
                serial, parallel,
                "v2.1 view differs between 1 and {threads} threads"
            );
        }
        let from_disk = ResolvedView::build_with(&file_backed, &ips, &Pool::new(2));
        assert_eq!(
            serial, from_disk,
            "file-backed v2.1 images must answer exactly like the heap bytes"
        );
        // And the batched path must agree with the in-memory source dbs.
        for (d, db) in sources.iter().enumerate() {
            for (i, ip) in ips.iter().enumerate().step_by(97) {
                let expanded = serial.record(d, i).map(|c| c.to_record(serial.interner()));
                assert_eq!(expanded, db.lookup(*ip), "db {d} ip {ip}");
            }
        }
    }

    #[test]
    fn empty_inputs_build_empty_views() {
        let dbs: [InMemoryDb; 0] = [];
        let view = ResolvedView::build_with(&dbs, &[], &Pool::new(1));
        assert!(view.is_empty());
        assert_eq!(view.db_count(), 0);
        assert!(view.interner().is_empty());
    }
}

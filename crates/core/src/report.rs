//! Text rendering for the benchmark harness: fixed-width tables and CSV.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple fixed-width text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with a title and column headers. Columns default to
    /// left alignment for the first column, right for the rest.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> TextTable {
        let aligns = (0..headers.len())
            .map(|i| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            aligns,
            rows: Vec::new(),
        }
    }

    /// Override column alignments.
    pub fn aligns(mut self, aligns: &[Align]) -> TextTable {
        assert_eq!(aligns.len(), self.headers.len());
        self.aligns = aligns.to_vec();
        self
    }

    /// Append a row. Panics if the column count differs from the headers.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of `&str`s.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let n = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize], aligns: &[Align]| -> String {
            let mut line = String::new();
            for i in 0..n {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                match aligns[i] {
                    Align::Left => {
                        line.push_str(cell);
                        line.push_str(&" ".repeat(widths[i] - cell.len()));
                    }
                    Align::Right => {
                        line.push_str(&" ".repeat(widths[i] - cell.len()));
                        line.push_str(cell);
                    }
                }
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths, &self.aligns));
        let total: usize = widths.iter().sum::<usize>() + 2 * (n - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths, &self.aligns));
        }
        out
    }

    /// Render as a GitHub-flavoured markdown table (title as a heading).
    pub fn to_markdown(&self) -> String {
        let esc = |s: &str| s.replace('|', "\\|");
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "### {}\n", self.title);
        }
        let _ = writeln!(
            out,
            "| {} |",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(" | ")
        );
        let seps: Vec<&str> = self
            .aligns
            .iter()
            .map(|a| match a {
                Align::Left => ":--",
                Align::Right => "--:",
            })
            .collect();
        let _ = writeln!(out, "| {} |", seps.join(" | "));
        for row in &self.rows {
            let _ = writeln!(
                out,
                "| {} |",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(" | ")
            );
        }
        out
    }

    /// Render as CSV (title omitted).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Format a fraction as the paper prints percentages (`29.4%`).
pub fn pct(fraction: f64) -> String {
    routergeo_geo::stats::pct(fraction)
}

/// Render a CDF as an x/y series table for plotting, sampled on a log
/// grid — the console stand-in for the paper's figures.
pub fn cdf_series(
    name: &str,
    cdf: &routergeo_geo::EmpiricalCdf,
    lo_exp: i32,
    hi_exp: i32,
) -> TextTable {
    let mut t = TextTable::new(
        format!("CDF: {name} (n={})", cdf.len()),
        &["distance_km", "fraction_leq"],
    );
    for (x, y) in cdf.series(&routergeo_geo::EmpiricalCdf::log_grid(lo_exp, hi_exp, 2)) {
        t.row(&[format!("{x:.2}"), format!("{y:.4}")]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new("Demo", &["name", "count"]);
        t.row_str(&["alpha", "5"]);
        t.row_str(&["b", "12345"]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5); // title, header, rule, 2 rows
                                    // Right-aligned numbers share their last column.
        let c5 = lines[3].rfind('5').unwrap();
        let c12345 = lines[4].rfind('5').unwrap();
        assert_eq!(c5, c12345);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = TextTable::new("x", &["a", "b"]);
        t.row_str(&["only-one"]);
    }

    #[test]
    fn markdown_renders_with_alignment_row() {
        let mut t = TextTable::new("MD", &["name", "count"]);
        t.row_str(&["a|b", "5"]);
        let md = t.to_markdown();
        assert!(md.starts_with("### MD"));
        assert!(md.contains("| :-- | --: |"));
        assert!(md.contains("a\\|b") || md.contains("a\\|b"), "{md}");
        assert_eq!(md.lines().filter(|l| l.starts_with('|')).count(), 3);
    }

    #[test]
    fn csv_escapes() {
        let mut t = TextTable::new("x", &["a", "b"]);
        t.row_str(&["has,comma", "has\"quote"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn cdf_series_renders() {
        let cdf = routergeo_geo::EmpiricalCdf::new(vec![1.0, 10.0, 100.0, 5000.0]).unwrap();
        let t = cdf_series("test", &cdf, 0, 4);
        assert!(!t.is_empty());
        let s = t.render();
        assert!(s.contains("n=4"));
    }
}

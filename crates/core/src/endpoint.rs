//! Router vs endpoint accuracy — the paper's closing observation.
//!
//! §8: "comparing our router geolocation accuracy results with previous
//! work on databases evaluation suggests databases geolocate routers with
//! less accuracy compared to end hosts." The synthetic world can test that
//! claim directly: end hosts live in stub blocks alongside the homes and
//! offices the vendors' eyeball corpora are built from, while routers —
//! especially backbone routers — live in infrastructure blocks.
//!
//! This module samples synthetic end-host addresses (non-interface hosts
//! inside stub blocks, whose true location is the block's deployment
//! city), evaluates every database on them, and contrasts the result with
//! the router ground truth.

use crate::accuracy::{evaluate_entries, VendorAccuracy};
use crate::groundtruth::{GroundTruth, GtEntry, GtMethod};
use routergeo_db::GeoDatabase;
use routergeo_world::{OperatorKind, World};
use std::net::Ipv4Addr;

/// Sample up to `max` synthetic end-host addresses with their true
/// locations. Hosts are drawn from stub blocks at host offsets above the
/// interface range, so none of them is a router interface.
pub fn endpoint_ground_truth(world: &World, max: usize) -> Vec<GtEntry> {
    let mut entries = Vec::new();
    for info in world.plan().blocks() {
        if entries.len() >= max {
            break;
        }
        if world.operator(info.op).kind != OperatorKind::Stub {
            continue;
        }
        // Hosts .200-.250 are never assigned to interfaces by the world
        // generator's sequential fill of small stub PoPs; double-check
        // against the interface index anyway.
        for host in [200u64, 225, 250] {
            let ip = match info.block.nth(host) {
                Some(ip) => ip,
                None => continue,
            };
            if world.find_interface(ip).is_some() {
                continue;
            }
            let city = world.city(info.city);
            entries.push(GtEntry {
                ip,
                coord: city.coord,
                country: city.country,
                rir: Some(info.rir),
                method: GtMethod::RttProximity, // nominal; not used here
                domain: None,
            });
            if entries.len() >= max {
                break;
            }
        }
    }
    entries
}

/// Router-vs-endpoint comparison for one database.
#[derive(Debug, Clone)]
pub struct EndpointComparison {
    /// Database name.
    pub database: String,
    /// Accuracy over the router ground truth.
    pub routers: VendorAccuracy,
    /// Accuracy over the synthetic endpoint sample.
    pub endpoints: VendorAccuracy,
}

impl EndpointComparison {
    /// Country-accuracy gap (endpoints − routers); positive means routers
    /// are harder, as the paper concludes.
    pub fn country_gap(&self) -> f64 {
        self.endpoints.country_accuracy() - self.routers.country_accuracy()
    }

    /// City-accuracy gap (endpoints − routers).
    pub fn city_gap(&self) -> f64 {
        self.endpoints.city_accuracy() - self.routers.city_accuracy()
    }
}

/// Evaluate every database over both populations.
pub fn routers_vs_endpoints<D: GeoDatabase + Sync>(
    dbs: &[D],
    world: &World,
    router_gt: &GroundTruth,
    endpoint_sample: usize,
) -> Vec<EndpointComparison> {
    let endpoints = endpoint_ground_truth(world, endpoint_sample);
    dbs.iter()
        .map(|db| EndpointComparison {
            database: db.name().to_string(),
            routers: evaluate_entries(db, &router_gt.entries),
            endpoints: evaluate_entries(db, &endpoints),
        })
        .collect()
}

/// Sanity helper: true when an address belongs to the world's plan but is
/// not a router interface (i.e. an end host).
pub fn is_endpoint(world: &World, ip: Ipv4Addr) -> bool {
    world.block_info(ip).is_some() && world.find_interface(ip).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use routergeo_db::synth::{build_vendor, SignalWorld, VendorProfile};
    use routergeo_world::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig::small(301))
    }

    #[test]
    fn endpoint_sample_is_hosts_not_interfaces() {
        let w = world();
        let eps = endpoint_ground_truth(&w, 500);
        assert!(eps.len() >= 300, "sample too small: {}", eps.len());
        for e in &eps {
            assert!(is_endpoint(&w, e.ip), "{} is not an endpoint", e.ip);
            // The credited location is the block's deployment city.
            let info = w.block_info(e.ip).unwrap();
            assert_eq!(w.city(info.city).coord, e.coord);
        }
    }

    #[test]
    fn endpoints_are_easier_than_routers_for_every_database() {
        // The paper's §8 claim, tested end to end. Build a small router GT
        // from the transit operators (the hard case) and compare.
        let w = world();
        let signals = SignalWorld::new(&w);
        let dbs: Vec<_> = VendorProfile::all_presets()
            .iter()
            .map(|p| build_vendor(&signals, p))
            .collect();

        // Router population: one interface per transit PoP.
        let mut router_entries = Vec::new();
        for pop in &w.pops {
            if w.operator(pop.op).kind == OperatorKind::Stub {
                continue;
            }
            let Some(rid) = pop.router_ids().next() else {
                continue;
            };
            let r = w.router(rid);
            let Some(idx) = r.interfaces.clone().next() else {
                continue;
            };
            let ip = w.interfaces[idx as usize].ip;
            let city = w.city(pop.city);
            router_entries.push(GtEntry {
                ip,
                coord: city.coord,
                country: city.country,
                rir: w.block_info(ip).map(|b| b.rir),
                method: GtMethod::DnsBased,
                domain: None,
            });
        }
        let router_gt = GroundTruth {
            entries: router_entries,
            overlap: vec![],
            degraded: vec![],
        };
        let cmp = routers_vs_endpoints(&dbs, &w, &router_gt, 1_000);
        assert_eq!(cmp.len(), 4);
        for c in &cmp {
            assert!(
                c.country_gap() > 0.0,
                "{}: routers not harder at country level ({:.3} vs {:.3})",
                c.database,
                c.routers.country_accuracy(),
                c.endpoints.country_accuracy()
            );
        }
        // The registry-fed databases show a much larger gap than
        // NetAcuity, whose hint mining recovers router locations.
        assert!(cmp[0].country_gap() > cmp[3].country_gap());
    }
}

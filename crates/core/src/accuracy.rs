//! Accuracy against ground truth (§5.2, Figures 2–5).
//!
//! Every breakdown slice is tallied from pre-resolved [`ResolvedView`]
//! columns — never the allocating `GeoDatabase::lookup` (enforced by
//! lint RG009). The view is built once over the ground-truth addresses;
//! the per-slice tallies are cheap serial passes that visit entries in
//! ground-truth order, so the Figure 2/5 CDFs see the exact sample
//! sequence the old per-slice re-query path produced.

use crate::groundtruth::{GroundTruth, GtEntry, GtMethod};
use crate::resolve::ResolvedView;
use routergeo_db::GeoDatabase;
use routergeo_geo::stats::ratio;
use routergeo_geo::{CountryCode, EmpiricalCdf, Rir, CITY_RANGE_KM};
use routergeo_pool::Pool;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Accuracy of one database over one set of ground-truth entries.
#[derive(Debug, Clone)]
pub struct VendorAccuracy {
    /// Database name.
    pub database: String,
    /// Ground-truth entries evaluated.
    pub total: usize,
    /// Entries the database has a country for.
    pub country_covered: usize,
    /// Of those, entries where the country matches the ground truth.
    pub country_correct: usize,
    /// Entries the database answers at city level.
    pub city_covered: usize,
    /// Of those, entries within the 40 km city range of the ground truth.
    pub city_correct: usize,
    /// Geolocation-error samples (km) for the city-covered entries —
    /// the Figure 2 CDF for this database.
    pub error_cdf: EmpiricalCdf,
    /// NaN error samples dropped while building [`VendorAccuracy::error_cdf`].
    /// Structurally 0 on healthy runs (errors are great-circle
    /// distances); a non-zero count is surfaced as a figure footer so a
    /// shrunken denominator is never silent.
    pub dropped_nan: usize,
}

impl VendorAccuracy {
    /// Country coverage fraction.
    pub fn country_coverage(&self) -> f64 {
        ratio(self.country_covered, self.total)
    }

    /// Country accuracy among covered entries.
    pub fn country_accuracy(&self) -> f64 {
        ratio(self.country_correct, self.country_covered)
    }

    /// City coverage fraction.
    pub fn city_coverage(&self) -> f64 {
        ratio(self.city_covered, self.total)
    }

    /// City accuracy (≤ 40 km) among city-covered entries.
    pub fn city_accuracy(&self) -> f64 {
        ratio(self.city_correct, self.city_covered)
    }
}

/// Tally one database column over one slice of ground-truth entries.
/// `picks` pairs each entry with its row index in the view; iteration
/// order is the slice order, so the error CDF sample sequence matches
/// the serial loop over the same filter.
fn evaluate_slice(view: &ResolvedView, db: usize, picks: &[(usize, &GtEntry)]) -> VendorAccuracy {
    let mut span = routergeo_obs::span!(
        "core.accuracy",
        database = view.databases()[db],
        entries = picks.len()
    );
    routergeo_obs::counter("accuracy.entries").add(picks.len() as u64);

    let mut total = 0usize;
    let mut country_covered = 0usize;
    let mut country_correct = 0usize;
    let mut city_covered = 0usize;
    let mut city_correct = 0usize;
    let mut errors = Vec::new();
    for (row, e) in picks {
        total += 1;
        let Some(rec) = view.record(db, *row) else {
            continue;
        };
        if let Some(cc) = rec.country {
            country_covered += 1;
            if cc == e.country {
                country_correct += 1;
            }
        }
        if rec.has_city() {
            city_covered += 1;
            let d = rec
                .coord
                .expect("has_city implies coord")
                .distance_km(&e.coord);
            errors.push(d);
            if d <= CITY_RANGE_KM {
                city_correct += 1;
            }
        }
    }

    let error_km = routergeo_obs::histogram("accuracy.error_km");
    for e in &errors {
        if e.is_finite() && *e >= 0.0 {
            // Rounded km in log2 buckets: a deterministic quantity, so
            // the metrics snapshot stays byte-identical across thread
            // counts (entries are visited in ground-truth order).
            error_km.record(e.round() as u64);
        }
    }
    let (error_cdf, dropped_nan) = EmpiricalCdf::from_iter_lossy(errors);
    span.attr("city_covered", city_covered);
    VendorAccuracy {
        database: view.databases()[db].clone(),
        total,
        country_covered,
        country_correct,
        city_covered,
        city_correct,
        error_cdf,
        dropped_nan,
    }
}

/// Evaluate one database over a set of ground-truth entries. Thread
/// count from the environment ([`Pool::from_env`]).
pub fn evaluate_entries<'a, D: GeoDatabase + Sync>(
    db: &D,
    entries: impl IntoIterator<Item = &'a GtEntry>,
) -> VendorAccuracy {
    evaluate_entries_with(db, entries, &Pool::from_env())
}

/// [`evaluate_entries`] on an explicit pool: the entries are resolved
/// once into a single-database [`ResolvedView`] and tallied from the
/// column in entry order, so the Figure 2 CDF sees the same sample
/// sequence the serial loop would produce.
pub fn evaluate_entries_with<'a, D: GeoDatabase + Sync>(
    db: &D,
    entries: impl IntoIterator<Item = &'a GtEntry>,
    pool: &Pool,
) -> VendorAccuracy {
    let list: Vec<&GtEntry> = entries.into_iter().collect();
    let ips: Vec<Ipv4Addr> = list.iter().map(|e| e.ip).collect();
    let view = ResolvedView::build_with(std::slice::from_ref(db), &ips, pool);
    let picks: Vec<(usize, &GtEntry)> = list.into_iter().enumerate().collect();
    evaluate_slice(&view, 0, &picks)
}

/// Full accuracy report: overall, by RIR, by country, by method.
#[derive(Debug)]
pub struct AccuracyReport {
    /// Database names in evaluation order.
    pub databases: Vec<String>,
    /// Overall accuracy per database (Figure 2 + §5.2.1 numbers).
    pub overall: Vec<VendorAccuracy>,
    /// Per-RIR accuracy, `by_rir[db][rir]` with RIRs in Table 1 order
    /// (Figures 3, 5).
    pub by_rir: Vec<Vec<VendorAccuracy>>,
    /// Per-country accuracy for the top-N ground-truth countries
    /// (Figure 4), as `(country, gt_count, per-db accuracy)`.
    pub by_country: Vec<(CountryCode, usize, Vec<VendorAccuracy>)>,
    /// Per-method accuracy, `[DnsBased, RttProximity]` per database
    /// (§5.2.4).
    pub by_method: Vec<[VendorAccuracy; 2]>,
    /// Per-database accuracy over the entries whose RIR annotation
    /// degraded (see `GroundTruth::degraded`). Empty totals on a
    /// healthy run; on a partially-down whois service this is the
    /// bucket the per-RIR breakdown lost.
    pub degraded: Vec<VendorAccuracy>,
    /// Fraction of ground-truth entries with a known RIR — the
    /// degraded-coverage number the §5.2 report prints when < 1.
    pub rir_coverage: f64,
}

/// Evaluate all databases over the full ground truth with every breakdown
/// the paper reports. `top_countries` bounds the Figure 4 x-axis (the
/// paper uses 20). Thread count from the environment
/// ([`Pool::from_env`]).
pub fn evaluate<D: GeoDatabase + Sync>(
    dbs: &[D],
    gt: &GroundTruth,
    top_countries: usize,
) -> AccuracyReport {
    evaluate_with(dbs, gt, top_countries, &Pool::from_env())
}

/// [`evaluate`] on an explicit pool: resolves the ground-truth
/// addresses once into a [`ResolvedView`] and delegates to
/// [`evaluate_from_view`], so the whole report is identical at every
/// thread count.
pub fn evaluate_with<D: GeoDatabase + Sync>(
    dbs: &[D],
    gt: &GroundTruth,
    top_countries: usize,
    pool: &Pool,
) -> AccuracyReport {
    let ips: Vec<Ipv4Addr> = gt.entries.iter().map(|e| e.ip).collect();
    let view = ResolvedView::build_with(dbs, &ips, pool);
    evaluate_from_view(&view, gt, top_countries)
}

/// Produce the full report from a pre-built view whose rows correspond
/// 1:1 (in order) to `gt.entries` — the shared-view entry point the
/// pipeline uses. Each breakdown slice's index list is computed once
/// and reused across databases.
pub fn evaluate_from_view(
    view: &ResolvedView,
    gt: &GroundTruth,
    top_countries: usize,
) -> AccuracyReport {
    assert_eq!(
        view.len(),
        gt.entries.len(),
        "view rows must correspond to ground-truth entries"
    );
    let n = view.db_count();
    let all: Vec<(usize, &GtEntry)> = gt.entries.iter().enumerate().collect();

    let overall: Vec<VendorAccuracy> = (0..n).map(|d| evaluate_slice(view, d, &all)).collect();

    let rir_picks: Vec<Vec<(usize, &GtEntry)>> = Rir::TABLE1_ORDER
        .iter()
        .map(|rir| {
            all.iter()
                .filter(|(_, e)| e.rir == Some(*rir))
                .copied()
                .collect()
        })
        .collect();
    let by_rir = (0..n)
        .map(|d| {
            rir_picks
                .iter()
                .map(|picks| evaluate_slice(view, d, picks))
                .collect()
        })
        .collect();

    // Figure 4: top countries by ground-truth address count.
    let mut counts: HashMap<CountryCode, usize> = HashMap::new();
    for e in &gt.entries {
        *counts.entry(e.country).or_default() += 1;
    }
    let mut ranked: Vec<(CountryCode, usize)> = counts.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(top_countries);
    let by_country = ranked
        .into_iter()
        .map(|(cc, count)| {
            let picks: Vec<(usize, &GtEntry)> = all
                .iter()
                .filter(|(_, e)| e.country == cc)
                .copied()
                .collect();
            let accs = (0..n).map(|d| evaluate_slice(view, d, &picks)).collect();
            (cc, count, accs)
        })
        .collect();

    let method_picks: Vec<Vec<(usize, &GtEntry)>> = [GtMethod::DnsBased, GtMethod::RttProximity]
        .iter()
        .map(|m| {
            all.iter()
                .filter(|(_, e)| e.method == *m)
                .copied()
                .collect()
        })
        .collect();
    let by_method = (0..n)
        .map(|d| {
            [
                evaluate_slice(view, d, &method_picks[0]),
                evaluate_slice(view, d, &method_picks[1]),
            ]
        })
        .collect();

    let degraded_set: std::collections::HashSet<Ipv4Addr> = gt.degraded.iter().copied().collect();
    let degraded_picks: Vec<(usize, &GtEntry)> = all
        .iter()
        .filter(|(_, e)| degraded_set.contains(&e.ip))
        .copied()
        .collect();
    let degraded = (0..n)
        .map(|d| evaluate_slice(view, d, &degraded_picks))
        .collect();
    let with_rir = gt.entries.iter().filter(|e| e.rir.is_some()).count();
    let rir_coverage = ratio(with_rir, gt.entries.len());

    AccuracyReport {
        databases: view.databases().to_vec(),
        overall,
        by_rir,
        by_country,
        by_method,
        degraded,
        rir_coverage,
    }
}

/// The three registry-fed databases' common-wrong-answer count (§5.2.2:
/// 2,277 addresses wrong in IP2Location-Lite, MaxMind-GeoLite, and
/// MaxMind-Paid simultaneously, with the same wrong country).
///
/// Resolves the entries once into a compact view — no full
/// `LocationRecord` is ever materialized just to read `.country`.
pub fn common_wrong_country<D: GeoDatabase + Sync>(dbs: &[D; 3], gt: &GroundTruth) -> usize {
    let ips: Vec<Ipv4Addr> = gt.entries.iter().map(|e| e.ip).collect();
    let view = ResolvedView::build(dbs.as_slice(), &ips);
    common_wrong_from_view(&view, [0, 1, 2], gt)
}

/// [`common_wrong_country`] over three columns of a pre-built view whose
/// rows correspond 1:1 (in order) to `gt.entries`.
pub fn common_wrong_from_view(view: &ResolvedView, dbs: [usize; 3], gt: &GroundTruth) -> usize {
    assert_eq!(
        view.len(),
        gt.entries.len(),
        "view rows must correspond to ground-truth entries"
    );
    gt.entries
        .iter()
        .enumerate()
        .filter(|(i, e)| {
            let answer = |d: usize| view.record(dbs[d], *i).and_then(|r| r.country);
            match (answer(0), answer(1), answer(2)) {
                (Some(a), Some(b), Some(c)) => a == b && b == c && a != e.country,
                _ => false,
            }
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use routergeo_db::inmem::{InMemoryDb, InMemoryDbBuilder};
    use routergeo_db::{Granularity, LocationRecord};
    use routergeo_geo::Coordinate;

    fn gt_entry(ip: &str, cc: &str, lat: f64, lon: f64, rir: Rir, method: GtMethod) -> GtEntry {
        GtEntry {
            ip: ip.parse().unwrap(),
            coord: Coordinate::new(lat, lon).unwrap(),
            country: cc.parse().unwrap(),
            rir: Some(rir),
            method,
            domain: None,
        }
    }

    fn simple_db(name: &str, rows: &[(&str, &str, f64, f64)]) -> InMemoryDb {
        let mut b = InMemoryDbBuilder::new(name);
        for (prefix, cc, lat, lon) in rows {
            b.push_prefix(
                prefix.parse().unwrap(),
                LocationRecord {
                    country: Some(cc.parse().unwrap()),
                    region: None,
                    city: Some("X".into()),
                    coord: Some(Coordinate::new(*lat, *lon).unwrap()),
                    granularity: Granularity::Block24,
                },
            );
        }
        b.build().unwrap()
    }

    fn sample_gt() -> GroundTruth {
        GroundTruth {
            entries: vec![
                gt_entry("6.0.0.1", "US", 40.0, -100.0, Rir::Arin, GtMethod::DnsBased),
                gt_entry("6.0.1.1", "CA", 55.0, -100.0, Rir::Arin, GtMethod::DnsBased),
                gt_entry(
                    "31.0.0.1",
                    "DE",
                    51.5,
                    9.5,
                    Rir::RipeNcc,
                    GtMethod::RttProximity,
                ),
            ],
            ..GroundTruth::default()
        }
    }

    #[test]
    fn perfect_database_scores_perfectly() {
        let db = simple_db(
            "perfect",
            &[
                ("6.0.0.0/24", "US", 40.0, -100.0),
                ("6.0.1.0/24", "CA", 55.0, -100.0),
                ("31.0.0.0/24", "DE", 51.5, 9.5),
            ],
        );
        let gt = sample_gt();
        let acc = evaluate_entries(&db, &gt.entries);
        assert_eq!(acc.total, 3);
        assert_eq!(acc.country_accuracy(), 1.0);
        assert_eq!(acc.city_accuracy(), 1.0);
        assert_eq!(acc.country_coverage(), 1.0);
        assert_eq!(acc.error_cdf.len(), 3);
    }

    #[test]
    fn wrong_country_and_distance_counted() {
        // Database sends the Canadian router to the US, 1700+ km away.
        let db = simple_db(
            "biased",
            &[
                ("6.0.0.0/24", "US", 40.0, -100.0),
                ("6.0.1.0/24", "US", 40.0, -100.0),
            ],
        );
        let gt = sample_gt();
        let acc = evaluate_entries(&db, &gt.entries);
        assert_eq!(acc.total, 3);
        assert_eq!(acc.country_covered, 2);
        assert_eq!(acc.country_correct, 1);
        assert_eq!(acc.city_covered, 2);
        assert_eq!(acc.city_correct, 1);
        assert!(acc.error_cdf.max().unwrap() > 1000.0);
    }

    #[test]
    fn report_breaks_down_by_rir_and_method() {
        let db = simple_db("d", &[("6.0.0.0/24", "US", 40.0, -100.0)]);
        let gt = sample_gt();
        let report = evaluate(&[db], &gt, 20);
        assert_eq!(report.overall.len(), 1);
        // ARIN slice has 2 entries, RIPE 1.
        assert_eq!(report.by_rir[0][0].total, 2);
        assert_eq!(report.by_rir[0][4].total, 1);
        assert_eq!(report.by_rir[0][2].total, 0); // AFRINIC empty
                                                  // Methods: 2 DNS, 1 RTT.
        assert_eq!(report.by_method[0][0].total, 2);
        assert_eq!(report.by_method[0][1].total, 1);
        // Figure 4 ranking: US/CA/DE with one address each... counts.
        assert_eq!(report.by_country.len(), 3);
    }

    #[test]
    fn degraded_entries_form_their_own_report_slice() {
        let db = simple_db("d", &[("6.0.0.0/24", "US", 40.0, -100.0)]);
        let mut gt = sample_gt();
        // Simulate a failed RIR annotation for the Canadian entry.
        gt.entries[1].rir = None;
        gt.degraded = vec![gt.entries[1].ip];
        let report = evaluate(&[db], &gt, 20);
        // The degraded entry left the per-RIR breakdown (ARIN down to 1)…
        assert_eq!(report.by_rir[0][0].total, 1);
        // …and landed in the degraded bucket instead of vanishing.
        assert_eq!(report.degraded[0].total, 1);
        assert!((report.rir_coverage - 2.0 / 3.0).abs() < 1e-12);
        // Healthy ground truth reports full coverage and an empty bucket.
        let clean = evaluate(
            &[simple_db("d", &[("6.0.0.0/24", "US", 40.0, -100.0)])],
            &sample_gt(),
            20,
        );
        assert_eq!(clean.rir_coverage, 1.0);
        assert_eq!(clean.degraded[0].total, 0);
    }

    #[test]
    fn common_wrong_requires_all_three_to_agree_on_wrong() {
        let gt = sample_gt();
        let wrong_us = simple_db("w1", &[("6.0.1.0/24", "US", 40.0, -100.0)]);
        let wrong_us2 = simple_db("w2", &[("6.0.1.0/24", "US", 41.0, -100.0)]);
        let right = simple_db("r", &[("6.0.1.0/24", "CA", 55.0, -100.0)]);
        assert_eq!(
            common_wrong_country(&[&wrong_us, &wrong_us2, &wrong_us], &gt),
            1
        );
        assert_eq!(
            common_wrong_country(&[&wrong_us, &wrong_us2, &right], &gt),
            0
        );
    }

    #[test]
    fn uncovered_entries_do_not_poison_accuracy() {
        let db = simple_db("sparse", &[("6.0.0.0/24", "US", 40.0, -100.0)]);
        let gt = sample_gt();
        let acc = evaluate_entries(&db, &gt.entries);
        assert_eq!(acc.country_covered, 1);
        assert_eq!(acc.country_accuracy(), 1.0);
        assert!((acc.country_coverage() - 1.0 / 3.0).abs() < 1e-12);
    }

    /// The pinned old-vs-new check: the view-based report must match a
    /// naive per-entry `lookup` evaluation exactly (tests are outside
    /// RG009's scope, so the naive path can query directly).
    #[test]
    fn view_report_matches_naive_lookup_evaluation() {
        let dbs = [
            simple_db(
                "d1",
                &[
                    ("6.0.0.0/24", "US", 40.0, -100.0),
                    ("6.0.1.0/24", "US", 40.0, -100.0),
                ],
            ),
            simple_db("d2", &[("6.0.1.0/24", "CA", 55.0, -100.0)]),
        ];
        let gt = sample_gt();
        let report = evaluate(&dbs, &gt, 20);
        for (d, db) in dbs.iter().enumerate() {
            let mut covered = 0usize;
            let mut correct = 0usize;
            let mut errors = Vec::new();
            for e in &gt.entries {
                let Some(rec) = db.lookup(e.ip) else { continue };
                if let Some(cc) = rec.country {
                    covered += 1;
                    if cc == e.country {
                        correct += 1;
                    }
                }
                if rec.has_city() {
                    errors.push(rec.coord.unwrap().distance_km(&e.coord));
                }
            }
            assert_eq!(report.overall[d].country_covered, covered);
            assert_eq!(report.overall[d].country_correct, correct);
            assert_eq!(report.overall[d].error_cdf.len(), errors.len());
        }

        // The majority-vote count matches a naive triple-lookup loop.
        let trio = [&dbs[0], &dbs[0], &dbs[1]];
        let naive = gt
            .entries
            .iter()
            .filter(|e| {
                let answers: Vec<Option<CountryCode>> = trio
                    .iter()
                    .map(|d| d.lookup(e.ip).and_then(|r| r.country))
                    .collect();
                matches!(
                    (&answers[0], &answers[1], &answers[2]),
                    (Some(a), Some(b), Some(c)) if a == b && b == c && *a != e.country
                )
            })
            .count();
        assert_eq!(common_wrong_country(&trio, &gt), naive);
    }
}

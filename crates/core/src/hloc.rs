//! HLOC-style hint verification (related work [27], Scheitle et al.):
//! cross-check DNS location hints against latency constraints.
//!
//! A decoded hostname hint claims a location; every RTT measurement to the
//! same address bounds where the address can physically be. A hint whose
//! claimed location violates a constraint is *refuted* — exactly how stale
//! hostnames (the §3.1 churn problem) are caught in practice. Hints with
//! no tight-enough measurements stay *unverifiable*.

use routergeo_dns::rules::geolocate_interface;
use routergeo_dns::RuleEngine;
use routergeo_geo::Coordinate;
use routergeo_rtt::cbg::{collect_constraints, Constraint};
use routergeo_trace::TracerouteRecord;
use routergeo_world::World;
use std::net::Ipv4Addr;

/// Outcome of verifying one hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HintVerdict {
    /// Every constraint is satisfied by the claimed location.
    Confirmed,
    /// At least one constraint is violated beyond the slack.
    Refuted,
    /// No latency constraints available for the address.
    Unverifiable,
}

/// Check a claimed location against distance constraints.
///
/// `slack_km` absorbs intra-city scatter: the hint names a city centre
/// while the constraint bounds the router itself.
pub fn verify_location(
    claimed: &Coordinate,
    constraints: &[Constraint],
    slack_km: f64,
) -> HintVerdict {
    if constraints.is_empty() {
        return HintVerdict::Unverifiable;
    }
    for c in constraints {
        if c.at.distance_km(claimed) > c.radius_km + slack_km {
            return HintVerdict::Refuted;
        }
    }
    HintVerdict::Confirmed
}

/// Aggregate verification results over a set of hint-bearing addresses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HlocReport {
    /// Addresses whose hostname decoded to a location.
    pub decoded: usize,
    /// Hints consistent with every latency constraint.
    pub confirmed: usize,
    /// Hints contradicted by latency.
    pub refuted: usize,
    /// Hints without usable constraints.
    pub unverifiable: usize,
    /// Refuted addresses (for inspection).
    pub refuted_addrs: Vec<Ipv4Addr>,
}

impl HlocReport {
    /// Fraction of verifiable hints that were confirmed.
    pub fn confirmation_rate(&self) -> f64 {
        routergeo_geo::stats::ratio(self.confirmed, self.confirmed + self.refuted)
    }
}

/// Verify every decodable interface hint against constraints mined from
/// measurement records. `hostname_of` lets the caller substitute evolved
/// (churned) hostnames; pass `None` to use the world's current rDNS.
pub fn verify_hints(
    world: &World,
    engine: &RuleEngine,
    records: &[TracerouteRecord],
    max_rtt_ms: f64,
    slack_km: f64,
    hostname_of: Option<&dyn Fn(routergeo_world::InterfaceId) -> Option<String>>,
) -> HlocReport {
    let constraints = collect_constraints(world, records, max_rtt_ms);
    let mut report = HlocReport::default();
    for (i, _iface) in world.interfaces.iter().enumerate() {
        let id = routergeo_world::InterfaceId::from_index(i);
        let decoded = match hostname_of {
            Some(f) => f(id).and_then(|name| engine.decode(&name)),
            None => geolocate_interface(world, engine, id),
        };
        let Some(city) = decoded else { continue };
        report.decoded += 1;
        let claimed = world.city(city).coord;
        let ip = world.interfaces[i].ip;
        let cs = constraints.get(&ip).map(Vec::as_slice).unwrap_or(&[]);
        match verify_location(&claimed, cs, slack_km) {
            HintVerdict::Confirmed => report.confirmed += 1,
            HintVerdict::Refuted => {
                report.refuted += 1;
                report.refuted_addrs.push(ip);
            }
            HintVerdict::Unverifiable => report.unverifiable += 1,
        }
    }
    report.refuted_addrs.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use routergeo_dns::{ChurnConfig, ChurnModel, ChurnOutcome};
    use routergeo_trace::{AtlasBuiltins, AtlasConfig, Topology};
    use routergeo_world::{World, WorldConfig};

    fn c(lat: f64, lon: f64) -> Coordinate {
        Coordinate::new(lat, lon).unwrap()
    }

    #[test]
    fn verdict_logic() {
        let claim = c(50.0, 8.0);
        // Constraint satisfied: landmark 30 km away, radius 50 km.
        let near = Constraint {
            at: c(50.0, 8.4),
            radius_km: 50.0,
        };
        // Constraint violated: landmark 1,000+ km away, radius 50 km.
        let far = Constraint {
            at: c(40.0, 8.0),
            radius_km: 50.0,
        };
        assert_eq!(
            verify_location(&claim, &[], 25.0),
            HintVerdict::Unverifiable
        );
        assert_eq!(
            verify_location(&claim, &[near], 25.0),
            HintVerdict::Confirmed
        );
        assert_eq!(
            verify_location(&claim, &[near, far], 25.0),
            HintVerdict::Refuted
        );
    }

    #[test]
    fn fresh_hints_are_confirmed_stale_hints_refuted() {
        let w = World::generate(WorldConfig::tiny(601));
        let topo = Topology::build(&w);
        let records = AtlasBuiltins::new(
            &w,
            &topo,
            AtlasConfig {
                seed: 6,
                targets: 6,
                instances_per_target: 4,
            },
        )
        .run();
        let engine = RuleEngine::with_gt_rules(&w);

        // Current (truthful) hostnames: verifiable hints must be almost
        // entirely confirmed.
        let fresh = verify_hints(&w, &engine, &records, 20.0, 30.0, None);
        assert!(fresh.decoded > 100, "decoded {}", fresh.decoded);
        // Most verifiable fresh hints confirm; the refuted tail comes from
        // *moved probes* acting as bad landmarks (the same §3.2 problem the
        // paper's QA targets — HLOC inherits it).
        assert!(
            fresh.confirmation_rate() > 0.75,
            "fresh hints refuted: {fresh:?}"
        );

        // Churned hostnames: the moved ones now carry stale hints; the
        // confirmation rate must drop measurably.
        let model = ChurnModel::new(&w, ChurnConfig::default());
        let churned = |id: routergeo_world::InterfaceId| -> Option<String> {
            match model.evolve(id) {
                ChurnOutcome::Same(h)
                | ChurnOutcome::RenamedSameLocation(h)
                | ChurnOutcome::HintLost(h) => Some(h),
                // The address kept its OLD hostname but the router moved:
                // model the § 3.1 failure by returning the original name
                // for moved interfaces.
                ChurnOutcome::Moved(h, _) => Some(h),
                ChurnOutcome::Gone => None,
            }
        };
        let evolved = verify_hints(&w, &engine, &records, 20.0, 30.0, Some(&churned));
        assert!(
            evolved.confirmation_rate() <= fresh.confirmation_rate(),
            "churn did not reduce confirmation: {} vs {}",
            evolved.confirmation_rate(),
            fresh.confirmation_rate()
        );
    }

    #[test]
    fn planted_stale_hint_is_refuted() {
        // Decode every interface to a fixed distant city: any address with
        // tight constraints must refute it.
        let w = World::generate(WorldConfig::tiny(602));
        let topo = Topology::build(&w);
        let records = AtlasBuiltins::new(
            &w,
            &topo,
            AtlasConfig {
                seed: 7,
                targets: 5,
                instances_per_target: 3,
            },
        )
        .run();
        let constraints = collect_constraints(&w, &records, 5.0);
        let mut refuted = 0usize;
        let mut checked = 0usize;
        for (ip, cs) in &constraints {
            let Some(router) = w.router_of_ip(*ip) else {
                continue;
            };
            // Claim a location ~2,000 km away from the true router.
            let claim = routergeo_geo::distance::destination(&router.coord, 90.0, 2_000.0);
            checked += 1;
            if verify_location(&claim, cs, 30.0) == HintVerdict::Refuted {
                refuted += 1;
            }
        }
        assert!(checked > 50);
        assert!(
            refuted * 10 >= checked * 8,
            "only {refuted}/{checked} planted lies refuted"
        );
    }
}

//! Majority-vote evaluation — the methodology of the prior work the paper
//! contrasts itself against (§7: Huffaker et al.'s Geocompare and Shavitt &
//! Zilberman both score databases against a majority vote *of the
//! databases themselves* rather than against independent ground truth).
//!
//! Implementing it lets the harness quantify the paper's headline caveat —
//! "agreement among the databases does not imply correctness" — directly:
//! a database can agree beautifully with the majority while the majority
//! itself is wrong (all registry-fed databases share the same upstream).

use crate::groundtruth::GroundTruth;
use routergeo_db::GeoDatabase;
use routergeo_geo::stats::ratio;
use routergeo_geo::{Coordinate, CountryCode, CITY_RANGE_KM};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// The majority's verdict for one address.
#[derive(Debug, Clone, PartialEq)]
pub struct MajorityLocation {
    /// Country agreed by the plurality of databases (ties → none).
    pub country: Option<CountryCode>,
    /// Number of databases voting for that country.
    pub votes: usize,
    /// Representative coordinates: the medoid of the city-level answers
    /// that lie within the city range of at least half of them.
    pub coord: Option<Coordinate>,
}

/// Compute the majority location for one address across databases.
pub fn majority_location<D: GeoDatabase>(dbs: &[D], ip: Ipv4Addr) -> MajorityLocation {
    let records: Vec<_> = dbs.iter().filter_map(|d| d.lookup(ip)).collect();

    // Country: plurality vote, ties disqualify.
    let mut counts: HashMap<CountryCode, usize> = HashMap::new();
    for r in &records {
        if let Some(cc) = r.country {
            *counts.entry(cc).or_default() += 1;
        }
    }
    let mut ranked: Vec<(CountryCode, usize)> = counts.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let (country, votes) = match ranked.as_slice() {
        [] => (None, 0),
        [only] => (Some(only.0), only.1),
        [first, second, ..] if first.1 > second.1 => (Some(first.0), first.1),
        [first, ..] => (None, first.1), // tie
    };

    // Coordinates: medoid of city-level answers — the answer minimizing
    // total distance to the others — provided it sits within the city
    // range of at least half of them.
    let coords: Vec<Coordinate> = records
        .iter()
        .filter(|r| r.has_city())
        .filter_map(|r| r.coord)
        .collect();
    let coord = if coords.len() >= 2 {
        coords
            .iter()
            .map(|c| {
                let total: f64 = coords.iter().map(|o| c.distance_km(o)).sum();
                let near = coords
                    .iter()
                    .filter(|o| c.distance_km(o) <= CITY_RANGE_KM)
                    .count();
                (c, total, near)
            })
            .filter(|(_, _, near)| *near * 2 >= coords.len())
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(c, _, _)| *c)
    } else {
        None
    };

    MajorityLocation {
        country,
        votes,
        coord,
    }
}

/// Scoring a database against the majority vs against the ground truth.
#[derive(Debug, Clone)]
pub struct MajorityComparison {
    /// Database name.
    pub database: String,
    /// Addresses with both a database answer and a majority country.
    pub scored: usize,
    /// Agreement with the majority's country.
    pub agrees_with_majority: usize,
    /// Correct per the actual ground truth (same population).
    pub correct_per_truth: usize,
    /// Addresses where the database agrees with the majority **and** both
    /// are wrong — the blind spot majority-vote evaluation cannot see.
    pub agree_but_wrong: usize,
}

impl MajorityComparison {
    /// Apparent accuracy under majority-vote methodology.
    pub fn apparent_accuracy(&self) -> f64 {
        ratio(self.agrees_with_majority, self.scored)
    }

    /// True accuracy on the same population.
    pub fn true_accuracy(&self) -> f64 {
        ratio(self.correct_per_truth, self.scored)
    }

    /// How much majority-vote evaluation overstates accuracy.
    pub fn overstatement(&self) -> f64 {
        self.apparent_accuracy() - self.true_accuracy()
    }
}

/// Score every database both ways over the ground-truth addresses.
pub fn compare_against_majority<D: GeoDatabase>(
    dbs: &[D],
    gt: &GroundTruth,
) -> Vec<MajorityComparison> {
    let mut out: Vec<MajorityComparison> = dbs
        .iter()
        .map(|d| MajorityComparison {
            database: d.name().to_string(),
            scored: 0,
            agrees_with_majority: 0,
            correct_per_truth: 0,
            agree_but_wrong: 0,
        })
        .collect();

    for e in &gt.entries {
        let majority = majority_location(dbs, e.ip);
        let Some(maj_cc) = majority.country else {
            continue;
        };
        for (i, db) in dbs.iter().enumerate() {
            let Some(cc) = db.lookup(e.ip).and_then(|r| r.country) else {
                continue;
            };
            out[i].scored += 1;
            let agrees = cc == maj_cc;
            let correct = cc == e.country;
            if agrees {
                out[i].agrees_with_majority += 1;
            }
            if correct {
                out[i].correct_per_truth += 1;
            }
            if agrees && !correct {
                out[i].agree_but_wrong += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groundtruth::{GtEntry, GtMethod};
    use routergeo_db::inmem::{InMemoryDb, InMemoryDbBuilder};
    use routergeo_db::{Granularity, LocationRecord};
    use routergeo_geo::Rir;

    fn db(name: &str, cc: &str, lat: f64) -> InMemoryDb {
        let mut b = InMemoryDbBuilder::new(name);
        b.push_prefix(
            "6.0.0.0/24".parse().unwrap(),
            LocationRecord {
                country: Some(cc.parse().unwrap()),
                region: None,
                city: Some("X".into()),
                coord: Some(Coordinate::new(lat, -100.0).unwrap()),
                granularity: Granularity::Block24,
            },
        );
        b.build().unwrap()
    }

    fn gt(cc: &str) -> GroundTruth {
        GroundTruth {
            entries: vec![GtEntry {
                ip: "6.0.0.1".parse().unwrap(),
                coord: Coordinate::new(55.0, -100.0).unwrap(),
                country: cc.parse().unwrap(),
                rir: Some(Rir::Arin),
                method: GtMethod::DnsBased,
                domain: None,
            }],
            overlap: vec![],
            degraded: vec![],
        }
    }

    #[test]
    fn plurality_country_wins() {
        let dbs = vec![
            db("a", "US", 40.0),
            db("b", "US", 40.1),
            db("c", "CA", 55.0),
        ];
        let m = majority_location(&dbs, "6.0.0.1".parse().unwrap());
        assert_eq!(m.country.unwrap().as_str(), "US");
        assert_eq!(m.votes, 2);
        // Medoid of the two co-located US answers.
        let c = m.coord.unwrap();
        assert!((c.lat() - 40.0).abs() < 0.2);
    }

    #[test]
    fn ties_produce_no_majority() {
        let dbs = vec![db("a", "US", 40.0), db("b", "CA", 55.0)];
        let m = majority_location(&dbs, "6.0.0.1".parse().unwrap());
        assert_eq!(m.country, None);
    }

    #[test]
    fn missing_records_do_not_vote() {
        let empty = InMemoryDbBuilder::new("empty").build().unwrap();
        let dbs = vec![db("a", "US", 40.0), empty];
        let m = majority_location(&dbs, "6.0.0.1".parse().unwrap());
        assert_eq!(m.country.unwrap().as_str(), "US");
        assert_eq!(m.votes, 1);
    }

    #[test]
    fn majority_can_be_confidently_wrong() {
        // Three databases copy the same wrong registry answer (US); the
        // truth is Canada. Majority methodology scores them 100%;
        // ground-truth methodology scores them 0%.
        let dbs = vec![
            db("a", "US", 40.0),
            db("b", "US", 40.0),
            db("c", "US", 40.1),
        ];
        let cmp = compare_against_majority(&dbs, &gt("CA"));
        for c in &cmp {
            assert_eq!(c.apparent_accuracy(), 1.0, "{c:?}");
            assert_eq!(c.true_accuracy(), 0.0);
            assert_eq!(c.agree_but_wrong, 1);
            assert_eq!(c.overstatement(), 1.0);
        }
    }

    #[test]
    fn dissenter_scores_worse_under_majority_even_when_right() {
        // Two wrong databases outvote the one correct one: the correct
        // database gets a *lower* apparent accuracy than the wrong ones.
        let dbs = vec![
            db("a", "US", 40.0),
            db("b", "US", 40.0),
            db("c", "CA", 55.0),
        ];
        let cmp = compare_against_majority(&dbs, &gt("CA"));
        assert_eq!(cmp[2].apparent_accuracy(), 0.0); // right but outvoted
        assert_eq!(cmp[2].true_accuracy(), 1.0);
        assert_eq!(cmp[0].apparent_accuracy(), 1.0); // wrong but conformist
        assert_eq!(cmp[0].true_accuracy(), 0.0);
    }
}

//! Coverage: what fraction of an address set a database can answer for,
//! at country and at city level (§5.1, §5.2.1).

use routergeo_db::GeoDatabase;
use routergeo_geo::stats::ratio;
use std::net::Ipv4Addr;

/// Coverage of one database over one address set.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport {
    /// Database display name.
    pub database: String,
    /// Addresses queried.
    pub total: usize,
    /// Addresses with any record.
    pub with_record: usize,
    /// Addresses with a country.
    pub with_country: usize,
    /// Addresses with city-level resolution.
    pub with_city: usize,
}

impl CoverageReport {
    /// Country-level coverage fraction.
    pub fn country_coverage(&self) -> f64 {
        ratio(self.with_country, self.total)
    }

    /// City-level coverage fraction.
    pub fn city_coverage(&self) -> f64 {
        ratio(self.with_city, self.total)
    }
}

/// Measure coverage of `db` over `ips`.
pub fn coverage<D: GeoDatabase>(db: &D, ips: &[Ipv4Addr]) -> CoverageReport {
    let mut with_record = 0usize;
    let mut with_country = 0usize;
    let mut with_city = 0usize;
    for ip in ips {
        let Some(rec) = db.lookup(*ip) else { continue };
        with_record += 1;
        if rec.has_country() {
            with_country += 1;
        }
        if rec.has_city() {
            with_city += 1;
        }
    }
    CoverageReport {
        database: db.name().to_string(),
        total: ips.len(),
        with_record,
        with_country,
        with_city,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routergeo_db::inmem::InMemoryDbBuilder;
    use routergeo_db::{Granularity, LocationRecord};
    use routergeo_geo::Coordinate;

    #[test]
    fn counts_resolutions_separately() {
        let mut b = InMemoryDbBuilder::new("t");
        b.push_prefix(
            "6.0.0.0/24".parse().unwrap(),
            LocationRecord {
                country: Some("US".parse().unwrap()),
                region: None,
                city: Some("X".into()),
                coord: Some(Coordinate::new(1.0, 1.0).unwrap()),
                granularity: Granularity::Block24,
            },
        );
        b.push_prefix(
            "6.0.1.0/24".parse().unwrap(),
            LocationRecord::country_level("US".parse().unwrap(), Granularity::Aggregate),
        );
        let db = b.build().unwrap();
        let ips: Vec<Ipv4Addr> = vec![
            "6.0.0.1".parse().unwrap(),
            "6.0.1.1".parse().unwrap(),
            "9.9.9.9".parse().unwrap(),
        ];
        let rep = coverage(&db, &ips);
        assert_eq!(rep.total, 3);
        assert_eq!(rep.with_record, 2);
        assert_eq!(rep.with_country, 2);
        assert_eq!(rep.with_city, 1);
        assert!((rep.country_coverage() - 2.0 / 3.0).abs() < 1e-12);
        assert!((rep.city_coverage() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        let db = InMemoryDbBuilder::new("t").build().unwrap();
        let rep = coverage(&db, &[]);
        assert_eq!(rep.total, 0);
        assert_eq!(rep.country_coverage(), 0.0);
        assert_eq!(rep.city_coverage(), 0.0);
    }
}

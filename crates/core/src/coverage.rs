//! Coverage: what fraction of an address set a database can answer for,
//! at country and at city level (§5.1, §5.2.1).
//!
//! The tallies consume a pre-resolved [`ResolvedView`] column — never
//! the allocating `GeoDatabase::lookup` (enforced by lint RG009).

use crate::resolve::ResolvedView;
use routergeo_db::GeoDatabase;
use routergeo_geo::stats::ratio;
use routergeo_pool::Pool;
use std::net::Ipv4Addr;

/// Coverage of one database over one address set.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport {
    /// Database display name.
    pub database: String,
    /// Addresses queried.
    pub total: usize,
    /// Addresses with any record.
    pub with_record: usize,
    /// Addresses with a country.
    pub with_country: usize,
    /// Addresses with city-level resolution.
    pub with_city: usize,
}

impl CoverageReport {
    /// Country-level coverage fraction.
    pub fn country_coverage(&self) -> f64 {
        ratio(self.with_country, self.total)
    }

    /// City-level coverage fraction.
    pub fn city_coverage(&self) -> f64 {
        ratio(self.with_city, self.total)
    }
}

/// Measure coverage of `db` over `ips`. Thread count from the
/// environment ([`Pool::from_env`]).
pub fn coverage<D: GeoDatabase + Sync>(db: &D, ips: &[Ipv4Addr]) -> CoverageReport {
    coverage_with(db, ips, &Pool::from_env())
}

/// [`coverage`] on an explicit pool: the addresses are resolved once
/// into a single-database [`ResolvedView`] (sharded, merged in shard
/// order) and tallied from the column, so the report is identical at
/// every thread count.
pub fn coverage_with<D: GeoDatabase + Sync>(
    db: &D,
    ips: &[Ipv4Addr],
    pool: &Pool,
) -> CoverageReport {
    let view = ResolvedView::build_with(std::slice::from_ref(db), ips, pool);
    coverage_from_view(&view, 0)
}

/// Tally coverage of column `db` of a pre-built view — the shared-view
/// entry point the pipeline uses so every analysis reads the same
/// resolve-once answers.
pub fn coverage_from_view(view: &ResolvedView, db: usize) -> CoverageReport {
    let mut span = routergeo_obs::span!(
        "core.coverage",
        database = view.databases()[db],
        addresses = view.len()
    );
    routergeo_obs::counter("coverage.addresses").add(view.len() as u64);
    let mut report = CoverageReport {
        database: view.databases()[db].clone(),
        total: view.len(),
        with_record: 0,
        with_country: 0,
        with_city: 0,
    };
    for rec in view.column(db).iter().flatten() {
        report.with_record += 1;
        if rec.has_country() {
            report.with_country += 1;
        }
        if rec.has_city() {
            report.with_city += 1;
        }
    }
    routergeo_obs::counter("coverage.with_record").add(report.with_record as u64);
    span.attr("with_record", report.with_record);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use routergeo_db::inmem::InMemoryDbBuilder;
    use routergeo_db::{Granularity, LocationRecord};
    use routergeo_geo::Coordinate;

    #[test]
    fn counts_resolutions_separately() {
        let mut b = InMemoryDbBuilder::new("t");
        b.push_prefix(
            "6.0.0.0/24".parse().unwrap(),
            LocationRecord {
                country: Some("US".parse().unwrap()),
                region: None,
                city: Some("X".into()),
                coord: Some(Coordinate::new(1.0, 1.0).unwrap()),
                granularity: Granularity::Block24,
            },
        );
        b.push_prefix(
            "6.0.1.0/24".parse().unwrap(),
            LocationRecord::country_level("US".parse().unwrap(), Granularity::Aggregate),
        );
        let db = b.build().unwrap();
        let ips: Vec<Ipv4Addr> = vec![
            "6.0.0.1".parse().unwrap(),
            "6.0.1.1".parse().unwrap(),
            "9.9.9.9".parse().unwrap(),
        ];
        let rep = coverage(&db, &ips);
        assert_eq!(rep.total, 3);
        assert_eq!(rep.with_record, 2);
        assert_eq!(rep.with_country, 2);
        assert_eq!(rep.with_city, 1);
        assert!((rep.country_coverage() - 2.0 / 3.0).abs() < 1e-12);
        assert!((rep.city_coverage() - 1.0 / 3.0).abs() < 1e-12);

        // The shared-view entry point reports identically.
        let view = ResolvedView::build(std::slice::from_ref(&db), &ips);
        assert_eq!(coverage_from_view(&view, 0), rep);
    }

    #[test]
    fn empty_input() {
        let db = InMemoryDbBuilder::new("t").build().unwrap();
        let rep = coverage(&db, &[]);
        assert_eq!(rep.total, 0);
        assert_eq!(rep.country_coverage(), 0.0);
        assert_eq!(rep.city_coverage(), 0.0);
    }
}

//! Ground-truth correctness analysis (§3).
//!
//! Two independent pipelines claiming locations for the same addresses
//! should agree; §3.1 checks the DNS-based set against the RTT-proximity
//! set and against a later 1 ms-threshold dataset (Giotsas et al.), and
//! quantifies 16 months of hostname churn. §3.2's probe QA counters live
//! in [`routergeo_rtt::QaReport`]; this module adds the cross-dataset
//! agreement computation used by both sections.

use crate::groundtruth::{GroundTruth, GtMethod};
use routergeo_dns::{ChurnConfig, ChurnModel, ChurnOutcome, RuleEngine};
use routergeo_geo::stats::ratio;
use routergeo_rtt::RttProximityDataset;
use routergeo_world::World;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Agreement between two location claims for common addresses.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OverlapAgreement {
    /// Addresses claimed by both datasets.
    pub common: usize,
    /// …within 10 km.
    pub within_10km: usize,
    /// …within 40 km (the city range).
    pub within_40km: usize,
    /// …within 100 km (the paper's RTT-nearby bound).
    pub within_100km: usize,
}

impl OverlapAgreement {
    /// Fraction within 40 km.
    pub fn frac_within_40km(&self) -> f64 {
        ratio(self.within_40km, self.common)
    }

    /// Fraction within 100 km.
    pub fn frac_within_100km(&self) -> f64 {
        ratio(self.within_100km, self.common)
    }
}

/// Compare two address→coordinate maps on their common addresses.
pub fn overlap_agreement(
    a: &HashMap<Ipv4Addr, routergeo_geo::Coordinate>,
    b: &HashMap<Ipv4Addr, routergeo_geo::Coordinate>,
) -> OverlapAgreement {
    let mut out = OverlapAgreement::default();
    for (ip, ca) in a {
        let Some(cb) = b.get(ip) else { continue };
        out.common += 1;
        let d = ca.distance_km(cb);
        if d <= 10.0 {
            out.within_10km += 1;
        }
        if d <= 40.0 {
            out.within_40km += 1;
        }
        if d <= 100.0 {
            out.within_100km += 1;
        }
    }
    out
}

/// §3.1 first check: DNS-based vs RTT-proximity on their overlap.
pub fn dns_vs_rtt(gt: &GroundTruth, rtt_full: &RttProximityDataset) -> OverlapAgreement {
    let dns: HashMap<_, _> = gt
        .of_method(GtMethod::DnsBased)
        .map(|e| (e.ip, e.coord))
        .collect();
    let rtt: HashMap<_, _> = rtt_full.entries.iter().map(|e| (e.ip, e.coord)).collect();
    overlap_agreement(&dns, &rtt)
}

/// §3.1 second check: the DNS-based set vs an independent, later
/// 1 ms-threshold dataset (the Giotsas et al. comparison: 384 common
/// addresses, 92.45% within 100 km). The 1 ms threshold loosens the
/// distance bound to ~100 km, so "within 100 km" is the compatible band.
pub fn dns_vs_onems(gt: &GroundTruth, onems: &RttProximityDataset) -> OverlapAgreement {
    let dns: HashMap<_, _> = gt
        .of_method(GtMethod::DnsBased)
        .map(|e| (e.ip, e.coord))
        .collect();
    let one: HashMap<_, _> = onems.entries.iter().map(|e| (e.ip, e.coord)).collect();
    overlap_agreement(&dns, &one)
}

/// §3.2 final check: the QA'd 0.5 ms set vs the 1 ms set (paper: 1,661
/// common addresses, 96.8% within 40 km, 97.4% within 100 km).
pub fn rtt_vs_onems(rtt: &RttProximityDataset, onems: &RttProximityDataset) -> OverlapAgreement {
    let a: HashMap<_, _> = rtt.entries.iter().map(|e| (e.ip, e.coord)).collect();
    let b: HashMap<_, _> = onems.entries.iter().map(|e| (e.ip, e.coord)).collect();
    overlap_agreement(&a, &b)
}

/// §3.1 churn outcome tallies over the DNS-based ground truth.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnStats {
    /// Addresses examined (DNS-based ground truth).
    pub total: usize,
    /// Hostname unchanged.
    pub same: usize,
    /// Hostname changed, still decodes to the same location.
    pub changed_same_location: usize,
    /// Hostname changed, decodes to a different location.
    pub changed_moved: usize,
    /// Hostname changed, no decodable hint any more.
    pub changed_hint_lost: usize,
    /// rDNS record gone.
    pub gone: usize,
}

impl ChurnStats {
    /// Total with changed hostnames.
    pub fn changed(&self) -> usize {
        self.changed_same_location + self.changed_moved + self.changed_hint_lost
    }

    /// The paper's headline: fraction of all DNS-based addresses whose
    /// location moved over the interval (7.4% over 16 months).
    pub fn moved_fraction(&self) -> f64 {
        ratio(self.changed_moved, self.total)
    }
}

/// Apply the churn model to every DNS-based ground-truth address and
/// verify the new hostnames against the rules, tallying §3.1's outcomes.
pub fn churn_stats(
    world: &World,
    engine: &RuleEngine,
    gt: &GroundTruth,
    config: ChurnConfig,
) -> ChurnStats {
    let model = ChurnModel::new(world, config);
    let mut stats = ChurnStats::default();
    for e in gt.of_method(GtMethod::DnsBased) {
        let Some(iface) = world.find_interface(e.ip) else {
            continue;
        };
        stats.total += 1;
        match model.evolve(iface) {
            ChurnOutcome::Same(_) => stats.same += 1,
            ChurnOutcome::Gone => stats.gone += 1,
            ChurnOutcome::RenamedSameLocation(name) => {
                // Confirm with the rules, as the paper does.
                match engine.decode(&name) {
                    Some(city) if world.city(city).coord == e.coord => {
                        stats.changed_same_location += 1
                    }
                    Some(_) => stats.changed_moved += 1,
                    None => stats.changed_hint_lost += 1,
                }
            }
            ChurnOutcome::Moved(name, _) => match engine.decode(&name) {
                Some(city) if world.city(city).coord == e.coord => stats.changed_same_location += 1,
                Some(_) => stats.changed_moved += 1,
                None => stats.changed_hint_lost += 1,
            },
            ChurnOutcome::HintLost(_) => stats.changed_hint_lost += 1,
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use routergeo_cymru::MappingService;
    use routergeo_geo::Coordinate;
    use routergeo_world::WorldConfig;

    #[test]
    fn overlap_agreement_buckets() {
        let c = |lat: f64| Coordinate::new(lat, 0.0).unwrap();
        let ip = |s: &str| s.parse::<Ipv4Addr>().unwrap();
        let a: HashMap<_, _> = vec![
            (ip("1.0.0.1"), c(0.0)),
            (ip("1.0.0.2"), c(0.0)),
            (ip("1.0.0.3"), c(0.0)),
            (ip("9.0.0.9"), c(0.0)),
        ]
        .into_iter()
        .collect();
        let b: HashMap<_, _> = vec![
            (ip("1.0.0.1"), c(0.05)), // ~5.6 km
            (ip("1.0.0.2"), c(0.3)),  // ~33 km
            (ip("1.0.0.3"), c(0.8)),  // ~89 km
            (ip("8.0.0.8"), c(0.0)),
        ]
        .into_iter()
        .collect();
        let agg = overlap_agreement(&a, &b);
        assert_eq!(agg.common, 3);
        assert_eq!(agg.within_10km, 1);
        assert_eq!(agg.within_40km, 2);
        assert_eq!(agg.within_100km, 3);
        assert!((agg.frac_within_40km() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn churn_stats_sum_to_total() {
        let w = World::generate(WorldConfig::small(221));
        let engine = RuleEngine::with_gt_rules(&w);
        let whois = MappingService::build(&w);
        let dns = GroundTruth::dns_based(&w, &engine, &whois, 0.05);
        let gt = GroundTruth::combine(dns, vec![]);
        let stats = churn_stats(&w, &engine, &gt, ChurnConfig::default());
        assert!(stats.total > 300, "need entries, got {}", stats.total);
        assert_eq!(
            stats.total,
            stats.same + stats.changed() + stats.gone,
            "{stats:?}"
        );
        // §3.1 shape: ~69% same, ~24% changed, ~7% gone.
        let n = stats.total as f64;
        assert!((stats.same as f64 / n - 0.691).abs() < 0.06, "{stats:?}");
        assert!(
            (stats.changed() as f64 / n - 0.24).abs() < 0.06,
            "{stats:?}"
        );
        // Of the changed, roughly 2/3 keep their location, ~31% move.
        let ch = stats.changed() as f64;
        assert!(
            (stats.changed_same_location as f64 / ch - 0.677).abs() < 0.12,
            "{stats:?}"
        );
        assert!(
            (stats.changed_moved as f64 / ch - 0.308).abs() < 0.12,
            "{stats:?}"
        );
        // Overall moved fraction ≈ 7.4%.
        assert!((stats.moved_fraction() - 0.074).abs() < 0.04, "{stats:?}");
    }
}

//! Cross-database consistency (§5.1, Figure 1).
//!
//! Country-level: fraction of addresses two databases place in the same
//! country, plus the all-database agreement. City-level: the paper
//! compares *coordinates* rather than city names, so each database pair
//! yields a distance distribution over the addresses that are city-level
//! in **all** participating databases (the paper's Figure 1 population).
//!
//! The tallies consume pre-resolved [`ResolvedView`] columns — never
//! the allocating `GeoDatabase::lookup` (enforced by lint RG009). The
//! parallelism lives in the view build; the tally itself is a cheap
//! serial pass over the flat columns, visiting addresses in input
//! order, so the distance CDFs see the exact sample sequence the old
//! per-shard merge produced.

use crate::resolve::ResolvedView;
use routergeo_db::GeoDatabase;
use routergeo_geo::stats::ratio;
use routergeo_geo::{EmpiricalCdf, CITY_RANGE_KM};
use routergeo_pool::Pool;
use std::net::Ipv4Addr;

/// Pairwise and overall consistency over an address set.
#[derive(Debug)]
pub struct ConsistencyReport {
    /// Database names, defining index order for the matrices.
    pub databases: Vec<String>,
    /// Addresses queried.
    pub total: usize,
    /// `country_agree[i][j]`: addresses where databases i and j both have
    /// a country and agree, over addresses where both have a country.
    pub country_agree: Vec<Vec<f64>>,
    /// Addresses where **all** databases have a country and agree.
    pub all_country_agree: usize,
    /// Addresses where all databases have a country.
    pub all_country_covered: usize,
    /// Addresses that are city-level in all databases — Figure 1's
    /// population.
    pub city_in_all: usize,
    /// Pairwise distance CDFs over that population, keyed `(i, j)`, i < j.
    pub pair_distance: Vec<((usize, usize), EmpiricalCdf)>,
    /// NaN distance samples dropped while building the pairwise CDFs,
    /// summed over pairs. Structurally 0 on healthy runs; a non-zero
    /// count is surfaced as a figure footer (like the degraded-RIR
    /// line) instead of silently shrinking the Figure 1 denominators.
    pub dropped_nan: usize,
}

impl ConsistencyReport {
    /// Overall country agreement fraction (the paper's 95.8%).
    pub fn all_agreement(&self) -> f64 {
        ratio(self.all_country_agree, self.all_country_covered)
    }

    /// The CDF for a database pair, if computed.
    pub fn pair(&self, i: usize, j: usize) -> Option<&EmpiricalCdf> {
        let key = (i.min(j), i.max(j));
        self.pair_distance
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, cdf)| cdf)
    }

    /// Fraction of Figure-1 addresses a pair geolocates more than the
    /// city range apart — the paper's "city-level disagreement".
    pub fn pair_disagreement(&self, i: usize, j: usize) -> Option<f64> {
        self.pair(i, j).map(|cdf| cdf.fraction_gt(CITY_RANGE_KM))
    }
}

/// Compute the consistency report for a set of databases over `ips`.
/// Thread count from the environment ([`Pool::from_env`]).
pub fn consistency<D: GeoDatabase + Sync>(dbs: &[D], ips: &[Ipv4Addr]) -> ConsistencyReport {
    consistency_with(dbs, ips, &Pool::from_env())
}

/// [`consistency`] on an explicit pool: resolves the addresses once
/// into a [`ResolvedView`] and tallies from the columns.
pub fn consistency_with<D: GeoDatabase + Sync>(
    dbs: &[D],
    ips: &[Ipv4Addr],
    pool: &Pool,
) -> ConsistencyReport {
    let view = ResolvedView::build_with(dbs, ips, pool);
    consistency_from_view(&view)
}

/// Tally the consistency report from a pre-built view — the shared-view
/// entry point the pipeline uses so consistency reads the same
/// resolve-once answers as coverage and accuracy.
pub fn consistency_from_view(view: &ResolvedView) -> ConsistencyReport {
    let n = view.db_count();
    let mut span = routergeo_obs::span!("core.consistency", databases = n, addresses = view.len());
    routergeo_obs::counter("consistency.addresses").add(view.len() as u64);

    // Every matrix is a flat `n*n` vector keyed `i*n + j` with `i < j`.
    let mut both_have = vec![0usize; n * n];
    let mut agree = vec![0usize; n * n];
    let mut all_have = 0usize;
    let mut all_agree = 0usize;
    let mut city_in_all = 0usize;
    let mut pair_samples: Vec<Vec<f64>> = vec![Vec::new(); n * n];

    let mut countries = Vec::with_capacity(n);
    let mut city_coords = Vec::with_capacity(n);
    for row in 0..view.len() {
        countries.clear();
        city_coords.clear();
        for db in 0..n {
            let rec = view.record(db, row);
            countries.push(rec.and_then(|r| r.country));
            // Figure 1 population: city-level coordinates in every
            // database.
            city_coords.push(rec.filter(|r| r.has_city()).and_then(|r| r.coord));
        }

        for i in 0..n {
            for j in i + 1..n {
                if let (Some(a), Some(b)) = (countries[i], countries[j]) {
                    both_have[i * n + j] += 1;
                    if a == b {
                        agree[i * n + j] += 1;
                    }
                }
            }
        }
        if countries.iter().all(|c| c.is_some()) {
            all_have += 1;
            let first = countries[0];
            if countries.iter().all(|c| *c == first) {
                all_agree += 1;
            }
        }

        if city_coords.iter().all(|c| c.is_some()) {
            city_in_all += 1;
            for i in 0..n {
                for j in i + 1..n {
                    let (a, b) = (&city_coords[i], &city_coords[j]);
                    if let (Some(a), Some(b)) = (a, b) {
                        pair_samples[i * n + j].push(a.distance_km(b));
                    }
                }
            }
        }
    }

    let country_agree = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| {
                    if i == j {
                        1.0
                    } else {
                        let (a, b) = (i.min(j), i.max(j));
                        ratio(agree[a * n + b], both_have[a * n + b])
                    }
                })
                .collect()
        })
        .collect();

    let mut pair_distance = Vec::new();
    let mut dropped_nan = 0usize;
    for i in 0..n {
        for j in i + 1..n {
            let samples = std::mem::take(&mut pair_samples[i * n + j]);
            let (cdf, dropped) = EmpiricalCdf::from_iter_lossy(samples);
            dropped_nan += dropped;
            pair_distance.push(((i, j), cdf));
        }
    }

    span.attr("city_in_all", city_in_all);
    ConsistencyReport {
        databases: view.databases().to_vec(),
        total: view.len(),
        country_agree,
        all_country_agree: all_agree,
        all_country_covered: all_have,
        city_in_all,
        pair_distance,
        dropped_nan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routergeo_db::inmem::{InMemoryDb, InMemoryDbBuilder};
    use routergeo_db::{Granularity, LocationRecord};
    use routergeo_geo::Coordinate;

    fn db(name: &str, specs: &[(&str, &str, f64, f64)]) -> InMemoryDb {
        let mut b = InMemoryDbBuilder::new(name);
        for (prefix, cc, lat, lon) in specs {
            b.push_prefix(
                prefix.parse().unwrap(),
                LocationRecord {
                    country: Some(cc.parse().unwrap()),
                    region: None,
                    city: Some("C".into()),
                    coord: Some(Coordinate::new(*lat, *lon).unwrap()),
                    granularity: Granularity::Block24,
                },
            );
        }
        b.build().unwrap()
    }

    #[test]
    fn perfect_agreement() {
        let a = db("a", &[("6.0.0.0/24", "US", 40.0, -100.0)]);
        let b = db("b", &[("6.0.0.0/24", "US", 40.0, -100.0)]);
        let ips = vec!["6.0.0.1".parse().unwrap()];
        let rep = consistency(&[a, b], &ips);
        assert_eq!(rep.all_agreement(), 1.0);
        assert_eq!(rep.city_in_all, 1);
        assert_eq!(rep.pair_disagreement(0, 1), Some(0.0));
    }

    #[test]
    fn country_disagreement_detected() {
        let a = db("a", &[("6.0.0.0/24", "US", 40.0, -100.0)]);
        let b = db("b", &[("6.0.0.0/24", "CA", 55.0, -100.0)]);
        let ips = vec!["6.0.0.1".parse().unwrap()];
        let rep = consistency(&[a, b], &ips);
        assert_eq!(rep.all_agreement(), 0.0);
        assert_eq!(rep.country_agree[0][1], 0.0);
        // ~1668 km apart → city-level disagreement too.
        assert_eq!(rep.pair_disagreement(0, 1), Some(1.0));
    }

    #[test]
    fn city_population_requires_all_databases() {
        let a = db("a", &[("6.0.0.0/24", "US", 40.0, -100.0)]);
        // b has only country-level for the address.
        let mut bb = InMemoryDbBuilder::new("b");
        bb.push_prefix(
            "6.0.0.0/24".parse().unwrap(),
            LocationRecord::country_level("US".parse().unwrap(), Granularity::Aggregate),
        );
        let b = bb.build().unwrap();
        let ips = vec!["6.0.0.1".parse().unwrap()];
        let rep = consistency(&[a, b], &ips);
        assert_eq!(rep.city_in_all, 0);
        assert!(rep.pair(0, 1).unwrap().is_empty());
        // Country still agrees.
        assert_eq!(rep.country_agree[0][1], 1.0);
    }

    #[test]
    fn missing_records_shrink_denominators() {
        let a = db("a", &[("6.0.0.0/24", "US", 40.0, -100.0)]);
        let b = db("b", &[]); // empty
        let ips = vec!["6.0.0.1".parse().unwrap(), "7.0.0.1".parse().unwrap()];
        let rep = consistency(&[a, b], &ips);
        assert_eq!(rep.all_country_covered, 0);
        assert_eq!(rep.all_agreement(), 0.0);
        assert_eq!(rep.country_agree[0][1], 0.0);
    }

    #[test]
    fn three_way_agreement_counts() {
        let a = db("a", &[("6.0.0.0/24", "US", 40.0, -100.0)]);
        let b = db("b", &[("6.0.0.0/24", "US", 40.1, -100.0)]);
        let c = db("c", &[("6.0.0.0/24", "DE", 51.0, 9.0)]);
        let ips = vec!["6.0.0.1".parse().unwrap()];
        let rep = consistency(&[a, b, c], &ips);
        assert_eq!(rep.all_country_covered, 1);
        assert_eq!(rep.all_country_agree, 0);
        assert_eq!(rep.country_agree[0][1], 1.0);
        assert_eq!(rep.country_agree[0][2], 0.0);
        // a-b are ~11 km apart (same city), a-c across the ocean.
        assert!(rep.pair_disagreement(0, 1).unwrap() < 1e-12);
        assert_eq!(rep.pair_disagreement(0, 2), Some(1.0));
    }

    #[test]
    fn shared_view_matches_direct_entry_point() {
        let a = db(
            "a",
            &[
                ("6.0.0.0/24", "US", 40.0, -100.0),
                ("6.0.1.0/24", "US", 41.0, -100.0),
            ],
        );
        let b = db("b", &[("6.0.0.0/24", "CA", 55.0, -100.0)]);
        let dbs = [a, b];
        let ips: Vec<Ipv4Addr> = vec![
            "6.0.0.1".parse().unwrap(),
            "6.0.1.1".parse().unwrap(),
            "9.9.9.9".parse().unwrap(),
        ];
        let direct = consistency(&dbs, &ips);
        let view = ResolvedView::build(&dbs, &ips);
        let shared = consistency_from_view(&view);
        assert_eq!(shared.country_agree, direct.country_agree);
        assert_eq!(shared.city_in_all, direct.city_in_all);
        assert_eq!(shared.all_country_agree, direct.all_country_agree);
        assert_eq!(
            shared.pair(0, 1).unwrap().len(),
            direct.pair(0, 1).unwrap().len()
        );
    }
}

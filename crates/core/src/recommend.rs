//! The §6 recommendation engine.
//!
//! The paper closes with practical guidance for researchers choosing a
//! database to geolocate routers. Rather than hard-coding its sentences,
//! this module derives each recommendation from the measured metrics with
//! explicit thresholds, so re-running the evaluation under a different
//! world (or a future database) produces honest advice.

use crate::accuracy::AccuracyReport;
use routergeo_geo::stats::pct;
use routergeo_geo::Rir;

/// One recommendation with the evidence behind it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recommendation {
    /// Short rule-of-thumb text.
    pub text: String,
    /// The numbers that triggered it.
    pub evidence: String,
}

/// Derive §6-style recommendations from an accuracy report.
///
/// Expects the report's database order to be the paper's:
/// IP2Location-Lite, MaxMind-GeoLite, MaxMind-Paid, NetAcuity — but keys
/// everything off names so reordering only weakens specific rules.
pub fn recommendations(report: &AccuracyReport) -> Vec<Recommendation> {
    let mut out = Vec::new();
    let find = |name: &str| {
        report
            .databases
            .iter()
            .position(|n| n == name)
            .map(|i| &report.overall[i])
    };

    // 1. Best overall database for routers.
    if let Some((best_idx, best)) = report.overall.iter().enumerate().max_by(|a, b| {
        let score_a = a.1.country_accuracy() * a.1.city_accuracy() * a.1.city_coverage();
        let score_b = b.1.country_accuracy() * b.1.city_accuracy() * b.1.city_coverage();
        score_a.total_cmp(&score_b)
    }) {
        out.push(Recommendation {
            text: format!(
                "If a geolocation database is the only option, use {} to geolocate routers.",
                report.databases[best_idx]
            ),
            evidence: format!(
                "best combined coverage and accuracy: country {} / city {} at {} city coverage",
                pct(best.country_accuracy()),
                pct(best.city_accuracy()),
                pct(best.city_coverage()),
            ),
        });
    }

    // 2. MaxMind city-level caveat.
    if let (Some(geolite), Some(paid)) = (find("MaxMind-GeoLite"), find("MaxMind-Paid")) {
        if paid.city_coverage() < 0.6 {
            out.push(Recommendation {
                text: "Do not rely on MaxMind databases when high city-level accuracy \
                       and coverage are required; city coverage is low."
                    .into(),
                evidence: format!(
                    "city coverage: GeoLite {} / Paid {}",
                    pct(geolite.city_coverage()),
                    pct(paid.city_coverage())
                ),
            });
        }
        if paid.city_coverage() > geolite.city_coverage() {
            out.push(Recommendation {
                text: "Prefer the commercial MaxMind edition over the free one when \
                       city resolution and coverage matter."
                    .into(),
                evidence: format!(
                    "paid improves city coverage {} → {} and accuracy {} → {}",
                    pct(geolite.city_coverage()),
                    pct(paid.city_coverage()),
                    pct(geolite.city_accuracy()),
                    pct(paid.city_accuracy())
                ),
            });
        }
    }

    // 3. IP2Location city-level warning.
    if let Some(ip2) = find("IP2Location-Lite") {
        if ip2.city_accuracy() + 0.05
            < report
                .overall
                .iter()
                .map(|a| a.city_accuracy())
                .fold(0.0, f64::max)
        {
            out.push(Recommendation {
                text: "Do not use IP2Location-Lite when city-level accuracy matters; \
                       its overall city accuracy trails every alternative."
                    .into(),
                evidence: format!("city accuracy {}", pct(ip2.city_accuracy())),
            });
        }
    }

    // 4. Free-tier country-level adequacy.
    let free_ok: Vec<&str> = ["IP2Location-Lite", "MaxMind-GeoLite", "MaxMind-Paid"]
        .iter()
        .filter_map(|n| find(n).map(|a| (n, a)))
        .filter(|(_, a)| a.country_accuracy() >= 0.70)
        .map(|(n, _)| *n)
        .collect();
    if free_ok.len() >= 2 {
        let accs: Vec<String> = free_ok
            .iter()
            .filter_map(|n| find(n).map(|a| format!("{n} {}", pct(a.country_accuracy()))))
            .collect();
        out.push(Recommendation {
            text: "If price is a concern and ~78% country-level accuracy is acceptable, \
                   the registry-fed databases are comparable — but verify your target \
                   countries individually, accuracy is very uneven across them."
                .into(),
            evidence: accs.join(", "),
        });
    }

    // 5. ARIN city-level warning: the worst region for every database.
    let arin_idx = Rir::TABLE1_ORDER
        .iter()
        .position(|r| *r == Rir::Arin)
        .expect("ARIN in order");
    // The paper's metric here is effective city accuracy: the fraction of
    // *all* ARIN ground-truth addresses geolocated within 40 km — low
    // coverage cannot hide behind high conditional accuracy ("only 66% of
    // the ground truth interface addresses there are geolocated to within
    // 40 km", §6).
    let effective =
        |a: &crate::accuracy::VendorAccuracy| routergeo_geo::stats::ratio(a.city_correct, a.total);
    let worst_arin = report
        .by_rir
        .iter()
        .map(|per_db| effective(&per_db[arin_idx]))
        .fold(1.0, f64::min);
    let best_arin = report
        .by_rir
        .iter()
        .map(|per_db| effective(&per_db[arin_idx]))
        .fold(0.0, f64::max);
    if best_arin < 0.8 {
        out.push(Recommendation {
            text: "Do not trust city-level answers for ARIN-registered addresses, \
                   regardless of database."
                .into(),
            evidence: format!(
                "fraction of ARIN ground truth within 40 km ranges {} – {} across databases",
                pct(worst_arin),
                pct(best_arin)
            ),
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::evaluate;
    use crate::groundtruth::{GroundTruth, GtEntry, GtMethod};
    use routergeo_db::inmem::{InMemoryDb, InMemoryDbBuilder};
    use routergeo_db::{Granularity, LocationRecord};
    use routergeo_geo::Coordinate;

    /// Build a toy report where "NetAcuity" dominates and "MaxMind-*" has
    /// low city coverage, then check the headline recommendations.
    fn toy_report() -> AccuracyReport {
        let gt = GroundTruth {
            entries: (0..100u32)
                .map(|i| GtEntry {
                    ip: std::net::Ipv4Addr::from(0x0600_0000 + i * 256 + 1),
                    coord: Coordinate::new(40.0, -100.0).unwrap(),
                    country: "US".parse().unwrap(),
                    rir: Some(Rir::Arin),
                    method: GtMethod::DnsBased,
                    domain: None,
                })
                .collect(),
            overlap: vec![],
            degraded: vec![],
        };
        let city_good = LocationRecord {
            country: Some("US".parse().unwrap()),
            region: None,
            city: Some("X".into()),
            coord: Some(Coordinate::new(40.0, -100.0).unwrap()),
            granularity: Granularity::SubBlock,
        };
        let city_bad = LocationRecord {
            coord: Some(Coordinate::new(30.0, -80.0).unwrap()),
            ..city_good.clone()
        };
        let country_only =
            LocationRecord::country_level("US".parse().unwrap(), Granularity::Aggregate);

        let mk = |name: &str, f: &dyn Fn(u32) -> LocationRecord| -> InMemoryDb {
            let mut b = InMemoryDbBuilder::new(name);
            for i in 0..100u32 {
                let p: routergeo_net::Prefix = format!("6.0.{i}.0/24").parse().unwrap();
                b.push_prefix(p, f(i));
            }
            b.build().unwrap()
        };
        let dbs = vec![
            mk("IP2Location-Lite", &|i| {
                if i % 2 == 0 {
                    city_bad.clone()
                } else {
                    city_good.clone()
                }
            }),
            mk("MaxMind-GeoLite", &|i| {
                if i < 20 {
                    city_good.clone()
                } else {
                    country_only.clone()
                }
            }),
            mk("MaxMind-Paid", &|i| {
                if i < 40 {
                    city_good.clone()
                } else {
                    country_only.clone()
                }
            }),
            mk("NetAcuity", &|i| {
                if i < 75 {
                    city_good.clone()
                } else {
                    city_bad.clone()
                }
            }),
        ];
        evaluate(&dbs, &gt, 20)
    }

    #[test]
    fn netacuity_is_recommended_overall() {
        let recs = recommendations(&toy_report());
        assert!(
            recs.iter().any(|r| r.text.contains("use NetAcuity")),
            "{recs:#?}"
        );
    }

    #[test]
    fn maxmind_paid_over_free() {
        let recs = recommendations(&toy_report());
        assert!(recs
            .iter()
            .any(|r| r.text.contains("commercial MaxMind edition")));
    }

    #[test]
    fn arin_city_warning_present() {
        let recs = recommendations(&toy_report());
        assert!(recs
            .iter()
            .any(|r| r.text.contains("ARIN-registered addresses")));
    }

    #[test]
    fn ip2location_warned_when_trailing() {
        let recs = recommendations(&toy_report());
        assert!(recs.iter().any(|r| r.text.contains("IP2Location-Lite")));
    }

    #[test]
    fn every_recommendation_carries_evidence() {
        for rec in recommendations(&toy_report()) {
            assert!(!rec.evidence.is_empty(), "{rec:?}");
            assert!(rec.evidence.contains('%'), "{rec:?}");
        }
    }
}

//! Ground-truth construction (§2.3) and Table 1 statistics.

use routergeo_cymru::{BulkClient, MappingService};
use routergeo_dns::rules::geolocate_interface;
use routergeo_dns::RuleEngine;
use routergeo_geo::stats::ratio;
use routergeo_geo::{Coordinate, CountryCode, Rir};
use routergeo_rtt::RttProximityDataset;
use routergeo_world::{InterfaceId, World};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Which pipeline produced a ground-truth entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GtMethod {
    /// Decoded from hostname hints with operator-confirmed rules (§2.3.1).
    DnsBased,
    /// Credited from a probe within the RTT threshold (§2.3.2).
    RttProximity,
}

/// One ground-truth address with its city-accuracy location.
#[derive(Debug, Clone)]
pub struct GtEntry {
    /// The router interface address.
    pub ip: Ipv4Addr,
    /// City-accuracy location.
    pub coord: Coordinate,
    /// Country of that location.
    pub country: CountryCode,
    /// Allocating RIR (from the whois substrate), when known.
    pub rir: Option<Rir>,
    /// Producing pipeline.
    pub method: GtMethod,
    /// Domain the entry decoded from (DNS-based entries only).
    pub domain: Option<String>,
}

/// The paper's per-domain DNS ground-truth sizes (§2.3.1), used to scale
/// the synthetic DNS-based dataset to Table 1 proportions.
pub const DNS_DOMAIN_TARGETS: [(&str, usize); 7] = [
    ("cogentco", 6_462),
    ("ntt", 2_331),
    ("pnap", 1_437),
    ("seabone", 1_405),
    ("peak10", 170),
    ("digitalwest", 29),
    ("belwue", 23),
];

/// The combined ground-truth dataset.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// All entries, DNS-based first, ascending by address within each
    /// method. Addresses are unique: overlap between the two pipelines is
    /// kept only as DNS-based, as in the paper (§5.2.4).
    pub entries: Vec<GtEntry>,
    /// Addresses found by both pipelines (the 109 of §3.1).
    pub overlap: Vec<Ipv4Addr>,
    /// Addresses whose RIR annotation over the bulk whois socket path
    /// exhausted its retries (see [`GroundTruth::annotate_rir_bulk`]).
    /// These entries carry `rir: None` and are reported as a degraded
    /// bucket in the §5.2 per-region breakdown instead of failing the
    /// run. Empty when the annotation ran in-process. This is a
    /// run-time artifact and is not serialized to the released CSV.
    pub degraded: Vec<Ipv4Addr>,
}

impl GroundTruth {
    /// Build the DNS-based ground truth: decode hostnames of the
    /// ground-truth operators' interfaces with the authoritative rules,
    /// taking up to the per-domain target counts (address order).
    pub fn dns_based(
        world: &World,
        engine: &RuleEngine,
        whois: &MappingService,
        scale: f64,
    ) -> Vec<GtEntry> {
        let mut entries = Vec::new();
        for (name, target) in DNS_DOMAIN_TARGETS {
            let Some(op_id) = world.operator_by_name(name) else {
                continue;
            };
            let op = world.operator(op_id);
            let domain = op.domain.clone().unwrap_or_default();
            let target = ((target as f64 * scale).round() as usize).max(1);
            let mut ifaces: Vec<InterfaceId> = world.interfaces_of_operator(op_id);
            ifaces.sort_by_key(|i| world.interface(*i).ip);
            // Spread the sample across the operator's whole address space
            // (and therefore across all its PoPs), as Ark discovery does —
            // taking the numerically-lowest addresses would bias toward
            // the earliest-allocated PoPs.
            let stride = (ifaces.len() / target.max(1)).max(1);
            let ifaces: Vec<InterfaceId> = ifaces
                .iter()
                .step_by(stride)
                .chain(ifaces.iter().skip(1).step_by(stride))
                .chain(ifaces.iter().skip(2).step_by(stride))
                .copied()
                .collect();
            let mut taken = 0usize;
            let mut seen = std::collections::HashSet::new();
            for id in ifaces {
                if taken >= target {
                    break;
                }
                if !seen.insert(id) {
                    continue;
                }
                let Some(city) = geolocate_interface(world, engine, id) else {
                    continue;
                };
                let ip = world.interface(id).ip;
                let c = world.city(city);
                entries.push(GtEntry {
                    ip,
                    coord: c.coord,
                    country: c.country,
                    rir: whois.lookup(ip).map(|r| r.rir),
                    method: GtMethod::DnsBased,
                    domain: Some(domain.clone()),
                });
                taken += 1;
            }
        }
        entries
    }

    /// Wrap an RTT-proximity dataset as ground-truth entries.
    pub fn from_rtt(dataset: &RttProximityDataset, whois: &MappingService) -> Vec<GtEntry> {
        dataset
            .entries
            .iter()
            .map(|e| GtEntry {
                ip: e.ip,
                coord: e.coord,
                country: e.country,
                rir: whois.lookup(e.ip).map(|r| r.rir),
                method: GtMethod::RttProximity,
                domain: None,
            })
            .collect()
    }

    /// Combine the two pipelines, keeping overlap addresses only in the
    /// DNS-based part (as the paper does).
    pub fn combine(dns: Vec<GtEntry>, rtt: Vec<GtEntry>) -> GroundTruth {
        let dns_ips: std::collections::HashSet<Ipv4Addr> = dns.iter().map(|e| e.ip).collect();
        let mut overlap = Vec::new();
        let mut entries = dns;
        for e in rtt {
            if dns_ips.contains(&e.ip) {
                overlap.push(e.ip);
            } else {
                entries.push(e);
            }
        }
        overlap.sort();
        GroundTruth {
            entries,
            overlap,
            degraded: Vec::new(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ground truth is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries of one method.
    pub fn of_method(&self, method: GtMethod) -> impl Iterator<Item = &GtEntry> {
        self.entries.iter().filter(move |e| e.method == method)
    }

    /// Table 1 row for one method: (total, countries, unique coords,
    /// per-RIR counts in ARIN, APNIC, AFRINIC, LACNIC, RIPENCC order,
    /// plus addresses whose RIR annotation degraded).
    pub fn table1_row(&self, method: GtMethod) -> Table1Row {
        let mut countries = std::collections::HashSet::new();
        let mut coords = std::collections::HashSet::new();
        let mut by_rir: HashMap<Rir, usize> = HashMap::new();
        let mut total = 0usize;
        let mut degraded = 0usize;
        let degraded_set: std::collections::HashSet<Ipv4Addr> =
            self.degraded.iter().copied().collect();
        for e in self.of_method(method) {
            total += 1;
            countries.insert(e.country);
            coords.insert(e.coord);
            if let Some(rir) = e.rir {
                *by_rir.entry(rir).or_default() += 1;
            } else if degraded_set.contains(&e.ip) {
                degraded += 1;
            }
        }
        Table1Row {
            total,
            countries: countries.len(),
            unique_coords: coords.len(),
            per_rir: Rir::TABLE1_ORDER.map(|r| by_rir.get(&r).copied().unwrap_or(0)),
            degraded,
        }
    }

    /// Re-annotate every entry's RIR over the bulk whois **socket
    /// path**, with graceful degradation: addresses whose lookups
    /// exhaust the client's retries keep `rir: None` and are recorded
    /// in [`GroundTruth::degraded`], so a partially-down whois service
    /// shrinks the per-region breakdown instead of aborting the run.
    pub fn annotate_rir_bulk(&mut self, client: &BulkClient) -> RirAnnotation {
        let mut span = routergeo_obs::span!("core.annotate_rir", addresses = self.entries.len());
        let ips: Vec<Ipv4Addr> = self.entries.iter().map(|e| e.ip).collect();
        let outcome = client.lookup(&ips);
        let rir_by_ip: HashMap<Ipv4Addr, Rir> = outcome
            .found
            .iter()
            .map(|(ip, rec)| (*ip, rec.rir))
            .collect();
        let failed: std::collections::HashSet<Ipv4Addr> =
            outcome.failed.iter().map(|f| f.ip).collect();
        let mut ann = RirAnnotation {
            total: self.entries.len(),
            ..RirAnnotation::default()
        };
        self.degraded.clear();
        for e in &mut self.entries {
            if let Some(rir) = rir_by_ip.get(&e.ip) {
                e.rir = Some(*rir);
                ann.resolved += 1;
            } else if failed.contains(&e.ip) {
                e.rir = None;
                ann.degraded += 1;
                self.degraded.push(e.ip);
            } else {
                e.rir = None;
                ann.not_found += 1;
            }
        }
        routergeo_obs::counter("gt.rir_degraded").add(ann.degraded as u64);
        span.attr("resolved", ann.resolved);
        span.attr("degraded", ann.degraded);
        ann
    }
}

/// Summary of one socket-path RIR annotation pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RirAnnotation {
    /// Ground-truth addresses annotated.
    pub total: usize,
    /// Addresses the whois service mapped to a RIR.
    pub resolved: usize,
    /// Addresses the service answered `NA` for.
    pub not_found: usize,
    /// Addresses whose lookups exhausted retries (degraded bucket).
    pub degraded: usize,
}

impl RirAnnotation {
    /// Fraction of addresses with a resolved RIR.
    pub fn coverage(&self) -> f64 {
        ratio(self.resolved, self.total)
    }

    /// Fraction of addresses in the degraded bucket.
    pub fn degraded_fraction(&self) -> f64 {
        ratio(self.degraded, self.total)
    }

    /// Whether the annotation degraded at all.
    pub fn is_degraded(&self) -> bool {
        self.degraded > 0
    }
}

impl GroundTruth {
    /// Serialize as the released-dataset CSV (the paper publishes its
    /// ground truth via IMPACT; this is the equivalent artifact):
    /// `ip,lat,lon,country,rir,method,domain`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("ip,lat,lon,country,rir,method,domain\n");
        for e in &self.entries {
            out.push_str(&format!(
                "{},{:.6},{:.6},{},{},{},{}\n",
                e.ip,
                e.coord.lat(),
                e.coord.lon(),
                e.country,
                e.rir.map(|r| r.name()).unwrap_or("NA"),
                match e.method {
                    GtMethod::DnsBased => "dns",
                    GtMethod::RttProximity => "rtt",
                },
                e.domain.as_deref().unwrap_or("-"),
            ));
        }
        out
    }

    /// Parse a released-dataset CSV back into a ground truth.
    pub fn from_csv(text: &str) -> Result<GroundTruth, GtParseError> {
        let mut entries = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if i == 0 || line.trim().is_empty() {
                continue; // header
            }
            let lineno = i + 1;
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 7 {
                return Err(GtParseError {
                    line: lineno,
                    what: "column count",
                });
            }
            let err = |what: &'static str| GtParseError { line: lineno, what };
            let ip: Ipv4Addr = fields[0].parse().map_err(|_| err("ip"))?;
            let lat: f64 = fields[1].parse().map_err(|_| err("lat"))?;
            let lon: f64 = fields[2].parse().map_err(|_| err("lon"))?;
            let coord = Coordinate::new(lat, lon).map_err(|_| err("coordinate"))?;
            let country = fields[3].parse().map_err(|_| err("country"))?;
            let rir = match fields[4] {
                "NA" => None,
                s => Some(s.parse().map_err(|_| err("rir"))?),
            };
            let method = match fields[5] {
                "dns" => GtMethod::DnsBased,
                "rtt" => GtMethod::RttProximity,
                _ => return Err(err("method")),
            };
            let domain = match fields[6] {
                "-" => None,
                s => Some(s.to_string()),
            };
            entries.push(GtEntry {
                ip,
                coord,
                country,
                rir,
                method,
                domain,
            });
        }
        Ok(GroundTruth {
            entries,
            overlap: Vec::new(),
            degraded: Vec::new(),
        })
    }
}

/// Error parsing a released ground-truth CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GtParseError {
    /// 1-based line number.
    pub line: usize,
    /// Field that failed.
    pub what: &'static str,
}

impl std::fmt::Display for GtParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ground-truth CSV line {}: bad {}", self.line, self.what)
    }
}

impl std::error::Error for GtParseError {}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// Total addresses.
    pub total: usize,
    /// Unique countries.
    pub countries: usize,
    /// Unique coordinates.
    pub unique_coords: usize,
    /// Counts per RIR in Table 1 column order
    /// (ARIN, APNIC, AFRINIC, LACNIC, RIPENCC).
    pub per_rir: [usize; 5],
    /// Addresses whose RIR annotation degraded (unknown registry after
    /// retry exhaustion); 0 on a healthy run.
    pub degraded: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use routergeo_rtt::{build_dataset, ProximityConfig};
    use routergeo_trace::{AtlasBuiltins, AtlasConfig, Topology};
    use routergeo_world::{World, WorldConfig};

    fn build_gt(seed: u64) -> (World, GroundTruth) {
        let w = World::generate(WorldConfig::small(seed));
        let engine = RuleEngine::with_gt_rules(&w);
        let whois = MappingService::build(&w);
        let dns = GroundTruth::dns_based(&w, &engine, &whois, 0.02);
        let topo = Topology::build(&w);
        let records = AtlasBuiltins::new(
            &w,
            &topo,
            AtlasConfig {
                seed: 7,
                targets: 5,
                instances_per_target: 4,
            },
        )
        .run();
        let (rtt, _) = build_dataset(&w, &records, &ProximityConfig::default());
        let rtt = GroundTruth::from_rtt(&rtt, &whois);
        (w, GroundTruth::combine(dns, rtt))
    }

    #[test]
    fn dns_entries_are_exactly_true_cities() {
        let (w, gt) = build_gt(201);
        let mut n = 0;
        for e in gt.of_method(GtMethod::DnsBased) {
            let (city, _) = w.true_location(e.ip).expect("interface");
            assert_eq!(w.city(city).coord, e.coord, "{}", e.ip);
            assert!(e.domain.is_some());
            n += 1;
        }
        assert!(n > 100, "DNS GT too small: {n}");
    }

    #[test]
    fn rtt_entries_are_near_true_locations() {
        let (w, gt) = build_gt(202);
        let mut n = 0;
        let mut far = 0;
        for e in gt.of_method(GtMethod::RttProximity) {
            let router = w.router_of_ip(e.ip).expect("interface");
            if e.coord.distance_km(&router.coord) > 60.0 {
                far += 1;
            }
            assert!(e.domain.is_none());
            n += 1;
        }
        assert!(n > 100, "RTT GT too small: {n}");
        assert!((far as f64) < n as f64 * 0.05, "{far}/{n} far entries");
    }

    #[test]
    fn combine_removes_duplicates() {
        let (_, gt) = build_gt(203);
        let mut ips: Vec<_> = gt.entries.iter().map(|e| e.ip).collect();
        let before = ips.len();
        ips.sort();
        ips.dedup();
        assert_eq!(ips.len(), before, "duplicate addresses in combined GT");
    }

    #[test]
    fn dns_proportions_follow_targets() {
        let (_, gt) = build_gt(204);
        let mut per_domain: HashMap<&str, usize> = HashMap::new();
        for e in gt.of_method(GtMethod::DnsBased) {
            *per_domain.entry(e.domain.as_deref().unwrap()).or_default() += 1;
        }
        let cogent = per_domain.get("cogentco.com").copied().unwrap_or(0);
        for (d, n) in &per_domain {
            assert!(cogent >= *n, "cogent {cogent} < {d} {n}");
        }
    }

    #[test]
    fn table1_rows_are_consistent() {
        let (_, gt) = build_gt(205);
        for method in [GtMethod::DnsBased, GtMethod::RttProximity] {
            let row = gt.table1_row(method);
            assert_eq!(row.total, gt.of_method(method).count());
            assert!(row.countries <= row.unique_coords.max(1));
            let rir_sum: usize = row.per_rir.iter().sum();
            assert_eq!(
                rir_sum + row.degraded,
                row.total,
                "all addresses must map to a RIR or the degraded bucket"
            );
            assert_eq!(row.degraded, 0, "in-process annotation cannot degrade");
        }
    }

    #[test]
    fn socket_annotation_matches_in_process_annotation() {
        let (w, mut gt) = build_gt(208);
        let before: Vec<_> = gt.entries.iter().map(|e| (e.ip, e.rir)).collect();
        let svc = std::sync::Arc::new(MappingService::build(&w));
        let mut srv = routergeo_cymru::WhoisServer::spawn(svc).expect("spawn");
        let ann = gt.annotate_rir_bulk(&BulkClient::new(srv.addr()));
        assert_eq!(ann.total, gt.len());
        assert_eq!(ann.degraded, 0);
        assert!(ann.coverage() > 0.99, "coverage {}", ann.coverage());
        assert!(gt.degraded.is_empty());
        let after: Vec<_> = gt.entries.iter().map(|e| (e.ip, e.rir)).collect();
        assert_eq!(before, after, "socket path must agree with in-process");
        srv.shutdown();
    }

    #[test]
    fn dead_whois_service_degrades_instead_of_failing() {
        let (_, mut gt) = build_gt(209);
        // Bind then immediately drop: connections to this port are
        // refused, so every chunk exhausts its retries.
        let addr = {
            let l = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
            l.local_addr().unwrap()
        };
        let config = routergeo_cymru::BulkConfig {
            retry: routergeo_cymru::RetryPolicy {
                max_attempts: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        let (_, clock) = routergeo_cymru::clock::TestClock::shared();
        let ann = gt.annotate_rir_bulk(&BulkClient::with_config(addr, config, clock));
        assert_eq!(ann.degraded, ann.total);
        assert!(ann.is_degraded());
        assert_eq!(ann.coverage(), 0.0);
        assert_eq!(gt.degraded.len(), gt.len());
        // The degraded bucket flows into Table 1 instead of an error.
        let row = gt.table1_row(GtMethod::DnsBased);
        assert_eq!(row.degraded, row.total);
        assert_eq!(row.per_rir.iter().sum::<usize>(), 0);
    }

    #[test]
    fn csv_export_roundtrips() {
        let (_, gt) = build_gt(207);
        let csv = gt.to_csv();
        assert!(csv.starts_with("ip,lat,lon,country,rir,method,domain\n"));
        let back = GroundTruth::from_csv(&csv).expect("own output parses");
        assert_eq!(back.len(), gt.len());
        for (a, b) in gt.entries.iter().zip(back.entries.iter()) {
            assert_eq!(a.ip, b.ip);
            assert_eq!(a.coord, b.coord);
            assert_eq!(a.country, b.country);
            assert_eq!(a.rir, b.rir);
            assert_eq!(a.method, b.method);
            assert_eq!(a.domain, b.domain);
        }
        // Table 1 statistics survive the round trip.
        assert_eq!(
            gt.table1_row(GtMethod::DnsBased),
            back.table1_row(GtMethod::DnsBased)
        );
    }

    #[test]
    fn csv_parser_rejects_malformed_rows() {
        let header = "ip,lat,lon,country,rir,method,domain\n";
        for (row, what) in [
            ("zz,1,2,US,ARIN,dns,-", "ip"),
            ("1.2.3.4,99,2,US,ARIN,dns,-", "coordinate"),
            ("1.2.3.4,1,2,USA,ARIN,dns,-", "country"),
            ("1.2.3.4,1,2,US,XXRIN,dns,-", "rir"),
            ("1.2.3.4,1,2,US,ARIN,carrier-pigeon,-", "method"),
            ("1.2.3.4,1,2,US,ARIN,dns", "column count"),
        ] {
            let text = format!("{header}{row}\n");
            let e = GroundTruth::from_csv(&text).unwrap_err();
            assert_eq!(e.what, what, "{row}");
            assert_eq!(e.line, 2);
        }
    }

    #[test]
    fn rtt_set_spans_more_countries_than_dns_set() {
        // Table 1: DNS 53 countries vs RTT 118 — probes are everywhere,
        // transit PoPs are not.
        let (_, gt) = build_gt(206);
        let dns = gt.table1_row(GtMethod::DnsBased);
        let rtt = gt.table1_row(GtMethod::RttProximity);
        assert!(
            rtt.countries > dns.countries,
            "rtt {} vs dns {}",
            rtt.countries,
            dns.countries
        );
        // And far more unique coordinates per address.
        assert!(rtt.unique_coords * dns.total > dns.unique_coords * rtt.total);
    }
}

//! The paper's contribution as a reusable library: a router-geolocation
//! evaluation harness.
//!
//! Given a world (the oracle), a set of geolocation databases, and the two
//! ground-truth pipelines, this crate computes every quantity the paper
//! reports:
//!
//! * [`groundtruth`] — builds the DNS-based (§2.3.1) and RTT-proximity
//!   (§2.3.2) ground-truth datasets and their Table 1 statistics.
//! * [`validation`] — the ground-truth correctness analysis of §3:
//!   cross-dataset agreement and hostname churn.
//! * [`resolve`] — the resolve-once lookup engine: every (IP, database)
//!   pair answered exactly once into a columnar
//!   [`ResolvedView`](resolve::ResolvedView) that the coverage,
//!   consistency, and accuracy analyses share.
//! * [`coverage`] — country-/city-level coverage over an address set
//!   (§5.1, §5.2.1).
//! * [`consistency`] — pairwise database agreement and the Figure 1
//!   distance CDFs (§5.1).
//! * [`accuracy`] — evaluation against ground truth: Figure 2 error CDFs,
//!   Figure 3 per-RIR country accuracy, Figure 4 per-country accuracy,
//!   Figure 5 per-RIR city error CDFs, and the per-method split of §5.2.4.
//! * [`arin_case`] — the §5.2.3 ARIN case study.
//! * [`methodology`] — the §4 sanity checks (database city coordinates vs
//!   the gazetteer; same-city coordinates across databases).
//! * [`hloc`] — HLOC-style hint verification (related work): confirm or
//!   refute DNS hints with latency constraints, catching stale hostnames.
//! * [`majority`] — the majority-vote methodology of the prior work the
//!   paper contrasts against (§7), quantifying how much "agreement"
//!   overstates accuracy.
//! * [`endpoint`] — the §8 router-vs-endpoint comparison: databases
//!   geolocate end hosts better than routers.
//! * [`recommend`] — the §6 recommendation engine, driven by the computed
//!   metrics rather than hard-coded conclusions.
//! * [`report`] — fixed-width text tables and CSV rendering for the
//!   benchmark harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod arin_case;
pub mod consistency;
pub mod coverage;
pub mod endpoint;
pub mod groundtruth;
pub mod hloc;
pub mod majority;
pub mod methodology;
pub mod recommend;
pub mod report;
pub mod resolve;
pub mod validation;

pub use accuracy::{AccuracyReport, VendorAccuracy};
pub use consistency::ConsistencyReport;
pub use coverage::CoverageReport;
pub use groundtruth::{GroundTruth, GtEntry, GtMethod};
pub use resolve::ResolvedView;

//! Live-wire phases: real TCP against a real daemon.
//!
//! Three phases, three kinds of evidence:
//!
//! * **Swap under load** — concurrent clients hammer lookups while the
//!   main thread hot-swaps generations. Because both generations carry
//!   the same prefix set (see [`Corpus`]), every client's hit/miss
//!   tally is deterministic even though the flip lands at an arbitrary
//!   instant; the only nondeterministic observable would be a torn
//!   read (generation id disagreeing with the record's city tag), and
//!   that is exactly what the phase exists to rule out.
//! * **Abuse** — raw-socket pokes (oversize frames, truncation,
//!   garbage) must each produce the protocol's attributed rejection and
//!   leave the daemon healthy; scripted faultnet chaos (corruption,
//!   truncation, injected delay on a [`TestClock`], early FIN) must
//!   surface as attributed client-side errors, never as daemon damage.
//! * **Wall clock** — sequential round-trip latency and pipelined
//!   throughput, plus a direct in-process lookup rate measured in the
//!   same run. Only the *ratios* gate CI, so machine speed cancels;
//!   the raw numbers are reported on stderr and never enter the
//!   deterministic artifact.

use crate::corpus::Corpus;
use crate::daemon::{ServeConfig, ServeDaemon, ServeError};
use crate::protocol::{self, ProtoError, Request, Response, MAX_FRAME};
use routergeo_db::rgdb2::AnyReader;
use routergeo_faultnet::{ChaosProxy, Fault, FaultPlan, TestClock};
use routergeo_pool::splitmix64;
use std::io::Write as _;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Barrier;
use std::time::Duration;

/// A blocking protocol client over one TCP connection.
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connect with bounded timeouts on every operation.
    pub fn connect(addr: SocketAddr) -> std::io::Result<ServeClient> {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        stream.set_write_timeout(Some(Duration::from_secs(5)))?;
        stream.set_nodelay(true)?;
        Ok(ServeClient { stream })
    }

    /// One request/response round trip.
    pub fn request(&mut self, req: &Request) -> Result<Response, ProtoError> {
        protocol::write_frame(&mut self.stream, &protocol::encode_request(req))?;
        self.stream.flush()?;
        match protocol::read_frame(&mut self.stream)? {
            Some(body) => protocol::parse_response(&body),
            None => Err(ProtoError::Malformed("server closed before answering")),
        }
    }

    /// Pipelined batch: write every request, then read every response.
    /// Depth is the caller's responsibility; request frames are ~10
    /// bytes so even deep batches stay far inside socket buffers.
    pub fn pipeline(&mut self, reqs: &[Request]) -> Result<Vec<Response>, ProtoError> {
        for req in reqs {
            protocol::write_frame(&mut self.stream, &protocol::encode_request(req))?;
        }
        self.stream.flush()?;
        let mut out = Vec::with_capacity(reqs.len());
        for _ in reqs {
            match protocol::read_frame(&mut self.stream)? {
                Some(body) => out.push(protocol::parse_response(&body)?),
                None => return Err(ProtoError::Malformed("server closed mid-pipeline")),
            }
        }
        Ok(out)
    }
}

/// Outcome of the swap-under-load phase. Every field is deterministic
/// when the phase is green.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapOutcome {
    /// Concurrent client threads.
    pub clients: u64,
    /// Lookups issued across all clients.
    pub lookups: u64,
    /// Lookups answered with a hit.
    pub ok: u64,
    /// Lookups answered with a miss.
    pub miss: u64,
    /// `BUSY` sheds observed (must be 0: the phase provisions workers
    /// for every client).
    pub busy: u64,
    /// Server errors, unexpected responses, and client I/O failures.
    pub errors: u64,
    /// Responses whose generation id and record payload disagree.
    pub torn_reads: u64,
    /// Generation observed before the swap.
    pub generation_before: u32,
    /// Generation observed after the swap.
    pub generation_after: u32,
    /// Swaps completed by the daemon.
    pub swaps: u64,
    /// Whether the old generation's readers fully drained.
    pub drained: bool,
}

/// Per-client accumulator for the swap phase.
#[derive(Debug, Default, Clone, Copy)]
struct ClientTally {
    ok: u64,
    miss: u64,
    busy: u64,
    errors: u64,
    torn: u64,
}

/// The deterministic address for swap-phase lookup `(client, j)`:
/// 70% guaranteed hits on Zipf-ish ranks, 30% block addresses that may
/// miss — but identically so in both generations.
fn swap_addr(corpus: &Corpus, seed: u64, client: u64, j: u64) -> std::net::Ipv4Addr {
    let r = splitmix64(splitmix64(seed, 0x5A50 + client), j);
    let k = usize::try_from(splitmix64(r, 1) % u64::try_from(corpus.records()).expect("bounded"))
        .expect("rank bounded by record count");
    if r % 10 < 7 {
        corpus.hit_addr(k)
    } else {
        corpus.block_addr(k, splitmix64(r, 2))
    }
}

fn classify(resp: Result<Response, ProtoError>, tally: &mut ClientTally) {
    match resp {
        Ok(Response::Hit { generation, record }) => {
            let city = record.city.as_deref().unwrap_or("");
            if (generation == 1 || generation == 2) && Corpus::city_matches(generation, city) {
                tally.ok += 1;
            } else {
                tally.torn += 1;
            }
        }
        Ok(Response::Miss { generation }) => {
            if generation == 1 || generation == 2 {
                tally.miss += 1;
            } else {
                tally.torn += 1;
            }
        }
        Ok(Response::Busy) => tally.busy += 1,
        Ok(_) => tally.errors += 1,
        Err(_) => tally.errors += 1,
    }
}

fn probe_generation(client: &mut ServeClient) -> u32 {
    match client.request(&Request::Generation) {
        Ok(Response::GenerationInfo { generation, .. }) => generation,
        _ => 0,
    }
}

/// Run the hot-swap-under-load check: `clients` threads of `lookups`
/// round trips each, with one generation swap flipped mid-stream.
pub fn run_swap_phase(
    corpus: &Corpus,
    seed: u64,
    clients: u64,
    lookups: u64,
) -> Result<SwapOutcome, ServeError> {
    let daemon = ServeDaemon::spawn_with(
        corpus.image(1),
        ServeConfig {
            workers: usize::try_from(clients).expect("client count is small") + 2,
            queue_depth: 64,
            ..ServeConfig::default()
        },
    )?;
    let mut probe = ServeClient::connect(daemon.addr()).map_err(ServeError::Io)?;
    let generation_before = probe_generation(&mut probe);
    let barrier = Barrier::new(usize::try_from(clients).expect("small") + 1);
    let addr = daemon.addr();
    let mut tallies: Vec<ClientTally> = Vec::new();
    let mut swap_report = None;
    // xtask-allow: RG007 concurrent protocol clients driving load during the swap; I/O threads, not data-parallel fan-out
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let barrier = &barrier;
                let corpus = &corpus;
                scope.spawn(move || {
                    let mut tally = ClientTally::default();
                    let mut client = match ServeClient::connect(addr) {
                        Ok(client) => client,
                        Err(_) => {
                            tally.errors += lookups;
                            barrier.wait();
                            return tally;
                        }
                    };
                    barrier.wait();
                    for j in 0..lookups {
                        let ip = swap_addr(corpus, seed, c, j);
                        classify(client.request(&Request::Lookup(ip)), &mut tally);
                    }
                    tally
                })
            })
            .collect();
        barrier.wait();
        swap_report = Some(daemon.hot_swap(corpus.image(2)));
        for handle in handles {
            if let Ok(tally) = handle.join() {
                tallies.push(tally);
            }
        }
    });
    let generation_after = probe_generation(&mut probe);
    let stats = daemon.stats();
    let swap = swap_report
        .transpose()?
        .ok_or_else(|| ServeError::Io(std::io::Error::other("swap never ran")))?;
    let mut out = SwapOutcome {
        clients,
        lookups: clients * lookups,
        ok: 0,
        miss: 0,
        busy: 0,
        errors: 0,
        torn_reads: 0,
        generation_before,
        generation_after,
        swaps: stats.swaps,
        drained: swap.drained,
    };
    for t in &tallies {
        out.ok += t.ok;
        out.miss += t.miss;
        out.busy += t.busy;
        out.errors += t.errors;
        out.torn_reads += t.torn;
    }
    if tallies.len() != usize::try_from(clients).expect("small") {
        out.errors += 1; // a client thread died entirely
    }
    Ok(out)
}

/// Outcome of the abuse phase (raw pokes + scripted faultnet chaos).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbuseOutcome {
    /// Raw-socket pokes thrown at the daemon.
    pub pokes: u64,
    /// Pokes that produced exactly the expected attributed rejection.
    pub pokes_attributed: u64,
    /// Scripted chaos connections through the proxy.
    pub chaos_scenarios: u64,
    /// Chaos scenarios whose client-side failure was attributed.
    pub chaos_attributed: u64,
    /// Human-readable descriptions of anything unexpected.
    pub violations: Vec<String>,
}

/// Read one response frame from a raw stream.
fn raw_response(stream: &mut TcpStream) -> Result<Option<Response>, ProtoError> {
    match protocol::read_frame(stream)? {
        Some(body) => Ok(Some(protocol::parse_response(&body)?)),
        None => Ok(None),
    }
}

fn raw_connect(addr: SocketAddr) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    Ok(stream)
}

/// Expect: a `MALFORMED` response, then EOF (the daemon closed).
fn expect_malformed_then_close(stream: &mut TcpStream) -> Result<(), String> {
    match raw_response(stream) {
        Ok(Some(Response::Malformed { .. })) => {}
        other => return Err(format!("wanted MALFORMED, got {other:?}")),
    }
    match protocol::read_frame(stream) {
        Ok(None) => Ok(()),
        other => Err(format!("wanted EOF after MALFORMED, got {other:?}")),
    }
}

/// Run the abuse phase against a fresh daemon.
pub fn run_abuse_phase(corpus: &Corpus) -> Result<AbuseOutcome, ServeError> {
    let daemon = ServeDaemon::spawn(corpus.image(1))?;
    let addr = daemon.addr();
    let mut out = AbuseOutcome {
        pokes: 0,
        pokes_attributed: 0,
        chaos_scenarios: 0,
        chaos_attributed: 0,
        violations: Vec::new(),
    };

    // --- raw pokes: framing attacks straight at the daemon ------------
    type Poke = (&'static str, fn(&mut TcpStream) -> Result<(), String>);
    let pokes: [Poke; 5] = [
        ("zero-length frame", |stream| {
            stream.write_all(&[0, 0, 0, 0]).map_err(|e| e.to_string())?;
            expect_malformed_then_close(stream)
        }),
        ("oversize frame length", |stream| {
            stream
                .write_all(&(MAX_FRAME + 1).to_le_bytes())
                .map_err(|e| e.to_string())?;
            expect_malformed_then_close(stream)
        }),
        ("truncated body", |stream| {
            stream
                .write_all(&[8, 0, 0, 0, 0xAA, 0xBB])
                .map_err(|e| e.to_string())?;
            stream
                .shutdown(Shutdown::Write)
                .map_err(|e| e.to_string())?;
            expect_malformed_then_close(stream)
        }),
        ("giant length burst", |stream| {
            stream.write_all(&[0xFF; 64]).map_err(|e| e.to_string())?;
            expect_malformed_then_close(stream)
        }),
        ("unknown op keeps the connection", |stream| {
            // Intact frame, nonsense body: MALFORMED but the connection
            // survives and answers the next valid request.
            protocol::write_frame(stream, &[0xEE]).map_err(|e| e.to_string())?;
            match raw_response(stream) {
                Ok(Some(Response::Malformed { .. })) => {}
                other => return Err(format!("wanted MALFORMED, got {other:?}")),
            }
            protocol::write_frame(stream, &protocol::encode_request(&Request::Generation))
                .map_err(|e| e.to_string())?;
            match raw_response(stream) {
                Ok(Some(Response::GenerationInfo { .. })) => Ok(()),
                other => Err(format!("wanted GEN after MALFORMED, got {other:?}")),
            }
        }),
    ];
    for (name, poke) in pokes {
        out.pokes += 1;
        let mut stream = raw_connect(addr).map_err(ServeError::Io)?;
        match poke(&mut stream) {
            Ok(()) => out.pokes_attributed += 1,
            Err(why) => out.violations.push(format!("poke `{name}`: {why}")),
        }
    }

    // --- scripted chaos through the faultnet proxy --------------------
    // One-shot connections (write request, FIN, read response) match the
    // proxy's sequential relay model; the daemon sees a clean one-frame
    // conversation either way.
    let (_test_clock, clock) = TestClock::shared();
    let plan = FaultPlan::sequence(vec![
        Fault::CorruptBytes {
            rate_pct: 100,
            seed: 11,
        },
        Fault::TruncateAfter(2),
        Fault::Delay {
            per_chunk: Duration::from_millis(250),
        },
        Fault::EarlyFin,
    ]);
    let mut proxy = ChaosProxy::spawn(addr, plan, clock).map_err(ServeError::Io)?;
    let hit = Request::Lookup(corpus.hit_addr(0));
    let one_shot = |label: &str| -> Result<Option<Response>, String> {
        let mut stream = raw_connect(proxy.addr()).map_err(|e| e.to_string())?;
        protocol::write_frame(&mut stream, &protocol::encode_request(&hit))
            .map_err(|e| format!("{label}: write: {e}"))?;
        stream
            .shutdown(Shutdown::Write)
            .map_err(|e| format!("{label}: fin: {e}"))?;
        raw_response(&mut stream).map_err(|e| e.to_string())
    };
    // Corruption: every response byte flipped — the frame cannot decode.
    out.chaos_scenarios += 1;
    match one_shot("corrupt") {
        Err(_) => out.chaos_attributed += 1,
        Ok(resp) => out
            .violations
            .push(format!("corrupt relay decoded cleanly: {resp:?}")),
    }
    // Truncation at byte 2: EOF inside the length prefix.
    out.chaos_scenarios += 1;
    match one_shot("truncate") {
        Err(_) => out.chaos_attributed += 1,
        Ok(resp) => out
            .violations
            .push(format!("truncated relay decoded cleanly: {resp:?}")),
    }
    // Injected delay on a TestClock: the response arrives untouched and
    // the latency lands on the virtual clock, not on this run's wall.
    out.chaos_scenarios += 1;
    match one_shot("delay") {
        Ok(Some(Response::Hit { generation: 1, .. })) => out.chaos_attributed += 1,
        other => out
            .violations
            .push(format!("delayed relay did not serve the hit: {other:?}")),
    }
    // Early FIN: the proxy consumes the request and closes — clean EOF.
    out.chaos_scenarios += 1;
    match one_shot("early-fin") {
        Ok(None) => out.chaos_attributed += 1,
        other => out
            .violations
            .push(format!("early-fin produced a response: {other:?}")),
    }
    // Drain the proxy before reading stats: a connection's record is
    // written after its client-visible effect, so the last scenario may
    // still be in flight here.
    proxy.shutdown();
    let stats = proxy.stats();
    if stats.fault_labels() != vec!["corrupt", "truncate", "delay", "early-fin"] {
        out.violations
            .push(format!("chaos plan misapplied: {:?}", stats.fault_labels()));
    }
    if stats.injected_delay() < Duration::from_millis(250) {
        out.violations.push(format!(
            "delay fault injected only {:?} of virtual latency",
            stats.injected_delay()
        ));
    }

    // --- the daemon must have survived all of it ----------------------
    let mut health = ServeClient::connect(addr).map_err(ServeError::Io)?;
    match health.request(&Request::Lookup(corpus.hit_addr(0))) {
        Ok(Response::Hit { generation: 1, .. }) => {}
        other => out
            .violations
            .push(format!("daemon unhealthy after abuse: {other:?}")),
    }
    Ok(out)
}

/// Wall-clock observations — never part of the deterministic artifact.
#[derive(Debug, Clone, Copy)]
pub struct WallStats {
    /// Sequential round-trip p50, microseconds.
    pub latency_p50_us: u64,
    /// Sequential round-trip p99, microseconds.
    pub latency_p99_us: u64,
    /// Pipelined served lookups per second.
    pub served_per_sec: u64,
    /// Direct in-process lookups per second, same run, same corpus.
    pub direct_per_sec: u64,
}

/// Measure round-trip latency and pipelined throughput, plus the direct
/// in-process rate the throughput gate normalizes against.
pub fn run_wall_phase(
    corpus: &Corpus,
    seed: u64,
    probes: u64,
    batches: u64,
    depth: u64,
) -> Result<WallStats, ServeError> {
    let image = corpus.image(1);
    let daemon = ServeDaemon::spawn(image.clone())?;
    let mut client = ServeClient::connect(daemon.addr()).map_err(ServeError::Io)?;
    let addr_for = |j: u64| {
        let r = splitmix64(seed, 0xA11 + j);
        let k = usize::try_from(r % u64::try_from(corpus.records()).expect("bounded"))
            .expect("rank bounded");
        corpus.hit_addr(k)
    };
    // Warm the daemon's decode cache so latency measures steady state.
    for j in 0..64 {
        client
            .request(&Request::Lookup(addr_for(j)))
            .map_err(|e| ServeError::Io(std::io::Error::other(e.to_string())))?;
    }
    let mut latencies = Vec::with_capacity(usize::try_from(probes).expect("bounded"));
    for j in 0..probes {
        let req = Request::Lookup(addr_for(j));
        let timer = routergeo_obs::stopwatch();
        client
            .request(&req)
            .map_err(|e| ServeError::Io(std::io::Error::other(e.to_string())))?;
        latencies.push(timer.elapsed_us());
    }
    latencies.sort_unstable();
    let pick = |p: usize| -> u64 {
        let last = latencies.len().saturating_sub(1);
        latencies.get(last * p / 100).copied().unwrap_or(0)
    };
    let (latency_p50_us, latency_p99_us) = (pick(50), pick(99));

    let reqs: Vec<Request> = (0..depth).map(|j| Request::Lookup(addr_for(j))).collect();
    let timer = routergeo_obs::stopwatch();
    for _ in 0..batches {
        client
            .pipeline(&reqs)
            .map_err(|e| ServeError::Io(std::io::Error::other(e.to_string())))?;
    }
    let served_us = timer.elapsed_us().max(1);
    let served_per_sec = (batches * depth).saturating_mul(1_000_000) / served_us;

    let reader = AnyReader::open(image)?;
    let timer = routergeo_obs::stopwatch();
    let mut checksum = 0u64;
    for j in 0..batches * depth {
        if reader.try_lookup(addr_for(j % depth))?.is_some() {
            checksum += 1;
        }
    }
    let direct_us = timer.elapsed_us().max(1);
    let direct_per_sec = checksum.max(1).saturating_mul(1_000_000) / direct_us;
    Ok(WallStats {
        latency_p50_us,
        latency_p99_us,
        served_per_sec,
        direct_per_sec,
    })
}

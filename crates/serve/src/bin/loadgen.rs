//! `routergeo-loadgen` — deterministic driver for the lookup daemon.
//!
//! ```text
//! loadgen [--budget-ms N] [--seed N] [--threads N] [--json]
//! ```
//!
//! With `--json` the deterministic report is written to stdout —
//! byte-identical for a fixed seed and budget, at any `--threads` —
//! while the wall-clock measurements and ratio-gate verdicts go to
//! stderr. The exit code is nonzero if any deterministic invariant or
//! ratio gate failed.

use routergeo_pool::Pool;
use routergeo_serve::{gate_violations, run_loadgen, LoadgenConfig};
use std::process::ExitCode;

const USAGE: &str = "usage: loadgen [--budget-ms N] [--seed N] [--threads N] [--json]";

fn main() -> ExitCode {
    let mut budget_ms = 8_000u64;
    let mut seed = 20_170_301u64;
    let mut threads: Option<usize> = None;
    let mut as_json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => as_json = true,
            "--budget-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => budget_ms = v,
                None => {
                    eprintln!("loadgen: --budget-ms needs a millisecond count\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("loadgen: --seed needs an integer\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => threads = Some(v),
                None => {
                    eprintln!("loadgen: --threads needs a count\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            bad => {
                eprintln!("loadgen: unknown flag `{bad}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let pool = match threads {
        Some(n) => Pool::new(n),
        None => Pool::from_env(),
    };
    let config = LoadgenConfig::from_budget(budget_ms, seed);
    let outcome = match run_loadgen(&config, &pool) {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("loadgen: {err}");
            return ExitCode::FAILURE;
        }
    };
    if as_json {
        print!("{}", outcome.report.to_json());
    }
    let wall = &outcome.wall;
    eprintln!(
        "loadgen: wall p50 {}us p99 {}us | served {}/s direct {}/s (ratio {}x)",
        wall.latency_p50_us,
        wall.latency_p99_us,
        wall.served_per_sec,
        wall.direct_per_sec,
        wall.direct_per_sec / wall.served_per_sec.max(1)
    );
    eprintln!(
        "loadgen: sim served {} shed {} malformed {} | virtual rate {}/s p99 {}ns",
        outcome.report.sim.served,
        outcome.report.sim.shed,
        outcome.report.sim.malformed,
        outcome.report.sim.virtual_rate_per_sec,
        outcome.report.sim.latency_p99_ns
    );
    let mut failed = false;
    for violation in outcome.report.violations() {
        eprintln!("loadgen: VIOLATION: {violation}");
        failed = true;
    }
    for violation in gate_violations(wall) {
        eprintln!("loadgen: GATE: {violation}");
        failed = true;
    }
    if failed {
        eprintln!("loadgen: FAILED");
        ExitCode::FAILURE
    } else {
        eprintln!(
            "loadgen: clean — swap {} -> {} under load, {} pokes and {} chaos scenarios attributed",
            outcome.report.swap.generation_before,
            outcome.report.swap.generation_after,
            outcome.report.abuse.pokes_attributed,
            outcome.report.abuse.chaos_attributed
        );
        ExitCode::SUCCESS
    }
}

//! The deterministic virtual-time engine behind `serve_ci.json`.
//!
//! Real socket latency is noise; CI needs numbers that are identical on
//! every machine. The simulator gets both halves honest:
//!
//! * **The work is real.** Every stream element's body bytes go through
//!   the production frame parser, the lookup runs against a real
//!   validated [`AnyReader`], and the response is encoded with the
//!   production encoder. A parser or trie regression changes the
//!   report.
//! * **The time is virtual.** Service cost is an integer-nanosecond
//!   model keyed on what actually happened — matched prefix depth,
//!   encoded response size, rejection path — and queueing follows the
//!   daemon's discipline: requests land round-robin on `virtual_workers`
//!   chains, wait behind the chain's previous request, and are **shed**
//!   when the backlog exceeds the shed threshold, mirroring the bounded
//!   accept queue.
//!
//! Chain `w` processes stream elements `w, w+W, w+2W, …` and every
//! element is a pure function of `(seed, index)`, so chains are
//! independent: the pool shards them (one chain per shard) and merges
//! in shard order, which is why the report is byte-identical at 1, 2,
//! or 8 worker threads.

use crate::mix::TrafficMix;
use crate::protocol::{self, Request, Response};
use routergeo_db::rgdb2::AnyReader;
use routergeo_pool::Pool;

/// Base cost of answering any well-formed lookup.
const COST_LOOKUP_BASE_NS: u64 = 1_200;
/// Marginal cost per matched prefix bit (trie walk depth).
const COST_PER_BIT_NS: u64 = 60;
/// Extra cost of walking to a miss (full-depth walk, no decode).
const COST_MISS_NS: u64 = 800;
/// Marginal cost per encoded response byte.
const COST_PER_BYTE_NS: u64 = 8;
/// Cost of rejecting a malformed body.
const COST_MALFORMED_NS: u64 = 900;
/// Cost of a generation-info probe.
const COST_GEN_NS: u64 = 700;

/// Simulator parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Total stream elements.
    pub requests: u64,
    /// Virtual worker chains (the modeled pool width).
    pub virtual_workers: u64,
    /// Backlog age beyond which a request is shed, mirroring the
    /// bounded accept queue.
    pub shed_wait_ns: u64,
}

/// Aggregated virtual-time outcome. All fields are pure functions of
/// `(mix seed, SimConfig, corpus)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOutcome {
    /// Stream elements generated.
    pub requests: u64,
    /// Answered lookups and probes.
    pub served: u64,
    /// Requests shed by the backlog model.
    pub shed: u64,
    /// Malformed bodies rejected.
    pub malformed: u64,
    /// Lookups that matched.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Generation probes answered.
    pub gen_infos: u64,
    /// Virtual p50 response latency.
    pub latency_p50_ns: u64,
    /// Virtual p99 response latency.
    pub latency_p99_ns: u64,
    /// Virtual worst-case response latency.
    pub latency_max_ns: u64,
    /// Virtual makespan: when the last chain went idle.
    pub makespan_ns: u64,
    /// Served requests per virtual second.
    pub virtual_rate_per_sec: u64,
}

#[derive(Default)]
struct ChainOutcome {
    served: u64,
    shed: u64,
    malformed: u64,
    hits: u64,
    misses: u64,
    gen_infos: u64,
    latencies_ns: Vec<u64>,
    busy_until_ns: u64,
}

/// Service cost of one request, derived from the real outcome.
fn service_cost_ns(body: &[u8], reader: &AnyReader) -> (u64, ChainDelta) {
    match protocol::parse_request(body) {
        Err(_) => (COST_MALFORMED_NS, ChainDelta::Malformed),
        Ok(Request::Generation) => (COST_GEN_NS, ChainDelta::GenInfo),
        Ok(Request::Lookup(ip)) => {
            let matched = reader.match_len(ip).ok().flatten();
            match matched {
                Some(len) => {
                    // Encode the real response so the wire path is
                    // exercised and its size priced in.
                    let resp_len = reader
                        .try_lookup(ip)
                        .ok()
                        .flatten()
                        .map(|record| {
                            protocol::encode_response(&Response::Hit {
                                generation: 1,
                                record,
                            })
                            .len()
                        })
                        .unwrap_or(0);
                    let cost = COST_LOOKUP_BASE_NS
                        + COST_PER_BIT_NS * u64::from(len)
                        + COST_PER_BYTE_NS * u64::try_from(resp_len).expect("frame-capped");
                    (cost, ChainDelta::Hit)
                }
                None => (COST_LOOKUP_BASE_NS + COST_MISS_NS, ChainDelta::Miss),
            }
        }
    }
}

enum ChainDelta {
    Hit,
    Miss,
    GenInfo,
    Malformed,
}

fn run_chain(
    worker: u64,
    mix: &TrafficMix,
    config: &SimConfig,
    reader: &AnyReader,
) -> ChainOutcome {
    let mut out = ChainOutcome::default();
    let mut i = worker;
    while i < config.requests {
        let req = mix.request(i);
        let start = req.arrival_ns.max(out.busy_until_ns);
        let wait = start - req.arrival_ns;
        if wait > config.shed_wait_ns {
            // Backlog too old: the daemon would have shed at accept.
            out.shed += 1;
            i += config.virtual_workers;
            continue;
        }
        let (cost, delta) = service_cost_ns(&req.body, reader);
        match delta {
            ChainDelta::Hit => {
                out.hits += 1;
                out.served += 1;
            }
            ChainDelta::Miss => {
                out.misses += 1;
                out.served += 1;
            }
            ChainDelta::GenInfo => {
                out.gen_infos += 1;
                out.served += 1;
            }
            ChainDelta::Malformed => out.malformed += 1,
        }
        out.busy_until_ns = start + cost;
        out.latencies_ns.push(wait + cost);
        debug_assert_eq!(req.index, i);
        i += config.virtual_workers;
    }
    out
}

/// Index into a sorted latency vector at percentile `p` (nearest-rank).
fn percentile(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let last = sorted.len() - 1;
    let ix = (last * usize::try_from(p).expect("percentile <= 100")) / 100;
    sorted.get(ix).copied().expect("index bounded by len - 1")
}

/// Run the simulation, sharding one chain per virtual worker.
pub fn run_sim(
    mix: &TrafficMix,
    config: &SimConfig,
    reader: &AnyReader,
    pool: &Pool,
) -> SimOutcome {
    let workers = usize::try_from(config.virtual_workers.max(1)).expect("worker count is small");
    let chains = pool.run_shards(0xC0FF_EE00, workers, 1, |shard| {
        run_chain(
            u64::try_from(shard.index).expect("worker index is small"),
            mix,
            config,
            reader,
        )
    });
    let mut out = SimOutcome {
        requests: config.requests,
        served: 0,
        shed: 0,
        malformed: 0,
        hits: 0,
        misses: 0,
        gen_infos: 0,
        latency_p50_ns: 0,
        latency_p99_ns: 0,
        latency_max_ns: 0,
        makespan_ns: 0,
        virtual_rate_per_sec: 0,
    };
    let mut latencies: Vec<u64> = Vec::new();
    for chain in chains {
        out.served += chain.served;
        out.shed += chain.shed;
        out.malformed += chain.malformed;
        out.hits += chain.hits;
        out.misses += chain.misses;
        out.gen_infos += chain.gen_infos;
        out.makespan_ns = out.makespan_ns.max(chain.busy_until_ns);
        latencies.extend(chain.latencies_ns);
    }
    latencies.sort_unstable();
    out.latency_p50_ns = percentile(&latencies, 50);
    out.latency_p99_ns = percentile(&latencies, 99);
    out.latency_max_ns = latencies.last().copied().unwrap_or(0);
    if out.makespan_ns > 0 {
        out.virtual_rate_per_sec = out.served.saturating_mul(1_000_000_000) / out.makespan_ns;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Corpus;
    use crate::mix::MixWeights;
    use routergeo_db::rgdb2::AnyReader;

    fn fixture() -> (TrafficMix, AnyReader) {
        let corpus = Corpus::new(96);
        let image = corpus.image(1);
        let mix = TrafficMix::new(7, corpus, MixWeights::default(), 600);
        (mix, AnyReader::open(image).expect("image validates"))
    }

    #[test]
    fn conservation_requests_equal_served_plus_shed_plus_malformed() {
        let (mix, reader) = fixture();
        let config = SimConfig {
            requests: 5_000,
            virtual_workers: 4,
            shed_wait_ns: 2_000_000,
        };
        let out = run_sim(&mix, &config, &reader, &Pool::serial());
        assert_eq!(out.requests, out.served + out.shed + out.malformed);
        assert_eq!(out.served, out.hits + out.misses + out.gen_infos);
        assert!(out.hits > 0 && out.misses > 0 && out.malformed > 0);
        assert!(out.latency_p99_ns >= out.latency_p50_ns);
        assert!(out.latency_max_ns >= out.latency_p99_ns);
        assert!(out.virtual_rate_per_sec > 0);
    }

    #[test]
    fn outcome_is_identical_across_thread_counts() {
        let (mix, reader) = fixture();
        let config = SimConfig {
            requests: 3_000,
            virtual_workers: 4,
            shed_wait_ns: 2_000_000,
        };
        let serial = run_sim(&mix, &config, &reader, &Pool::serial());
        for threads in [2, 8] {
            let parallel = run_sim(&mix, &config, &reader, &Pool::new(threads));
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn overload_sheds_and_underload_does_not() {
        let (mix, reader) = fixture();
        let overloaded = run_sim(
            &mix,
            &SimConfig {
                requests: 8_000,
                virtual_workers: 1,
                shed_wait_ns: 100_000,
            },
            &reader,
            &Pool::serial(),
        );
        assert!(overloaded.shed > 0, "1 chain at 600ns spacing must shed");
        let idle_mix = TrafficMix::new(7, Corpus::new(96), MixWeights::default(), 1_000_000);
        let relaxed = run_sim(
            &idle_mix,
            &SimConfig {
                requests: 1_000,
                virtual_workers: 4,
                shed_wait_ns: 100_000,
            },
            &reader,
            &Pool::serial(),
        );
        assert_eq!(relaxed.shed, 0, "1ms spacing never builds a backlog");
    }
}

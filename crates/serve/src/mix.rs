//! Seeded traffic mixes: the request stream the loadgen replays.
//!
//! Request `i` is a **pure function of `(seed, i)`** — generation never
//! consumes shared RNG state — so any subset of the stream can be
//! produced independently, in any order, on any thread. That is what
//! lets the simulator shard the stream across virtual workers and still
//! merge a byte-identical report at 1, 2, or 8 threads.
//!
//! The mix follows the shapes "Lost in the Prefix" observed in real
//! lookup traffic: a Zipf-weighted hot set (popular prefixes dominate),
//! a uniform cold scan (mostly misses), a sliver of generation probes,
//! and a malformed-frame component exercising the rejection path.

use crate::corpus::Corpus;
use crate::protocol::{self, Request};
use bytes::Bytes;
use routergeo_pool::splitmix64;
use std::net::Ipv4Addr;

/// Weighted request classes, percent of the stream.
#[derive(Debug, Clone, Copy)]
pub struct MixWeights {
    /// Zipf-hot lookups over the corpus (always hits).
    pub zipf_pct: u64,
    /// Uniform cold-scan lookups (mostly misses).
    pub cold_pct: u64,
    /// Malformed request bodies.
    pub malformed_pct: u64,
    // Remainder: generation-info probes.
}

impl Default for MixWeights {
    fn default() -> MixWeights {
        MixWeights {
            zipf_pct: 65,
            cold_pct: 20,
            malformed_pct: 10,
        }
    }
}

/// What the stream element is, for accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixKind {
    /// Zipf-hot lookup of `hit_addr(rank)`.
    ZipfLookup,
    /// Uniform cold-scan lookup.
    ColdLookup,
    /// A malformed request body.
    Malformed,
    /// Generation-info probe.
    Generation,
}

/// One generated request.
#[derive(Debug, Clone)]
pub struct MixRequest {
    /// Stream index.
    pub index: u64,
    /// Virtual arrival time.
    pub arrival_ns: u64,
    /// Request body bytes as they would appear inside a frame.
    pub body: Bytes,
    /// Class the request was drawn from.
    pub kind: MixKind,
}

/// Malformed body shapes the mix cycles through. All are intact frames
/// (the length prefix is honest) whose *bodies* are nonsense, so the
/// daemon answers `MALFORMED` and keeps the connection.
const MALFORMED_BODIES: [&[u8]; 4] = [
    &[0xEE],                               // unknown op
    &[protocol::OP_LOOKUP, 1, 2],          // short lookup payload
    &[protocol::OP_LOOKUP, 1, 2, 3, 4, 5], // long lookup payload
    &[protocol::OP_GENERATION, 9],         // generation probe with payload
];

/// The seeded stream generator.
#[derive(Debug, Clone)]
pub struct TrafficMix {
    seed: u64,
    corpus: Corpus,
    weights: MixWeights,
    interarrival_ns: u64,
    /// Cumulative fixed-point Zipf weights over corpus ranks.
    zipf_cum: Vec<u64>,
}

impl TrafficMix {
    /// Build a stream over `corpus` with `weights`, one arrival every
    /// `interarrival_ns` of virtual time.
    pub fn new(seed: u64, corpus: Corpus, weights: MixWeights, interarrival_ns: u64) -> TrafficMix {
        // Fixed-point harmonic weights: w_k ∝ 1/(k+1), scaled so even the
        // coldest rank keeps a nonzero integer weight.
        const SCALE: u64 = 1 << 16;
        let mut zipf_cum = Vec::with_capacity(corpus.records());
        let mut acc = 0u64;
        for k in 0..corpus.records() {
            acc += SCALE / (u64::try_from(k).expect("record count bounded") + 1);
            zipf_cum.push(acc);
        }
        TrafficMix {
            seed,
            corpus,
            weights,
            interarrival_ns,
            zipf_cum,
        }
    }

    /// The corpus this mix draws from.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// Draw the Zipf rank for a uniform `u64`.
    fn zipf_rank(&self, draw: u64) -> usize {
        let total = *self.zipf_cum.last().expect("corpus is non-empty");
        let target = draw % total;
        // First rank whose cumulative weight exceeds the target.
        self.zipf_cum.partition_point(|&c| c <= target)
    }

    /// Generate stream element `i`.
    pub fn request(&self, i: u64) -> MixRequest {
        let r0 = splitmix64(self.seed, i);
        let class = r0 % 100;
        let draw = splitmix64(r0, 1);
        let w = &self.weights;
        let (kind, body) = if class < w.zipf_pct {
            let rank = self.zipf_rank(draw);
            let addr = self.corpus.hit_addr(rank);
            (
                MixKind::ZipfLookup,
                protocol::encode_request(&Request::Lookup(addr)),
            )
        } else if class < w.zipf_pct + w.cold_pct {
            let addr =
                Ipv4Addr::from(u32::try_from(draw & 0xFFFF_FFFF).expect("masked to 32 bits"));
            (
                MixKind::ColdLookup,
                protocol::encode_request(&Request::Lookup(addr)),
            )
        } else if class < w.zipf_pct + w.cold_pct + w.malformed_pct {
            let shape =
                usize::try_from(draw % u64::try_from(MALFORMED_BODIES.len()).expect("small"))
                    .expect("bounded by table length");
            (
                MixKind::Malformed,
                Bytes::from(MALFORMED_BODIES[shape].to_vec()),
            )
        } else {
            (
                MixKind::Generation,
                protocol::encode_request(&Request::Generation),
            )
        };
        MixRequest {
            index: i,
            arrival_ns: i * self.interarrival_ns,
            body,
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> TrafficMix {
        TrafficMix::new(42, Corpus::new(128), MixWeights::default(), 20_000)
    }

    #[test]
    fn stream_is_a_pure_function_of_seed_and_index() {
        let a = mix();
        let b = mix();
        // Out-of-order and repeated generation agree byte-for-byte.
        for i in [0u64, 17, 3, 999, 17, 0] {
            let ra = a.request(i);
            let rb = b.request(i);
            assert_eq!(ra.body, rb.body, "request {i}");
            assert_eq!(ra.kind, rb.kind);
            assert_eq!(ra.arrival_ns, i * 20_000);
        }
    }

    #[test]
    fn mix_contains_every_class_at_roughly_the_asked_weights() {
        let m = mix();
        let mut counts = [0u64; 4];
        let n = 4_000u64;
        for i in 0..n {
            let slot = match m.request(i).kind {
                MixKind::ZipfLookup => 0,
                MixKind::ColdLookup => 1,
                MixKind::Malformed => 2,
                MixKind::Generation => 3,
            };
            counts[slot] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
        // Zipf dominates; malformed stays a sliver.
        assert!(counts[0] > counts[1] && counts[1] > counts[2], "{counts:?}");
    }

    #[test]
    fn zipf_is_head_heavy() {
        let m = mix();
        let mut rank0 = 0u64;
        let mut tail = 0u64;
        for i in 0..8_000u64 {
            let req = m.request(i);
            if req.kind != MixKind::ZipfLookup {
                continue;
            }
            let r0 = splitmix64(42, i);
            let rank = m.zipf_rank(splitmix64(r0, 1));
            if rank == 0 {
                rank0 += 1;
            } else if rank >= 64 {
                tail += 1;
            }
        }
        assert!(
            rank0 > tail,
            "rank 0 ({rank0}) should outweigh the 64+ tail ({tail})"
        );
    }

    #[test]
    fn malformed_bodies_are_rejected_by_the_parser() {
        for body in MALFORMED_BODIES {
            assert!(protocol::parse_request(body).is_err());
        }
    }
}

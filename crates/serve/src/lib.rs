//! `routergeo-serve` — the serving story for the RGDB format.
//!
//! The paper's premise is operators consulting geolocation databases on
//! **live traffic**, and its vendors re-release databases continuously —
//! so the repo's serving layer needs two things a batch pipeline never
//! exercises: a long-lived daemon with production back-pressure, and
//! atomic hot-swap between database generations. This crate provides
//! both, plus the deterministic loadgen that gates them in CI:
//!
//! * [`protocol`] — length-prefixed binary framing, request/response
//!   bodies, and the bounded-read frame decoder;
//! * [`daemon`] — [`ServeDaemon`]: bounded worker pool with explicit
//!   load shed and per-connection deadlines (the bulk-whois server's
//!   discipline), per-request latency histograms via `routergeo-obs`,
//!   and [`ServeDaemon::hot_swap`] — open/validate release N+1 while N
//!   serves, flip an `Arc` under an `RwLock`, drain old readers;
//! * [`corpus`] — paired deterministic RGDB generations whose record
//!   payloads are generation-tagged, making torn reads detectable and
//!   swap-phase tallies deterministic;
//! * [`mix`] — seeded traffic mixes (Zipf-hot, cold scan, malformed,
//!   generation probes) where element `i` is a pure function of
//!   `(seed, i)`;
//! * [`sim`] — the virtual-time engine: real parse/lookup/encode work,
//!   integer-nanosecond costs, shardable per virtual worker — the
//!   source of the byte-deterministic numbers in `serve_ci.json`;
//! * [`live`] — real-TCP phases: hot swap under concurrent load,
//!   raw-socket abuse, scripted faultnet chaos, and the ratio-gated
//!   wall-clock measurements;
//! * [`report`] — the deterministic JSON artifact and the
//!   ratio-normalized gate thresholds.
//!
//! The `loadgen` binary ties it together for `cargo xtask serve-check`
//! and the `serve-loadgen` CI gate.

pub mod corpus;
pub mod daemon;
pub mod live;
pub mod mix;
pub mod protocol;
pub mod report;
pub mod sim;

pub use corpus::Corpus;
pub use daemon::{Generation, ServeConfig, ServeDaemon, ServeError, ServeStats, SwapReport};
pub use live::{AbuseOutcome, ServeClient, SwapOutcome, WallStats};
pub use mix::{MixKind, MixRequest, MixWeights, TrafficMix};
pub use protocol::{ProtoError, Request, Response, MAX_FRAME};
pub use report::{gate_violations, ServeReport};
pub use sim::{SimConfig, SimOutcome};

use routergeo_db::rgdb2::AnyReader;
use routergeo_pool::Pool;

/// The full loadgen plan — a pure function of `(budget_ms, seed)`, like
/// the fuzz harness's trial plan, so a fixed budget always produces the
/// same virtual workload and the same deterministic report.
#[derive(Debug, Clone, Copy)]
pub struct LoadgenConfig {
    /// Mix seed.
    pub seed: u64,
    /// Wall-time budget the plan is sized for.
    pub budget_ms: u64,
    /// Corpus records per generation.
    pub records: usize,
    /// Simulated stream length.
    pub sim_requests: u64,
    /// Virtual worker chains.
    pub virtual_workers: u64,
    /// Virtual inter-arrival gap (mild overload by design, so the shed
    /// path stays exercised).
    pub interarrival_ns: u64,
    /// Virtual backlog age that triggers a shed.
    pub shed_wait_ns: u64,
    /// Concurrent clients in the swap phase.
    pub swap_clients: u64,
    /// Round-trip lookups per swap-phase client.
    pub swap_lookups: u64,
    /// Sequential latency probes in the wall phase.
    pub wall_probes: u64,
    /// Pipelined batches in the wall phase.
    pub wall_batches: u64,
    /// Requests per pipelined batch.
    pub wall_depth: u64,
}

impl LoadgenConfig {
    /// Derive the plan from a budget. Clamps keep a tiny budget
    /// meaningful and a huge one bounded.
    pub fn from_budget(budget_ms: u64, seed: u64) -> LoadgenConfig {
        LoadgenConfig {
            seed,
            budget_ms,
            records: 256,
            sim_requests: budget_ms.saturating_mul(4).clamp(2_000, 48_000),
            virtual_workers: 4,
            interarrival_ns: 500,
            shed_wait_ns: 2_000_000,
            swap_clients: 4,
            swap_lookups: (budget_ms / 40).clamp(50, 300),
            wall_probes: (budget_ms / 10).clamp(100, 1_500),
            wall_batches: (budget_ms / 100).clamp(10, 120),
            wall_depth: 32,
        }
    }
}

/// Everything one loadgen run produces: the deterministic report (the
/// CI artifact) and the wall-clock side channel (stderr + ratio gates).
#[derive(Debug)]
pub struct LoadgenOutcome {
    /// Deterministic report — `serve_ci.json`.
    pub report: ServeReport,
    /// Wall-clock measurements for the ratio gates.
    pub wall: WallStats,
}

/// Run the full loadgen: sim, swap-under-load, abuse, wall clock.
///
/// `pool` shards only the virtual-time sim; the live phases use their
/// own bounded I/O threads, so the report is byte-identical at any
/// pool width.
pub fn run_loadgen(config: &LoadgenConfig, pool: &Pool) -> Result<LoadgenOutcome, ServeError> {
    let corpus = Corpus::new(config.records);
    let mix = TrafficMix::new(
        config.seed,
        corpus,
        MixWeights::default(),
        config.interarrival_ns,
    );
    let reader = AnyReader::open(corpus.image(1))?;
    let sim = sim::run_sim(
        &mix,
        &SimConfig {
            requests: config.sim_requests,
            virtual_workers: config.virtual_workers,
            shed_wait_ns: config.shed_wait_ns,
        },
        &reader,
        pool,
    );
    let swap = live::run_swap_phase(
        &corpus,
        config.seed,
        config.swap_clients,
        config.swap_lookups,
    )?;
    let abuse = live::run_abuse_phase(&corpus)?;
    let wall = live::run_wall_phase(
        &corpus,
        config.seed,
        config.wall_probes,
        config.wall_batches,
        config.wall_depth,
    )?;
    Ok(LoadgenOutcome {
        report: ServeReport {
            seed: config.seed,
            budget_ms: config.budget_ms,
            records: u64::try_from(corpus.records()).expect("record count bounded"),
            virtual_workers: config.virtual_workers,
            sim,
            swap,
            abuse,
        },
        wall,
    })
}

//! Wire protocol for the lookup daemon.
//!
//! Framing is length-prefixed: every message on the wire is a `u32`
//! little-endian body length followed by exactly that many body bytes.
//! Bodies are capped at [`MAX_FRAME`] bytes — the largest legitimate
//! message (a hit response carrying a full record) is well under 600
//! bytes, so anything bigger is an attack or a desynchronized peer and
//! the connection is closed rather than resynchronized.
//!
//! Request bodies start with an op byte:
//!
//! * `0x01 LOOKUP` — followed by the 4 big-endian IPv4 octets;
//! * `0x02 GENERATION` — no payload; asks which database generation is
//!   currently live.
//!
//! Response bodies start with a status byte:
//!
//! * `0x00 HIT` — generation `u32` LE, then the encoded record;
//! * `0x01 MISS` — generation `u32` LE;
//! * `0x02 BUSY` — load shed: the worker queue was full at accept;
//! * `0x03 MALFORMED` — length-prefixed reason string; sent before the
//!   server closes a connection whose framing can no longer be trusted,
//!   or inline (connection kept) when the frame was intact but the body
//!   was nonsense;
//! * `0x04 ERROR` — generation `u32` LE plus a reason: the lookup
//!   itself failed (latent image corruption). Never expected in CI.
//! * `0x05 GEN` — generation `u32` LE, record count `u32` LE, and the
//!   database name.
//!
//! The record encoding mirrors the RGDB data-section layout (flags,
//! granularity id, optional country/region/city/coordinate fields) but
//! is versioned independently — the daemon re-encodes the decoded
//! record rather than leaking image bytes, so a future RGDB v2 does not
//! change the wire format.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use routergeo_db::{Granularity, LocationRecord};
use routergeo_geo::{Coordinate, CountryCode};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::Ipv4Addr;

/// Maximum frame body length accepted in either direction.
pub const MAX_FRAME: u32 = 512;

/// Request op: longest-prefix lookup of one IPv4 address.
pub const OP_LOOKUP: u8 = 0x01;
/// Request op: report the live database generation.
pub const OP_GENERATION: u8 = 0x02;

const ST_HIT: u8 = 0x00;
const ST_MISS: u8 = 0x01;
const ST_BUSY: u8 = 0x02;
const ST_MALFORMED: u8 = 0x03;
const ST_ERROR: u8 = 0x04;
const ST_GEN: u8 = 0x05;

/// A parsed request body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Longest-prefix lookup of one address.
    Lookup(Ipv4Addr),
    /// Which generation is live?
    Generation,
}

/// A parsed response body.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The lookup matched; `generation` served it.
    Hit {
        /// Database generation that answered.
        generation: u32,
        /// The matched record.
        record: LocationRecord,
    },
    /// No prefix covers the address.
    Miss {
        /// Database generation that answered.
        generation: u32,
    },
    /// Load shed at accept: the worker queue was full.
    Busy,
    /// The request could not be parsed.
    Malformed {
        /// Why the server rejected it.
        reason: String,
    },
    /// The lookup failed server-side (latent image corruption).
    ServerError {
        /// Database generation that failed.
        generation: u32,
        /// Failure description.
        reason: String,
    },
    /// Answer to [`Request::Generation`].
    GenerationInfo {
        /// Live generation id.
        generation: u32,
        /// Deduplicated record count in the live image.
        record_count: u32,
        /// Database name from the image header.
        name: String,
    },
}

/// Protocol-level failures, attributed: framing versus body versus I/O.
#[derive(Debug)]
pub enum ProtoError {
    /// The peer announced a body longer than [`MAX_FRAME`].
    FrameTooLarge(u32),
    /// The peer announced a zero-length body.
    EmptyFrame,
    /// The frame was intact but the body did not parse.
    Malformed(&'static str),
    /// Transport failure.
    Io(io::Error),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::FrameTooLarge(n) => {
                write!(
                    f,
                    "frame body of {n} bytes exceeds the {MAX_FRAME}-byte cap"
                )
            }
            ProtoError::EmptyFrame => f.write_str("zero-length frame body"),
            ProtoError::Malformed(why) => write!(f, "malformed body: {why}"),
            ProtoError::Io(err) => write!(f, "i/o: {err}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(err: io::Error) -> ProtoError {
        ProtoError::Io(err)
    }
}

/// Quantize a coordinate component to integer micro-degrees.
#[allow(clippy::cast_possible_truncation)] // bounded below; see waiver
fn micro_deg(deg: f64) -> i32 {
    let scaled = (deg * 1e6).round();
    // Coordinate invariants bound |deg| by 180, so the scaled value stays
    // far inside i32 range and the cast below cannot truncate.
    scaled as i32
}

fn put_str255(out: &mut BytesMut, s: &str) {
    let bytes = s.as_bytes();
    let take = bytes.len().min(255);
    let len = u8::try_from(take).expect("length capped at 255");
    out.put_u8(len);
    out.put_slice(bytes.get(..take).unwrap_or(bytes));
}

fn put_record(out: &mut BytesMut, rec: &LocationRecord) {
    let mut flags = 0u8;
    if rec.country.is_some() {
        flags |= 1;
    }
    if rec.region.is_some() {
        flags |= 2;
    }
    if rec.city.is_some() {
        flags |= 4;
    }
    if rec.coord.is_some() {
        flags |= 8;
    }
    out.put_u8(flags);
    out.put_u8(rec.granularity.id());
    if let Some(cc) = rec.country {
        out.put_slice(&cc.bytes());
    }
    if let Some(region) = &rec.region {
        put_str255(out, region);
    }
    if let Some(city) = &rec.city {
        put_str255(out, city);
    }
    if let Some(coord) = rec.coord {
        out.put_i32_le(micro_deg(coord.lat()));
        out.put_i32_le(micro_deg(coord.lon()));
    }
}

fn get_str255(buf: &mut &[u8]) -> Result<String, ProtoError> {
    if buf.is_empty() {
        return Err(ProtoError::Malformed("string length byte missing"));
    }
    let len = usize::from(buf.get_u8());
    let bytes = buf
        .get(..len)
        .ok_or(ProtoError::Malformed("string bytes truncated"))?;
    let s = std::str::from_utf8(bytes)
        .map_err(|_| ProtoError::Malformed("string is not UTF-8"))?
        .to_string();
    buf.advance(len);
    Ok(s)
}

fn get_record(buf: &mut &[u8]) -> Result<LocationRecord, ProtoError> {
    if buf.len() < 2 {
        return Err(ProtoError::Malformed("record header truncated"));
    }
    let flags = buf.get_u8();
    let granularity = Granularity::from_id(buf.get_u8())
        .ok_or(ProtoError::Malformed("unknown granularity id"))?;
    let country = if flags & 1 != 0 {
        if buf.len() < 2 {
            return Err(ProtoError::Malformed("country code truncated"));
        }
        let a = buf.get_u8();
        let b = buf.get_u8();
        Some(CountryCode::new(a, b).ok_or(ProtoError::Malformed("non-ASCII country code"))?)
    } else {
        None
    };
    let region = if flags & 2 != 0 {
        Some(get_str255(buf)?)
    } else {
        None
    };
    let city = if flags & 4 != 0 {
        Some(get_str255(buf)?)
    } else {
        None
    };
    let coord = if flags & 8 != 0 {
        if buf.len() < 8 {
            return Err(ProtoError::Malformed("coordinate pair truncated"));
        }
        let lat = f64::from(buf.get_i32_le()) / 1e6;
        let lon = f64::from(buf.get_i32_le()) / 1e6;
        Some(
            Coordinate::new(lat, lon)
                .map_err(|_| ProtoError::Malformed("coordinate out of range"))?,
        )
    } else {
        None
    };
    Ok(LocationRecord {
        country,
        region,
        city,
        coord,
        granularity,
    })
}

/// Encode a request body (no length prefix).
pub fn encode_request(req: &Request) -> Bytes {
    let mut out = BytesMut::with_capacity(8);
    match req {
        Request::Lookup(ip) => {
            out.put_u8(OP_LOOKUP);
            out.put_slice(&ip.octets());
        }
        Request::Generation => out.put_u8(OP_GENERATION),
    }
    out.freeze()
}

/// Parse a request body. The caller has already validated framing.
pub fn parse_request(mut body: &[u8]) -> Result<Request, ProtoError> {
    if body.is_empty() {
        return Err(ProtoError::Malformed("empty request body"));
    }
    let op = body.get_u8();
    match op {
        OP_LOOKUP => {
            if body.len() != 4 {
                return Err(ProtoError::Malformed("lookup payload is not 4 octets"));
            }
            Ok(Request::Lookup(Ipv4Addr::new(
                body[0], body[1], body[2], body[3],
            )))
        }
        OP_GENERATION => {
            if !body.is_empty() {
                return Err(ProtoError::Malformed("generation request carries payload"));
            }
            Ok(Request::Generation)
        }
        _ => Err(ProtoError::Malformed("unknown op byte")),
    }
}

/// Encode a response body (no length prefix).
pub fn encode_response(resp: &Response) -> Bytes {
    let mut out = BytesMut::with_capacity(32);
    match resp {
        Response::Hit { generation, record } => {
            out.put_u8(ST_HIT);
            out.put_u32_le(*generation);
            put_record(&mut out, record);
        }
        Response::Miss { generation } => {
            out.put_u8(ST_MISS);
            out.put_u32_le(*generation);
        }
        Response::Busy => out.put_u8(ST_BUSY),
        Response::Malformed { reason } => {
            out.put_u8(ST_MALFORMED);
            put_str255(&mut out, reason);
        }
        Response::ServerError { generation, reason } => {
            out.put_u8(ST_ERROR);
            out.put_u32_le(*generation);
            put_str255(&mut out, reason);
        }
        Response::GenerationInfo {
            generation,
            record_count,
            name,
        } => {
            out.put_u8(ST_GEN);
            out.put_u32_le(*generation);
            out.put_u32_le(*record_count);
            put_str255(&mut out, name);
        }
    }
    out.freeze()
}

/// Parse a response body.
pub fn parse_response(mut body: &[u8]) -> Result<Response, ProtoError> {
    if body.is_empty() {
        return Err(ProtoError::Malformed("empty response body"));
    }
    let status = body.get_u8();
    let gen_u32 = |buf: &mut &[u8]| -> Result<u32, ProtoError> {
        if buf.len() < 4 {
            return Err(ProtoError::Malformed("generation field truncated"));
        }
        Ok(buf.get_u32_le())
    };
    match status {
        ST_HIT => {
            let generation = gen_u32(&mut body)?;
            let record = get_record(&mut body)?;
            if !body.is_empty() {
                return Err(ProtoError::Malformed("trailing bytes after record"));
            }
            Ok(Response::Hit { generation, record })
        }
        ST_MISS => {
            let generation = gen_u32(&mut body)?;
            if !body.is_empty() {
                return Err(ProtoError::Malformed("trailing bytes after miss"));
            }
            Ok(Response::Miss { generation })
        }
        ST_BUSY => {
            if !body.is_empty() {
                return Err(ProtoError::Malformed("trailing bytes after busy"));
            }
            Ok(Response::Busy)
        }
        ST_MALFORMED => Ok(Response::Malformed {
            reason: get_str255(&mut body)?,
        }),
        ST_ERROR => {
            let generation = gen_u32(&mut body)?;
            Ok(Response::ServerError {
                generation,
                reason: get_str255(&mut body)?,
            })
        }
        ST_GEN => {
            let generation = gen_u32(&mut body)?;
            if body.len() < 4 {
                return Err(ProtoError::Malformed("record count truncated"));
            }
            let record_count = body.get_u32_le();
            Ok(Response::GenerationInfo {
                generation,
                record_count,
                name: get_str255(&mut body)?,
            })
        }
        _ => Err(ProtoError::Malformed("unknown status byte")),
    }
}

/// Write one length-prefixed frame as a **single** `write_all` — prefix
/// and body in one segment, so Nagle's algorithm never holds the body
/// hostage to a delayed ACK on the prefix.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len()).expect("frame bodies are capped well under u32::MAX");
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(body);
    w.write_all(&frame)
}

/// Read one length-prefixed frame body.
///
/// Returns `Ok(None)` on clean EOF **at a frame boundary** — the peer
/// finished and closed. EOF inside a frame, an oversize length, or a
/// zero length are errors; after any of them the stream can no longer
/// be trusted and the caller must close it.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Bytes>, ProtoError> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        let n = r.read(
            len_bytes
                .get_mut(filled..)
                .expect("filled < 4 keeps the range in bounds"),
        )?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(ProtoError::Malformed("EOF inside frame length"));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 {
        return Err(ProtoError::EmptyFrame);
    }
    if len > MAX_FRAME {
        return Err(ProtoError::FrameTooLarge(len));
    }
    let mut body = vec![0u8; usize::try_from(len).expect("MAX_FRAME fits in usize")];
    r.read_exact(&mut body)
        .map_err(|_| ProtoError::Malformed("EOF inside frame body"))?;
    Ok(Some(Bytes::from(body)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_record() -> LocationRecord {
        LocationRecord {
            country: Some("DE".parse().expect("valid code")),
            region: Some("Hessen".into()),
            city: Some("Frankfurt".into()),
            coord: Some(Coordinate::new(50.110924, 8.682127).expect("valid coordinate")),
            granularity: Granularity::SubBlock,
        }
    }

    #[test]
    fn request_roundtrip() {
        for req in [
            Request::Lookup(Ipv4Addr::new(10, 3, 0, 77)),
            Request::Generation,
        ] {
            let body = encode_request(&req);
            assert_eq!(parse_request(&body).expect("roundtrip"), req);
        }
    }

    #[test]
    fn response_roundtrip() {
        let cases = vec![
            Response::Hit {
                generation: 7,
                record: full_record(),
            },
            Response::Hit {
                generation: 1,
                record: LocationRecord::empty(),
            },
            Response::Miss { generation: 2 },
            Response::Busy,
            Response::Malformed {
                reason: "unknown op byte".into(),
            },
            Response::ServerError {
                generation: 3,
                reason: "corrupt RGDB image".into(),
            },
            Response::GenerationInfo {
                generation: 4,
                record_count: 128,
                name: "Vendor-A".into(),
            },
        ];
        for resp in cases {
            let body = encode_response(&resp);
            assert!(body.len() <= usize::try_from(MAX_FRAME).expect("cap fits"));
            assert_eq!(parse_response(&body).expect("roundtrip"), resp);
        }
    }

    #[test]
    fn hit_coordinates_quantize_to_micro_degrees() {
        let resp = Response::Hit {
            generation: 1,
            record: full_record(),
        };
        let parsed = parse_response(&encode_response(&resp)).expect("roundtrip");
        let Response::Hit { record, .. } = parsed else {
            panic!("status changed in roundtrip");
        };
        let coord = record.coord.expect("coordinate survives");
        assert!((coord.lat() - 50.110924).abs() < 1e-5);
        assert!((coord.lon() - 8.682127).abs() < 1e-5);
    }

    #[test]
    fn malformed_bodies_are_rejected() {
        assert!(parse_request(&[]).is_err());
        assert!(parse_request(&[0xEE]).is_err(), "unknown op");
        assert!(parse_request(&[OP_LOOKUP, 1, 2]).is_err(), "short payload");
        assert!(
            parse_request(&[OP_LOOKUP, 1, 2, 3, 4, 5]).is_err(),
            "long payload"
        );
        assert!(
            parse_request(&[OP_GENERATION, 0]).is_err(),
            "unexpected payload"
        );
        assert!(parse_response(&[]).is_err());
        assert!(parse_response(&[0xEE]).is_err(), "unknown status");
        assert!(parse_response(&[ST_HIT, 1, 0]).is_err(), "truncated hit");
    }

    #[test]
    fn framing_roundtrip_and_limits() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abc").expect("write");
        write_frame(&mut wire, b"defg").expect("write");
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(
            read_frame(&mut cursor).expect("first frame").as_deref(),
            Some(b"abc".as_slice())
        );
        assert_eq!(
            read_frame(&mut cursor).expect("second frame").as_deref(),
            Some(b"defg".as_slice())
        );
        assert!(read_frame(&mut cursor).expect("clean EOF").is_none());

        // Zero-length and oversize frames are framing violations.
        let mut zero = std::io::Cursor::new(vec![0, 0, 0, 0]);
        assert!(matches!(read_frame(&mut zero), Err(ProtoError::EmptyFrame)));
        let big = (MAX_FRAME + 1).to_le_bytes().to_vec();
        let mut big = std::io::Cursor::new(big);
        assert!(matches!(
            read_frame(&mut big),
            Err(ProtoError::FrameTooLarge(_))
        ));

        // EOF mid-frame is attributed, not a clean close.
        let mut torn = std::io::Cursor::new(vec![8, 0, 0, 0, 1, 2]);
        assert!(read_frame(&mut torn).is_err());
    }
}

//! The lookup daemon: bounded worker pool over hot-swappable RGDB
//! generations.
//!
//! The concurrency discipline is the bulk-whois server's, transplanted:
//! an accept thread `try_send`s connections into a bounded
//! `sync_channel`; overflow is an **explicit load shed** (one `BUSY`
//! frame, then a gentle close) rather than an unbounded backlog; every
//! connection carries read/write deadlines so a stalled peer can wedge
//! at most one worker for a bounded time.
//!
//! Generations: the live database is an `Arc<Generation>` behind an
//! `RwLock`. Lookups clone the `Arc` under a read lock held for
//! nanoseconds, then resolve against that pinned generation — a swap
//! mid-request is invisible to the request. [`ServeDaemon::hot_swap`]
//! opens and validates the next image on the caller's thread (release N
//! keeps serving while N+1 loads), flips the pointer under the write
//! lock, then drains: bounded polling until the old generation's
//! strong count falls to 1, i.e. every in-flight reader has finished.

use crate::protocol::{self, ProtoError, Request, Response};
use bytes::Bytes;
use routergeo_db::rgdb::RgdbError;
use routergeo_db::rgdb2::AnyReader;
use routergeo_db::FileImage;
use std::fmt;
use std::io::{Read, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs for [`ServeDaemon::spawn_with`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Bounded handoff queue depth; overflow is shed as `BUSY`.
    pub queue_depth: usize,
    /// Per-connection read deadline.
    pub read_timeout: Duration,
    /// Per-connection write deadline.
    pub write_timeout: Duration,
    /// Sleep between drain polls (swap and shutdown).
    pub drain_poll: Duration,
    /// Maximum drain polls before giving up.
    pub drain_polls_max: u32,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            queue_depth: 16,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            drain_poll: Duration::from_millis(2),
            drain_polls_max: 500,
        }
    }
}

/// One immutable database generation: a validated RGDB reader plus the
/// monotonically increasing id responses carry.
pub struct Generation {
    id: u32,
    reader: AnyReader,
}

impl Generation {
    /// Generation id (1-based; each swap increments).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The underlying validated reader (either format version).
    pub fn reader(&self) -> &AnyReader {
        &self.reader
    }
}

/// Failures spawning or swapping the daemon.
#[derive(Debug)]
pub enum ServeError {
    /// Socket setup failed.
    Io(std::io::Error),
    /// The RGDB image did not validate.
    Db(RgdbError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(err) => write!(f, "serve i/o: {err}"),
            ServeError::Db(err) => write!(f, "serve db: {err}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(err: std::io::Error) -> ServeError {
        ServeError::Io(err)
    }
}

impl From<RgdbError> for ServeError {
    fn from(err: RgdbError) -> ServeError {
        ServeError::Db(err)
    }
}

/// Outcome of one [`ServeDaemon::hot_swap`].
#[derive(Debug, Clone, Copy)]
pub struct SwapReport {
    /// Generation that was retired.
    pub old_generation: u32,
    /// Generation now live.
    pub new_generation: u32,
    /// Whether every in-flight reader of the old generation finished
    /// within the drain budget.
    pub drained: bool,
    /// Drain polls performed (0 = no reader was in flight).
    pub drain_polls: u32,
}

#[derive(Default)]
struct AtomicStats {
    requests: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    malformed: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    errors: AtomicU64,
    swaps: AtomicU64,
}

/// Snapshot of the daemon's request accounting. The conservation law
/// `requests == served + shed + malformed` holds at rest (between
/// requests) — the same identity `cargo xtask obs-check` enforces on
/// the global `serve.*` counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Frames (or shed connections) that entered accounting.
    pub requests: u64,
    /// Requests answered (hit, miss, generation info, or server error).
    pub served: u64,
    /// Connections shed at accept with `BUSY`.
    pub shed: u64,
    /// Frames rejected as malformed (framing or body).
    pub malformed: u64,
    /// Lookups that matched a prefix.
    pub hits: u64,
    /// Lookups no prefix covered.
    pub misses: u64,
    /// Lookups that failed server-side.
    pub errors: u64,
    /// Completed generation swaps.
    pub swaps: u64,
}

struct Shared {
    current: RwLock<Arc<Generation>>,
    next_gen: AtomicU32,
    stats: AtomicStats,
    stop: AtomicBool,
    active: AtomicUsize,
    config: ServeConfig,
}

impl Shared {
    /// Pin the live generation: clone the `Arc` under a read lock held
    /// only for the clone itself.
    fn generation(&self) -> Arc<Generation> {
        match self.current.read() {
            Ok(guard) => Arc::clone(&guard),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    fn count_request(&self) {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        routergeo_obs::counter("serve.requests").incr();
    }

    fn count_served(&self) {
        self.stats.served.fetch_add(1, Ordering::Relaxed);
        routergeo_obs::counter("serve.served").incr();
    }

    fn count_malformed(&self) {
        self.stats.malformed.fetch_add(1, Ordering::Relaxed);
        routergeo_obs::counter("serve.malformed").incr();
    }
}

/// Handle to a running daemon. Dropping without [`ServeDaemon::shutdown`]
/// aborts the accept loop but does not wait for workers.
pub struct ServeDaemon {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeDaemon {
    /// Spawn with default tuning; `image` becomes generation 1.
    pub fn spawn(image: Bytes) -> Result<ServeDaemon, ServeError> {
        ServeDaemon::spawn_with(image, ServeConfig::default())
    }

    /// Spawn with generation 1 loaded straight from an on-disk image
    /// via [`FileImage`]: one allocation, no intermediate copy, and an
    /// attributed error if the file is unreadable or invalid.
    pub fn spawn_file(path: impl AsRef<Path>) -> Result<ServeDaemon, ServeError> {
        ServeDaemon::spawn(FileImage::load(path)?.into_bytes())
    }

    /// Validate `image`, bind `127.0.0.1:0`, and start the accept loop
    /// plus `config.workers` connection workers.
    pub fn spawn_with(image: Bytes, config: ServeConfig) -> Result<ServeDaemon, ServeError> {
        let reader = AnyReader::open(image)?;
        let generation = Arc::new(Generation { id: 1, reader });
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            current: RwLock::new(generation),
            next_gen: AtomicU32::new(2),
            stats: AtomicStats::default(),
            stop: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            config: config.clone(),
        });
        let (tx, rx) = sync_channel::<TcpStream>(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                // xtask-allow: RG007 long-lived I/O workers, not data-parallel fan-out
                std::thread::spawn(move || worker_loop(&rx, &shared))
            })
            .collect();
        let shared2 = Arc::clone(&shared);
        // xtask-allow: RG007 accept loop must outlive this call; pool shards are scoped
        let accept = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if shared2.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => shed(stream, &shared2),
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
        });
        Ok(ServeDaemon {
            addr,
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// The daemon's listening address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Id of the generation currently serving.
    pub fn generation(&self) -> u32 {
        self.shared.generation().id
    }

    /// Snapshot the request accounting.
    pub fn stats(&self) -> ServeStats {
        let s = &self.shared.stats;
        ServeStats {
            requests: s.requests.load(Ordering::Relaxed),
            served: s.served.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            malformed: s.malformed.load(Ordering::Relaxed),
            hits: s.hits.load(Ordering::Relaxed),
            misses: s.misses.load(Ordering::Relaxed),
            errors: s.errors.load(Ordering::Relaxed),
            swaps: s.swaps.load(Ordering::Relaxed),
        }
    }

    /// Atomically replace the live generation with `image`.
    ///
    /// The new image is opened and validated **before** the flip, so the
    /// old generation serves uninterrupted while the new one loads, and
    /// a corrupt image never goes live. After the flip the call drains:
    /// bounded polling until no in-flight request still pins the old
    /// generation.
    pub fn hot_swap(&self, image: Bytes) -> Result<SwapReport, ServeError> {
        let reader = AnyReader::open(image)?;
        let id = self.shared.next_gen.fetch_add(1, Ordering::SeqCst);
        let fresh = Arc::new(Generation { id, reader });
        let mut guard = match self.shared.current.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let old = std::mem::replace(&mut *guard, fresh);
        drop(guard);
        self.shared.stats.swaps.fetch_add(1, Ordering::Relaxed);
        routergeo_obs::counter("serve.swaps").incr();
        let mut polls = 0u32;
        while Arc::strong_count(&old) > 1 && polls < self.shared.config.drain_polls_max {
            std::thread::sleep(self.shared.config.drain_poll);
            polls += 1;
        }
        Ok(SwapReport {
            old_generation: old.id,
            new_generation: id,
            drained: Arc::strong_count(&old) == 1,
            drain_polls: polls,
        })
    }

    /// [`ServeDaemon::hot_swap`] from an on-disk image via
    /// [`FileImage`]. The file is read and validated before the flip,
    /// so an unreadable path or corrupt file leaves the current
    /// generation serving untouched.
    pub fn hot_swap_file(&self, path: impl AsRef<Path>) -> Result<SwapReport, ServeError> {
        self.hot_swap(FileImage::load(path)?.into_bytes())
    }

    /// Stop accepting, join workers, and report connections still active
    /// after the bounded drain (0 in a healthy shutdown).
    pub fn shutdown(&mut self) -> usize {
        if self.accept.is_none() {
            return 0;
        }
        self.shared.stop.store(true, Ordering::SeqCst);
        // Nudge the blocked accept() so the loop observes `stop`.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        // The accept thread owned the only sender; workers drain the
        // queue then see Disconnected and exit.
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        let mut polls = 0u32;
        while self.shared.active.load(Ordering::SeqCst) > 0
            && polls < self.shared.config.drain_polls_max
        {
            std::thread::sleep(self.shared.config.drain_poll);
            polls += 1;
        }
        self.shared.active.load(Ordering::SeqCst)
    }
}

impl Drop for ServeDaemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(rx: &Arc<Mutex<Receiver<TcpStream>>>, shared: &Arc<Shared>) {
    loop {
        let stream = {
            let guard = match rx.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            // xtask-allow: RG011 the workers share one Receiver; blocking in recv with the dispatch lock held IS the handoff protocol
            match guard.recv() {
                Ok(stream) => stream,
                Err(_) => return,
            }
        };
        shared.active.fetch_add(1, Ordering::SeqCst);
        // xtask-allow: RG012 per-connection I/O errors are expected churn; the worker loop must outlive them
        let _ = handle_connection(stream, shared);
        shared.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Shed one connection at accept: one `BUSY` frame, gentle close. The
/// whole rejection is deadline-bounded so a stalling client cannot
/// wedge the accept loop.
fn shed(mut stream: TcpStream, shared: &Shared) {
    shared.count_request();
    shared.stats.shed.fetch_add(1, Ordering::Relaxed);
    routergeo_obs::counter("serve.shed").incr();
    let deadline = shared.config.write_timeout.min(Duration::from_secs(1));
    let _ = stream.set_write_timeout(Some(deadline));
    let _ = stream.set_read_timeout(Some(deadline));
    let _ = protocol::write_frame(&mut stream, &protocol::encode_response(&Response::Busy));
    // Drain before closing: closing with unread bytes in the receive
    // buffer makes the kernel answer with RST, which can destroy the
    // BUSY frame in flight.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    drain_bounded(&mut stream);
}

/// Swallow at most 1 MiB of a peer's pending bytes so close does not RST.
fn drain_bounded<R: Read>(r: &mut R) {
    const DRAIN_CAP: usize = 1 << 20;
    let mut sink = [0u8; 4096];
    let mut seen = 0usize;
    while seen < DRAIN_CAP {
        match r.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => seen += n,
        }
    }
}

fn framing_reason(err: &ProtoError) -> &'static str {
    match err {
        ProtoError::FrameTooLarge(_) => "frame exceeds size cap",
        ProtoError::EmptyFrame => "zero-length frame",
        ProtoError::Malformed(why) => why,
        ProtoError::Io(_) => "read failed inside frame",
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    stream.set_read_timeout(Some(shared.config.read_timeout))?;
    stream.set_write_timeout(Some(shared.config.write_timeout))?;
    // Responses are single small writes; without this, Nagle + delayed
    // ACK turns every round trip into ~40ms on loopback.
    stream.set_nodelay(true)?;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let body = match protocol::read_frame(&mut stream) {
            Ok(Some(body)) => body,
            Ok(None) => return Ok(()), // clean close at a frame boundary
            Err(ProtoError::Io(err)) => return Err(err), // peer vanished mid-frame
            Err(err) => {
                // Framing can no longer be trusted: account, answer, close.
                shared.count_request();
                shared.count_malformed();
                let resp = Response::Malformed {
                    reason: framing_reason(&err).to_string(),
                };
                let _ = protocol::write_frame(&mut stream, &protocol::encode_response(&resp));
                let _ = stream.shutdown(std::net::Shutdown::Write);
                drain_bounded(&mut stream);
                return Ok(());
            }
        };
        let timer = routergeo_obs::stopwatch();
        let resp = respond(&body, shared);
        protocol::write_frame(&mut stream, &protocol::encode_response(&resp))?;
        stream.flush()?;
        routergeo_obs::histogram("serve.latency_us").record(timer.elapsed_us());
    }
}

/// Answer one intact frame. Body-level nonsense gets a `MALFORMED`
/// response but keeps the connection: framing is still synchronized.
fn respond(body: &[u8], shared: &Shared) -> Response {
    shared.count_request();
    match protocol::parse_request(body) {
        Err(err) => {
            shared.count_malformed();
            Response::Malformed {
                reason: framing_reason(&err).to_string(),
            }
        }
        Ok(Request::Generation) => {
            shared.count_served();
            let generation = shared.generation();
            Response::GenerationInfo {
                generation: generation.id,
                record_count: generation.reader.record_count(),
                name: generation.reader.name().to_string(),
            }
        }
        Ok(Request::Lookup(ip)) => {
            // Pin the generation for the whole request: a swap between
            // the lookup and the response cannot mix generations.
            let generation = shared.generation();
            shared.count_served();
            routergeo_obs::counter("serve.lookups").incr();
            match generation.reader.try_lookup(ip) {
                Ok(Some(record)) => {
                    shared.stats.hits.fetch_add(1, Ordering::Relaxed);
                    routergeo_obs::counter("serve.hits").incr();
                    Response::Hit {
                        generation: generation.id,
                        record,
                    }
                }
                Ok(None) => {
                    shared.stats.misses.fetch_add(1, Ordering::Relaxed);
                    routergeo_obs::counter("serve.misses").incr();
                    Response::Miss {
                        generation: generation.id,
                    }
                }
                Err(err) => {
                    shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                    routergeo_obs::counter("serve.lookup_errors").incr();
                    Response::ServerError {
                        generation: generation.id,
                        reason: err.to_string(),
                    }
                }
            }
        }
    }
}

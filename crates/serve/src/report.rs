//! The aggregated loadgen report and its hand-rolled JSON rendering.
//!
//! `serve_ci.json` is a CI artifact with the same contract as
//! `fuzz_ci.json`: byte-identical across runs, machines, and worker
//! thread counts for a fixed seed and budget. It is rendered by hand
//! with a fixed field order and no floats or timestamps, and it
//! contains **only** deterministic observables — virtual-time sim
//! numbers and the swap/abuse invariants that hold exactly when the run
//! is green. Wall-clock measurements live in
//! [`WallStats`](crate::live::WallStats) and go to stderr; only their
//! *ratios* gate CI (see [`gate_violations`]), so machine speed
//! cancels the way the bench-check gate normalizes its baselines.

use crate::live::{AbuseOutcome, SwapOutcome, WallStats};
use crate::sim::SimOutcome;
use std::fmt::Write as _;

/// p99 may exceed p50 by at most this factor (p50 floored at
/// [`TAIL_P50_FLOOR_US`] so loopback noise cannot divide by ~zero).
pub const TAIL_RATIO_MAX: u64 = 100;
/// Floor applied to p50 before the tail-ratio division.
pub const TAIL_P50_FLOOR_US: u64 = 10;
/// Direct in-process lookups may outpace the served pipeline by at most
/// this factor. Both rates come from the same run on the same machine,
/// so the ratio is speed-invariant; a catastrophic daemon regression
/// (per-request sleep, lost pipelining) blows it up by orders of
/// magnitude.
pub const DIRECT_OVER_SERVED_MAX: u64 = 5_000;

/// The full deterministic report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeReport {
    /// Mix seed.
    pub seed: u64,
    /// Wall-time budget the plan was derived from.
    pub budget_ms: u64,
    /// Corpus records per generation.
    pub records: u64,
    /// Virtual worker chains in the sim.
    pub virtual_workers: u64,
    /// Virtual-time simulation outcome.
    pub sim: SimOutcome,
    /// Hot-swap-under-load outcome.
    pub swap: SwapOutcome,
    /// Abuse-phase outcome.
    pub abuse: AbuseOutcome,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn str_array(items: &[String]) -> String {
    let inner: Vec<String> = items.iter().map(|s| format!("\"{}\"", esc(s))).collect();
    format!("[{}]", inner.join(","))
}

impl ServeReport {
    /// Every invariant breach, in report order. Empty is the passing
    /// condition.
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        let s = &self.sim;
        if s.requests != s.served + s.shed + s.malformed {
            out.push(format!(
                "sim conservation broken: {} requests vs {}+{}+{}",
                s.requests, s.served, s.shed, s.malformed
            ));
        }
        if s.served != s.hits + s.misses + s.gen_infos {
            out.push(format!(
                "sim served breakdown broken: {} vs {}+{}+{}",
                s.served, s.hits, s.misses, s.gen_infos
            ));
        }
        let w = &self.swap;
        if w.ok + w.miss + w.busy + w.errors + w.torn_reads < w.lookups {
            out.push("swap phase lost lookups".to_string());
        }
        if w.busy > 0 {
            out.push(format!("swap phase shed {} lookups", w.busy));
        }
        if w.errors > 0 {
            out.push(format!("swap phase failed {} lookups", w.errors));
        }
        if w.torn_reads > 0 {
            out.push(format!(
                "{} torn reads across the generation flip",
                w.torn_reads
            ));
        }
        if w.generation_before != 1 || w.generation_after != 2 {
            out.push(format!(
                "generation lifecycle broken: saw {} before and {} after the swap",
                w.generation_before, w.generation_after
            ));
        }
        if w.swaps != 1 {
            out.push(format!(
                "expected exactly 1 swap, daemon counted {}",
                w.swaps
            ));
        }
        if !w.drained {
            out.push("old generation still had pinned readers after the drain budget".to_string());
        }
        let a = &self.abuse;
        if a.pokes_attributed != a.pokes {
            out.push(format!(
                "only {}/{} pokes were attributed",
                a.pokes_attributed, a.pokes
            ));
        }
        if a.chaos_attributed != a.chaos_scenarios {
            out.push(format!(
                "only {}/{} chaos scenarios were attributed",
                a.chaos_attributed, a.chaos_scenarios
            ));
        }
        out.extend(a.violations.iter().cloned());
        out
    }

    /// Whether every deterministic invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations().is_empty()
    }

    /// Render the deterministic JSON document (fixed field order, no
    /// floats or timestamps, trailing newline included).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\n  \"schema\": \"routergeo-serve-ci-v1\",\n  \"seed\": {},\n  \"budget_ms\": {},\n  \"records\": {},\n",
            self.seed, self.budget_ms, self.records
        );
        let m = &self.sim;
        let _ = write!(
            s,
            "  \"sim\": {{\n    \"requests\": {}, \"served\": {}, \"shed\": {}, \"malformed\": {},\n    \
             \"hits\": {}, \"misses\": {}, \"gen_infos\": {},\n    \"virtual_workers\": {},\n    \
             \"latency_p50_ns\": {}, \"latency_p99_ns\": {}, \"latency_max_ns\": {},\n    \
             \"makespan_ns\": {}, \"virtual_rate_per_sec\": {}\n  }},\n",
            m.requests,
            m.served,
            m.shed,
            m.malformed,
            m.hits,
            m.misses,
            m.gen_infos,
            self.virtual_workers,
            m.latency_p50_ns,
            m.latency_p99_ns,
            m.latency_max_ns,
            m.makespan_ns,
            m.virtual_rate_per_sec
        );
        let w = &self.swap;
        let _ = write!(
            s,
            "  \"swap\": {{\n    \"clients\": {}, \"lookups\": {}, \"ok\": {}, \"miss\": {},\n    \
             \"busy\": {}, \"errors\": {}, \"torn_reads\": {},\n    \
             \"generation_before\": {}, \"generation_after\": {}, \"swaps\": {}, \"drained\": {}\n  }},\n",
            w.clients,
            w.lookups,
            w.ok,
            w.miss,
            w.busy,
            w.errors,
            w.torn_reads,
            w.generation_before,
            w.generation_after,
            w.swaps,
            w.drained
        );
        let a = &self.abuse;
        let _ = write!(
            s,
            "  \"abuse\": {{\n    \"pokes\": {}, \"pokes_attributed\": {},\n    \
             \"chaos_scenarios\": {}, \"chaos_attributed\": {},\n    \"violations\": {}\n  }},\n",
            a.pokes,
            a.pokes_attributed,
            a.chaos_scenarios,
            a.chaos_attributed,
            str_array(&a.violations)
        );
        let _ = write!(s, "  \"clean\": {}\n}}\n", self.is_clean());
        s
    }
}

/// Ratio-normalized wall-clock gate: returns the violated thresholds,
/// empty when the run passes. Raw rates never gate — only ratios
/// measured within one run, so machine speed cancels.
pub fn gate_violations(wall: &WallStats) -> Vec<String> {
    let mut out = Vec::new();
    let p50 = wall.latency_p50_us.max(TAIL_P50_FLOOR_US);
    if wall.latency_p99_us > p50 * TAIL_RATIO_MAX {
        out.push(format!(
            "latency tail blew up: p99 {}us vs p50 {}us exceeds the {}x ratio gate",
            wall.latency_p99_us, wall.latency_p50_us, TAIL_RATIO_MAX
        ));
    }
    let served = wall.served_per_sec.max(1);
    if wall.direct_per_sec / served > DIRECT_OVER_SERVED_MAX {
        out.push(format!(
            "throughput collapsed: direct {}/s vs served {}/s exceeds the {}x ratio gate",
            wall.direct_per_sec, wall.served_per_sec, DIRECT_OVER_SERVED_MAX
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeReport {
        ServeReport {
            seed: 1,
            budget_ms: 100,
            records: 8,
            virtual_workers: 4,
            sim: SimOutcome {
                requests: 10,
                served: 8,
                shed: 1,
                malformed: 1,
                hits: 5,
                misses: 2,
                gen_infos: 1,
                latency_p50_ns: 2_000,
                latency_p99_ns: 9_000,
                latency_max_ns: 9_500,
                makespan_ns: 100_000,
                virtual_rate_per_sec: 80_000,
            },
            swap: SwapOutcome {
                clients: 2,
                lookups: 20,
                ok: 15,
                miss: 5,
                busy: 0,
                errors: 0,
                torn_reads: 0,
                generation_before: 1,
                generation_after: 2,
                swaps: 1,
                drained: true,
            },
            abuse: AbuseOutcome {
                pokes: 5,
                pokes_attributed: 5,
                chaos_scenarios: 4,
                chaos_attributed: 4,
                violations: Vec::new(),
            },
        }
    }

    #[test]
    fn clean_report_has_no_violations_and_stable_json() {
        let report = sample();
        assert!(report.is_clean(), "{:?}", report.violations());
        let a = report.to_json();
        let b = sample().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"clean\": true"), "{a}");
        assert!(a.ends_with('\n'));
    }

    #[test]
    fn every_swap_invariant_is_enforced() {
        let mut broken = sample();
        broken.swap.torn_reads = 1;
        broken.swap.errors = 2;
        broken.swap.busy = 3;
        broken.swap.generation_after = 1;
        broken.swap.swaps = 0;
        broken.swap.drained = false;
        let violations = broken.violations();
        assert!(violations.len() >= 6, "{violations:?}");
        assert!(broken.to_json().contains("\"clean\": false"));
    }

    #[test]
    fn sim_conservation_is_enforced() {
        let mut broken = sample();
        broken.sim.shed = 0;
        assert!(!broken.is_clean());
    }

    #[test]
    fn gates_are_ratio_normalized() {
        let fast = WallStats {
            latency_p50_us: 20,
            latency_p99_us: 90,
            served_per_sec: 200_000,
            direct_per_sec: 9_000_000,
        };
        assert!(gate_violations(&fast).is_empty());
        // Same shape, 100x slower machine: still passes.
        let slow = WallStats {
            latency_p50_us: 2_000,
            latency_p99_us: 9_000,
            served_per_sec: 2_000,
            direct_per_sec: 90_000,
        };
        assert!(gate_violations(&slow).is_empty());
        // A wedged tail and a collapsed pipeline both trip.
        let wedged = WallStats {
            latency_p50_us: 20,
            latency_p99_us: 5_000_000,
            served_per_sec: 200_000,
            direct_per_sec: 9_000_000,
        };
        assert_eq!(gate_violations(&wedged).len(), 1);
        let collapsed = WallStats {
            latency_p50_us: 20,
            latency_p99_us: 90,
            served_per_sec: 10,
            direct_per_sec: 9_000_000,
        };
        assert_eq!(gate_violations(&collapsed).len(), 1);
    }
}

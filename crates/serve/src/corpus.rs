//! Deterministic serving corpus: paired RGDB generations for the
//! loadgen and the hot-swap tests.
//!
//! Generation `g` of a corpus with `records` entries carries the same
//! prefix set as every other generation — only the record payloads
//! differ, and every city name is tagged `G<g>-<k>`. Two consequences
//! the harness leans on:
//!
//! * hit/miss outcomes are identical across generations, so the swap
//!   phase's per-client hit counts are deterministic even though the
//!   swap lands at a nondeterministic instant;
//! * a response whose generation id and city tag disagree is a **torn
//!   read** — proof a request straddled the generation flip.
//!
//! The geometry mirrors the fuzz corpus: record `k` owns the /16 block
//! `(10 + (k >> 8) % 120).(k & 0xFF).0.0`, blocks are pairwise
//! disjoint, and the carved prefix length cycles through 16–28. All
//! coordinates sit on the micro-degree grid so RGDB quantization is
//! exact.

use bytes::Bytes;
use routergeo_db::{rgdb, rgdb2};
use routergeo_db::{Granularity, LocationRecord};
use routergeo_geo::{Coordinate, CountryCode};
use routergeo_net::Prefix;
use std::net::Ipv4Addr;

const COUNTRIES: [&str; 8] = ["US", "DE", "FR", "JP", "BR", "GB", "NL", "AU"];

/// A fixed-size corpus description; all methods are pure functions of
/// `(records, k)` so every caller sees the same world.
#[derive(Debug, Clone, Copy)]
pub struct Corpus {
    records: usize,
}

impl Corpus {
    /// A corpus of `records` entries (clamped to the 120×256 disjoint
    /// /16 blocks available).
    pub fn new(records: usize) -> Corpus {
        Corpus {
            records: records.clamp(1, 120 * 256),
        }
    }

    /// Number of records per generation.
    pub fn records(&self) -> usize {
        self.records
    }

    /// The prefix record `k` carves out of its /16 block.
    pub fn prefix(&self, k: usize) -> Prefix {
        let k = k % self.records;
        let a = u8::try_from(10 + (k >> 8) % 120).expect("block octet bounded by 130");
        let b = u8::try_from(k & 0xFF).expect("masked to one byte");
        let len = u8::try_from(16 + (k * 5) % 13).expect("length bounded by 28");
        Prefix::new(Ipv4Addr::new(a, b, 0, 0), len)
            .expect("x.y.0.0 is aligned for any length in 16..=28")
    }

    /// An address guaranteed to hit record `k`: the first address of its
    /// prefix.
    pub fn hit_addr(&self, k: usize) -> Ipv4Addr {
        self.prefix(k).first()
    }

    /// A deterministic address inside record `k`'s /16 block; it hits
    /// when `salt` lands inside the carved prefix and misses otherwise.
    pub fn block_addr(&self, k: usize, salt: u64) -> Ipv4Addr {
        let p = self.prefix(k % self.records);
        let base = u32::from(p.network()) & 0xFFFF_0000;
        let off = u32::try_from(salt % 65_536).expect("mod 2^16 fits");
        Ipv4Addr::from(base | off)
    }

    /// The city tag generation `g` writes into record `k`.
    pub fn city_tag(generation: u32, k: usize) -> String {
        format!("G{generation}-{k:04}")
    }

    /// Whether a served city name belongs to `generation` — the torn-read
    /// predicate.
    pub fn city_matches(generation: u32, city: &str) -> bool {
        city.starts_with(&format!("G{generation}-"))
    }

    /// Record `k` as generation `g` publishes it.
    pub fn record(&self, generation: u32, k: usize) -> LocationRecord {
        let k = k % self.records;
        let country = CountryCode::from_str_exact(COUNTRIES[k % COUNTRIES.len()])
            .expect("table entries are valid codes");
        let granularity = match k % 3 {
            0 => Granularity::Aggregate,
            1 => Granularity::Block24,
            _ => Granularity::SubBlock,
        };
        // Micro-degree-aligned grid spread over ±60 / ±150 degrees.
        let lat_milli = -60_000 + i64::try_from((k * 7_919) % 120_000).expect("bounded");
        let lon_milli = -150_000
            + i64::try_from(
                (k * 104_729 + usize::try_from(generation).expect("small id") * 13) % 300_000,
            )
            .expect("bounded");
        #[allow(clippy::cast_precision_loss)] // |milli| <= 300_000: exact in f64
        let coord = Coordinate::new(lat_milli as f64 / 1e3, lon_milli as f64 / 1e3)
            .expect("grid stays inside coordinate bounds");
        LocationRecord {
            country: Some(country),
            region: if k % 3 == 0 {
                Some(format!("Region-{}", k % 5))
            } else {
                None
            },
            city: Some(Corpus::city_tag(generation, k)),
            coord: Some(coord),
            granularity,
        }
    }

    /// Serialize generation `g` as an RGDB v1 image.
    pub fn image(&self, generation: u32) -> Bytes {
        let entries: Vec<(Prefix, LocationRecord)> = (0..self.records)
            .map(|k| (self.prefix(k), self.record(generation, k)))
            .collect();
        rgdb::write(
            &format!("serve-corpus-g{generation}"),
            entries.iter().map(|(p, r)| (*p, r)),
        )
    }

    /// Serialize generation `g` in the flat v2 format — same prefixes and
    /// payloads, so a v2 image can hot-swap over a v1 one mid-sequence.
    pub fn image_v2(&self, generation: u32) -> Bytes {
        let entries: Vec<(Prefix, LocationRecord)> = (0..self.records)
            .map(|k| (self.prefix(k), self.record(generation, k)))
            .collect();
        rgdb2::write(
            &format!("serve-corpus-g{generation}"),
            entries.iter().map(|(p, r)| (*p, r)),
        )
    }

    /// Serialize generation `g` in the v2.1 cache-locality format (root
    /// table + level-order nodes) — same prefixes and payloads again.
    pub fn image_v21(&self, generation: u32) -> Bytes {
        let entries: Vec<(Prefix, LocationRecord)> = (0..self.records)
            .map(|k| (self.prefix(k), self.record(generation, k)))
            .collect();
        rgdb2::write_v21(
            &format!("serve-corpus-g{generation}"),
            entries.iter().map(|(p, r)| (*p, r)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routergeo_db::rgdb::RgdbReader;

    #[test]
    fn generations_share_prefixes_but_differ_in_payload() {
        let corpus = Corpus::new(64);
        let g1 = RgdbReader::open(corpus.image(1)).expect("gen 1 image validates");
        let g2 = RgdbReader::open(corpus.image(2)).expect("gen 2 image validates");
        for k in 0..corpus.records() {
            let addr = corpus.hit_addr(k);
            let r1 = g1.try_lookup(addr).expect("clean image").expect("hit");
            let r2 = g2.try_lookup(addr).expect("clean image").expect("hit");
            assert_eq!(r1.city.as_deref(), Some(Corpus::city_tag(1, k).as_str()));
            assert_eq!(r2.city.as_deref(), Some(Corpus::city_tag(2, k).as_str()));
            assert!(Corpus::city_matches(1, r1.city.as_deref().expect("tagged")));
            assert!(!Corpus::city_matches(
                2,
                r1.city.as_deref().expect("tagged")
            ));
        }
    }

    #[test]
    fn block_addr_outcomes_are_pure_functions() {
        let corpus = Corpus::new(32);
        let reader = RgdbReader::open(corpus.image(1)).expect("image validates");
        for k in 0..corpus.records() {
            for salt in [0u64, 7, 65_535, 1 << 40] {
                let addr = corpus.block_addr(k, salt);
                let a = reader.try_lookup(addr).expect("clean image").is_some();
                let b = reader.try_lookup(addr).expect("clean image").is_some();
                assert_eq!(a, b);
                assert_eq!(addr, corpus.block_addr(k, salt), "address is deterministic");
            }
        }
    }

    #[test]
    fn images_are_byte_identical_across_builds() {
        let corpus = Corpus::new(48);
        assert_eq!(corpus.image(1), corpus.image(1));
        assert_ne!(corpus.image(1), corpus.image(2));
        assert_eq!(corpus.image_v2(1), corpus.image_v2(1));
    }

    #[test]
    fn v1_and_v2_images_of_a_generation_agree() {
        let corpus = Corpus::new(48);
        let v1 = RgdbReader::open(corpus.image(2)).expect("v1 validates");
        let v2 = routergeo_db::rgdb2::Rgdb2Reader::open(corpus.image_v2(2)).expect("v2 validates");
        for k in 0..corpus.records() {
            for salt in [0u64, 9, 65_535] {
                let addr = corpus.block_addr(k, salt);
                let a = v1.try_lookup(addr).expect("clean image");
                let b = v2.try_lookup(addr).expect("clean image");
                assert_eq!(a, b, "formats disagree at {addr}");
            }
        }
    }
}

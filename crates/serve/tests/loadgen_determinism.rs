//! The loadgen report is a CI artifact: it must be byte-identical
//! across repeated runs and across worker-thread counts, or the
//! `serve-loadgen` gate would flake on diffs.

use routergeo_pool::Pool;
use routergeo_serve::{run_loadgen, LoadgenConfig};

/// A small plan so the three live phases stay cheap under `cargo test`.
fn small_config() -> LoadgenConfig {
    LoadgenConfig {
        swap_clients: 2,
        swap_lookups: 40,
        wall_probes: 20,
        wall_batches: 4,
        sim_requests: 4_000,
        ..LoadgenConfig::from_budget(500, 20_170_301)
    }
}

#[test]
fn report_is_byte_identical_across_runs() {
    let config = small_config();
    let first = run_loadgen(&config, &Pool::serial()).expect("loadgen runs");
    let second = run_loadgen(&config, &Pool::serial()).expect("loadgen runs");
    assert!(
        first.report.violations().is_empty(),
        "clean run expected: {:?}",
        first.report.violations()
    );
    assert_eq!(
        first.report.to_json(),
        second.report.to_json(),
        "repeated runs must serialize identically"
    );
}

#[test]
fn report_is_byte_identical_across_thread_counts() {
    let config = small_config();
    let baseline = run_loadgen(&config, &Pool::new(1))
        .expect("loadgen runs")
        .report
        .to_json();
    for threads in [2, 8] {
        let json = run_loadgen(&config, &Pool::new(threads))
            .expect("loadgen runs")
            .report
            .to_json();
        assert_eq!(baseline, json, "threads={threads}");
    }
}

#[test]
fn seed_changes_the_report() {
    let config = small_config();
    let reseeded = LoadgenConfig { seed: 99, ..config };
    let a = run_loadgen(&config, &Pool::serial()).expect("loadgen runs");
    let b = run_loadgen(&reseeded, &Pool::serial()).expect("loadgen runs");
    assert_ne!(
        a.report.to_json(),
        b.report.to_json(),
        "the seed must actually steer the traffic mix"
    );
}

//! Hot-swap under fire: the daemon must flip generations atomically
//! while concurrent clients hammer it, with no torn reads and the old
//! generation fully drained before `hot_swap` returns.

use std::sync::Barrier;

use routergeo_serve::corpus::Corpus;
use routergeo_serve::daemon::{ServeConfig, ServeDaemon};
use routergeo_serve::live::{self, ServeClient};
use routergeo_serve::protocol::{Request, Response};

#[test]
fn swap_under_concurrent_load_is_atomic_and_drains() {
    let corpus = Corpus::new(128);
    let outcome = live::run_swap_phase(&corpus, 0xDEAD_BEEF, 6, 120).expect("swap phase completes");

    assert_eq!(outcome.clients, 6);
    assert_eq!(outcome.lookups, 6 * 120);
    assert_eq!(
        outcome.ok + outcome.miss,
        outcome.lookups,
        "every lookup must land as a hit or a miss: {outcome:?}"
    );
    assert_eq!(outcome.busy, 0, "zero sheds during the swap: {outcome:?}");
    assert_eq!(outcome.errors, 0, "zero failed lookups: {outcome:?}");
    assert_eq!(outcome.torn_reads, 0, "no torn reads: {outcome:?}");
    assert_eq!(outcome.generation_before, 1);
    assert_eq!(outcome.generation_after, 2);
    assert_eq!(outcome.swaps, 1);
    assert!(
        outcome.drained,
        "old generation must be fully drained before hot_swap returns"
    );
}

#[test]
fn responses_are_internally_consistent_during_the_flip() {
    // A sharper torn-read probe than the phase runner: one client pins a
    // hot address and checks that every response is wholly from ONE
    // generation — the generation id and the generation-tagged city must
    // always agree, before, during, and after the flip.
    let corpus = Corpus::new(64);
    let daemon = ServeDaemon::spawn_with(
        corpus.image(1),
        ServeConfig {
            workers: 4,
            queue_depth: 32,
            ..ServeConfig::default()
        },
    )
    .expect("daemon spawns");
    let addr = daemon.addr();
    let target = corpus.hit_addr(3);

    let barrier = Barrier::new(2);
    std::thread::scope(|scope| {
        // xtask-allow: RG007 one protocol client racing the swap; an I/O thread, not data-parallel fan-out
        let prober = scope.spawn(|| {
            let mut client = ServeClient::connect(addr).expect("client connects");
            let mut seen = [0u64; 2];
            barrier.wait();
            for _ in 0..400 {
                match client.request(&Request::Lookup(target)) {
                    Ok(Response::Hit { generation, record }) => {
                        assert!(
                            generation == 1 || generation == 2,
                            "unknown generation {generation}"
                        );
                        let city = record.city.as_deref().unwrap_or("");
                        assert!(
                            Corpus::city_matches(generation, city),
                            "torn read: generation {generation} with city {city:?}"
                        );
                        seen[usize::from(generation == 2)] += 1;
                    }
                    other => panic!("hot address must always hit, got {other:?}"),
                }
            }
            seen
        });
        barrier.wait();
        let report = daemon.hot_swap(corpus.image(2)).expect("swap succeeds");
        assert_eq!(report.old_generation, 1);
        assert_eq!(report.new_generation, 2);
        assert!(report.drained, "drain must complete: {report:?}");
        let seen = prober.join().expect("prober thread");
        assert!(
            seen[1] > 0,
            "prober must observe generation 2 after the flip: {seen:?}"
        );
    });

    let stats = daemon.stats();
    assert_eq!(stats.swaps, 1);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.shed, 0, "queue depth 32 must absorb one prober");
    drop(daemon);
}

#[test]
fn v2_images_hot_swap_over_v1_generations_and_back() {
    // The generation slot is format-agnostic: a daemon booted on a v1
    // image must accept a v2 image mid-flight (and vice versa), with
    // identical hit/miss behavior and generation-tagged payloads.
    let corpus = Corpus::new(64);
    let daemon = ServeDaemon::spawn_with(corpus.image(1), ServeConfig::default())
        .expect("daemon spawns on a v1 image");
    let mut client = ServeClient::connect(daemon.addr()).expect("client connects");

    let probe = |client: &mut ServeClient, expect_gen: u32| {
        for k in [0usize, 3, 17, 63] {
            match client.request(&Request::Lookup(corpus.hit_addr(k))) {
                Ok(Response::Hit { generation, record }) => {
                    assert_eq!(generation, expect_gen);
                    let city = record.city.as_deref().unwrap_or("");
                    assert!(
                        Corpus::city_matches(expect_gen, city),
                        "generation {expect_gen} served city {city:?}"
                    );
                }
                other => panic!("hit address must hit on generation {expect_gen}, got {other:?}"),
            }
        }
    };
    probe(&mut client, 1);

    // v1 -> v2: the daemon opens the flat image and serves from it.
    let report = daemon.hot_swap(corpus.image_v2(2)).expect("v2 swap");
    assert_eq!(report.old_generation, 1);
    assert_eq!(report.new_generation, 2);
    assert!(report.drained);
    probe(&mut client, 2);

    // v2 -> v1: swapping back off the flat format works the same way.
    let report = daemon.hot_swap(corpus.image(3)).expect("v1 swap");
    assert_eq!(report.new_generation, 3);
    probe(&mut client, 3);

    let stats = daemon.stats();
    assert_eq!(stats.swaps, 2);
    assert_eq!(stats.errors, 0);
    drop(daemon);
}

#[test]
fn heap_generation_hot_swaps_to_a_file_backed_v21_image() {
    // Generations are source-agnostic too: a daemon booted from a heap
    // image must accept a v2.1 image loaded from disk via FileImage,
    // and a bad path must leave the live generation untouched.
    let corpus = Corpus::new(64);
    let daemon = ServeDaemon::spawn(corpus.image(1)).expect("daemon spawns on a heap v1 image");
    let mut client = ServeClient::connect(daemon.addr()).expect("client connects");

    let probe = |client: &mut ServeClient, expect_gen: u32| {
        for k in [0usize, 5, 31, 63] {
            match client.request(&Request::Lookup(corpus.hit_addr(k))) {
                Ok(Response::Hit { generation, record }) => {
                    assert_eq!(generation, expect_gen);
                    let city = record.city.as_deref().unwrap_or("");
                    assert!(
                        Corpus::city_matches(expect_gen, city),
                        "generation {expect_gen} served city {city:?}"
                    );
                }
                other => panic!("hit address must hit on generation {expect_gen}, got {other:?}"),
            }
        }
    };
    probe(&mut client, 1);

    let path = std::env::temp_dir().join(format!(
        "routergeo-serve-swap-{}-g2.rgdb",
        std::process::id()
    ));
    std::fs::write(&path, corpus.image_v21(2)).expect("image written to disk");
    let report = daemon.hot_swap_file(&path).expect("file-backed v2.1 swap");
    assert_eq!(report.old_generation, 1);
    assert_eq!(report.new_generation, 2);
    assert!(report.drained);
    probe(&mut client, 2);

    // A missing file is an attributed error and no generation flip.
    let missing = std::env::temp_dir().join("routergeo-serve-swap-does-not-exist.rgdb");
    assert!(daemon.hot_swap_file(&missing).is_err());
    probe(&mut client, 2);

    let stats = daemon.stats();
    assert_eq!(stats.swaps, 1);
    assert_eq!(stats.errors, 0);
    std::fs::remove_file(&path).ok();
    drop(daemon);
}

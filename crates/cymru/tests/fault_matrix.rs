//! Loopback fault matrix: `BulkClient` against every `ChaosProxy` fault
//! plan, with fixed seeds throughout.
//!
//! Backoff runs on a virtual `TestClock`, so the matrix asserts the
//! *exact* retry counts and backoff schedules without one real sleep —
//! which is what lets CI treat this suite as wall-clock deterministic.

use routergeo_cymru::clock::{Clock, SystemClock, TestClock};
use routergeo_cymru::{
    BulkClient, BulkConfig, BulkOutcome, FailReason, MappingService, RetryPolicy, WhoisServer,
};
use routergeo_faultnet::{ChaosProxy, Fault, FaultPlan};
use routergeo_world::{World, WorldConfig};
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tight deadlines so even the stalled-server cases finish in a couple
/// of seconds of wall time.
fn fast_config() -> BulkConfig {
    BulkConfig {
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_millis(400),
        write_timeout: Duration::from_millis(400),
        chunk_size: 1_000,
        retry: RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(100),
            max: Duration::from_secs(1),
            jitter_seed: 7,
        },
        breaker_threshold: 3,
    }
}

struct Rig {
    world: World,
    service: Arc<MappingService>,
    server: WhoisServer,
    proxy: ChaosProxy,
}

impl Rig {
    fn new(seed: u64, plan: FaultPlan, proxy_clock: Arc<dyn Clock>) -> Rig {
        let world = World::generate(WorldConfig::tiny(seed));
        let service = Arc::new(MappingService::build(&world));
        let server = WhoisServer::spawn(Arc::clone(&service)).expect("spawn server");
        let proxy = ChaosProxy::spawn(server.addr(), plan, proxy_clock).expect("spawn proxy");
        Rig {
            world,
            service,
            server,
            proxy,
        }
    }

    fn ips(&self, n: usize) -> Vec<Ipv4Addr> {
        self.world
            .interfaces
            .iter()
            .step_by(97)
            .take(n)
            .map(|i| i.ip)
            .collect()
    }

    fn client(&self, config: BulkConfig, clock: Arc<dyn Clock>) -> BulkClient {
        BulkClient::with_config(self.proxy.addr(), config, clock)
    }
}

/// Every found record must agree with the in-process mapping.
fn assert_answers_match(rig: &Rig, outcome: &BulkOutcome) {
    for (ip, rec) in &outcome.found {
        assert_eq!(Some(*rec), rig.service.lookup(*ip), "record for {ip}");
    }
    for ip in &outcome.not_found {
        assert!(rig.service.lookup(*ip).is_none(), "spurious NA for {ip}");
    }
}

#[test]
fn pass_through_proxy_is_transparent() {
    let mut rig = Rig::new(901, FaultPlan::pass_through(), SystemClock::shared());
    let ips = rig.ips(30);
    let (clock, handle) = TestClock::shared();
    let outcome = rig.client(fast_config(), handle).lookup(&ips);
    assert!(outcome.is_complete(), "failed: {:?}", outcome.failed);
    assert_eq!(outcome.answered(), ips.len());
    assert_eq!(outcome.stats.connections, 1);
    assert_eq!(outcome.stats.retries, 0);
    assert!(clock.sleeps().is_empty(), "no backoff on the happy path");
    assert_answers_match(&rig, &outcome);
    rig.proxy.shutdown();
    rig.server.shutdown();
}

#[test]
fn refused_connection_retries_on_schedule_and_recovers() {
    let plan = FaultPlan::sequence(vec![Fault::Refuse]);
    let mut rig = Rig::new(902, plan, SystemClock::shared());
    let ips = rig.ips(20);
    let config = fast_config();
    let (clock, handle) = TestClock::shared();
    let outcome = rig.client(config.clone(), handle).lookup(&ips);
    assert!(outcome.is_complete(), "failed: {:?}", outcome.failed);
    assert_eq!(outcome.stats.connections, 2, "one refusal, one success");
    assert_eq!(outcome.stats.retries, 1);
    // The backoff actually slept is exactly the policy's schedule for
    // chunk 0, cut to the one retry that happened.
    let expected = config.retry.delays_for_chunk(0);
    assert_eq!(outcome.stats.backoff, expected[..1].to_vec());
    assert_eq!(clock.sleeps(), expected[..1].to_vec());
    assert_answers_match(&rig, &outcome);
    rig.proxy.shutdown();
    rig.server.shutdown();
}

#[test]
fn stalled_server_fails_within_deadline_budget_with_per_address_outcomes() {
    // Hold each silent connection for 1 s of real time — well past the
    // 400 ms read deadline, so the deadline (not an EOF) ends attempts.
    let plan = FaultPlan::always(Fault::AcceptSilence {
        hold: Duration::from_secs(1),
    });
    let mut rig = Rig::new(903, plan, SystemClock::shared());
    let ips = rig.ips(10);
    let config = fast_config();
    let (clock, handle) = TestClock::shared();
    let started = Instant::now();
    let outcome = rig.client(config.clone(), handle).lookup(&ips);
    let elapsed = started.elapsed();

    // Deadline budget: each attempt costs at most connect + write + one
    // read deadline; backoff is virtual. Generous 2x slack on top.
    let per_attempt = config.connect_timeout + config.write_timeout + config.read_timeout;
    assert!(
        elapsed < per_attempt * config.retry.max_attempts * 2,
        "stalled server held the client for {elapsed:?}"
    );

    // Every address got an attributed outcome; nothing hung, nothing
    // was silently dropped.
    assert_eq!(outcome.answered(), 0);
    assert_eq!(outcome.failed.len(), ips.len());
    for f in &outcome.failed {
        assert_eq!(f.reason, FailReason::Timeout, "for {}", f.ip);
        assert_eq!(f.attempts, config.retry.max_attempts);
    }
    assert_eq!(
        outcome.stats.connections,
        usize::try_from(config.retry.max_attempts).unwrap()
    );
    // Exhausted retries slept the full schedule for chunk 0.
    assert_eq!(clock.sleeps(), config.retry.delays_for_chunk(0));
    rig.proxy.shutdown();
    rig.server.shutdown();
}

#[test]
fn mid_stream_truncation_resumes_only_the_unanswered_remainder() {
    // Cut the response at byte 180: the banner (~44 bytes) plus the
    // first few rows make it through, the rest of the chunk does not.
    let plan = FaultPlan::sequence(vec![Fault::TruncateAfter(180)]);
    let mut rig = Rig::new(904, plan, SystemClock::shared());
    let ips = rig.ips(25);
    let (_clock, handle) = TestClock::shared();
    let outcome = rig.client(fast_config(), handle).lookup(&ips);
    assert!(outcome.is_complete(), "failed: {:?}", outcome.failed);
    assert_eq!(outcome.answered(), ips.len());
    assert_eq!(outcome.stats.connections, 2);

    // Resume, not restart: the retry connection carried a strictly
    // smaller request than the truncated one.
    let stats = rig.proxy.stats();
    assert_eq!(stats.connections(), 2);
    assert!(
        stats.conns[1].bytes_up < stats.conns[0].bytes_up,
        "retry re-sent the whole chunk: {:?}",
        stats.conns
    );
    assert_eq!(stats.conns[0].bytes_down, 180);
    assert_answers_match(&rig, &outcome);
    rig.proxy.shutdown();
    rig.server.shutdown();
}

#[test]
fn corrupted_stream_is_rejected_and_recovered_on_retry() {
    let plan = FaultPlan::sequence(vec![Fault::CorruptBytes {
        rate_pct: 100,
        seed: 5,
    }]);
    let mut rig = Rig::new(905, plan, SystemClock::shared());
    let ips = rig.ips(15);
    let (_clock, handle) = TestClock::shared();
    let outcome = rig.client(fast_config(), handle).lookup(&ips);
    // Nothing from the corrupted stream leaked into the results…
    assert!(outcome.is_complete(), "failed: {:?}", outcome.failed);
    assert_eq!(outcome.answered(), ips.len());
    assert_answers_match(&rig, &outcome);
    // …and recovery took exactly one retry.
    assert_eq!(outcome.stats.connections, 2);
    assert_eq!(outcome.stats.retries, 1);
    rig.proxy.shutdown();
    rig.server.shutdown();
}

#[test]
fn early_fin_is_detected_as_missing_answers_and_retried() {
    let plan = FaultPlan::sequence(vec![Fault::EarlyFin]);
    let mut rig = Rig::new(906, plan, SystemClock::shared());
    let ips = rig.ips(12);
    let (_clock, handle) = TestClock::shared();
    let outcome = rig.client(fast_config(), handle).lookup(&ips);
    assert!(outcome.is_complete(), "failed: {:?}", outcome.failed);
    assert_eq!(outcome.answered(), ips.len());
    assert_eq!(outcome.stats.connections, 2);
    assert_answers_match(&rig, &outcome);
    rig.proxy.shutdown();
    rig.server.shutdown();
}

#[test]
fn injected_latency_runs_on_virtual_time() {
    // 10 s of injected latency per relayed chunk would blow any real
    // deadline; on the shared virtual clock it must cost nothing.
    let (clock, proxy_handle) = TestClock::shared();
    let plan = FaultPlan::always(Fault::Delay {
        per_chunk: Duration::from_secs(10),
    });
    let mut rig = Rig::new(907, plan, proxy_handle);
    let ips = rig.ips(10);
    let client_handle: Arc<dyn Clock> = Arc::new(clock.clone());
    let started = Instant::now();
    let outcome = rig.client(fast_config(), client_handle).lookup(&ips);
    assert!(started.elapsed() < Duration::from_secs(5), "slept for real");
    assert!(outcome.is_complete(), "failed: {:?}", outcome.failed);
    assert!(clock.total_slept() >= Duration::from_secs(10));
    assert!(rig.proxy.stats().injected_delay() >= Duration::from_secs(10));
    rig.proxy.shutdown();
    rig.server.shutdown();
}

#[test]
fn circuit_breaker_fails_remaining_chunks_fast() {
    let plan = FaultPlan::always(Fault::Refuse);
    let mut rig = Rig::new(908, plan, SystemClock::shared());
    let ips = rig.ips(25);
    let mut config = fast_config();
    config.chunk_size = 5; // 25 addresses -> 5 chunks
    config.breaker_threshold = 2;
    config.retry.max_attempts = 2;
    let (_clock, handle) = TestClock::shared();
    let outcome = rig.client(config, handle).lookup(&ips);

    assert!(outcome.stats.breaker_tripped);
    assert_eq!(outcome.stats.chunks, 5);
    // Only the first two chunks touched the network (2 attempts each);
    // the remaining three failed fast with the breaker open.
    assert_eq!(outcome.stats.connections, 4);
    assert_eq!(outcome.failed.len(), 25);
    let open: Vec<_> = outcome
        .failed
        .iter()
        .filter(|f| f.reason == FailReason::CircuitOpen)
        .collect();
    assert_eq!(open.len(), 15);
    assert!(open.iter().all(|f| f.attempts == 0));
    rig.proxy.shutdown();
    rig.server.shutdown();
}

#[test]
fn unsolicited_rows_are_quarantined_through_the_proxy() {
    // A scripted upstream that answers the requested addresses but also
    // volunteers rows for addresses the client never asked about —
    // behind a pass-through proxy so the bytes travel the same path as
    // every other matrix entry. The bogus echoes must be quarantined
    // per-address (FailReason::Unsolicited) while the batch completes.
    use std::io::{Read, Write};
    let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind upstream");
    let upstream = listener.local_addr().expect("upstream addr");
    std::thread::spawn(move || {
        if let Ok((mut s, _)) = listener.accept() {
            let mut req = Vec::new();
            let _ = s.read_to_end(&mut req);
            let _ = s.write_all(
                b"Bulk mode; whois.routergeo.test [synthetic]\n\
                  NA | 9.9.9.9 | NA | NA | NA\n\
                  64500 | 66.66.66.66 | 66.66.66.0/24 | US | arin\n\
                  Error: bad address \"77.77.77.77\"\n\
                  NA | 11.11.11.11 | NA | NA | NA\n",
            );
        }
    });
    let proxy = ChaosProxy::spawn(upstream, FaultPlan::pass_through(), SystemClock::shared())
        .expect("spawn proxy");
    let mut config = fast_config();
    config.retry.max_attempts = 1;
    let (_clock, handle) = TestClock::shared();
    let ips: Vec<Ipv4Addr> = vec!["9.9.9.9".parse().unwrap(), "11.11.11.11".parse().unwrap()];
    let outcome = BulkClient::with_config(proxy.addr(), config, handle).lookup(&ips);
    assert!(outcome.is_complete(), "failed: {:?}", outcome.failed);
    assert_eq!(
        outcome.answered(),
        ips.len(),
        "rows after bogus echoes parse"
    );
    let quarantined: Vec<Ipv4Addr> = outcome.unsolicited.iter().map(|u| u.ip).collect();
    assert_eq!(
        quarantined,
        vec![
            "66.66.66.66".parse::<Ipv4Addr>().unwrap(),
            "77.77.77.77".parse::<Ipv4Addr>().unwrap(),
        ]
    );
    assert!(outcome
        .unsolicited
        .iter()
        .all(|u| u.reason == FailReason::Unsolicited));
}

#[test]
fn per_chunk_jitter_spreads_backoff_across_chunks() {
    // Two chunks that both fail once: each sleeps its own chunk's
    // deterministic schedule, not a shared one.
    let plan = FaultPlan::cycle(vec![Fault::Refuse, Fault::PassThrough]);
    let mut rig = Rig::new(909, plan, SystemClock::shared());
    let ips = rig.ips(20);
    let mut config = fast_config();
    config.chunk_size = 10; // 2 chunks
    config.breaker_threshold = 0; // breaker off for this one
    let (clock, handle) = TestClock::shared();
    let outcome = rig.client(config.clone(), handle).lookup(&ips);
    assert!(outcome.is_complete(), "failed: {:?}", outcome.failed);
    let expected = vec![
        config.retry.delays_for_chunk(0)[0],
        config.retry.delays_for_chunk(1)[0],
    ];
    assert_eq!(clock.sleeps(), expected);
    assert_ne!(expected[0], expected[1], "chunks share a jitter stream");
    rig.proxy.shutdown();
    rig.server.shutdown();
}

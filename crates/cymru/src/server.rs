//! TCP bulk whois server.
//!
//! Protocol (the netcat-style interface Team Cymru documents):
//!
//! ```text
//! client: begin
//! client: verbose          (optional)
//! client: 6.1.2.3
//! client: 31.0.0.9
//! client: end
//! server: Bulk mode; whois.routergeo.test [synthetic]
//! server: 1007 | 6.1.2.3 | 6.1.2.0/24 | US | arin
//! server: 1012 | 31.0.0.9 | 31.0.0.0/24 | DE | ripencc
//! ```
//!
//! Connections are served by a **bounded worker pool** fed through a
//! bounded queue: when both are saturated the server answers
//! `Error: busy` and closes instead of spawning without limit, so load
//! shedding is explicit and clients can back off. Every connection
//! carries read/write deadlines — a client that sends `begin` and then
//! stalls is dropped when its read deadline fires, it cannot pin a
//! worker forever. [`WhoisServer::shutdown`] drains in flight
//! connections (bounded wait) and reports how many leaked.

use crate::client::{read_line_bounded, LineRead, MAX_LINE};
use crate::MappingService;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Maximum addresses accepted per bulk request (protocol hygiene: a
/// misbehaving client cannot hold a worker forever).
pub const MAX_BULK: usize = 100_000;

/// Worker-pool sizing and per-connection deadlines.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving connections.
    pub max_workers: usize,
    /// Accepted connections that may wait for a worker; beyond this the
    /// server sheds load with `Error: busy`.
    pub queue_depth: usize,
    /// Per-connection read deadline (per line, not per request).
    pub read_timeout: Duration,
    /// Per-connection write deadline.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_workers: 16,
            queue_depth: 32,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// Handle to a running whois server.
pub struct WhoisServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl WhoisServer {
    /// Bind to `127.0.0.1:0` (ephemeral port) and serve the given
    /// mapping with [`ServerConfig::default`] pool sizing.
    pub fn spawn(service: Arc<MappingService>) -> std::io::Result<WhoisServer> {
        WhoisServer::spawn_with(service, ServerConfig::default())
    }

    /// Bind to `127.0.0.1:0` and serve with explicit pool sizing and
    /// deadlines. The service runs until [`WhoisServer::shutdown`] or
    /// drop.
    pub fn spawn_with(
        service: Arc<MappingService>,
        config: ServerConfig,
    ) -> std::io::Result<WhoisServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));

        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(config.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<JoinHandle<()>> = (0..config.max_workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let svc = Arc::clone(&service);
                let counter = Arc::clone(&active);
                let config = config.clone();
                // xtask-allow: RG007 long-lived I/O workers, not data-parallel fan-out
                std::thread::spawn(move || worker_loop(&rx, &svc, &counter, &config))
            })
            .collect();

        let stop2 = Arc::clone(&stop);
        let active2 = Arc::clone(&active);
        let write_timeout = config.write_timeout;
        // xtask-allow: RG007 accept loop must outlive this call; pool shards are scoped
        let accept_thread = std::thread::spawn(move || {
            // `tx` lives in this closure: when the accept loop exits the
            // sender drops, workers see `recv` fail and drain out.
            for conn in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                active2.fetch_add(1, Ordering::SeqCst);
                match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) | Err(TrySendError::Disconnected(stream)) => {
                        // Pool and queue saturated: shed load explicitly
                        // rather than queueing without bound.
                        reject_busy(stream, write_timeout);
                        active2.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
        });
        Ok(WhoisServer {
            addr,
            stop,
            active,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address to connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain in-flight connections (bounded wait), and
    /// join the pool. Returns the number of connections still active
    /// when the drain deadline expired — 0 on a clean shutdown.
    pub fn shutdown(&mut self) -> usize {
        if self.accept_thread.is_none() {
            return 0;
        }
        self.stop.store(true, Ordering::SeqCst);
        // Nudge the blocking accept (deadline-bounded like every other
        // connect in the workspace).
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Drain in-flight connections (bounded wait).
        let mut leaked = self.active.load(Ordering::SeqCst);
        for _ in 0..200 {
            if leaked == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
            leaked = self.active.load(Ordering::SeqCst);
        }
        if leaked == 0 {
            // The sender dropped with the accept thread, so idle workers
            // exit as soon as the queue is empty.
            for w in self.workers.drain(..) {
                let _ = w.join();
            }
        } else {
            // Leaked connections still hold workers; detach rather than
            // hang the caller, and report the leak.
            self.workers.clear();
        }
        leaked
    }
}

impl Drop for WhoisServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Answer `Error: busy` (deadline-bounded) and close.
fn reject_busy(stream: TcpStream, write_timeout: Duration) {
    // Bound the whole rejection so a stalling client cannot wedge the
    // accept loop.
    let deadline = write_timeout.min(Duration::from_secs(1));
    let mut stream = stream;
    let _ = stream.set_write_timeout(Some(deadline));
    let _ = stream.set_read_timeout(Some(deadline));
    let _ = stream.write_all(b"Error: busy\n");
    // Drain the client's request before closing: closing with unread
    // bytes in the receive buffer makes the kernel answer with RST,
    // which can destroy the busy line in flight.
    let mut sink = [0u8; 512];
    loop {
        match std::io::Read::read(&mut stream, &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Pool worker: serve queued connections until the sender drops.
fn worker_loop(
    rx: &Arc<Mutex<Receiver<TcpStream>>>,
    service: &MappingService,
    active: &AtomicUsize,
    config: &ServerConfig,
) {
    loop {
        let conn = {
            let Ok(guard) = rx.lock() else { return };
            // xtask-allow: RG011 the workers share one Receiver; blocking in recv with the dispatch lock held IS the handoff protocol
            guard.recv()
        };
        let Ok(stream) = conn else { return };
        // A failed connection is the client's problem; the worker keeps
        // serving.
        // xtask-allow: RG012 per-connection I/O errors are expected churn; the worker loop must outlive them
        let _ = handle_connection(stream, service, config);
        active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Read and discard the rest of a shed client's request, up to a fixed
/// cap — closing with unread bytes in the receive buffer makes the
/// kernel answer RST, which can destroy the error line in flight. The
/// cap keeps a truly endless client from pinning the worker; past it
/// the RST is accepted as the lesser evil.
fn drain_bounded<R: std::io::Read>(r: &mut R) {
    const DRAIN_CAP: usize = 1 << 20;
    let mut sink = [0u8; 4096];
    let mut seen = 0usize;
    while seen < DRAIN_CAP {
        match r.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => seen += n,
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    service: &MappingService,
    config: &ServerConfig,
) -> std::io::Result<()> {
    // Deadlines first: a stalled client is dropped when the next line
    // read exceeds `read_timeout`, freeing the worker.
    stream.set_read_timeout(Some(config.read_timeout))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    let peer = stream.try_clone()?;
    let mut reader = BufReader::new(peer);
    let mut writer = BufWriter::new(stream);

    // Every request line goes through the bounded reader: a client
    // streaming one endless line is shed at `MAX_LINE` bytes instead of
    // growing the line buffer until the process dies.
    let mut raw = Vec::new();

    // Expect `begin`.
    match read_line_bounded(&mut reader, &mut raw)? {
        LineRead::Eof | LineRead::Line => {}
        LineRead::TooLong => {
            writeln!(writer, "Error: line exceeds {MAX_LINE} bytes")?;
            writer.flush()?;
            drain_bounded(&mut reader);
            return Ok(());
        }
    }
    if String::from_utf8_lossy(&raw).trim() != "begin" {
        writeln!(writer, "Error: expected 'begin'")?;
        return writer.flush();
    }

    writeln!(writer, "Bulk mode; whois.routergeo.test [synthetic]")?;

    let mut count = 0usize;
    loop {
        match read_line_bounded(&mut reader, &mut raw)? {
            LineRead::Eof => break, // client hung up
            LineRead::TooLong => {
                writeln!(writer, "Error: line exceeds {MAX_LINE} bytes")?;
                writer.flush()?;
                drain_bounded(&mut reader);
                return Ok(());
            }
            LineRead::Line => {}
        }
        let line = String::from_utf8_lossy(&raw);
        let trimmed = line.trim();
        if trimmed == "end" {
            break;
        }
        if trimmed.is_empty() || trimmed == "verbose" {
            continue; // verbose changes nothing in the synthetic service
        }
        count += 1;
        if count > MAX_BULK {
            writeln!(writer, "Error: bulk limit exceeded")?;
            break;
        }
        match trimmed.parse::<std::net::Ipv4Addr>() {
            Ok(ip) => writeln!(writer, "{}", service.format_row(ip))?,
            Err(_) => writeln!(writer, "Error: bad address {trimmed:?}")?,
        }
    }
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use routergeo_world::{World, WorldConfig};
    use std::io::Read;

    fn server() -> (World, WhoisServer) {
        let w = World::generate(WorldConfig::tiny(141));
        let svc = Arc::new(MappingService::build(&w));
        let srv = WhoisServer::spawn(svc).expect("bind");
        (w, srv)
    }

    fn talk(addr: SocketAddr, input: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(input.as_bytes()).unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_bulk_queries() {
        let (w, mut srv) = server();
        let ip = w.interfaces[0].ip;
        let out = talk(srv.addr(), &format!("begin\nverbose\n{ip}\nend\n"));
        assert!(out.starts_with("Bulk mode;"), "{out}");
        assert!(out.contains(&ip.to_string()), "{out}");
        let info = w.block_info(ip).unwrap();
        assert!(out.contains(&info.rir.name().to_ascii_lowercase()), "{out}");
        assert_eq!(srv.shutdown(), 0);
    }

    #[test]
    fn rejects_missing_begin() {
        let (_, mut srv) = server();
        let out = talk(srv.addr(), "1.2.3.4\nend\n");
        assert!(out.starts_with("Error: expected 'begin'"), "{out}");
        srv.shutdown();
    }

    #[test]
    fn reports_bad_addresses_without_dying() {
        let (w, mut srv) = server();
        let ip = w.interfaces[0].ip;
        let out = talk(srv.addr(), &format!("begin\nnot-an-ip\n{ip}\nend\n"));
        assert!(out.contains("Error: bad address"), "{out}");
        assert!(out.contains(&ip.to_string()), "{out}");
        srv.shutdown();
    }

    #[test]
    fn endless_line_is_shed_not_buffered() {
        // A client streaming one line forever must be cut off at the
        // line cap, not buffered into memory until the process dies.
        let (_, mut srv) = server();
        let mut s = TcpStream::connect(srv.addr()).unwrap();
        s.write_all(b"begin\n").unwrap();
        let garbage = vec![b'a'; MAX_LINE * 4];
        s.write_all(&garbage).unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("Bulk mode;"), "{out}");
        assert!(out.contains("Error: line exceeds"), "{out}");
        assert_eq!(srv.shutdown(), 0);
    }

    #[test]
    fn handles_concurrent_clients() {
        let (w, mut srv) = server();
        let addr = srv.addr();
        let ips: Vec<_> = w.interfaces.iter().take(8).map(|i| i.ip).collect();
        let handles: Vec<_> = ips
            .iter()
            .map(|ip| {
                let ip = *ip;
                std::thread::spawn(move || talk(addr, &format!("begin\n{ip}\nend\n")))
            })
            .collect();
        for (h, ip) in handles.into_iter().zip(ips) {
            let out = h.join().unwrap();
            assert!(out.contains(&ip.to_string()), "{out}");
        }
        srv.shutdown();
    }

    #[test]
    fn sustains_thousands_of_sequential_connections() {
        // Regression test: worker threads must be reaped as connections
        // finish, not accumulated until shutdown (which exhausted memory
        // under benchmark load).
        let (w, mut srv) = server();
        let ip = w.interfaces[0].ip;
        let req = format!("begin\n{ip}\nend\n");
        for _ in 0..2_000 {
            let out = talk(srv.addr(), &req);
            assert!(out.contains(&ip.to_string()));
        }
        // All workers drained shortly after the last connection closes.
        for _ in 0..200 {
            if srv.active.load(Ordering::SeqCst) == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(srv.active.load(Ordering::SeqCst), 0);
        assert_eq!(srv.shutdown(), 0);
    }

    #[test]
    fn saturated_pool_sheds_load_with_busy() {
        let w = World::generate(WorldConfig::tiny(142));
        let svc = Arc::new(MappingService::build(&w));
        // One worker, rendezvous queue: a single held connection
        // saturates the server.
        let config = ServerConfig {
            max_workers: 1,
            queue_depth: 0,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
        };
        let mut srv = WhoisServer::spawn_with(svc, config).expect("bind");

        // Hold the only worker: send `begin` and stall mid-request.
        let mut held = TcpStream::connect(srv.addr()).unwrap();
        held.write_all(b"begin\n").unwrap();
        // Let the worker dequeue the held connection.
        std::thread::sleep(Duration::from_millis(100));

        let ip = w.interfaces[0].ip;
        let out = talk(srv.addr(), &format!("begin\n{ip}\nend\n"));
        assert!(out.starts_with("Error: busy"), "{out}");

        // Release the worker; the next request is served normally.
        held.write_all(b"end\n").unwrap();
        drop(held);
        std::thread::sleep(Duration::from_millis(50));
        let out = talk(srv.addr(), &format!("begin\n{ip}\nend\n"));
        assert!(out.contains(&ip.to_string()), "{out}");
        assert_eq!(srv.shutdown(), 0);
    }

    #[test]
    fn stalled_client_is_dropped_at_the_read_deadline() {
        let w = World::generate(WorldConfig::tiny(143));
        let svc = Arc::new(MappingService::build(&w));
        let config = ServerConfig {
            read_timeout: Duration::from_millis(100),
            ..ServerConfig::default()
        };
        let mut srv = WhoisServer::spawn_with(svc, config).expect("bind");
        // Send `begin` and stall: the server must hang up on us.
        let mut s = TcpStream::connect(srv.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(b"begin\n").unwrap();
        let mut out = String::new();
        // Banner arrives, then the connection closes at the deadline
        // instead of holding the worker forever.
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("Bulk mode;"), "{out}");
        assert_eq!(srv.shutdown(), 0);
    }

    #[test]
    fn shutdown_is_idempotent() {
        let (_, mut srv) = server();
        assert_eq!(srv.shutdown(), 0);
        assert_eq!(srv.shutdown(), 0);
    }
}

//! TCP bulk whois server.
//!
//! Protocol (the netcat-style interface Team Cymru documents):
//!
//! ```text
//! client: begin
//! client: verbose          (optional)
//! client: 6.1.2.3
//! client: 31.0.0.9
//! client: end
//! server: Bulk mode; whois.routergeo.test [synthetic]
//! server: 1007 | 6.1.2.3 | 6.1.2.0/24 | US | arin
//! server: 1012 | 31.0.0.9 | 31.0.0.0/24 | DE | ripencc
//! ```
//!
//! The server answers one connection per thread and shuts down cleanly on
//! [`WhoisServer::shutdown`] (the listener is nudged awake by a local
//! connection so `accept` never blocks forever).

use crate::MappingService;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Maximum addresses accepted per bulk request (protocol hygiene: a
/// misbehaving client cannot hold a worker forever).
pub const MAX_BULK: usize = 100_000;

/// Handle to a running whois server.
pub struct WhoisServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    accept_thread: Option<JoinHandle<()>>,
}

impl WhoisServer {
    /// Bind to `127.0.0.1:0` (ephemeral port) and start serving the given
    /// mapping. The service runs until [`WhoisServer::shutdown`] or drop.
    pub fn spawn(service: Arc<MappingService>) -> std::io::Result<WhoisServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        // Workers are detached and tracked by a live-connection counter:
        // storing JoinHandles would leak a zombie thread per connection
        // until shutdown, which a bulk client hammering the service turns
        // into memory exhaustion.
        let active = Arc::new(AtomicUsize::new(0));
        let active2 = Arc::clone(&active);
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        let svc = Arc::clone(&service);
                        let counter = Arc::clone(&active2);
                        counter.fetch_add(1, Ordering::SeqCst);
                        std::thread::spawn(move || {
                            // A failed connection is the client's problem;
                            // the server keeps accepting.
                            let _ = handle_connection(stream, &svc);
                            counter.fetch_sub(1, Ordering::SeqCst);
                        });
                    }
                    Err(_) => continue,
                }
            }
        });
        Ok(WhoisServer {
            addr,
            stop,
            active,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address to connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept thread.
    pub fn shutdown(&mut self) {
        if self.accept_thread.is_none() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // Nudge the blocking accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Drain in-flight connections (bounded wait).
        for _ in 0..200 {
            if self.active.load(Ordering::SeqCst) == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    }
}

impl Drop for WhoisServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(stream: TcpStream, service: &MappingService) -> std::io::Result<()> {
    let peer = stream.try_clone()?;
    let mut reader = BufReader::new(peer);
    let mut writer = BufWriter::new(stream);

    // Expect `begin`.
    let mut line = String::new();
    reader.read_line(&mut line)?;
    if line.trim() != "begin" {
        writeln!(writer, "Error: expected 'begin'")?;
        return writer.flush();
    }

    writeln!(writer, "Bulk mode; whois.routergeo.test [synthetic]")?;

    let mut count = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break; // client hung up
        }
        let trimmed = line.trim();
        if trimmed == "end" {
            break;
        }
        if trimmed.is_empty() || trimmed == "verbose" {
            continue; // verbose changes nothing in the synthetic service
        }
        count += 1;
        if count > MAX_BULK {
            writeln!(writer, "Error: bulk limit exceeded")?;
            break;
        }
        match trimmed.parse::<std::net::Ipv4Addr>() {
            Ok(ip) => writeln!(writer, "{}", service.format_row(ip))?,
            Err(_) => writeln!(writer, "Error: bad address {trimmed:?}")?,
        }
    }
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use routergeo_world::{World, WorldConfig};
    use std::io::Read;

    fn server() -> (World, WhoisServer) {
        let w = World::generate(WorldConfig::tiny(141));
        let svc = Arc::new(MappingService::build(&w));
        let srv = WhoisServer::spawn(svc).expect("bind");
        (w, srv)
    }

    fn talk(addr: SocketAddr, input: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(input.as_bytes()).unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_bulk_queries() {
        let (w, mut srv) = server();
        let ip = w.interfaces[0].ip;
        let out = talk(srv.addr(), &format!("begin\nverbose\n{ip}\nend\n"));
        assert!(out.starts_with("Bulk mode;"), "{out}");
        assert!(out.contains(&ip.to_string()), "{out}");
        let info = w.block_info(ip).unwrap();
        assert!(out.contains(&info.rir.name().to_ascii_lowercase()), "{out}");
        srv.shutdown();
    }

    #[test]
    fn rejects_missing_begin() {
        let (_, mut srv) = server();
        let out = talk(srv.addr(), "1.2.3.4\nend\n");
        assert!(out.starts_with("Error: expected 'begin'"), "{out}");
        srv.shutdown();
    }

    #[test]
    fn reports_bad_addresses_without_dying() {
        let (w, mut srv) = server();
        let ip = w.interfaces[0].ip;
        let out = talk(srv.addr(), &format!("begin\nnot-an-ip\n{ip}\nend\n"));
        assert!(out.contains("Error: bad address"), "{out}");
        assert!(out.contains(&ip.to_string()), "{out}");
        srv.shutdown();
    }

    #[test]
    fn handles_concurrent_clients() {
        let (w, mut srv) = server();
        let addr = srv.addr();
        let ips: Vec<_> = w.interfaces.iter().take(8).map(|i| i.ip).collect();
        let handles: Vec<_> = ips
            .iter()
            .map(|ip| {
                let ip = *ip;
                std::thread::spawn(move || talk(addr, &format!("begin\n{ip}\nend\n")))
            })
            .collect();
        for (h, ip) in handles.into_iter().zip(ips) {
            let out = h.join().unwrap();
            assert!(out.contains(&ip.to_string()), "{out}");
        }
        srv.shutdown();
    }

    #[test]
    fn sustains_thousands_of_sequential_connections() {
        // Regression test: worker threads must be reaped as connections
        // finish, not accumulated until shutdown (which exhausted memory
        // under benchmark load).
        let (w, mut srv) = server();
        let ip = w.interfaces[0].ip;
        let req = format!("begin\n{ip}\nend\n");
        for _ in 0..2_000 {
            let out = talk(srv.addr(), &req);
            assert!(out.contains(&ip.to_string()));
        }
        // All workers drained shortly after the last connection closes.
        for _ in 0..200 {
            if srv.active.load(Ordering::SeqCst) == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(srv.active.load(Ordering::SeqCst), 0);
        srv.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let (_, mut srv) = server();
        srv.shutdown();
        srv.shutdown();
    }
}

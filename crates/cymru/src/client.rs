//! Bulk whois client.
//!
//! Two entry points:
//!
//! * [`BulkClient`] — the resilient path: connect/read/write deadlines,
//!   request chunking with per-chunk resume, bounded retries with
//!   exponential backoff + seeded jitter, per-address error attribution
//!   via [`BulkOutcome`], and a circuit breaker that fails remaining
//!   chunks fast after consecutive chunk failures. Backoff sleeps run on
//!   an injectable [`Clock`], so tests assert the exact schedule on
//!   virtual time.
//! * [`bulk_lookup`] — the original all-or-nothing convenience wrapper,
//!   now built on `BulkClient` (it inherits the deadlines, so a stalled
//!   server can no longer hang it forever).

use crate::CymruRecord;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use routergeo_faultnet::clock::{Clock, SystemClock};
use routergeo_geo::Rir;
use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, Write};
use std::net::{Ipv4Addr, Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// A parsed bulk-lookup answer for one address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BulkAnswer {
    /// The service mapped the address.
    Found(Ipv4Addr, CymruRecord),
    /// The service had no mapping (`NA` row).
    NotFound(Ipv4Addr),
}

impl BulkAnswer {
    /// The address this answer is for (the echoed IP column).
    pub fn ip(&self) -> Ipv4Addr {
        match self {
            BulkAnswer::Found(ip, _) => *ip,
            BulkAnswer::NotFound(ip) => *ip,
        }
    }
}

/// Errors from the all-or-nothing [`bulk_lookup`] wrapper.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server sent something unparseable.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "whois I/O error: {e}"),
            ClientError::Protocol(s) => write!(f, "whois protocol error: {s}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Why an address (or the attempt serving it) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailReason {
    /// Socket-level failure, by [`std::io::ErrorKind`].
    Io(std::io::ErrorKind),
    /// A configured connect/read/write deadline fired.
    Timeout,
    /// The server sent something unparseable (bad banner, bad row).
    Protocol(String),
    /// The server echoed an answer or error row for this address even
    /// though it was never requested. The row is quarantined in
    /// [`BulkOutcome::unsolicited`]; requested addresses are unaffected.
    Unsolicited,
    /// The response stream ended cleanly but this address was never
    /// answered — the short-count case a bare EOF loop would miss.
    MissingAnswer,
    /// The server reported an error for this address or batch.
    ServerError(String),
    /// The circuit breaker was open; the chunk was never attempted.
    CircuitOpen,
}

impl std::fmt::Display for FailReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailReason::Io(kind) => write!(f, "i/o error: {kind:?}"),
            FailReason::Timeout => write!(f, "deadline exceeded"),
            FailReason::Protocol(s) => write!(f, "protocol error: {s}"),
            FailReason::Unsolicited => f.write_str("answer for unrequested address"),
            FailReason::MissingAnswer => write!(f, "no answer before end of stream"),
            FailReason::ServerError(s) => write!(f, "server error: {s}"),
            FailReason::CircuitOpen => write!(f, "circuit breaker open"),
        }
    }
}

/// One address that could not be resolved after all retries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddrFailure {
    /// The unresolved address.
    pub ip: Ipv4Addr,
    /// The last failure observed while trying to resolve it.
    pub reason: FailReason,
    /// Connection attempts made for the chunk carrying this address
    /// (0 when the circuit breaker skipped the chunk entirely).
    pub attempts: u32,
}

/// Bounded-retry schedule: exponential backoff with seeded jitter.
///
/// The schedule is a pure function of `(policy, chunk index)`, so a test
/// can compute the exact delays a client will sleep via
/// [`RetryPolicy::delays_for_chunk`] and compare them against a
/// recording clock.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Connection attempts per chunk (at least 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base: Duration,
    /// Backoff ceiling (pre-jitter).
    pub max: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(100),
            max: Duration::from_secs(5),
            jitter_seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// The exact backoff sleeps for `chunk_idx`: entry `k` is the delay
    /// between attempt `k+1` and attempt `k+2`. Each entry is
    /// `min(base · 2^k, max)` plus jitter drawn from a generator seeded
    /// by `jitter_seed` and the chunk index, so distinct chunks spread
    /// out while every run of the same configuration is identical.
    pub fn delays_for_chunk(&self, chunk_idx: usize) -> Vec<Duration> {
        let salt = u64::try_from(chunk_idx).unwrap_or(u64::MAX);
        let mut rng =
            StdRng::seed_from_u64(self.jitter_seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let half_base_ms = u64::try_from(self.base.as_millis() / 2).unwrap_or(u64::MAX);
        (0..self.max_attempts.saturating_sub(1))
            .map(|k| {
                let doubling = 1u32.checked_shl(k).unwrap_or(u32::MAX);
                let backoff = self
                    .base
                    .checked_mul(doubling)
                    .unwrap_or(self.max)
                    .min(self.max);
                let jitter = if half_base_ms == 0 {
                    Duration::ZERO
                } else {
                    Duration::from_millis(rng.gen_range(0..=half_base_ms))
                };
                backoff + jitter
            })
            .collect()
    }
}

/// Deadlines, batching, and resilience knobs for [`BulkClient`].
#[derive(Debug, Clone)]
pub struct BulkConfig {
    /// TCP connect deadline.
    pub connect_timeout: Duration,
    /// Socket read deadline (per read, not per response).
    pub read_timeout: Duration,
    /// Socket write deadline.
    pub write_timeout: Duration,
    /// Addresses per connection; a mid-stream failure re-fetches only
    /// the unanswered remainder of one chunk, never the whole batch.
    pub chunk_size: usize,
    /// Retry/backoff schedule applied per chunk.
    pub retry: RetryPolicy,
    /// Consecutive chunk failures that trip the circuit breaker
    /// (0 disables the breaker).
    pub breaker_threshold: u32,
}

impl Default for BulkConfig {
    fn default() -> Self {
        BulkConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(1),
            chunk_size: 10_000,
            retry: RetryPolicy::default(),
            breaker_threshold: 3,
        }
    }
}

/// Transport accounting for one [`BulkClient::lookup`] call.
#[derive(Debug, Clone, Default)]
pub struct BulkStats {
    /// Chunks the request was split into.
    pub chunks: usize,
    /// TCP connection attempts (including retries).
    pub connections: usize,
    /// Re-attempts after a failed connection.
    pub retries: usize,
    /// Backoff sleeps actually performed, in order.
    pub backoff: Vec<Duration>,
    /// Whether the circuit breaker skipped at least one chunk.
    pub breaker_tripped: bool,
}

/// Per-address result of a bulk lookup: every requested address lands in
/// exactly one of the three buckets, so a partially-down service yields
/// partial data plus attributed failures instead of an all-or-nothing
/// `Err`.
#[derive(Debug, Clone, Default)]
pub struct BulkOutcome {
    /// Addresses the service mapped, in request order.
    pub found: Vec<(Ipv4Addr, CymruRecord)>,
    /// Addresses the service answered `NA` for, in request order.
    pub not_found: Vec<Ipv4Addr>,
    /// Addresses that exhausted retries (or hit the open breaker).
    pub failed: Vec<AddrFailure>,
    /// Addresses the server volunteered rows for without being asked
    /// (reason is always [`FailReason::Unsolicited`]). These are *not*
    /// requested addresses and live outside the three buckets above;
    /// they are quarantined here for diagnostics so a corrupted stream
    /// can neither poison the merge nor abort the batch.
    pub unsolicited: Vec<AddrFailure>,
    /// Transport accounting for the whole call.
    pub stats: BulkStats,
}

impl BulkOutcome {
    /// Addresses the server answered (found or `NA`).
    pub fn answered(&self) -> usize {
        self.found.len() + self.not_found.len()
    }

    /// True when no address failed.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty()
    }
}

/// Resilient bulk whois client (see the module docs for the design).
pub struct BulkClient {
    addr: SocketAddr,
    config: BulkConfig,
    clock: Arc<dyn Clock>,
}

/// What one connection attempt produced. `failure` is the attempt-level
/// problem, if any; `answers`/`addr_errors` are kept even when the
/// attempt failed mid-stream, which is what makes resume incremental.
struct Attempt {
    answers: Vec<BulkAnswer>,
    addr_errors: Vec<(Ipv4Addr, String)>,
    /// Echoed IPs that parse but were never requested — quarantined,
    /// never merged, never fatal (see [`FailReason::Unsolicited`]).
    unsolicited: Vec<Ipv4Addr>,
    failure: Option<FailReason>,
}

impl BulkClient {
    /// Client with [`BulkConfig::default`] deadlines on the real clock.
    pub fn new(addr: SocketAddr) -> BulkClient {
        BulkClient::with_config(addr, BulkConfig::default(), SystemClock::shared())
    }

    /// Client with explicit knobs and an injectable clock for backoff
    /// sleeps (pass a `TestClock` handle to run retries on virtual time).
    pub fn with_config(addr: SocketAddr, config: BulkConfig, clock: Arc<dyn Clock>) -> BulkClient {
        BulkClient {
            addr,
            config,
            clock,
        }
    }

    /// Resolve a batch of addresses with per-address outcomes.
    ///
    /// Duplicate request addresses are resolved once. The call is
    /// deadline-bounded: every socket operation carries a timeout, so a
    /// stalled server costs at most
    /// `attempts · (connect + read/write deadlines) + backoff` per chunk
    /// and can never hang the caller.
    pub fn lookup(&self, ips: &[Ipv4Addr]) -> BulkOutcome {
        let mut span = routergeo_obs::span!("cymru.bulk_lookup", requested = ips.len());
        let mut out = BulkOutcome::default();
        let mut seen = HashSet::new();
        let unique: Vec<Ipv4Addr> = ips.iter().copied().filter(|ip| seen.insert(*ip)).collect();
        routergeo_obs::counter("cymru.addrs_requested").add(unique.len() as u64);
        let chunks_ok = routergeo_obs::counter("cymru.chunks_ok");
        let chunks_failed = routergeo_obs::counter("cymru.chunks_failed");
        let chunks_skipped = routergeo_obs::counter("cymru.chunks_skipped");
        let chunk_size = self.config.chunk_size.max(1);
        let mut consecutive_failures = 0u32;
        for (chunk_idx, chunk) in unique.chunks(chunk_size).enumerate() {
            out.stats.chunks += 1;
            if self.config.breaker_threshold > 0
                && consecutive_failures >= self.config.breaker_threshold
            {
                if !out.stats.breaker_tripped {
                    routergeo_obs::counter("cymru.breaker_trips").incr();
                }
                out.stats.breaker_tripped = true;
                chunks_skipped.incr();
                for ip in chunk {
                    out.failed.push(AddrFailure {
                        ip: *ip,
                        reason: FailReason::CircuitOpen,
                        attempts: 0,
                    });
                }
                continue;
            }
            if self.run_chunk(chunk_idx, chunk, &mut out) {
                chunks_ok.incr();
                consecutive_failures = 0;
            } else {
                chunks_failed.incr();
                consecutive_failures += 1;
            }
        }
        routergeo_obs::counter("cymru.chunks").add(out.stats.chunks as u64);
        routergeo_obs::counter("cymru.retries").add(out.stats.retries as u64);
        routergeo_obs::counter("cymru.backoff_waits").add(out.stats.backoff.len() as u64);
        routergeo_obs::counter("cymru.addrs_found").add(out.found.len() as u64);
        routergeo_obs::counter("cymru.addrs_not_found").add(out.not_found.len() as u64);
        routergeo_obs::counter("cymru.addrs_failed").add(out.failed.len() as u64);
        routergeo_obs::counter("cymru.addrs_unsolicited").add(out.unsolicited.len() as u64);
        span.attr("chunks", out.stats.chunks);
        span.attr("retries", out.stats.retries);
        span.attr("failed", out.failed.len());
        out
    }

    /// Drive one chunk to completion or retry exhaustion. Returns true
    /// when the chunk finished cleanly (per-address server errors count
    /// as clean — they are answers, not transport failures).
    fn run_chunk(&self, chunk_idx: usize, chunk: &[Ipv4Addr], out: &mut BulkOutcome) -> bool {
        let delays = self.config.retry.delays_for_chunk(chunk_idx);
        let max_attempts = self.config.retry.max_attempts.max(1);
        let mut pending: Vec<Ipv4Addr> = chunk.to_vec();
        let mut answered: HashMap<Ipv4Addr, BulkAnswer> = HashMap::new();
        let mut addr_failed: HashMap<Ipv4Addr, AddrFailure> = HashMap::new();
        let mut last_failure = FailReason::MissingAnswer;
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            out.stats.connections += 1;
            let attempt = self.attempt(&pending);
            for ans in attempt.answers {
                answered.insert(ans.ip(), ans);
            }
            for (ip, msg) in attempt.addr_errors {
                addr_failed.insert(
                    ip,
                    AddrFailure {
                        ip,
                        reason: FailReason::ServerError(msg),
                        attempts,
                    },
                );
            }
            for ip in attempt.unsolicited {
                // First sighting wins; retries re-reading the same bogus
                // row must not duplicate the quarantine entry.
                if !out.unsolicited.iter().any(|u| u.ip == ip) {
                    out.unsolicited.push(AddrFailure {
                        ip,
                        reason: FailReason::Unsolicited,
                        attempts,
                    });
                }
            }
            // Resume: only still-unanswered addresses are re-requested.
            pending.retain(|ip| !answered.contains_key(ip) && !addr_failed.contains_key(ip));
            if pending.is_empty() {
                break;
            }
            last_failure = attempt.failure.unwrap_or(FailReason::MissingAnswer);
            if attempts >= max_attempts {
                break;
            }
            let delay_idx = usize::try_from(attempts - 1).unwrap_or(usize::MAX);
            if let Some(d) = delays.get(delay_idx) {
                self.clock.sleep(*d);
                out.stats.backoff.push(*d);
            }
            out.stats.retries += 1;
        }

        let exhausted: HashSet<Ipv4Addr> = pending.iter().copied().collect();
        for ip in chunk {
            if let Some(ans) = answered.remove(ip) {
                match ans {
                    BulkAnswer::Found(ip, rec) => out.found.push((ip, rec)),
                    BulkAnswer::NotFound(ip) => out.not_found.push(ip),
                }
            } else if let Some(f) = addr_failed.remove(ip) {
                out.failed.push(f);
            } else if exhausted.contains(ip) {
                out.failed.push(AddrFailure {
                    ip: *ip,
                    reason: last_failure.clone(),
                    attempts,
                });
            }
        }
        exhausted.is_empty()
    }

    /// One connection attempt for the given (still-pending) addresses.
    fn attempt(&self, pending: &[Ipv4Addr]) -> Attempt {
        let mut a = Attempt {
            answers: Vec::new(),
            addr_errors: Vec::new(),
            unsolicited: Vec::new(),
            failure: None,
        };
        let mut stream = match TcpStream::connect_timeout(&self.addr, self.config.connect_timeout) {
            Ok(s) => s,
            Err(e) => {
                a.failure = Some(classify(&e));
                return a;
            }
        };
        if let Err(e) = stream
            .set_read_timeout(Some(self.config.read_timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.config.write_timeout)))
        {
            a.failure = Some(classify(&e));
            return a;
        }
        let mut request = String::with_capacity(pending.len() * 16 + 16);
        request.push_str("begin\nverbose\n");
        for ip in pending {
            request.push_str(&ip.to_string());
            request.push('\n');
        }
        request.push_str("end\n");
        if let Err(e) = stream
            .write_all(request.as_bytes())
            .and_then(|()| stream.shutdown(Shutdown::Write))
        {
            a.failure = Some(classify(&e));
            return a;
        }

        let expected: HashSet<Ipv4Addr> = pending.iter().copied().collect();
        let mut reader = BufReader::new(stream);
        let mut saw_banner = false;
        let mut raw = Vec::new();
        loop {
            match read_line_bounded(&mut reader, &mut raw) {
                Ok(LineRead::Eof) => break,
                Ok(LineRead::Line) => {}
                Ok(LineRead::TooLong) => {
                    // A server streaming an endless line is attacking
                    // client memory; drop the connection rather than
                    // buffer it. Answers already parsed are kept.
                    a.failure = Some(FailReason::Protocol(format!(
                        "response line exceeds {MAX_LINE} bytes"
                    )));
                    break;
                }
                Err(e) => {
                    a.failure = Some(classify(&e));
                    break;
                }
            }
            let line = String::from_utf8_lossy(&raw);
            let line = line.trim_end_matches('\r');
            if !saw_banner {
                saw_banner = true;
                if let Some(msg) = line.strip_prefix("Error:") {
                    // e.g. `Error: busy` from a saturated server —
                    // batch-level and retryable.
                    a.failure = Some(FailReason::ServerError(msg.trim().to_string()));
                    break;
                }
                if !line.starts_with("Bulk mode;") {
                    a.failure = Some(FailReason::Protocol(format!("bad banner: {line:?}")));
                    break;
                }
                continue;
            }
            match parse_line(&line) {
                Row::Answer(ans) => {
                    // Validate the echoed IP against the request; an
                    // unrequested echo is quarantined out of the merge
                    // so a corrupted stream cannot poison the outcome,
                    // and parsing continues — the echo mismatch is a
                    // property of that row, not of the whole attempt.
                    if expected.contains(&ans.ip()) {
                        a.answers.push(ans);
                    } else {
                        a.unsolicited.push(ans.ip());
                    }
                }
                Row::AddrError(ip, msg) => {
                    if expected.contains(&ip) {
                        a.addr_errors.push((ip, msg));
                    } else {
                        a.unsolicited.push(ip);
                    }
                }
                Row::Batch(msg) => {
                    a.failure = Some(FailReason::ServerError(msg));
                    break;
                }
                Row::Malformed(msg) => {
                    // Keep consuming: later rows may still parse, and
                    // whatever stays unanswered is retried.
                    if a.failure.is_none() {
                        a.failure = Some(FailReason::Protocol(msg));
                    }
                }
            }
        }
        a
    }
}

/// Longest response row the client will buffer. Real rows are well
/// under 200 bytes; anything longer is a server (or proxy) attacking
/// client memory, not a protocol variant.
pub(crate) const MAX_LINE: usize = 4096;

/// Result of one bounded line read.
pub(crate) enum LineRead {
    /// A complete line (newline stripped) is in the buffer.
    Line,
    /// Clean end of stream with nothing buffered.
    Eof,
    /// The line exceeded [`MAX_LINE`] before a newline arrived; the
    /// connection should be dropped.
    TooLong,
}

/// Read one `\n`-terminated line into `out` without ever buffering more
/// than [`MAX_LINE`] bytes — the bounded replacement for
/// `BufRead::read_line`, which grows its buffer with whatever the peer
/// streams.
pub(crate) fn read_line_bounded<R: BufRead>(
    r: &mut R,
    out: &mut Vec<u8>,
) -> std::io::Result<LineRead> {
    out.clear();
    loop {
        let buf = r.fill_buf()?;
        if buf.is_empty() {
            return Ok(if out.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line
            });
        }
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            out.extend_from_slice(buf.get(..pos).unwrap_or(buf));
            r.consume(pos + 1);
            return Ok(if out.len() > MAX_LINE {
                LineRead::TooLong
            } else {
                LineRead::Line
            });
        }
        let take = buf.len();
        out.extend_from_slice(buf);
        r.consume(take);
        if out.len() > MAX_LINE {
            return Ok(LineRead::TooLong);
        }
    }
}

/// Map socket errors to [`FailReason`], folding both timeout kinds
/// (`read_timeout` surfaces `WouldBlock` on Unix, `TimedOut` elsewhere).
fn classify(e: &std::io::Error) -> FailReason {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => FailReason::Timeout,
        kind => FailReason::Io(kind),
    }
}

/// One response line, classified.
enum Row {
    /// A well-formed answer row.
    Answer(BulkAnswer),
    /// An `Error:` row the server attributed to one requested address.
    AddrError(Ipv4Addr, String),
    /// An `Error:` row about the whole batch (limit exceeded, busy, …).
    Batch(String),
    /// A row that parses as neither.
    Malformed(String),
}

/// Classify one response row. `Error:` rows no longer abort the batch:
/// an attributable `bad address "a.b.c.d"` becomes a per-address
/// failure and parsing continues with the next row.
fn parse_line(line: &str) -> Row {
    if let Some(msg) = line.strip_prefix("Error:") {
        let msg = msg.trim();
        if let Some(quoted) = msg.strip_prefix("bad address ") {
            if let Ok(ip) = quoted.trim().trim_matches('"').parse::<Ipv4Addr>() {
                return Row::AddrError(ip, msg.to_string());
            }
        }
        return Row::Batch(msg.to_string());
    }
    match parse_answer(line) {
        Ok(ans) => Row::Answer(ans),
        Err(msg) => Row::Malformed(msg),
    }
}

/// Parse one pipe-separated answer row.
fn parse_answer(line: &str) -> Result<BulkAnswer, String> {
    let parts: Vec<&str> = line.split('|').map(str::trim).collect();
    if parts.len() != 5 {
        return Err(format!("bad row: {line:?}"));
    }
    let ip: Ipv4Addr = parts[1]
        .parse()
        .map_err(|_| format!("bad ip in row: {line:?}"))?;
    if parts[0] == "NA" {
        return Ok(BulkAnswer::NotFound(ip));
    }
    let asn: u32 = parts[0]
        .parse()
        .map_err(|_| format!("bad asn in row: {line:?}"))?;
    let prefix = parts[2]
        .parse()
        .map_err(|_| format!("bad prefix in row: {line:?}"))?;
    let country = parts[3]
        .parse()
        .map_err(|_| format!("bad country in row: {line:?}"))?;
    let rir: Rir = parts[4]
        .parse()
        .map_err(|_| format!("bad registry in row: {line:?}"))?;
    Ok(BulkAnswer::Found(
        ip,
        CymruRecord {
            asn,
            prefix,
            country,
            rir,
        },
    ))
}

/// Query the bulk whois service for a batch of addresses, all or
/// nothing.
///
/// Compatibility wrapper over [`BulkClient`] with default deadlines and
/// retries: any address failing after retries turns the whole call into
/// an `Err`, but deadlines still bound the wait. Answers come back in
/// request order (duplicates each get their answer).
pub fn bulk_lookup(addr: SocketAddr, ips: &[Ipv4Addr]) -> Result<Vec<BulkAnswer>, ClientError> {
    let outcome = BulkClient::new(addr).lookup(ips);
    if let Some(f) = outcome.failed.first() {
        return Err(match &f.reason {
            FailReason::Io(kind) => ClientError::Io(std::io::Error::new(
                *kind,
                format!("lookup failed for {}", f.ip),
            )),
            FailReason::Timeout => ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                format!("lookup timed out for {}", f.ip),
            )),
            other => ClientError::Protocol(format!("{other} for {}", f.ip)),
        });
    }
    let mut by_ip: HashMap<Ipv4Addr, BulkAnswer> = HashMap::new();
    for (ip, rec) in &outcome.found {
        by_ip.insert(*ip, BulkAnswer::Found(*ip, *rec));
    }
    for ip in &outcome.not_found {
        by_ip.insert(*ip, BulkAnswer::NotFound(*ip));
    }
    Ok(ips.iter().filter_map(|ip| by_ip.get(ip).cloned()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MappingService, WhoisServer};
    use routergeo_world::{World, WorldConfig};
    use std::io::Read;
    use std::net::TcpListener;
    use std::sync::Arc;

    #[test]
    fn end_to_end_bulk_lookup() {
        let w = World::generate(WorldConfig::tiny(151));
        let svc = Arc::new(MappingService::build(&w));
        let mut srv = WhoisServer::spawn(Arc::clone(&svc)).unwrap();

        let ips: Vec<Ipv4Addr> = w
            .interfaces
            .iter()
            .step_by(97)
            .take(50)
            .map(|i| i.ip)
            .chain(std::iter::once("203.0.113.1".parse().unwrap()))
            .collect();
        let answers = bulk_lookup(srv.addr(), &ips).unwrap();
        assert_eq!(answers.len(), ips.len());
        for (answer, ip) in answers.iter().zip(&ips) {
            match answer {
                BulkAnswer::Found(aip, rec) => {
                    assert_eq!(aip, ip);
                    // Must agree with the in-process service.
                    assert_eq!(Some(*rec), svc.lookup(*ip));
                }
                BulkAnswer::NotFound(aip) => {
                    assert_eq!(aip, ip);
                    assert!(svc.lookup(*ip).is_none());
                }
            }
        }
        srv.shutdown();
    }

    #[test]
    fn bulk_client_outcome_is_complete_against_healthy_server() {
        let w = World::generate(WorldConfig::tiny(152));
        let svc = Arc::new(MappingService::build(&w));
        let mut srv = WhoisServer::spawn(svc).unwrap();
        let ips: Vec<Ipv4Addr> = w
            .interfaces
            .iter()
            .step_by(211)
            .take(20)
            .map(|i| i.ip)
            .chain(std::iter::once("203.0.113.1".parse().unwrap()))
            .collect();
        let outcome = BulkClient::new(srv.addr()).lookup(&ips);
        assert!(outcome.is_complete());
        assert_eq!(outcome.answered(), ips.len());
        assert_eq!(outcome.found.len(), 20);
        assert_eq!(
            outcome.not_found,
            vec!["203.0.113.1".parse::<Ipv4Addr>().unwrap()]
        );
        assert_eq!(outcome.stats.connections, 1);
        assert_eq!(outcome.stats.retries, 0);
        srv.shutdown();
    }

    /// Serve one scripted response (after consuming the request), then
    /// close the listener.
    fn scripted_server(response: &'static str) -> SocketAddr {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            if let Ok((mut s, _)) = listener.accept() {
                let mut req = Vec::new();
                let _ = s.read_to_end(&mut req);
                let _ = s.write_all(response.as_bytes());
            }
        });
        addr
    }

    #[test]
    fn per_address_error_rows_do_not_abort_the_batch() {
        let addr = scripted_server(
            "Bulk mode; whois.routergeo.test [synthetic]\n\
             NA | 9.9.9.9 | NA | NA | NA\n\
             Error: bad address \"10.0.0.1\"\n\
             NA | 11.11.11.11 | NA | NA | NA\n",
        );
        let config = BulkConfig {
            retry: RetryPolicy {
                max_attempts: 1,
                ..RetryPolicy::default()
            },
            ..BulkConfig::default()
        };
        let ips: Vec<Ipv4Addr> = vec![
            "9.9.9.9".parse().unwrap(),
            "10.0.0.1".parse().unwrap(),
            "11.11.11.11".parse().unwrap(),
        ];
        let outcome = BulkClient::with_config(addr, config, SystemClock::shared()).lookup(&ips);
        // Rows after the error line were still consumed...
        assert_eq!(outcome.not_found.len(), 2);
        // ...and the error was attributed to exactly one address.
        assert_eq!(outcome.failed.len(), 1);
        assert_eq!(outcome.failed[0].ip, ips[1]);
        assert!(matches!(
            outcome.failed[0].reason,
            FailReason::ServerError(_)
        ));
    }

    #[test]
    fn unsolicited_rows_are_quarantined_without_aborting() {
        // Both an answer row and an error row for never-requested
        // addresses: neither may poison the merge, fail the batch, or
        // stop parsing of the rows after them.
        let addr = scripted_server(
            "Bulk mode; whois.routergeo.test [synthetic]\n\
             NA | 9.9.9.9 | NA | NA | NA\n\
             NA | 66.66.66.66 | NA | NA | NA\n\
             Error: bad address \"77.77.77.77\"\n\
             NA | 11.11.11.11 | NA | NA | NA\n",
        );
        let config = BulkConfig {
            retry: RetryPolicy {
                max_attempts: 1,
                ..RetryPolicy::default()
            },
            ..BulkConfig::default()
        };
        let ips: Vec<Ipv4Addr> = vec!["9.9.9.9".parse().unwrap(), "11.11.11.11".parse().unwrap()];
        let outcome = BulkClient::with_config(addr, config, SystemClock::shared()).lookup(&ips);
        assert!(outcome.is_complete(), "failed: {:?}", outcome.failed);
        assert_eq!(outcome.answered(), 2, "rows after the bogus echoes parse");
        let quarantined: Vec<Ipv4Addr> = outcome.unsolicited.iter().map(|u| u.ip).collect();
        assert_eq!(
            quarantined,
            vec![
                "66.66.66.66".parse::<Ipv4Addr>().unwrap(),
                "77.77.77.77".parse::<Ipv4Addr>().unwrap(),
            ]
        );
        for u in &outcome.unsolicited {
            assert_eq!(u.reason, FailReason::Unsolicited);
        }
    }

    #[test]
    fn oversized_response_line_fails_the_attempt_not_the_process() {
        // 1 MiB of banner with no newline: the bounded reader must cut
        // the connection at MAX_LINE instead of buffering it all.
        let big: &'static str = Box::leak(format!("Bulk mode; {}", "x".repeat(1 << 20)).into());
        let addr = scripted_server(big);
        let config = BulkConfig {
            retry: RetryPolicy {
                max_attempts: 1,
                ..RetryPolicy::default()
            },
            ..BulkConfig::default()
        };
        let ips: Vec<Ipv4Addr> = vec!["9.9.9.9".parse().unwrap()];
        let outcome = BulkClient::with_config(addr, config, SystemClock::shared()).lookup(&ips);
        assert_eq!(outcome.failed.len(), 1);
        assert!(
            matches!(&outcome.failed[0].reason, FailReason::Protocol(s) if s.contains("exceeds")),
            "{:?}",
            outcome.failed[0].reason
        );
    }

    #[test]
    fn short_response_surfaces_missing_answers_per_address() {
        // Server answers only the first address, then EOFs cleanly —
        // the old client silently returned one answer for two requests.
        let addr = scripted_server(
            "Bulk mode; whois.routergeo.test [synthetic]\n\
             NA | 9.9.9.9 | NA | NA | NA\n",
        );
        let config = BulkConfig {
            retry: RetryPolicy {
                max_attempts: 1,
                ..RetryPolicy::default()
            },
            ..BulkConfig::default()
        };
        let ips: Vec<Ipv4Addr> = vec!["9.9.9.9".parse().unwrap(), "10.0.0.1".parse().unwrap()];
        let outcome = BulkClient::with_config(addr, config, SystemClock::shared()).lookup(&ips);
        assert_eq!(outcome.not_found.len(), 1);
        assert_eq!(outcome.failed.len(), 1);
        assert_eq!(outcome.failed[0].ip, ips[1]);
        assert_eq!(outcome.failed[0].reason, FailReason::MissingAnswer);
    }

    #[test]
    fn parse_line_classifies_rows() {
        assert!(matches!(parse_line("garbage"), Row::Malformed(_)));
        assert!(matches!(parse_line("1 | 2 | 3"), Row::Malformed(_)));
        assert!(matches!(
            parse_line("x | 1.2.3.4 | 1.2.3.0/24 | US | arin"),
            Row::Malformed(_)
        ));
        assert!(matches!(
            parse_line("1 | nope | 1.2.3.0/24 | US | arin"),
            Row::Malformed(_)
        ));
        assert!(matches!(
            parse_line("Error: bulk limit exceeded"),
            Row::Batch(_)
        ));
        assert!(matches!(parse_line("Error: busy"), Row::Batch(_)));
        assert!(matches!(
            parse_line("Error: bad address \"10.0.0.1\""),
            Row::AddrError(ip, _) if ip == "10.0.0.1".parse::<Ipv4Addr>().unwrap()
        ));
        // Unattributable bad-address stays batch-level.
        assert!(matches!(
            parse_line("Error: bad address \"not-an-ip\""),
            Row::Batch(_)
        ));
        assert!(matches!(
            parse_line("NA | 9.9.9.9 | NA | NA | NA"),
            Row::Answer(BulkAnswer::NotFound(_))
        ));
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_bounded() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base: Duration::from_millis(100),
            max: Duration::from_millis(350),
            jitter_seed: 42,
        };
        let a = policy.delays_for_chunk(3);
        let b = policy.delays_for_chunk(3);
        assert_eq!(a, b, "same chunk, same schedule");
        assert_eq!(a.len(), 4);
        let half_jitter = Duration::from_millis(50);
        // Exponential ramp: 100, 200, 350 (capped), 350 — plus ≤ base/2.
        for (delay, floor) in a.iter().zip([100u64, 200, 350, 350]) {
            let floor = Duration::from_millis(floor);
            assert!(
                *delay >= floor && *delay <= floor + half_jitter,
                "{delay:?}"
            );
        }
        assert_ne!(
            policy.delays_for_chunk(0),
            policy.delays_for_chunk(1),
            "chunks get distinct jitter"
        );
    }
}

//! Bulk whois client.

use crate::CymruRecord;
use routergeo_geo::Rir;
use std::io::{BufRead, BufReader, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpStream};

/// A parsed bulk-lookup answer for one address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BulkAnswer {
    /// The service mapped the address.
    Found(Ipv4Addr, CymruRecord),
    /// The service had no mapping (`NA` row).
    NotFound(Ipv4Addr),
}

/// Errors from the bulk client.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server sent something unparseable.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "whois I/O error: {e}"),
            ClientError::Protocol(s) => write!(f, "whois protocol error: {s}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Query the bulk whois service for a batch of addresses.
///
/// Opens one connection, sends the whole batch between `begin`/`end`, and
/// parses the pipe-separated answer rows.
pub fn bulk_lookup(addr: SocketAddr, ips: &[Ipv4Addr]) -> Result<Vec<BulkAnswer>, ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    let mut request = String::with_capacity(ips.len() * 16 + 16);
    request.push_str("begin\nverbose\n");
    for ip in ips {
        request.push_str(&ip.to_string());
        request.push('\n');
    }
    request.push_str("end\n");
    stream.write_all(request.as_bytes())?;
    stream.shutdown(std::net::Shutdown::Write)?;

    let reader = BufReader::new(stream);
    let mut answers = Vec::with_capacity(ips.len());
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if i == 0 {
            if !line.starts_with("Bulk mode;") {
                return Err(ClientError::Protocol(format!("bad banner: {line:?}")));
            }
            continue;
        }
        answers.push(parse_row(&line)?);
    }
    Ok(answers)
}

fn parse_row(line: &str) -> Result<BulkAnswer, ClientError> {
    if line.starts_with("Error:") {
        return Err(ClientError::Protocol(line.to_string()));
    }
    let parts: Vec<&str> = line.split('|').map(str::trim).collect();
    if parts.len() != 5 {
        return Err(ClientError::Protocol(format!("bad row: {line:?}")));
    }
    let ip: Ipv4Addr = parts[1]
        .parse()
        .map_err(|_| ClientError::Protocol(format!("bad ip in row: {line:?}")))?;
    if parts[0] == "NA" {
        return Ok(BulkAnswer::NotFound(ip));
    }
    let asn: u32 = parts[0]
        .parse()
        .map_err(|_| ClientError::Protocol(format!("bad asn in row: {line:?}")))?;
    let prefix = parts[2]
        .parse()
        .map_err(|_| ClientError::Protocol(format!("bad prefix in row: {line:?}")))?;
    let country = parts[3]
        .parse()
        .map_err(|_| ClientError::Protocol(format!("bad country in row: {line:?}")))?;
    let rir: Rir = parts[4]
        .parse()
        .map_err(|_| ClientError::Protocol(format!("bad registry in row: {line:?}")))?;
    Ok(BulkAnswer::Found(
        ip,
        CymruRecord {
            asn,
            prefix,
            country,
            rir,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MappingService, WhoisServer};
    use routergeo_world::{World, WorldConfig};
    use std::sync::Arc;

    #[test]
    fn end_to_end_bulk_lookup() {
        let w = World::generate(WorldConfig::tiny(151));
        let svc = Arc::new(MappingService::build(&w));
        let mut srv = WhoisServer::spawn(Arc::clone(&svc)).unwrap();

        let ips: Vec<Ipv4Addr> = w
            .interfaces
            .iter()
            .step_by(97)
            .take(50)
            .map(|i| i.ip)
            .chain(std::iter::once("203.0.113.1".parse().unwrap()))
            .collect();
        let answers = bulk_lookup(srv.addr(), &ips).unwrap();
        assert_eq!(answers.len(), ips.len());
        for (answer, ip) in answers.iter().zip(&ips) {
            match answer {
                BulkAnswer::Found(aip, rec) => {
                    assert_eq!(aip, ip);
                    // Must agree with the in-process service.
                    assert_eq!(Some(*rec), svc.lookup(*ip));
                }
                BulkAnswer::NotFound(aip) => {
                    assert_eq!(aip, ip);
                    assert!(svc.lookup(*ip).is_none());
                }
            }
        }
        srv.shutdown();
    }

    #[test]
    fn parse_row_errors() {
        assert!(parse_row("garbage").is_err());
        assert!(parse_row("1 | 2 | 3").is_err());
        assert!(parse_row("x | 1.2.3.4 | 1.2.3.0/24 | US | arin").is_err());
        assert!(parse_row("1 | nope | 1.2.3.0/24 | US | arin").is_err());
        assert!(parse_row("Error: bulk limit exceeded").is_err());
        assert!(matches!(
            parse_row("NA | 9.9.9.9 | NA | NA | NA"),
            Ok(BulkAnswer::NotFound(_))
        ));
    }
}

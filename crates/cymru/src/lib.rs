//! Team Cymru-like IP→ASN/RIR mapping (§2.3.3).
//!
//! The paper learns the regional Internet registry of every ground-truth
//! address by querying the Team Cymru whois database. This crate provides
//! the synthetic equivalent twice over:
//!
//! * [`MappingService`] — the in-process mapping built from the world's
//!   address plan (ASN, BGP prefix, registry country, RIR per address);
//! * [`server`]/[`client`] — a TCP **bulk whois** service speaking the
//!   netcat-style protocol Team Cymru documents (`begin` / addresses /
//!   `end`, pipe-separated result rows), so the lookup path can also be
//!   exercised over a real socket.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod server;

pub use client::{
    bulk_lookup, AddrFailure, BulkAnswer, BulkClient, BulkConfig, BulkOutcome, BulkStats,
    FailReason, RetryPolicy,
};
pub use server::{ServerConfig, WhoisServer};

// Re-export the injectable clock so client code can drive retry/backoff
// on virtual time without depending on the fault-injection crate.
pub use routergeo_faultnet::clock;

use routergeo_geo::{CountryCode, Rir};
use routergeo_net::{Prefix, RangeMap, RangeMapBuilder};
use routergeo_world::World;
use std::net::Ipv4Addr;

/// One mapping answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CymruRecord {
    /// Origin AS number.
    pub asn: u32,
    /// Announced BGP prefix (the /24 block in the synthetic world).
    pub prefix: Prefix,
    /// Registry country code.
    pub country: CountryCode,
    /// Allocating RIR.
    pub rir: Rir,
}

/// In-process IP→ASN/RIR mapping over one world's address plan.
///
/// ```
/// use routergeo_cymru::MappingService;
/// use routergeo_world::{World, WorldConfig};
/// let world = World::generate(WorldConfig::tiny(7));
/// let whois = MappingService::build(&world);
/// let ip = world.interfaces[0].ip;
/// let rec = whois.lookup(ip).unwrap();
/// assert!(rec.prefix.contains(ip));
/// assert_eq!(Some(rec.rir), world.rir_of_ip(ip));
/// ```
#[derive(Debug)]
pub struct MappingService {
    map: RangeMap<CymruRecord>,
}

impl MappingService {
    /// Build the mapping from the world's block plan.
    pub fn build(world: &World) -> MappingService {
        let mut b = RangeMapBuilder::new();
        for info in world.plan().blocks() {
            let op = world.operator(info.op);
            b.push_prefix(
                info.block,
                CymruRecord {
                    asn: op.asn,
                    prefix: info.block,
                    country: info.registry_country,
                    rir: info.rir,
                },
            );
        }
        MappingService {
            map: b.build().expect("plan blocks are disjoint"),
        }
    }

    /// Look up one address.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<CymruRecord> {
        self.map.lookup(ip).copied()
    }

    /// Number of announced prefixes.
    pub fn prefix_count(&self) -> usize {
        self.map.len()
    }

    /// Render one answer row in the bulk whois format:
    /// `ASN | IP | BGP Prefix | CC | Registry`.
    pub fn format_row(&self, ip: Ipv4Addr) -> String {
        match self.lookup(ip) {
            Some(r) => format!(
                "{} | {} | {} | {} | {}",
                r.asn,
                ip,
                r.prefix,
                r.country,
                r.rir.name().to_ascii_lowercase()
            ),
            None => format!("NA | {ip} | NA | NA | NA"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routergeo_world::WorldConfig;

    #[test]
    fn every_interface_resolves() {
        let w = World::generate(WorldConfig::tiny(131));
        let svc = MappingService::build(&w);
        assert_eq!(svc.prefix_count(), w.plan().len());
        for iface in w.interfaces.iter().step_by(13) {
            let rec = svc.lookup(iface.ip).expect("interface maps");
            let info = w.block_info(iface.ip).unwrap();
            assert_eq!(rec.rir, info.rir);
            assert_eq!(rec.country, info.registry_country);
            assert_eq!(rec.asn, w.operator(info.op).asn);
            assert!(rec.prefix.contains(iface.ip));
        }
    }

    #[test]
    fn unallocated_space_misses() {
        let w = World::generate(WorldConfig::tiny(132));
        let svc = MappingService::build(&w);
        assert!(svc.lookup("203.0.113.1".parse().unwrap()).is_none());
        assert!(svc.lookup("240.0.0.1".parse().unwrap()).is_none());
    }

    #[test]
    fn row_format_matches_cymru_style() {
        let w = World::generate(WorldConfig::tiny(133));
        let svc = MappingService::build(&w);
        let ip = w.interfaces[0].ip;
        let row = svc.format_row(ip);
        let parts: Vec<&str> = row.split(" | ").collect();
        assert_eq!(parts.len(), 5);
        assert!(parts[0].parse::<u32>().is_ok());
        assert_eq!(parts[1], ip.to_string());
        let miss = svc.format_row("203.0.113.1".parse().unwrap());
        assert!(miss.starts_with("NA | "));
    }
}

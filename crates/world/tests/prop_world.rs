//! Property tests over world generation: structural invariants that must
//! hold for every seed, not just the ones unit tests pin down.

use proptest::prelude::*;
use routergeo_geo::country::lookup;
use routergeo_world::addressing::rir_of_octet;
use routergeo_world::probes::ProbeLocationQuality;
use routergeo_world::{World, WorldConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn world_invariants_hold_for_any_seed(seed in any::<u64>()) {
        let w = World::generate(WorldConfig::tiny(seed));

        // Interfaces: unique addresses, no reserved host bytes, each
        // covered by a block of its own operator.
        let mut seen = std::collections::HashSet::new();
        for iface in &w.interfaces {
            prop_assert!(seen.insert(iface.ip), "duplicate {}", iface.ip);
            let oct = iface.ip.octets();
            prop_assert!(oct[3] != 0 && oct[3] != 255);
            let info = w.block_info(iface.ip).expect("covered");
            let router = w.router_of_ip(iface.ip).expect("owner");
            prop_assert_eq!(info.op, w.pop(router.pop).op);
        }

        // Blocks: RIR matches the address pool, registry city is in the
        // registry country.
        for b in w.plan().blocks() {
            prop_assert_eq!(rir_of_octet(b.block.network().octets()[0]), Some(b.rir));
            prop_assert_eq!(w.city(b.registry_city).country, b.registry_country);
        }

        // Routers sit within the metro area of their PoP's city.
        for r in w.routers.iter().step_by(7) {
            let city = w.city(w.pop(r.pop).city);
            prop_assert!(r.coord.distance_km(&city.coord) < 40.0);
        }

        // Probes: true city matches the host PoP; quality labels are
        // consistent with the registration error.
        for p in &w.probes {
            prop_assert_eq!(p.true_city, w.pop(p.host_pop).city);
            match p.quality {
                ProbeLocationQuality::Accurate => {
                    prop_assert!(p.registration_error_km() < 25.0)
                }
                ProbeLocationQuality::DefaultCentroid => {
                    let c = lookup(p.registered_country).unwrap().centroid();
                    prop_assert!(p.registered_coord.distance_km(&c) <= 5.0);
                }
                ProbeLocationQuality::Moved => {}
            }
        }

        // Operators: presence non-empty and HQ always present.
        for op in &w.operators {
            prop_assert!(!op.presence.is_empty());
            prop_assert!(op.presence.contains(&op.hq_city));
        }
    }

    #[test]
    fn oracle_agrees_with_itself(seed in any::<u64>()) {
        let w = World::generate(WorldConfig::tiny(seed));
        for iface in w.interfaces.iter().step_by(11) {
            let (city, coord) = w.true_location(iface.ip).expect("oracle");
            prop_assert_eq!(w.true_country(iface.ip), Some(w.city(city).country));
            // The router's coordinate is within metro range of the city.
            prop_assert!(coord.distance_km(&w.city(city).coord) < 40.0);
        }
    }
}

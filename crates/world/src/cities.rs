//! City generation.
//!
//! Each country of the embedded table receives a set of cities scattered
//! uniformly inside its equal-area disk. City count and population weights
//! scale with the country's router-infrastructure weight, so the US ends up
//! with many more (and busier) cities than Malta — matching the regional
//! skew the paper's datasets exhibit.

use crate::ids::CityId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use routergeo_geo::country::{CountryInfo, COUNTRIES};
use routergeo_geo::distance::destination;
use routergeo_geo::{Coordinate, CountryCode};
use std::collections::HashSet;

/// A synthetic city.
#[derive(Debug, Clone)]
pub struct City {
    /// Its own id (index into `World::cities`).
    pub id: CityId,
    /// Deterministically generated name, unique within the world.
    pub name: String,
    /// Admin region label (synthetic, used by the gazetteer matcher).
    pub region: String,
    /// ISO country code.
    pub country: CountryCode,
    /// True coordinates.
    pub coord: Coordinate,
    /// Airport-style location code, unique world-wide (hostname hints).
    pub airport: String,
    /// Relative size weight; city 0 of a country is its largest.
    pub weight: u32,
    /// Whether this is the country's capital/primary city.
    pub is_primary: bool,
}

/// How many cities a country of the given weight receives.
pub fn city_count_for_weight(weight: u16) -> usize {
    // sqrt-ish growth: weight 1 → 2 cities, 40 → 14, 330 → 38.
    2 + (2.0 * (weight as f64).sqrt()) as usize
}

/// Generate all cities for all countries in the embedded table.
///
/// Names are unique world-wide (suffixes appended on collision); airport
/// codes are unique world-wide by construction.
pub fn generate(seed: u64) -> Vec<City> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC17E_5EED);
    let mut cities = Vec::new();
    let mut taken_names: HashSet<String> = HashSet::new();
    let mut taken_codes: HashSet<String> = HashSet::new();

    for info in COUNTRIES {
        let n = city_count_for_weight(info.weight);
        for k in 0..n {
            let name = unique_name(&mut rng, &mut taken_names);
            let airport = crate::names::unique_airport_code(&name, &mut taken_codes);
            let coord = place_in_country(&mut rng, info);
            // Zipf-ish size weights: city k has weight ~ W / (k+1).
            let weight = ((info.weight as f64 / (k as f64 + 1.0)).ceil() as u32).max(1);
            let region = format!("{} Region {}", info.alpha3, 1 + k % 5);
            cities.push(City {
                id: CityId::from_index(cities.len()),
                name,
                region,
                country: info.code(),
                coord,
                airport,
                weight,
                is_primary: k == 0,
            });
        }
    }
    cities
}

fn unique_name(rng: &mut StdRng, taken: &mut HashSet<String>) -> String {
    loop {
        let name = crate::names::city_name(rng);
        if taken.insert(name.clone()) {
            return name;
        }
    }
}

/// Uniformly place a point inside the country's disk (radius scaled to 85%
/// so cities sit clear of the border and of neighbouring countries'
/// centroids).
fn place_in_country(rng: &mut StdRng, info: &CountryInfo) -> Coordinate {
    let bearing = rng.gen_range(0.0..360.0);
    // sqrt for uniform density over the disk area.
    let dist = info.radius_km * 0.85 * rng.gen::<f64>().sqrt();
    destination(&info.centroid(), bearing, dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use routergeo_geo::country::{cc, lookup};
    use routergeo_geo::haversine_km;

    #[test]
    fn deterministic() {
        let a = generate(42);
        let b = generate(42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.coord, y.coord);
        }
        let c = generate(43);
        assert_ne!(
            a.iter().map(|x| x.name.clone()).collect::<Vec<_>>(),
            c.iter().map(|x| x.name.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn every_country_has_cities_and_one_primary() {
        let cities = generate(1);
        for info in COUNTRIES {
            let mine: Vec<_> = cities.iter().filter(|c| c.country == info.code()).collect();
            assert!(mine.len() >= 2, "{} has {}", info.name, mine.len());
            assert_eq!(
                mine.iter().filter(|c| c.is_primary).count(),
                1,
                "{} primaries",
                info.name
            );
        }
    }

    #[test]
    fn cities_are_within_country_disk() {
        let cities = generate(2);
        for city in &cities {
            let info = lookup(city.country).unwrap();
            let d = haversine_km(&info.centroid(), &city.coord);
            assert!(
                d <= info.radius_km * 0.85 + 1.0,
                "{} is {d} km from {} centroid (radius {})",
                city.name,
                info.name,
                info.radius_km
            );
        }
    }

    #[test]
    fn names_and_airports_unique() {
        let cities = generate(3);
        let names: HashSet<_> = cities.iter().map(|c| c.name.as_str()).collect();
        let codes: HashSet<_> = cities.iter().map(|c| c.airport.as_str()).collect();
        assert_eq!(names.len(), cities.len());
        assert_eq!(codes.len(), cities.len());
    }

    #[test]
    fn ids_are_their_indices() {
        let cities = generate(4);
        for (i, c) in cities.iter().enumerate() {
            assert_eq!(c.id.index(), i);
        }
    }

    #[test]
    fn us_has_most_cities() {
        let cities = generate(5);
        let us = cities.iter().filter(|c| c.country == cc("US")).count();
        for info in COUNTRIES {
            if info.code() != cc("US") {
                let n = cities.iter().filter(|c| c.country == info.code()).count();
                assert!(us >= n, "US {us} vs {} {n}", info.name);
            }
        }
    }

    #[test]
    fn weight_declines_with_rank() {
        let cities = generate(6);
        let us: Vec<_> = cities.iter().filter(|c| c.country == cc("US")).collect();
        assert!(us[0].weight >= us.last().unwrap().weight);
    }
}

//! Typed index ids for world entities.
//!
//! All world collections are flat `Vec`s; these newtypes prevent mixing an
//! index into one collection with an index into another. They are plain
//! `u32`s, `Copy`, and order like their underlying index.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Construct from a `usize` index.
            ///
            /// # Panics
            /// Panics if `idx` exceeds `u32::MAX` (worlds never get close).
            #[inline]
            pub fn from_index(idx: usize) -> Self {
                $name(u32::try_from(idx).expect("id overflow"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Index into [`crate::World::cities`].
    CityId,
    "city"
);
id_type!(
    /// Index into [`crate::World::operators`].
    AsId,
    "as"
);
id_type!(
    /// Index into [`crate::World::pops`].
    PopId,
    "pop"
);
id_type!(
    /// Index into [`crate::World::routers`].
    RouterId,
    "rtr"
);
id_type!(
    /// Index into [`crate::World::interfaces`].
    InterfaceId,
    "if"
);
id_type!(
    /// Index into [`crate::World::probes`].
    ProbeId,
    "probe"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_display() {
        let id = CityId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "city42");
        assert_eq!(RouterId::from_index(7).to_string(), "rtr7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(AsId(1) < AsId(2));
        assert_eq!(ProbeId(9), ProbeId(9));
    }
}

//! Deterministic synthetic naming.
//!
//! City names are built from syllables so they look plausible, are
//! pronounceable, and — crucially for the DNS ground-truth machinery —
//! yield stable airport-style location codes that the DRoP-like rule engine
//! can decode. The same RNG stream always produces the same names.

use rand::Rng;

const ONSETS: &[&str] = &[
    "b", "br", "c", "ch", "d", "dr", "f", "g", "gr", "h", "k", "kl", "l", "m", "n", "p", "pr", "r",
    "s", "st", "t", "tr", "v", "w", "z",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ai", "ei", "ou"];
const CODAS: &[&str] = &["", "l", "n", "r", "s", "t", "m", "rg", "nd", "ck"];
const SUFFIXES: &[&str] = &[
    "ville", "burg", "ton", "field", "port", "stad", "grad", "pur", "minato", "abad",
];

/// Generate a plausible city name from the RNG stream.
///
/// Names are Title-cased, 2–3 syllables, optionally with a toponymic
/// suffix. Collisions are possible; callers de-duplicate per country.
pub fn city_name<R: Rng>(rng: &mut R) -> String {
    let syllables = rng.gen_range(2..=3);
    let mut name = String::new();
    for _ in 0..syllables {
        name.push_str(ONSETS[rng.gen_range(0..ONSETS.len())]);
        name.push_str(VOWELS[rng.gen_range(0..VOWELS.len())]);
        name.push_str(CODAS[rng.gen_range(0..CODAS.len())]);
    }
    if rng.gen_bool(0.35) {
        name.push_str(SUFFIXES[rng.gen_range(0..SUFFIXES.len())]);
    }
    let mut chars = name.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => name,
    }
}

/// Derive a three-letter airport-style code from a city name.
///
/// Mimics IATA style: prefer the leading consonant skeleton, fall back to
/// the first three letters. Always upper-case ASCII. Collisions are
/// resolved by the caller (see [`unique_airport_code`]).
pub fn airport_code(name: &str) -> String {
    let letters: Vec<char> = name
        .chars()
        .filter(|c| c.is_ascii_alphabetic())
        .map(|c| c.to_ascii_uppercase())
        .collect();
    let consonants: Vec<char> = letters
        .iter()
        .copied()
        .filter(|c| !matches!(c, 'A' | 'E' | 'I' | 'O' | 'U'))
        .collect();
    let pick = if consonants.len() >= 3 {
        &consonants[..3]
    } else if letters.len() >= 3 {
        &letters[..3]
    } else {
        // Degenerate names: pad with 'X' like real provisional codes.
        let mut padded = letters.clone();
        while padded.len() < 3 {
            padded.push('X');
        }
        return padded.into_iter().collect();
    };
    pick.iter().collect()
}

/// Derive an airport code unique within `taken`, mutating the candidate
/// with numbered/lettered fallbacks until free, then registering it.
pub fn unique_airport_code(name: &str, taken: &mut std::collections::HashSet<String>) -> String {
    let base = airport_code(name);
    if taken.insert(base.clone()) {
        return base;
    }
    // Replace the last letter with A..Z, then two letters, etc.
    for c in b'A'..=b'Z' {
        let cand = format!("{}{}", &base[..2], c as char);
        if taken.insert(cand.clone()) {
            return cand;
        }
    }
    for c1 in b'A'..=b'Z' {
        for c2 in b'A'..=b'Z' {
            let cand = format!("{}{}{}", &base[..1], c1 as char, c2 as char);
            if taken.insert(cand.clone()) {
                return cand;
            }
        }
    }
    // xtask-allow: RG002 exhausting 703 same-prefix fallback codes would need more cities than any generated world holds
    unreachable!("26^2 fallback codes exhausted")
}

/// A CLLI-style six-letter code (city code + region letters), used by some
/// operators' hostname conventions (real-world example: `dllstx` for
/// Dallas, TX).
///
/// Built from the city's airport code (unique world-wide), one city-name
/// letter, and the country code — so CLLI codes are unique whenever
/// airport codes are, which the world generator guarantees.
pub fn clli_code(airport: &str, city_name: &str, country: &str) -> String {
    let a = airport.to_ascii_lowercase();
    let name_letter = city_name
        .chars()
        .find(|c| c.is_ascii_alphabetic())
        .map(|c| c.to_ascii_lowercase())
        .unwrap_or('x');
    format!("{a}{name_letter}{}", country.to_ascii_lowercase())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn names_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            assert_eq!(city_name(&mut a), city_name(&mut b));
        }
    }

    #[test]
    fn names_are_title_case_and_nonempty() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let n = city_name(&mut rng);
            assert!(!n.is_empty());
            assert!(n.chars().next().unwrap().is_ascii_uppercase());
            assert!(n.chars().all(|c| c.is_ascii_alphabetic()));
        }
    }

    #[test]
    fn airport_codes_are_three_upper_letters() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let code = airport_code(&city_name(&mut rng));
            assert_eq!(code.len(), 3, "{code}");
            assert!(code.chars().all(|c| c.is_ascii_uppercase()));
        }
        assert_eq!(airport_code("Io"), "IOX");
        assert_eq!(airport_code(""), "XXX");
    }

    #[test]
    fn unique_codes_never_collide() {
        let mut taken = std::collections::HashSet::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut all = Vec::new();
        for _ in 0..500 {
            let code = unique_airport_code(&city_name(&mut rng), &mut taken);
            all.push(code);
        }
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), all.len());
    }

    #[test]
    fn clli_codes_look_right() {
        assert_eq!(clli_code("DAL", "Dallas", "US"), "daldus");
        assert_eq!(clli_code("BOX", "", "US"), "boxxus");
    }

    #[test]
    fn clli_codes_unique_when_airports_unique() {
        let mut taken = std::collections::HashSet::new();
        let mut codes = std::collections::HashSet::new();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..300 {
            let name = city_name(&mut rng);
            let airport = unique_airport_code(&name, &mut taken);
            assert!(codes.insert(clli_code(&airport, &name, "US")));
        }
    }
}

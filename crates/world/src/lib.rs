//! Deterministic synthetic world model.
//!
//! Every dataset the paper consumes is proprietary or ephemeral, so this
//! crate builds the substitute: a fully synthetic — but structurally
//! realistic — Internet whose ground truth is known exactly. Everything
//! downstream (traceroute campaigns, vendor geolocation databases, reverse
//! DNS, Atlas-style probes) is *derived* from this world, which makes
//! accuracy measurable: the world is the oracle.
//!
//! The world consists of:
//!
//! * **Cities** ([`City`]) scattered inside each country of the embedded
//!   [`routergeo_geo::country`] table, with deterministic names and
//!   airport-style location codes (the raw material for DNS hostname hints).
//! * **Operators / ASes** ([`Operator`]) of three kinds: global transit
//!   networks with worldwide PoPs (modeled after the paper's seven
//!   ground-truth domains plus others), domestic transit networks, and stub
//!   edge networks. Each is registered with one RIR and has a registry
//!   record (org country + HQ city) that may differ from where its routers
//!   actually sit — the paper's chief source of country-level geolocation
//!   error (§5.2.3).
//! * **PoPs, routers, and interfaces** ([`Pop`], [`Router`], [`Interface`])
//!   — routers live in a PoP (an operator's presence in one city) and own
//!   interfaces numbered out of the /24 blocks assigned to that PoP.
//! * **An address plan** — per-RIR /8 pools carved into per-operator
//!   allocations and per-PoP /24 blocks, queryable by IP ([`BlockInfo`]).
//! * **Probes** ([`Probe`]) — Atlas-like vantage points with crowdsourced
//!   (occasionally wrong) registered locations.
//!
//! Generation is a pure function of [`WorldConfig`] (including its seed):
//! the same config always yields byte-identical worlds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addressing;
pub mod ases;
pub mod cities;
pub mod config;
pub mod ids;
pub mod names;
pub mod probes;
pub mod topology;
pub mod world;

pub use addressing::BlockInfo;
pub use ases::{Operator, OperatorKind};
pub use cities::City;
pub use config::{Scale, WorldConfig};
pub use ids::{AsId, CityId, InterfaceId, PopId, ProbeId, RouterId};
pub use probes::Probe;
pub use topology::{Interface, Pop, Router};
pub use world::World;

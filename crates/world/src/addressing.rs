//! Address allocation: RIR pools, per-PoP /24 blocks, and the block plan.
//!
//! Mirrors the structure geolocation vendors actually see: each operator
//! receives allocations from a regional registry, carves them into /24
//! blocks, and deploys each block at one PoP. The *registry* metadata of a
//! block (org country, HQ) reflects where the operator is incorporated;
//! the *deployment* city is where its routers actually are. For global
//! transit operators the two routinely disagree — the mechanism behind the
//! paper's §5.2.3 finding that databases pull non-US ARIN routers to the US.

use crate::ids::{AsId, CityId, PopId};
use routergeo_geo::{CountryCode, Rir};
use routergeo_net::Prefix;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Synthetic per-RIR pools of /8s. Values chosen to be disjoint and vaguely
/// reminiscent of real allocations; all that matters is that the mapping
/// `first octet → RIR` is unambiguous (the Team Cymru substrate relies on
/// it).
pub fn rir_pools() -> &'static [(Rir, &'static [u8])] {
    &[
        (Rir::Arin, &[6, 7, 8, 12, 13, 15, 16, 17]),
        (Rir::RipeNcc, &[31, 37, 46, 62, 77, 78, 79, 80, 81, 82]),
        (Rir::Apnic, &[1, 14, 27, 36, 39, 42, 43, 49]),
        (Rir::Lacnic, &[177, 179, 181, 186, 187, 189, 190, 200]),
        (Rir::Afrinic, &[41, 102, 105, 154, 196, 197]),
    ]
}

/// The RIR owning a first octet, if any.
pub fn rir_of_octet(octet: u8) -> Option<Rir> {
    rir_pools()
        .iter()
        .find(|(_, eights)| eights.contains(&octet))
        .map(|(rir, _)| *rir)
}

/// Registry + deployment metadata for one allocated /24 block.
#[derive(Debug, Clone)]
pub struct BlockInfo {
    /// The /24 itself.
    pub block: Prefix,
    /// Operator the block is allocated to.
    pub op: AsId,
    /// PoP where the block's addresses are deployed.
    pub pop: PopId,
    /// Deployment city (duplicated from the PoP for convenience).
    pub city: CityId,
    /// RIR that issued this block.
    pub rir: Rir,
    /// Registry org country (where the operator is incorporated).
    pub registry_country: CountryCode,
    /// Registry org HQ city.
    pub registry_city: CityId,
}

/// Sequential /24 allocator over a RIR's /8 pool.
#[derive(Debug)]
pub struct RirAllocator {
    rir: Rir,
    eights: &'static [u8],
    next: u32,
}

/// Error when a RIR pool is exhausted (worlds never get close; kept as a
/// real error so misconfiguration fails loudly instead of wrapping around).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolExhausted(pub Rir);

impl std::fmt::Display for PoolExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "address pool for {} exhausted", self.0)
    }
}

impl std::error::Error for PoolExhausted {}

impl RirAllocator {
    /// Allocator over the built-in pool of `rir`.
    pub fn new(rir: Rir) -> Self {
        let eights = rir_pools()
            .iter()
            .find(|(r, _)| *r == rir)
            .map(|(_, e)| *e)
            .expect("every RIR has a pool");
        RirAllocator {
            rir,
            eights,
            next: 0,
        }
    }

    /// Number of /24s still available.
    pub fn remaining(&self) -> u32 {
        self.eights.len() as u32 * 65_536 - self.next
    }

    /// Allocate the next /24.
    pub fn alloc24(&mut self) -> Result<Prefix, PoolExhausted> {
        let idx = self.next;
        let eight_idx = (idx / 65_536) as usize;
        if eight_idx >= self.eights.len() {
            return Err(PoolExhausted(self.rir));
        }
        self.next += 1;
        let within = idx % 65_536;
        let net = Ipv4Addr::new(
            self.eights[eight_idx],
            (within >> 8) as u8,
            (within & 0xFF) as u8,
            0,
        );
        Ok(Prefix::new(net, 24).expect("constructed /24 is valid"))
    }
}

/// The full block plan: every allocated /24 with O(1) lookup by address.
#[derive(Debug, Default)]
pub struct AddressPlan {
    blocks: Vec<BlockInfo>,
    /// Keyed by `ip >> 8` (the /24 network).
    by_net: HashMap<u32, u32>,
}

impl AddressPlan {
    /// Empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a block. Panics on duplicate /24s (generator bug).
    pub fn insert(&mut self, info: BlockInfo) {
        let key = info.block.network_u32() >> 8;
        let idx = self.blocks.len() as u32;
        let prev = self.by_net.insert(key, idx);
        assert!(prev.is_none(), "duplicate block {}", info.block);
        self.blocks.push(info);
    }

    /// All blocks in allocation order.
    pub fn blocks(&self) -> &[BlockInfo] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether no blocks are allocated.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The block containing `ip`, if allocated.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<&BlockInfo> {
        self.by_net
            .get(&(u32::from(ip) >> 8))
            .map(|&i| &self.blocks[i as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_disjoint() {
        let mut seen = std::collections::HashSet::new();
        for (_, eights) in rir_pools() {
            for e in *eights {
                assert!(seen.insert(*e), "octet {e} in two pools");
            }
        }
    }

    #[test]
    fn octet_lookup() {
        assert_eq!(rir_of_octet(6), Some(Rir::Arin));
        assert_eq!(rir_of_octet(31), Some(Rir::RipeNcc));
        assert_eq!(rir_of_octet(41), Some(Rir::Afrinic));
        assert_eq!(rir_of_octet(177), Some(Rir::Lacnic));
        assert_eq!(rir_of_octet(1), Some(Rir::Apnic));
        assert_eq!(rir_of_octet(10), None);
        assert_eq!(rir_of_octet(255), None);
    }

    #[test]
    fn allocator_hands_out_sequential_disjoint_blocks() {
        let mut a = RirAllocator::new(Rir::Arin);
        let b1 = a.alloc24().unwrap();
        let b2 = a.alloc24().unwrap();
        assert_eq!(b1.to_string(), "6.0.0.0/24");
        assert_eq!(b2.to_string(), "6.0.1.0/24");
        assert!(!b1.covers(&b2));
        // Crossing the /8 boundary.
        let mut a = RirAllocator::new(Rir::Afrinic);
        for _ in 0..65_536 {
            a.alloc24().unwrap();
        }
        assert_eq!(a.alloc24().unwrap().to_string(), "102.0.0.0/24");
    }

    #[test]
    fn allocator_exhausts_cleanly() {
        let mut a = RirAllocator::new(Rir::Afrinic);
        let total = a.remaining();
        for _ in 0..total {
            a.alloc24().unwrap();
        }
        assert_eq!(a.remaining(), 0);
        assert_eq!(a.alloc24(), Err(PoolExhausted(Rir::Afrinic)));
    }

    #[test]
    fn plan_lookup() {
        let mut plan = AddressPlan::new();
        let block: Prefix = "6.0.0.0/24".parse().unwrap();
        plan.insert(BlockInfo {
            block,
            op: AsId(0),
            pop: PopId(0),
            city: CityId(0),
            rir: Rir::Arin,
            registry_country: "US".parse().unwrap(),
            registry_city: CityId(0),
        });
        assert!(plan.lookup("6.0.0.77".parse().unwrap()).is_some());
        assert!(plan.lookup("6.0.1.77".parse().unwrap()).is_none());
        assert_eq!(plan.len(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate block")]
    fn plan_rejects_duplicates() {
        let mut plan = AddressPlan::new();
        let info = BlockInfo {
            block: "6.0.0.0/24".parse().unwrap(),
            op: AsId(0),
            pop: PopId(0),
            city: CityId(0),
            rir: Rir::Arin,
            registry_country: "US".parse().unwrap(),
            registry_city: CityId(0),
        };
        plan.insert(info.clone());
        plan.insert(info);
    }
}

//! Atlas-like measurement probes.
//!
//! RIPE Atlas probe locations are crowdsourced: hosts self-report them and
//! nothing structurally validates the reports (§3.2). The synthetic probe
//! population therefore distinguishes a probe's **true** location (where
//! its packets really originate) from its **registered** location (what the
//! metadata claims):
//!
//! * most probes are honest (registered ≈ true, within a couple of km);
//! * a small fraction are registered at their country's *default centroid*
//!   (the paper removes probes within 5 km of known country coordinates);
//! * a small fraction *moved* without updating their registration, so the
//!   registered city is simply wrong (the paper's Mozambique example:
//!   two "nearby" probes 867 km apart).

use crate::ids::{CityId, PopId, ProbeId};
use routergeo_geo::{Coordinate, CountryCode};

/// Why a probe's registered location is (in)accurate. Ground truth for
/// evaluating the probe-QA logic in `routergeo-rtt` — never consulted by
/// the QA logic itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeLocationQuality {
    /// Registered location matches the true one.
    Accurate,
    /// Registered at the country's default centroid.
    DefaultCentroid,
    /// Probe moved; registration points at a stale city.
    Moved,
}

/// A measurement probe hosted inside a stub network.
#[derive(Debug, Clone)]
pub struct Probe {
    /// Its own id (index into `World::probes`).
    pub id: ProbeId,
    /// Stub PoP hosting the probe (its first-hop network).
    pub host_pop: PopId,
    /// City the probe is truly in (== the host PoP's city).
    pub true_city: CityId,
    /// True physical coordinates.
    pub true_coord: Coordinate,
    /// Country of the registered location.
    pub registered_country: CountryCode,
    /// Self-reported coordinates (what a researcher would see).
    pub registered_coord: Coordinate,
    /// Ground-truth label for the registration quality.
    pub quality: ProbeLocationQuality,
}

impl Probe {
    /// Distance between the registered and true locations, km.
    pub fn registration_error_km(&self) -> f64 {
        self.true_coord.distance_km(&self.registered_coord)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_error_zero_when_identical() {
        let c = Coordinate::new(10.0, 10.0).unwrap();
        let p = Probe {
            id: ProbeId(0),
            host_pop: PopId(0),
            true_city: CityId(0),
            true_coord: c,
            registered_country: "US".parse().unwrap(),
            registered_coord: c,
            quality: ProbeLocationQuality::Accurate,
        };
        assert_eq!(p.registration_error_km(), 0.0);
    }
}

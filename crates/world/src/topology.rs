//! PoPs, routers, and interfaces.
//!
//! A PoP is one operator's presence in one city. Routers live in a PoP,
//! slightly scattered around the city centre (metro footprint ≤ ~15 km, so
//! a router is always within the paper's 40 km city range of its city's
//! coordinates). Interfaces are numbered out of the /24 blocks assigned to
//! the PoP.

use crate::ids::{AsId, CityId, PopId, RouterId};
use routergeo_geo::Coordinate;
use std::net::Ipv4Addr;
use std::ops::Range;

/// One operator's point of presence in one city.
#[derive(Debug, Clone)]
pub struct Pop {
    /// Its own id (index into `World::pops`).
    pub id: PopId,
    /// Owning operator.
    pub op: AsId,
    /// City the PoP is in.
    pub city: CityId,
    /// Contiguous range of router indices belonging to this PoP.
    pub routers: Range<u32>,
    /// Indices into the address plan's block list for this PoP's /24s.
    pub blocks: Vec<u32>,
}

impl Pop {
    /// Number of routers in the PoP.
    pub fn router_count(&self) -> usize {
        (self.routers.end - self.routers.start) as usize
    }

    /// Iterate the PoP's router ids.
    pub fn router_ids(&self) -> impl Iterator<Item = RouterId> {
        self.routers.clone().map(RouterId)
    }
}

/// A router: a named device at one PoP with one physical location.
#[derive(Debug, Clone)]
pub struct Router {
    /// Its own id (index into `World::routers`).
    pub id: RouterId,
    /// PoP the router belongs to.
    pub pop: PopId,
    /// Exact physical location (within the metro area of the PoP's city).
    pub coord: Coordinate,
    /// Contiguous range of interface indices belonging to this router.
    pub interfaces: Range<u32>,
}

impl Router {
    /// Number of interfaces on this router.
    pub fn interface_count(&self) -> usize {
        (self.interfaces.end - self.interfaces.start) as usize
    }
}

/// One router interface with its IPv4 address.
#[derive(Debug, Clone, Copy)]
pub struct Interface {
    /// Interface address (unique world-wide).
    pub ip: Ipv4Addr,
    /// Owning router.
    pub router: RouterId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_router_iteration() {
        let pop = Pop {
            id: PopId(3),
            op: AsId(1),
            city: CityId(2),
            routers: 10..13,
            blocks: vec![0],
        };
        assert_eq!(pop.router_count(), 3);
        let ids: Vec<_> = pop.router_ids().collect();
        assert_eq!(ids, vec![RouterId(10), RouterId(11), RouterId(12)]);
    }

    #[test]
    fn router_interface_count() {
        let r = Router {
            id: RouterId(0),
            pop: PopId(0),
            coord: Coordinate::new(0.0, 0.0).unwrap(),
            interfaces: 5..9,
        };
        assert_eq!(r.interface_count(), 4);
    }
}

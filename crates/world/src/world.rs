//! World generation and the ground-truth oracle.

use crate::addressing::{AddressPlan, BlockInfo, RirAllocator};
use crate::ases::{
    GlobalOperatorSpec, HostnameStyle, Operator, OperatorKind, EXTRA_GLOBAL_OPERATORS, GT_OPERATORS,
};
use crate::cities::City;
use crate::config::{Scale, WorldConfig};
use crate::ids::{AsId, CityId, InterfaceId, PopId, ProbeId, RouterId};
use crate::probes::{Probe, ProbeLocationQuality};
use crate::topology::{Interface, Pop, Router};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use routergeo_geo::country::{lookup, COUNTRIES};
use routergeo_geo::distance::destination;
use routergeo_geo::{Coordinate, CountryCode, Rir};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Per-scale tuning constants (see `config::Scale`).
#[derive(Debug, Clone, Copy)]
struct ScaleParams {
    /// Multiplier on operator `size` for global PoP counts.
    presence: f64,
    /// Multiplier on routers-per-transit-PoP (domestic transits).
    routers: f64,
    /// Multiplier on routers-per-PoP for global transits (backbones are a
    /// small share of the world's interfaces).
    global_routers: f64,
    /// Multiplier on stub counts per country weight.
    stubs: f64,
}

fn params(scale: Scale) -> ScaleParams {
    match scale {
        Scale::Tiny => ScaleParams {
            presence: 0.35,
            routers: 0.4,
            global_routers: 0.35,
            stubs: 0.04,
        },
        Scale::Small => ScaleParams {
            presence: 0.9,
            routers: 0.8,
            global_routers: 0.7,
            stubs: 0.35,
        },
        Scale::Tenth => ScaleParams {
            presence: 4.5,
            routers: 3.0,
            global_routers: 1.8,
            stubs: 9.0,
        },
        // Presence grows sublinearly with scale: operators' home-country
        // city counts saturate, so unchecked presence growth would skew
        // their interface mix toward foreign PoPs and away from the
        // calibrated registry-mismatch share.
        Scale::Paper => ScaleParams {
            presence: 6.5,
            routers: 11.0,
            global_routers: 5.5,
            stubs: 170.0,
        },
    }
}

/// The fully generated synthetic world. See the crate docs for the model.
///
/// ```
/// use routergeo_world::{World, WorldConfig};
/// let world = World::generate(WorldConfig::tiny(42));
/// let ip = world.interfaces[0].ip;
/// // The oracle knows every interface's true location…
/// let (city, coord) = world.true_location(ip).unwrap();
/// // …which always lies in the deployment city's metro area.
/// assert!(coord.distance_km(&world.city(city).coord) < 40.0);
/// // Identical seeds regenerate identical worlds.
/// let again = World::generate(WorldConfig::tiny(42));
/// assert_eq!(again.interfaces[0].ip, ip);
/// ```
#[derive(Debug)]
pub struct World {
    /// Generation configuration (including the seed).
    pub config: WorldConfig,
    /// All cities, indexed by [`CityId`].
    pub cities: Vec<City>,
    /// All operators, indexed by [`AsId`].
    pub operators: Vec<Operator>,
    /// All PoPs, indexed by [`PopId`].
    pub pops: Vec<Pop>,
    /// All routers, indexed by [`RouterId`].
    pub routers: Vec<Router>,
    /// All interfaces, indexed by [`InterfaceId`].
    pub interfaces: Vec<Interface>,
    /// All probes, indexed by [`ProbeId`].
    pub probes: Vec<Probe>,
    plan: AddressPlan,
    if_by_ip: HashMap<u32, u32>,
    cities_by_country: HashMap<CountryCode, Vec<CityId>>,
}

impl World {
    /// Generate a world from `config`. Deterministic in the config.
    pub fn generate(config: WorldConfig) -> World {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x0057_A7E0_F7EA);
        let p = params(config.scale);

        let cities = crate::cities::generate(config.seed);
        let mut cities_by_country: HashMap<CountryCode, Vec<CityId>> = HashMap::new();
        for c in &cities {
            cities_by_country.entry(c.country).or_default().push(c.id);
        }

        let operators = build_operators(&config, &p, &cities, &cities_by_country, &mut rng);

        let mut world = World {
            config,
            cities,
            operators,
            pops: Vec::new(),
            routers: Vec::new(),
            interfaces: Vec::new(),
            probes: Vec::new(),
            plan: AddressPlan::new(),
            if_by_ip: HashMap::new(),
            cities_by_country,
        };
        build_topology(&mut world, &p, &mut rng);
        build_probes(&mut world, &mut rng);
        world.if_by_ip = world
            .interfaces
            .iter()
            .enumerate()
            .map(|(i, iface)| (u32::from(iface.ip), i as u32))
            .collect();
        world
    }

    // ---- accessors -------------------------------------------------------

    /// The address plan (all allocated /24 blocks).
    pub fn plan(&self) -> &AddressPlan {
        &self.plan
    }

    /// City by id.
    pub fn city(&self, id: CityId) -> &City {
        &self.cities[id.index()]
    }

    /// Operator by id.
    pub fn operator(&self, id: AsId) -> &Operator {
        &self.operators[id.index()]
    }

    /// PoP by id.
    pub fn pop(&self, id: PopId) -> &Pop {
        &self.pops[id.index()]
    }

    /// Router by id.
    pub fn router(&self, id: RouterId) -> &Router {
        &self.routers[id.index()]
    }

    /// Interface by id.
    pub fn interface(&self, id: InterfaceId) -> &Interface {
        &self.interfaces[id.index()]
    }

    /// Probe by id.
    pub fn probe(&self, id: ProbeId) -> &Probe {
        &self.probes[id.index()]
    }

    /// City ids of a country (empty slice if none).
    pub fn cities_in(&self, country: CountryCode) -> &[CityId] {
        self.cities_by_country
            .get(&country)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Find the interface that owns `ip`.
    pub fn find_interface(&self, ip: Ipv4Addr) -> Option<InterfaceId> {
        self.if_by_ip.get(&u32::from(ip)).map(|&i| InterfaceId(i))
    }

    /// The router owning `ip`, if it is an interface address.
    pub fn router_of_ip(&self, ip: Ipv4Addr) -> Option<&Router> {
        self.find_interface(ip)
            .map(|i| self.router(self.interfaces[i.index()].router))
    }

    /// Oracle: the true physical location of an interface address —
    /// the owning router's coordinates and its PoP's city.
    pub fn true_location(&self, ip: Ipv4Addr) -> Option<(CityId, Coordinate)> {
        let router = self.router_of_ip(ip)?;
        Some((self.pop(router.pop).city, router.coord))
    }

    /// Oracle: true country of an interface address.
    pub fn true_country(&self, ip: Ipv4Addr) -> Option<CountryCode> {
        self.true_location(ip)
            .map(|(city, _)| self.city(city).country)
    }

    /// Allocation metadata of the /24 containing `ip`.
    pub fn block_info(&self, ip: Ipv4Addr) -> Option<&BlockInfo> {
        self.plan.lookup(ip)
    }

    /// The RIR that allocated `ip` (via the block plan).
    pub fn rir_of_ip(&self, ip: Ipv4Addr) -> Option<Rir> {
        self.block_info(ip).map(|b| b.rir)
    }

    /// Iterate the interface ids belonging to one operator.
    pub fn interfaces_of_operator(&self, op: AsId) -> Vec<InterfaceId> {
        let mut out = Vec::new();
        for pop in &self.pops {
            if pop.op != op {
                continue;
            }
            for rid in pop.router_ids() {
                let r = &self.routers[rid.index()];
                out.extend(r.interfaces.clone().map(InterfaceId));
            }
        }
        out
    }

    /// Operator id by name, if present.
    pub fn operator_by_name(&self, name: &str) -> Option<AsId> {
        self.operators
            .iter()
            .position(|o| o.name == name)
            .map(AsId::from_index)
    }
}

// ---- generation helpers ----------------------------------------------------

fn build_operators(
    config: &WorldConfig,
    p: &ScaleParams,
    cities: &[City],
    by_country: &HashMap<CountryCode, Vec<CityId>>,
    rng: &mut StdRng,
) -> Vec<Operator> {
    let mut ops = Vec::new();
    let mut asn = 1000u32;

    let specs: Vec<GlobalOperatorSpec> = GT_OPERATORS
        .iter()
        .chain(
            EXTRA_GLOBAL_OPERATORS
                .iter()
                .take(config.extra_global_transits),
        )
        .copied()
        .collect();

    for spec in specs {
        let country: CountryCode = spec.country.parse().expect("spec country");
        let info = lookup(country).expect("spec country in table");
        let hq = primary_city(by_country, country);
        let presence = if spec.regional {
            let target = (spec.size as usize * 2).max(2);
            pick_cities_in_country(by_country, cities, country, target, hq, rng)
        } else {
            let target = ((spec.size as f64 * p.presence).round() as usize).max(3);
            pick_cities_global(cities, info.rir, country, target, hq, rng)
        };
        ops.push(Operator {
            id: AsId::from_index(ops.len()),
            asn: next_asn(&mut asn),
            name: spec.name.to_string(),
            kind: OperatorKind::GlobalTransit,
            domain: Some(spec.domain.to_string()),
            style: spec.style,
            rdns_coverage: 0.97,
            has_gt_rules: spec.gt_rules,
            registry_country: country,
            home_rir: info.rir,
            hq_city: hq,
            presence,
            size: spec.size,
            foreign_pop_scale: spec.foreign_pop_scale,
        });
    }

    // Domestic transit operators.
    for info in COUNTRIES {
        let country = info.code();
        let n = if info.weight >= 50 {
            config.domestic_transits_per_country + 1
        } else {
            config.domestic_transits_per_country
        };
        let hq = primary_city(by_country, country);
        for i in 0..n {
            let city_count = by_country[&country].len();
            let target = ((city_count as f64) * rng.gen_range(0.5..0.9)).ceil() as usize;
            let mut presence =
                pick_cities_in_country(by_country, cities, country, target.max(1), hq, rng);
            // Regional carriers: some "domestic" transits also run PoPs in
            // neighbouring countries of the same region while keeping one
            // registry country — a major source of intra-region country
            // errors for registry-fed databases (visible in the paper's
            // RIPE NCC numbers).
            let cross_share = if info.rir == Rir::RipeNcc { 0.35 } else { 0.08 };
            if rng.gen_bool(cross_share) {
                let abroad: Vec<CityId> = cities
                    .iter()
                    .filter(|c| {
                        c.country != country && lookup(c.country).map(|i| i.rir) == Some(info.rir)
                    })
                    .map(|c| c.id)
                    .collect();
                let extra = (presence.len() / 3).clamp(1, 3);
                for _ in 0..extra {
                    if abroad.is_empty() {
                        break;
                    }
                    let pick = abroad[rng.gen_range(0..abroad.len())];
                    if !presence.contains(&pick) {
                        presence.push(pick);
                    }
                }
            }
            let name = format!("{}net{}", country.as_str().to_ascii_lowercase(), i + 1);
            let style = match rng.gen_range(0..10) {
                0..=2 => HostnameStyle::CityName,
                3..=4 => HostnameStyle::Iata,
                5..=8 => HostnameStyle::Opaque,
                _ => HostnameStyle::None,
            };
            let domain = (style != HostnameStyle::None).then(|| format!("{name}.net"));
            ops.push(Operator {
                id: AsId::from_index(ops.len()),
                asn: next_asn(&mut asn),
                name,
                kind: OperatorKind::DomesticTransit,
                domain,
                style,
                rdns_coverage: 0.7,
                has_gt_rules: false,
                registry_country: country,
                home_rir: info.rir,
                hq_city: hq,
                presence,
                size: (info.weight / 4).max(1),
                foreign_pop_scale: 0.4,
            });
        }
    }

    // Stub operators.
    for info in COUNTRIES {
        let country = info.code();
        let count = ((config.stub_density * info.weight as f64 * p.stubs).round() as usize).max(1);
        let city_ids = &by_country[&country];
        for i in 0..count {
            let city = *weighted_city_choice(cities, city_ids, rng);
            let name = format!("{}stub{}", country.as_str().to_ascii_lowercase(), i + 1);
            let style = if rng.gen_bool(0.45) {
                HostnameStyle::Opaque
            } else {
                HostnameStyle::None
            };
            let domain = (style != HostnameStyle::None).then(|| format!("{name}.example"));
            ops.push(Operator {
                id: AsId::from_index(ops.len()),
                asn: next_asn(&mut asn),
                name,
                kind: OperatorKind::Stub,
                domain,
                style,
                rdns_coverage: 0.35,
                has_gt_rules: false,
                registry_country: country,
                home_rir: info.rir,
                hq_city: city,
                presence: vec![city],
                size: 1,
                foreign_pop_scale: 1.0,
            });
        }
    }

    ops
}

fn next_asn(asn: &mut u32) -> u32 {
    let v = *asn;
    *asn += 1;
    v
}

fn primary_city(by_country: &HashMap<CountryCode, Vec<CityId>>, country: CountryCode) -> CityId {
    // cities::generate emits the primary city first for each country.
    by_country[&country][0]
}

fn weighted_city_choice<'a>(cities: &[City], ids: &'a [CityId], rng: &mut StdRng) -> &'a CityId {
    ids.choose_weighted(rng, |id| cities[id.index()].weight as f64)
        .expect("non-empty city list")
}

fn pick_cities_in_country(
    by_country: &HashMap<CountryCode, Vec<CityId>>,
    cities: &[City],
    country: CountryCode,
    target: usize,
    hq: CityId,
    rng: &mut StdRng,
) -> Vec<CityId> {
    let pool = &by_country[&country];
    let mut picked = vec![hq];
    let mut rest: Vec<CityId> = pool.iter().copied().filter(|c| *c != hq).collect();
    while picked.len() < target && !rest.is_empty() {
        let idx = weighted_index(&rest, cities, rng);
        picked.push(rest.swap_remove(idx));
    }
    picked
}

fn pick_cities_global(
    cities: &[City],
    home_rir: Rir,
    home_country: CountryCode,
    target: usize,
    hq: CityId,
    rng: &mut StdRng,
) -> Vec<CityId> {
    let mut picked = vec![hq];
    let mut rest: Vec<CityId> = cities.iter().filter(|c| c.id != hq).map(|c| c.id).collect();
    let target = target.min(cities.len());
    while picked.len() < target && !rest.is_empty() {
        // Weighted by city weight with a home bias: ×3 same country,
        // ×1.5 same RIR region.
        let total: f64 = rest
            .iter()
            .map(|id| global_bias(cities, *id, home_rir, home_country))
            .sum();
        let mut roll = rng.gen_range(0.0..total);
        let mut chosen = rest.len() - 1;
        for (i, id) in rest.iter().enumerate() {
            roll -= global_bias(cities, *id, home_rir, home_country);
            if roll <= 0.0 {
                chosen = i;
                break;
            }
        }
        picked.push(rest.swap_remove(chosen));
    }
    picked
}

fn global_bias(cities: &[City], id: CityId, home_rir: Rir, home_country: CountryCode) -> f64 {
    let c = &cities[id.index()];
    let info = lookup(c.country).expect("city country in table");
    let mut w = c.weight as f64;
    if c.country == home_country {
        w *= 2.5;
    } else if info.rir == home_rir {
        w *= 1.5;
    }
    w
}

fn weighted_index(ids: &[CityId], cities: &[City], rng: &mut StdRng) -> usize {
    let total: f64 = ids.iter().map(|id| cities[id.index()].weight as f64).sum();
    let mut roll = rng.gen_range(0.0..total);
    for (i, id) in ids.iter().enumerate() {
        roll -= cities[id.index()].weight as f64;
        if roll <= 0.0 {
            return i;
        }
    }
    ids.len() - 1
}

fn build_topology(world: &mut World, p: &ScaleParams, rng: &mut StdRng) {
    let mut allocators: HashMap<Rir, RirAllocator> = Rir::ALL
        .iter()
        .map(|r| (*r, RirAllocator::new(*r)))
        .collect();

    // Interface-count distribution ≈ the paper's 3.4 interfaces/router.
    let iface_counts: [(u32, f64); 4] = [(2, 0.25), (3, 0.35), (4, 0.25), (5, 0.15)];

    #[allow(clippy::type_complexity)] // one-shot generation scratch tuple
    let ops: Vec<(
        AsId,
        OperatorKind,
        Vec<CityId>,
        u16,
        f64,
        Rir,
        CountryCode,
        CityId,
    )> = world
        .operators
        .iter()
        .map(|o| {
            (
                o.id,
                o.kind,
                o.presence.clone(),
                o.size,
                match o.kind {
                    OperatorKind::GlobalTransit => {
                        world.config.routers_per_transit_pop
                            * p.global_routers
                            * (0.6 + o.size as f64 / 18.0)
                    }
                    OperatorKind::DomesticTransit => {
                        world.config.routers_per_transit_pop * p.routers * 0.6
                    }
                    OperatorKind::Stub => world.config.routers_per_stub,
                },
                o.home_rir,
                o.registry_country,
                o.hq_city,
            )
        })
        .collect();

    let foreign_scale: Vec<f64> = world
        .operators
        .iter()
        .map(|o| o.foreign_pop_scale)
        .collect();

    // Local-RIR share per operator (only global transits use it).
    let local_share: Vec<f64> = world
        .operators
        .iter()
        .map(|o| match o.kind {
            OperatorKind::GlobalTransit => crate::ases::GT_OPERATORS
                .iter()
                .chain(crate::ases::EXTRA_GLOBAL_OPERATORS.iter())
                .find(|s| s.name == o.name)
                .map(|s| s.local_rir_share)
                .unwrap_or(0.1),
            _ => 0.0,
        })
        .collect();

    for (op_id, kind, presence, _size, router_base, home_rir, reg_country, hq_city) in ops {
        // Shared infrastructure blocks: transit operators number a share of
        // their interfaces (loopbacks, link nets) out of operator-wide
        // blocks rather than per-PoP ones. The whole block registers and
        // "lives" at the HQ, but its addresses sit on routers in many
        // cities — the paper's §5.2.3 block-co-locality error source
        // ("block-level location assignments can be responsible for large
        // geolocation errors for interface addresses not co-located with
        // the other addresses in their block").
        let mut shared = SharedBlocks::new(
            kind != OperatorKind::Stub,
            PopId::from_index(world.pops.len()),
        );
        for city_id in presence {
            let pop_id = PopId::from_index(world.pops.len());
            let city_coord = world.cities[city_id.index()].coord;

            // Router count for this PoP. Global transit networks keep most
            // of their routers in the registry country: the HQ metro is the
            // largest site, other home-country PoPs are full-size, and
            // foreign PoPs are small — which keeps the share of
            // foreign-deployed (registry-mismatched) interfaces realistic.
            let home = world.cities[city_id.index()].country == reg_country;
            let mult = if city_id == hq_city && kind == OperatorKind::GlobalTransit {
                2.0
            } else if home || kind == OperatorKind::Stub {
                1.0
            } else {
                foreign_scale[op_id.index()]
            };
            let n_routers = ((router_base * mult * rng.gen_range(0.5..1.5)).round() as u32).max(1);

            let router_start = world.routers.len() as u32;
            let mut pop_iface_total = 0u32;
            let mut per_router_ifaces = Vec::with_capacity(n_routers as usize);
            for _ in 0..n_routers {
                let roll: f64 = rng.gen();
                let mut acc = 0.0;
                let mut n_if = 3u32;
                for (n, w) in iface_counts {
                    acc += w;
                    if roll <= acc {
                        n_if = n;
                        break;
                    }
                }
                per_router_ifaces.push(n_if);
                pop_iface_total += n_if;
            }

            // Allocate /24 blocks for the PoP.
            let n_blocks = pop_iface_total.div_ceil(220).max(1);
            let city_rir = lookup(world.cities[city_id.index()].country)
                .expect("city country")
                .rir;
            let mut block_indices = Vec::with_capacity(n_blocks as usize);
            let mut block_prefixes = Vec::with_capacity(n_blocks as usize);
            for _ in 0..n_blocks {
                let rir = if rng.gen_bool(local_share[op_id.index()]) {
                    city_rir
                } else {
                    home_rir
                };
                let block = allocators
                    .get_mut(&rir)
                    .expect("allocator per RIR")
                    .alloc24()
                    .expect("pool exhausted: world too large for synthetic pools");
                // Blocks issued by a *different* RIR than the operator's
                // home registry belong to a local subsidiary: the registry
                // record points at the deployment country (NTT's APNIC
                // space registers in Asia, not to the US parent). Home-RIR
                // blocks keep the parent org's country — the §5.2.3 error
                // mechanism.
                let (registry_country, registry_city) = if rir != home_rir {
                    (world.cities[city_id.index()].country, city_id)
                } else if rng.gen_bool(0.03) {
                    // Stale/wrong whois data: the org relocated or the
                    // record was never accurate; point at a neighbouring
                    // country of the same region. This is the baseline
                    // error floor every registry-fed database shows even
                    // in otherwise-easy regions (Figure 3's ~6% AFRINIC).
                    let candidates: Vec<&routergeo_geo::country::CountryInfo> =
                        routergeo_geo::country::countries_in_rir(rir)
                            .filter(|c| c.code() != reg_country)
                            .collect();
                    if candidates.is_empty() {
                        (reg_country, hq_city)
                    } else {
                        let pick = candidates[rng.gen_range(0..candidates.len())];
                        let city = world.cities_by_country[&pick.code()][0];
                        (pick.code(), city)
                    }
                } else {
                    (reg_country, hq_city)
                };
                block_indices.push(world.plan.len() as u32);
                block_prefixes.push(block);
                world.plan.insert(BlockInfo {
                    block,
                    op: op_id,
                    pop: pop_id,
                    city: city_id,
                    rir,
                    registry_country,
                    registry_city,
                });
            }

            // Create routers + interfaces, filling addresses from the blocks
            // (and, for transit, partly from the operator's shared blocks).
            let mut block_cursor = 0usize;
            let mut host = 1u64; // skip .0
            for n_if in per_router_ifaces {
                let router_id = RouterId::from_index(world.routers.len());
                let bearing = rng.gen_range(0.0..360.0);
                let dist = 15.0 * rng.gen::<f64>().sqrt();
                let coord = destination(&city_coord, bearing, dist);
                let if_start = world.interfaces.len() as u32;
                for _ in 0..n_if {
                    if shared.enabled && rng.gen_bool(SHARED_BLOCK_SHARE) {
                        let ip = shared.next_ip(
                            &mut world.plan,
                            &mut allocators,
                            op_id,
                            home_rir,
                            reg_country,
                            hq_city,
                        );
                        world.interfaces.push(Interface {
                            ip,
                            router: router_id,
                        });
                        continue;
                    }
                    if host >= 255 {
                        block_cursor += 1;
                        host = 1;
                    }
                    let ip = block_prefixes[block_cursor]
                        .nth(host)
                        .expect("host offset < 255");
                    host += 1;
                    world.interfaces.push(Interface {
                        ip,
                        router: router_id,
                    });
                }
                world.routers.push(Router {
                    id: router_id,
                    pop: pop_id,
                    coord,
                    interfaces: if_start..world.interfaces.len() as u32,
                });
            }

            world.pops.push(Pop {
                id: pop_id,
                op: op_id,
                city: city_id,
                routers: router_start..world.routers.len() as u32,
                blocks: block_indices,
            });
        }
    }
}

/// Target probe distribution by RIR, approximating the real RIPE Atlas
/// deployment (Europe-heavy, with small but non-zero populations
/// everywhere) — Table 1's RTT row depends on it.
const PROBE_RIR_SHARE: [(Rir, f64); 5] = [
    (Rir::RipeNcc, 0.66),
    (Rir::Arin, 0.235),
    (Rir::Apnic, 0.068),
    (Rir::Afrinic, 0.022),
    (Rir::Lacnic, 0.015),
];

/// Share of a transit operator's interfaces numbered out of shared
/// operator-wide blocks instead of per-PoP ones.
const SHARED_BLOCK_SHARE: f64 = 0.10;

/// Allocator state for one operator's shared infrastructure blocks.
struct SharedBlocks {
    enabled: bool,
    hq_pop: PopId,
    current: Option<routergeo_net::Prefix>,
    host: u64,
}

impl SharedBlocks {
    fn new(enabled: bool, hq_pop: PopId) -> SharedBlocks {
        SharedBlocks {
            enabled,
            hq_pop,
            current: None,
            host: 1,
        }
    }

    /// Next address from the shared pool, allocating a fresh /24 (recorded
    /// in the plan as deployed at the HQ) when the current one fills up.
    fn next_ip(
        &mut self,
        plan: &mut AddressPlan,
        allocators: &mut HashMap<Rir, RirAllocator>,
        op: AsId,
        home_rir: Rir,
        reg_country: CountryCode,
        hq_city: CityId,
    ) -> Ipv4Addr {
        if self.current.is_none() || self.host >= 255 {
            let block = allocators
                .get_mut(&home_rir)
                .expect("allocator per RIR")
                .alloc24()
                .expect("pool exhausted: world too large for synthetic pools");
            plan.insert(BlockInfo {
                block,
                op,
                pop: self.hq_pop,
                city: hq_city,
                rir: home_rir,
                registry_country: reg_country,
                registry_city: hq_city,
            });
            self.current = Some(block);
            self.host = 1;
        }
        let ip = self
            .current
            .expect("just ensured")
            .nth(self.host)
            .expect("host < 255");
        self.host += 1;
        ip
    }
}

fn build_probes(world: &mut World, rng: &mut StdRng) {
    // Candidate host PoPs: stub networks only, grouped by the RIR of
    // their country.
    let mut pools: HashMap<Rir, Vec<PopId>> = HashMap::new();
    for p in &world.pops {
        if world.operators[p.op.index()].kind != OperatorKind::Stub {
            continue;
        }
        let country = world.cities[p.city.index()].country;
        let rir = lookup(country).expect("country").rir;
        pools.entry(rir).or_default().push(p.id);
    }
    if pools.is_empty() {
        return;
    }
    // Per-pool city weights — sublinear in city size: Atlas hosts sit in
    // small towns nearly as often as in metros.
    let pool_weights: HashMap<Rir, Vec<f64>> = pools
        .iter()
        .map(|(rir, pops)| {
            let w = pops
                .iter()
                .map(|pid| {
                    (world.cities[world.pops[pid.index()].city.index()].weight as f64).powf(0.4)
                })
                .collect();
            (*rir, w)
        })
        .collect();

    for i in 0..world.config.probe_count {
        // Pick the RIR by target share (fall back to RIPE when a region
        // has no stub PoPs at this scale), then a weighted city within it.
        let mut roll: f64 = rng.gen();
        let mut rir = Rir::RipeNcc;
        for (r, share) in PROBE_RIR_SHARE {
            roll -= share;
            if roll <= 0.0 {
                rir = r;
                break;
            }
        }
        let (pops, weights) = match pools.get(&rir) {
            Some(p) if !p.is_empty() => (p, &pool_weights[&rir]),
            _ => (&pools[&Rir::RipeNcc], &pool_weights[&Rir::RipeNcc]),
        };
        let total: f64 = weights.iter().sum();
        let mut roll = rng.gen_range(0.0..total);
        let mut chosen = pops.len() - 1;
        for (j, w) in weights.iter().enumerate() {
            roll -= w;
            if roll <= 0.0 {
                chosen = j;
                break;
            }
        }
        let host_pop = pops[chosen];
        let city_id = world.pops[host_pop.index()].city;
        let city = &world.cities[city_id.index()];
        let info = lookup(city.country).expect("country");

        let true_coord = jitter(rng, &city.coord, 8.0);
        let roll: f64 = rng.gen();
        let (registered_coord, registered_country, quality) = if roll
            < world.config.probe_default_centroid_rate
        {
            (
                jitter(rng, &info.centroid(), 2.0),
                city.country,
                ProbeLocationQuality::DefaultCentroid,
            )
        } else if roll < world.config.probe_default_centroid_rate + world.config.probe_moved_rate {
            // Stale registration: points at a different city.
            let other = stale_city(world, city_id, rng);
            let oc = &world.cities[other.index()];
            (
                jitter(rng, &oc.coord, 2.0),
                oc.country,
                ProbeLocationQuality::Moved,
            )
        } else {
            (
                jitter(rng, &true_coord, 1.5),
                city.country,
                ProbeLocationQuality::Accurate,
            )
        };

        world.probes.push(Probe {
            id: ProbeId::from_index(i),
            host_pop,
            true_city: city_id,
            true_coord,
            registered_country,
            registered_coord,
            quality,
        });
    }
}

fn stale_city(world: &World, current: CityId, rng: &mut StdRng) -> CityId {
    let country = world.cities[current.index()].country;
    let domestic: Vec<CityId> = world
        .cities_in(country)
        .iter()
        .copied()
        .filter(|c| *c != current)
        .collect();
    if !domestic.is_empty() && rng.gen_bool(0.8) {
        domestic[rng.gen_range(0..domestic.len())]
    } else {
        loop {
            let idx = rng.gen_range(0..world.cities.len());
            if idx != current.index() {
                return CityId::from_index(idx);
            }
        }
    }
}

fn jitter(rng: &mut StdRng, center: &Coordinate, max_km: f64) -> Coordinate {
    let bearing = rng.gen_range(0.0..360.0);
    let dist = max_km * rng.gen::<f64>().sqrt();
    destination(center, bearing, dist)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> World {
        World::generate(WorldConfig::tiny(11))
    }

    #[test]
    fn deterministic_generation() {
        let a = World::generate(WorldConfig::tiny(5));
        let b = World::generate(WorldConfig::tiny(5));
        assert_eq!(a.interfaces.len(), b.interfaces.len());
        assert_eq!(a.routers.len(), b.routers.len());
        for (x, y) in a.interfaces.iter().zip(b.interfaces.iter()) {
            assert_eq!(x.ip, y.ip);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = World::generate(WorldConfig::tiny(5));
        let b = World::generate(WorldConfig::tiny(6));
        let same = a
            .interfaces
            .iter()
            .zip(b.interfaces.iter())
            .filter(|(x, y)| x.ip == y.ip)
            .count();
        assert!(same < a.interfaces.len().min(b.interfaces.len()));
    }

    #[test]
    fn interface_ips_are_unique() {
        let w = tiny();
        let mut seen = std::collections::HashSet::new();
        for iface in &w.interfaces {
            assert!(seen.insert(iface.ip), "duplicate {}", iface.ip);
            let oct = iface.ip.octets();
            assert!(oct[3] != 0 && oct[3] != 255, "reserved host {}", iface.ip);
        }
    }

    #[test]
    fn oracle_roundtrip() {
        let w = tiny();
        for (i, iface) in w.interfaces.iter().enumerate().step_by(7) {
            let id = w.find_interface(iface.ip).expect("find");
            assert_eq!(id.index(), i);
            let (city, coord) = w.true_location(iface.ip).expect("loc");
            let city_coord = w.city(city).coord;
            assert!(coord.distance_km(&city_coord) <= 16.0);
        }
        assert!(w.find_interface("203.0.113.7".parse().unwrap()).is_none());
    }

    #[test]
    fn routers_are_within_city_range_of_city() {
        // The 40 km city-range must tolerate metro scatter.
        let w = tiny();
        for r in &w.routers {
            let city = w.city(w.pop(r.pop).city);
            assert!(r.coord.distance_km(&city.coord) < 40.0);
        }
    }

    #[test]
    fn blocks_cover_all_interfaces() {
        let w = tiny();
        let mut shared = 0usize;
        for iface in &w.interfaces {
            let info = w.block_info(iface.ip).expect("block for interface");
            let r = w.router_of_ip(iface.ip).unwrap();
            if info.pop == r.pop {
                continue;
            }
            // Shared infrastructure blocks: same operator, registered at
            // the HQ, hosting interfaces from other PoPs.
            assert_eq!(info.op, w.pop(r.pop).op, "foreign block on router");
            assert_eq!(info.city, w.operator(info.op).hq_city);
            shared += 1;
        }
        assert!(shared > 0, "no shared-block interfaces generated");
    }

    #[test]
    fn block_rir_matches_pool_octet() {
        let w = tiny();
        for b in w.plan().blocks() {
            let oct = b.block.network().octets()[0];
            assert_eq!(crate::addressing::rir_of_octet(oct), Some(b.rir));
        }
    }

    #[test]
    fn gt_operators_exist_with_rules() {
        let w = tiny();
        for spec in crate::ases::GT_OPERATORS {
            let id = w.operator_by_name(spec.name).expect(spec.name);
            let op = w.operator(id);
            assert!(op.has_gt_rules);
            assert!(!w.interfaces_of_operator(id).is_empty(), "{}", spec.name);
        }
    }

    #[test]
    fn global_transit_blocks_have_foreign_deployments() {
        // The §5.2.3 mechanism: some ARIN-registered blocks deployed
        // outside the registry country.
        let w = tiny();
        let foreign = w
            .plan()
            .blocks()
            .iter()
            .filter(|b| {
                let deployed = w.city(b.city).country;
                deployed != b.registry_country
            })
            .count();
        assert!(foreign > 0, "no registry/deployment mismatches generated");
    }

    #[test]
    fn probes_have_expected_quality_mix() {
        let w = World::generate(WorldConfig::small(3));
        let total = w.probes.len();
        assert!(total >= 300);
        let bad = w
            .probes
            .iter()
            .filter(|p| p.quality != ProbeLocationQuality::Accurate)
            .count();
        // ~2.4% configured; allow slack.
        assert!(bad > 0, "no bad probes at all");
        assert!((bad as f64) < total as f64 * 0.10, "{bad}/{total} bad");
        // Accurate probes register within ~1.5 km.
        for p in &w.probes {
            if p.quality == ProbeLocationQuality::Accurate {
                assert!(p.registration_error_km() < 4.0);
            }
        }
    }

    #[test]
    fn probes_are_europe_heavy() {
        let w = World::generate(WorldConfig::small(4));
        let ripe = w
            .probes
            .iter()
            .filter(|p| {
                let c = w.city(p.true_city);
                lookup(c.country).unwrap().rir == Rir::RipeNcc
            })
            .count();
        assert!(
            ripe * 2 > w.probes.len(),
            "RIPE probes {} of {}",
            ripe,
            w.probes.len()
        );
    }

    #[test]
    fn scales_are_ordered() {
        let tiny = World::generate(WorldConfig::tiny(9));
        let small = World::generate(WorldConfig::small(9));
        assert!(small.interfaces.len() > tiny.interfaces.len() * 2);
    }

    #[test]
    fn pops_router_ranges_partition() {
        let w = tiny();
        let mut covered = 0usize;
        for pop in &w.pops {
            for rid in pop.router_ids() {
                assert_eq!(w.router(rid).pop, pop.id);
                covered += 1;
            }
        }
        assert_eq!(covered, w.routers.len());
    }
}

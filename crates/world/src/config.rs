//! World generation configuration.

/// Preset sizes for the synthetic world.
///
/// The paper's Ark-topo-router dataset holds ~1.64 M interfaces on ~485 K
/// routers. Generating that full scale is supported ([`Scale::Paper`]) but
/// slow in debug builds, so tests default to [`Scale::Tiny`] and the
/// benchmark harness to [`Scale::Tenth`]. Set the `ROUTERGEO_SCALE`
/// environment variable (`tiny`/`small`/`tenth`/`paper`/`full`) to override
/// in the repro binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A few hundred routers — unit tests.
    Tiny,
    /// A few thousand routers — integration tests and examples.
    Small,
    /// ≈ 1/10 of the paper (~160 K interfaces) — default for benches.
    Tenth,
    /// Full paper scale (~1.6 M interfaces).
    Paper,
}

impl Scale {
    /// Multiplier applied to router/interface counts (Tiny == 1).
    pub fn factor(self) -> u32 {
        match self {
            Scale::Tiny => 1,
            Scale::Small => 8,
            Scale::Tenth => 90,
            Scale::Paper => 900,
        }
    }

    /// Parse from the `ROUTERGEO_SCALE` environment variable value.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.trim().to_ascii_lowercase().as_str() {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "tenth" => Some(Scale::Tenth),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Read the scale from `ROUTERGEO_SCALE`, falling back to `default`.
    pub fn from_env(default: Scale) -> Scale {
        std::env::var("ROUTERGEO_SCALE")
            .ok()
            .and_then(|v| Scale::parse(&v))
            .unwrap_or(default)
    }
}

/// All knobs of world generation. Construct via [`WorldConfig::new`] (or
/// the scale presets) and adjust fields as needed; the world is a pure
/// function of this struct.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Master RNG seed; all world randomness derives from it.
    pub seed: u64,
    /// Size preset.
    pub scale: Scale,
    /// Number of global transit operators **in addition to** the seven
    /// fixed ground-truth operators (see `ases::GT_OPERATORS`).
    pub extra_global_transits: usize,
    /// Domestic transit operators per country (before weighting).
    pub domestic_transits_per_country: usize,
    /// Stub (edge) operators per unit of country weight, scaled.
    pub stub_density: f64,
    /// Mean routers per transit PoP.
    pub routers_per_transit_pop: f64,
    /// Mean routers per stub network.
    pub routers_per_stub: f64,
    /// Mean interfaces per router (the paper's ratio is ≈ 3.4).
    pub interfaces_per_router: f64,
    /// Number of Atlas-like probes.
    pub probe_count: usize,
    /// Fraction of probes registered at their country's default centroid
    /// instead of their true location (§3.2 finds 19/1387 ≈ 1.4%).
    pub probe_default_centroid_rate: f64,
    /// Fraction of probes that physically moved without updating their
    /// registered location (registered city ≠ true city).
    pub probe_moved_rate: f64,
    /// Extra weight multiplier for probe placement in RIPE NCC countries
    /// (RIPE Atlas is Europe-heavy; Table 1's RTT set is 65% RIPE).
    pub probe_ripe_bias: f64,
}

impl WorldConfig {
    /// Config with the given seed and scale, all other knobs at defaults
    /// calibrated to reproduce the paper's dataset shapes.
    pub fn new(seed: u64, scale: Scale) -> Self {
        WorldConfig {
            seed,
            scale,
            extra_global_transits: 8,
            domestic_transits_per_country: 2,
            stub_density: 0.55,
            routers_per_transit_pop: 9.0,
            routers_per_stub: 2.4,
            interfaces_per_router: 3.4,
            probe_count: 1_387, // §3.2: probes associated with the 0.5 ms data
            probe_default_centroid_rate: 0.014,
            probe_moved_rate: 0.010,
            probe_ripe_bias: 8.0,
        }
    }

    /// Tiny world for unit tests.
    pub fn tiny(seed: u64) -> Self {
        let mut c = WorldConfig::new(seed, Scale::Tiny);
        c.probe_count = 120;
        c
    }

    /// Small world for integration tests and examples.
    pub fn small(seed: u64) -> Self {
        let mut c = WorldConfig::new(seed, Scale::Small);
        c.probe_count = 400;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::parse("full"), Some(Scale::Paper));
        assert_eq!(Scale::parse(" tenth "), Some(Scale::Tenth));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn factors_increase() {
        assert!(Scale::Tiny.factor() < Scale::Small.factor());
        assert!(Scale::Small.factor() < Scale::Tenth.factor());
        assert!(Scale::Tenth.factor() < Scale::Paper.factor());
    }

    #[test]
    fn defaults_are_sane() {
        let c = WorldConfig::new(1, Scale::Tiny);
        assert!(c.interfaces_per_router > 1.0);
        assert!(c.probe_default_centroid_rate < 0.1);
        assert!(c.probe_ripe_bias >= 1.0);
    }
}

//! Operators (autonomous systems) and their profiles.
//!
//! Three kinds of operator populate the world:
//!
//! * **Global transit** networks with PoPs worldwide. Seven of them carry
//!   the hostname conventions and ground-truth DNS rules of the paper's
//!   seven ground-truth domains (§2.3.1): `cogentco.com`, `ntt.net`,
//!   `pnap.net`, `seabone.net`, `peak10.net`, `digitalwest.net`,
//!   `belwue.de` (the last three are regional operators). More global
//!   transits without ground-truth rules round out the backbone.
//! * **Domestic transit** networks: per-country backbones.
//! * **Stub** networks: single-city edge networks.
//!
//! Registry bias — the paper's key error mechanism — comes from the split
//! between an operator's *registry* country (where the org is incorporated
//! and its RIR) and the countries where its PoPs actually sit.

use crate::ids::{AsId, CityId};
use routergeo_geo::{CountryCode, Rir};

/// What kind of network an operator runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatorKind {
    /// Worldwide backbone with PoPs in many countries.
    GlobalTransit,
    /// National backbone with PoPs in many cities of one country.
    DomesticTransit,
    /// Single-city edge network (enterprise / access ISP).
    Stub,
}

/// Hostname convention an operator uses for router interface rDNS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostnameStyle {
    /// Airport-style code infix: `ae-5.r23.DLL01.us.bb.example.net`.
    Iata,
    /// CLLI-style six-letter code: `ae-5.r23.dllstx09.us.bb.example.net`
    /// (the convention in the paper's `ntt.net` example).
    Clli,
    /// Full lower-case city name infix: `et-1-0.core1.frankfurt2.example.net`.
    CityName,
    /// Hostnames exist but carry no location hints.
    Opaque,
    /// No reverse DNS at all.
    None,
}

/// A synthetic autonomous system / network operator.
#[derive(Debug, Clone)]
pub struct Operator {
    /// Its own id (index into `World::operators`).
    pub id: AsId,
    /// Autonomous system number.
    pub asn: u32,
    /// Short organisation name (e.g. `cogentco`).
    pub name: String,
    /// Network kind.
    pub kind: OperatorKind,
    /// DNS domain for interface hostnames, if the operator publishes rDNS.
    pub domain: Option<String>,
    /// Hostname convention.
    pub style: HostnameStyle,
    /// Fraction of interfaces that actually have rDNS records.
    pub rdns_coverage: f64,
    /// Whether DRoP-style ground-truth rules exist for this domain
    /// (true exactly for the paper's seven ground-truth domains).
    pub has_gt_rules: bool,
    /// Registry country of the organisation (whois `org-country`).
    pub registry_country: CountryCode,
    /// RIR that issued the org's *primary* allocations.
    pub home_rir: Rir,
    /// Headquarters city (the registry's street address resolves here).
    pub hq_city: CityId,
    /// Cities where the operator has PoPs (HQ city is always included).
    pub presence: Vec<CityId>,
    /// Relative size weight used during generation.
    pub size: u16,
    /// Router-count multiplier for PoPs outside the registry country.
    pub foreign_pop_scale: f64,
}

impl Operator {
    /// Whether this operator is any kind of transit network.
    pub fn is_transit(&self) -> bool {
        matches!(
            self.kind,
            OperatorKind::GlobalTransit | OperatorKind::DomesticTransit
        )
    }
}

/// Static spec for a built-in global operator.
#[derive(Debug, Clone, Copy)]
pub struct GlobalOperatorSpec {
    /// Organisation name.
    pub name: &'static str,
    /// rDNS domain.
    pub domain: &'static str,
    /// Registry country (ISO alpha-2).
    pub country: &'static str,
    /// Hostname style.
    pub style: HostnameStyle,
    /// Relative size (drives PoP count and router budget).
    pub size: u16,
    /// Present only in its home country (regional operator)?
    pub regional: bool,
    /// Ground-truth DRoP rules available?
    pub gt_rules: bool,
    /// Share of PoP blocks allocated from the *local* RIR instead of the
    /// home RIR (multinationals hold some regional allocations).
    pub local_rir_share: f64,
    /// Router-count multiplier for PoPs outside the registry country.
    /// Most backbones concentrate at home (≈0.15–0.25); some, like
    /// Telecom Italia Sparkle's seabone, run mostly-foreign footprints.
    pub foreign_pop_scale: f64,
}

/// The paper's seven ground-truth domains (§2.3.1), sized so that the
/// DNS-based ground truth reproduces Table 1's per-domain counts
/// (cogentco 6,462 / ntt 2,331 / pnap 1,437 / seabone 1,405 / peak10 170 /
/// digitalwest 29 / belwue 23).
pub const GT_OPERATORS: [GlobalOperatorSpec; 7] = [
    GlobalOperatorSpec {
        name: "cogentco",
        domain: "cogentco.com",
        country: "US",
        style: HostnameStyle::Iata,
        size: 32,
        regional: false,
        gt_rules: true,
        local_rir_share: 0.22,
        foreign_pop_scale: 0.18,
    },
    GlobalOperatorSpec {
        name: "ntt",
        domain: "ntt.net",
        country: "US",
        style: HostnameStyle::Clli,
        size: 18,
        regional: false,
        gt_rules: true,
        local_rir_share: 0.40,
        foreign_pop_scale: 0.20,
    },
    GlobalOperatorSpec {
        name: "pnap",
        domain: "pnap.net",
        country: "US",
        style: HostnameStyle::Iata,
        size: 11,
        regional: false,
        gt_rules: true,
        local_rir_share: 0.05,
        foreign_pop_scale: 0.15,
    },
    GlobalOperatorSpec {
        name: "seabone",
        domain: "seabone.net",
        country: "IT",
        style: HostnameStyle::CityName,
        size: 10,
        regional: false,
        gt_rules: true,
        local_rir_share: 0.10,
        foreign_pop_scale: 0.75,
    },
    GlobalOperatorSpec {
        name: "peak10",
        domain: "peak10.net",
        country: "US",
        style: HostnameStyle::Iata,
        size: 2,
        regional: true,
        gt_rules: true,
        local_rir_share: 0.0,
        foreign_pop_scale: 0.2,
    },
    GlobalOperatorSpec {
        name: "digitalwest",
        domain: "digitalwest.net",
        country: "US",
        style: HostnameStyle::CityName,
        size: 1,
        regional: true,
        gt_rules: true,
        local_rir_share: 0.0,
        foreign_pop_scale: 0.2,
    },
    GlobalOperatorSpec {
        name: "belwue",
        domain: "belwue.de",
        country: "DE",
        style: HostnameStyle::CityName,
        size: 1,
        regional: true,
        gt_rules: true,
        local_rir_share: 0.0,
        foreign_pop_scale: 0.2,
    },
];

/// Additional global transit operators without ground-truth rules. Some
/// embed location hints a DNS-savvy database (NetAcuity's profile) can
/// still decode; others are opaque.
pub const EXTRA_GLOBAL_OPERATORS: [GlobalOperatorSpec; 8] = [
    GlobalOperatorSpec {
        name: "gtt",
        domain: "gtt.net",
        country: "US",
        style: HostnameStyle::Opaque,
        size: 6,
        regional: false,
        gt_rules: false,
        local_rir_share: 0.15,
        foreign_pop_scale: 0.15,
    },
    GlobalOperatorSpec {
        name: "lumen",
        domain: "lumen.net",
        country: "US",
        style: HostnameStyle::Clli,
        size: 8,
        regional: false,
        gt_rules: false,
        local_rir_share: 0.10,
        foreign_pop_scale: 0.15,
    },
    GlobalOperatorSpec {
        name: "zayo",
        domain: "zayo.net",
        country: "US",
        style: HostnameStyle::Iata,
        size: 5,
        regional: false,
        gt_rules: false,
        local_rir_share: 0.08,
        foreign_pop_scale: 0.15,
    },
    GlobalOperatorSpec {
        name: "telia",
        domain: "teliacarrier.net",
        country: "SE",
        style: HostnameStyle::CityName,
        size: 7,
        regional: false,
        gt_rules: false,
        local_rir_share: 0.20,
        foreign_pop_scale: 0.35,
    },
    GlobalOperatorSpec {
        name: "tatacomm",
        domain: "tatacomm.net",
        country: "IN",
        style: HostnameStyle::Iata,
        size: 5,
        regional: false,
        gt_rules: false,
        local_rir_share: 0.30,
        foreign_pop_scale: 0.3,
    },
    GlobalOperatorSpec {
        name: "pccwglobal",
        domain: "pccwglobal.net",
        country: "HK",
        style: HostnameStyle::Opaque,
        size: 4,
        regional: false,
        gt_rules: false,
        local_rir_share: 0.25,
        foreign_pop_scale: 0.3,
    },
    GlobalOperatorSpec {
        name: "opentransit",
        domain: "opentransit.net",
        country: "FR",
        style: HostnameStyle::CityName,
        size: 5,
        regional: false,
        gt_rules: false,
        local_rir_share: 0.15,
        foreign_pop_scale: 0.25,
    },
    GlobalOperatorSpec {
        name: "telxius",
        domain: "telxius.net",
        country: "ES",
        style: HostnameStyle::Opaque,
        size: 3,
        regional: false,
        gt_rules: false,
        local_rir_share: 0.20,
        foreign_pop_scale: 0.3,
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use routergeo_geo::country::lookup;

    #[test]
    fn gt_operators_match_paper_domains() {
        let domains: Vec<_> = GT_OPERATORS.iter().map(|s| s.domain).collect();
        for d in [
            "belwue.de",
            "cogentco.com",
            "digitalwest.net",
            "ntt.net",
            "peak10.net",
            "seabone.net",
            "pnap.net",
        ] {
            assert!(domains.contains(&d), "missing ground-truth domain {d}");
        }
        assert_eq!(GT_OPERATORS.len(), 7);
    }

    #[test]
    fn all_spec_countries_exist() {
        for spec in GT_OPERATORS.iter().chain(EXTRA_GLOBAL_OPERATORS.iter()) {
            let code: CountryCode = spec.country.parse().expect(spec.name);
            assert!(lookup(code).is_some(), "{} country", spec.name);
            assert!(spec.size >= 1);
            assert!((0.0..=1.0).contains(&spec.local_rir_share));
        }
    }

    #[test]
    fn gt_rules_only_on_gt_operators() {
        assert!(GT_OPERATORS.iter().all(|s| s.gt_rules));
        assert!(EXTRA_GLOBAL_OPERATORS.iter().all(|s| !s.gt_rules));
    }

    #[test]
    fn cogent_is_largest_gt_operator() {
        // Table 1: cogentco dominates the DNS-based ground truth.
        let cogent = GT_OPERATORS.iter().find(|s| s.name == "cogentco").unwrap();
        for s in &GT_OPERATORS {
            assert!(cogent.size >= s.size);
        }
    }
}

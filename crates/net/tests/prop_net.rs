//! Property tests: the trie and range map must agree with a brute-force
//! reference implementation on random prefix sets.

use proptest::prelude::*;
use routergeo_net::{Prefix, PrefixTrie, RangeMapBuilder};
use std::net::Ipv4Addr;

/// Brute-force longest-prefix match over a list.
fn reference_lpm(prefixes: &[(Prefix, usize)], ip: Ipv4Addr) -> Option<&(Prefix, usize)> {
    prefixes
        .iter()
        .filter(|(p, _)| p.contains(ip))
        .max_by_key(|(p, _)| p.len())
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| {
        Prefix::containing(Ipv4Addr::from(addr), len).expect("len in range")
    })
}

proptest! {
    #[test]
    fn trie_matches_reference(
        prefixes in proptest::collection::vec(arb_prefix(), 1..64),
        probes in proptest::collection::vec(any::<u32>(), 1..64),
    ) {
        // Dedup by prefix, keeping the last value like the trie does.
        let mut unique: std::collections::HashMap<Prefix, usize> = Default::default();
        for (i, p) in prefixes.iter().enumerate() {
            unique.insert(*p, i);
        }
        let list: Vec<(Prefix, usize)> = unique.into_iter().collect();

        let mut trie = PrefixTrie::new();
        for (p, v) in &list {
            trie.insert(*p, *v);
        }
        prop_assert_eq!(trie.len(), list.len());

        for probe in probes {
            let ip = Ipv4Addr::from(probe);
            let expected = reference_lpm(&list, ip);
            let got = trie.lookup(ip);
            match (expected, got) {
                (None, None) => {}
                (Some((ep, ev)), Some((gp, gv))) => {
                    prop_assert_eq!(ep.len(), gp.len(), "match specificity differs for {}", ip);
                    // Same length + both contain ip => same prefix.
                    prop_assert_eq!(ep, gp);
                    prop_assert_eq!(ev, gv);
                }
                (e, g) => prop_assert!(false, "mismatch for {}: ref={:?} trie={:?}", ip, e, g),
            }
        }
    }

    #[test]
    fn rangemap_matches_reference(
        // Disjoint-by-construction: carve /16s of distinct top bytes.
        blocks in proptest::collection::btree_set(0u8..=255, 1..20),
        probes in proptest::collection::vec(any::<u32>(), 1..64),
    ) {
        let mut builder = RangeMapBuilder::new();
        let mut reference = Vec::new();
        for (i, b) in blocks.iter().enumerate() {
            let start = Ipv4Addr::new(*b, 0, 0, 0);
            let end = Ipv4Addr::new(*b, 127, 255, 255);
            builder.push(start, end, i);
            reference.push((u32::from(start), u32::from(end), i));
        }
        let map = builder.build().expect("disjoint by construction");
        for probe in probes {
            let ip = Ipv4Addr::from(probe);
            let expected = reference
                .iter()
                .find(|(s, e, _)| (*s..=*e).contains(&probe))
                .map(|(_, _, v)| v);
            prop_assert_eq!(map.lookup(ip), expected);
        }
    }

    #[test]
    fn prefix_parse_display_roundtrip(p in arb_prefix()) {
        let text = p.to_string();
        let back: Prefix = text.parse().expect("display emits valid text");
        prop_assert_eq!(p, back);
    }

    #[test]
    fn prefix_contains_own_range(p in arb_prefix()) {
        prop_assert!(p.contains(p.first()));
        prop_assert!(p.contains(p.last()));
        let (lo, hi) = p.range_u32();
        prop_assert_eq!(u64::from(hi) - u64::from(lo) + 1, p.size());
    }

    #[test]
    fn prefix_split_partitions(p in arb_prefix()) {
        if let Some((lo, hi)) = p.split() {
            prop_assert!(p.covers(&lo) && p.covers(&hi));
            prop_assert_eq!(lo.size() + hi.size(), p.size());
            prop_assert!(!lo.covers(&hi) && !hi.covers(&lo));
        } else {
            prop_assert_eq!(p.len(), 32);
        }
    }
}

proptest! {
    #[test]
    fn cover_range_is_exact_and_disjoint(a in any::<u32>(), b in any::<u32>()) {
        let (lo, hi) = (a.min(b), a.max(b));
        let cover = Prefix::cover_range(Ipv4Addr::from(lo), Ipv4Addr::from(hi));
        // Total size matches the range exactly.
        let total: u64 = cover.iter().map(|p| p.size()).sum();
        prop_assert_eq!(total, u64::from(hi) - u64::from(lo) + 1);
        // Contiguous, ascending, non-overlapping.
        let mut next = u64::from(lo);
        for p in &cover {
            prop_assert_eq!(p.network_u32() as u64, next);
            next += p.size();
        }
        prop_assert_eq!(next, u64::from(hi) + 1);
        // Minimality bound: a range never needs more than 62 CIDR blocks.
        prop_assert!(cover.len() <= 62);
    }

    #[test]
    fn cover_range_roundtrips_through_rangemap(a in any::<u32>(), b in any::<u32>()) {
        let (lo, hi) = (a.min(b), a.max(b));
        let cover = Prefix::cover_range(Ipv4Addr::from(lo), Ipv4Addr::from(hi));
        let mut builder = RangeMapBuilder::new();
        for p in &cover {
            builder.push_prefix(*p, ());
        }
        let map = builder.build().expect("disjoint cover");
        // Boundary and midpoint probes.
        for probe in [lo, hi, lo / 2 + hi / 2] {
            prop_assert!(map.lookup(Ipv4Addr::from(probe)).is_some());
        }
        if lo > 0 {
            prop_assert!(map.lookup(Ipv4Addr::from(lo - 1)).is_none());
        }
        if hi < u32::MAX {
            prop_assert!(map.lookup(Ipv4Addr::from(hi + 1)).is_none());
        }
    }
}

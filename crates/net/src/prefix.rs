//! Validated CIDR prefixes.

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// Errors constructing or parsing a [`Prefix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixError {
    /// Prefix length greater than 32.
    BadLength(u8),
    /// The address has bits set below the prefix length
    /// (e.g. `10.0.0.1/24`).
    HostBitsSet(Ipv4Addr, u8),
    /// Textual form did not parse.
    Parse(String),
}

impl fmt::Display for PrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixError::BadLength(l) => write!(f, "prefix length {l} exceeds 32"),
            PrefixError::HostBitsSet(ip, l) => {
                write!(f, "{ip}/{l} has host bits set below the prefix length")
            }
            PrefixError::Parse(s) => write!(f, "cannot parse prefix from {s:?}"),
        }
    }
}

impl std::error::Error for PrefixError {}

/// An IPv4 CIDR prefix: a network address plus a length in [0, 32].
///
/// Invariant: all bits below the prefix length are zero, so two equal
/// networks always compare equal.
///
/// ```
/// use routergeo_net::Prefix;
/// let p: Prefix = "192.0.2.0/24".parse().unwrap();
/// assert!(p.contains("192.0.2.77".parse().unwrap()));
/// assert_eq!(p.size(), 256);
/// assert!("192.0.2.1/24".parse::<Prefix>().is_err()); // host bits set
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    network: u32,
    len: u8,
}

impl Prefix {
    /// Create a prefix, validating length and host bits.
    pub fn new(network: Ipv4Addr, len: u8) -> Result<Prefix, PrefixError> {
        if len > 32 {
            return Err(PrefixError::BadLength(len));
        }
        let net = u32::from(network);
        let mask = Self::mask_for(len);
        if net & !mask != 0 {
            return Err(PrefixError::HostBitsSet(network, len));
        }
        Ok(Prefix { network: net, len })
    }

    /// Create the prefix of length `len` *containing* `ip`, masking host
    /// bits instead of rejecting them.
    pub fn containing(ip: Ipv4Addr, len: u8) -> Result<Prefix, PrefixError> {
        if len > 32 {
            return Err(PrefixError::BadLength(len));
        }
        Ok(Prefix {
            network: u32::from(ip) & Self::mask_for(len),
            len,
        })
    }

    /// The all-addresses prefix `0.0.0.0/0`.
    pub const fn default_route() -> Prefix {
        Prefix { network: 0, len: 0 }
    }

    #[inline]
    fn mask_for(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(len))
        }
    }

    /// Network address.
    #[inline]
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.network)
    }

    /// Network address as `u32`.
    #[inline]
    pub fn network_u32(&self) -> u32 {
        self.network
    }

    /// Prefix length.
    #[inline]
    #[allow(clippy::len_without_is_empty)] // a prefix is never "empty"
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Number of addresses covered (as `u64`, since `/0` covers 2^32).
    #[inline]
    pub fn size(&self) -> u64 {
        1u64 << (32 - u32::from(self.len))
    }

    /// First address (== network address).
    #[inline]
    pub fn first(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.network)
    }

    /// Last address (broadcast for the block).
    #[inline]
    pub fn last(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.network | !Self::mask_for(self.len))
    }

    /// Inclusive `u32` range covered by this prefix.
    #[inline]
    pub fn range_u32(&self) -> (u32, u32) {
        (self.network, self.network | !Self::mask_for(self.len))
    }

    /// Whether `ip` falls inside this prefix.
    #[inline]
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        u32::from(ip) & Self::mask_for(self.len) == self.network
    }

    /// Whether `other` is fully contained in `self` (including equality).
    pub fn covers(&self, other: &Prefix) -> bool {
        self.len <= other.len && (other.network & Self::mask_for(self.len)) == self.network
    }

    /// The two halves of this prefix, or `None` for a /32.
    pub fn split(&self) -> Option<(Prefix, Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let len = self.len + 1;
        let lo = Prefix {
            network: self.network,
            len,
        };
        let hi = Prefix {
            network: self.network | (1u32 << (32 - u32::from(len))),
            len,
        };
        Some((lo, hi))
    }

    /// Iterate the sub-prefixes of length `sub_len` within this prefix.
    ///
    /// Used by the world generator to carve allocations into /24 blocks.
    /// Panics if `sub_len < self.len()` or `sub_len > 32`.
    pub fn subnets(&self, sub_len: u8) -> impl Iterator<Item = Prefix> + '_ {
        assert!(sub_len >= self.len && sub_len <= 32, "invalid subnet split");
        let count = 1u64 << u32::from(sub_len - self.len);
        let step = 1u64 << (32 - u32::from(sub_len));
        let base = u64::from(self.network);
        (0..count).map(move |i| Prefix {
            network: u32::try_from(base + i * step)
                .expect("subnet enumeration stays inside the 32-bit address space"),
            len: sub_len,
        })
    }

    /// Iterate all addresses in the prefix. Only sensible for small blocks.
    pub fn addresses(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        let (lo, hi) = self.range_u32();
        (u64::from(lo)..=u64::from(hi))
            .map(|v| Ipv4Addr::from(u32::try_from(v).expect("range_u32 bounds fit in 32 bits")))
    }

    /// The nth address within the prefix, if in range.
    pub fn nth(&self, n: u64) -> Option<Ipv4Addr> {
        if n < self.size() {
            let addr = u64::from(self.network) + n;
            Some(Ipv4Addr::from(
                u32::try_from(addr).expect("n < size() keeps the address in 32 bits"),
            ))
        } else {
            None
        }
    }

    /// Decompose an inclusive address range into the minimal list of CIDR
    /// prefixes covering exactly that range (standard range-to-CIDR
    /// algorithm). Returns an empty vec when `start > end`.
    pub fn cover_range(start: Ipv4Addr, end: Ipv4Addr) -> Vec<Prefix> {
        let mut out = Vec::new();
        let mut cur = u64::from(u32::from(start));
        let end = u64::from(u32::from(end));
        while cur <= end {
            // Largest power-of-two block aligned at `cur` …
            let align = if cur == 0 { 33 } else { cur.trailing_zeros() };
            // … that still fits before `end`.
            let span_bits = 64 - (end - cur + 1).leading_zeros() - 1;
            let bits = align.min(span_bits).min(32);
            let len = u8::try_from(32 - bits).expect("bits capped at 32");
            out.push(Prefix {
                network: u32::try_from(cur).expect("cur <= end fits in 32 bits"),
                len,
            });
            cur += 1u64 << bits;
        }
        out
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl FromStr for Prefix {
    type Err = PrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .trim()
            .split_once('/')
            .ok_or_else(|| PrefixError::Parse(s.to_string()))?;
        let addr: Ipv4Addr = addr
            .parse()
            .map_err(|_| PrefixError::Parse(s.to_string()))?;
        let len: u8 = len.parse().map_err(|_| PrefixError::Parse(s.to_string()))?;
        Prefix::new(addr, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn new_validates_host_bits() {
        assert!(Prefix::new(Ipv4Addr::new(10, 0, 0, 1), 24).is_err());
        assert!(Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 24).is_ok());
        assert!(Prefix::new(Ipv4Addr::new(10, 0, 0, 1), 32).is_ok());
        assert!(Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 33).is_err());
    }

    #[test]
    fn containing_masks() {
        let pre = Prefix::containing(Ipv4Addr::new(10, 1, 2, 3), 16).unwrap();
        assert_eq!(pre.to_string(), "10.1.0.0/16");
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.0.2.0/24", "1.2.3.4/32"] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_junk() {
        assert!("".parse::<Prefix>().is_err());
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("10.0.0.1/24".parse::<Prefix>().is_err());
        assert!("abc/8".parse::<Prefix>().is_err());
        assert!("10.0.0.0/x".parse::<Prefix>().is_err());
    }

    #[test]
    fn size_first_last() {
        let pre = p("192.0.2.0/24");
        assert_eq!(pre.size(), 256);
        assert_eq!(pre.first(), Ipv4Addr::new(192, 0, 2, 0));
        assert_eq!(pre.last(), Ipv4Addr::new(192, 0, 2, 255));
        assert_eq!(p("0.0.0.0/0").size(), 1u64 << 32);
        assert_eq!(p("1.2.3.4/32").size(), 1);
    }

    #[test]
    fn contains_boundaries() {
        let pre = p("10.10.0.0/16");
        assert!(pre.contains(Ipv4Addr::new(10, 10, 0, 0)));
        assert!(pre.contains(Ipv4Addr::new(10, 10, 255, 255)));
        assert!(!pre.contains(Ipv4Addr::new(10, 11, 0, 0)));
        assert!(!pre.contains(Ipv4Addr::new(10, 9, 255, 255)));
    }

    #[test]
    fn covers_nesting() {
        assert!(p("10.0.0.0/8").covers(&p("10.20.0.0/16")));
        assert!(p("10.0.0.0/8").covers(&p("10.0.0.0/8")));
        assert!(!p("10.20.0.0/16").covers(&p("10.0.0.0/8")));
        assert!(!p("10.0.0.0/8").covers(&p("11.0.0.0/16")));
    }

    #[test]
    fn split_halves() {
        let (lo, hi) = p("10.0.0.0/8").split().unwrap();
        assert_eq!(lo.to_string(), "10.0.0.0/9");
        assert_eq!(hi.to_string(), "10.128.0.0/9");
        assert!(p("1.2.3.4/32").split().is_none());
    }

    #[test]
    fn subnets_enumeration() {
        let subs: Vec<_> = p("192.0.2.0/24").subnets(26).collect();
        assert_eq!(subs.len(), 4);
        assert_eq!(subs[0].to_string(), "192.0.2.0/26");
        assert_eq!(subs[3].to_string(), "192.0.2.192/26");
        // Degenerate split: the prefix itself.
        let subs: Vec<_> = p("192.0.2.0/24").subnets(24).collect();
        assert_eq!(subs, vec![p("192.0.2.0/24")]);
    }

    #[test]
    fn nth_address() {
        let pre = p("192.0.2.0/30");
        assert_eq!(pre.nth(0), Some(Ipv4Addr::new(192, 0, 2, 0)));
        assert_eq!(pre.nth(3), Some(Ipv4Addr::new(192, 0, 2, 3)));
        assert_eq!(pre.nth(4), None);
    }

    #[test]
    fn addresses_iterator() {
        let all: Vec<_> = p("192.0.2.252/30").addresses().collect();
        assert_eq!(all.len(), 4);
        assert_eq!(all[3], Ipv4Addr::new(192, 0, 2, 255));
        // The top of the address space must not overflow.
        let top: Vec<_> = p("255.255.255.252/30").addresses().collect();
        assert_eq!(top.len(), 4);
        assert_eq!(top[3], Ipv4Addr::new(255, 255, 255, 255));
    }

    #[test]
    fn cover_range_exact_block() {
        let cover = Prefix::cover_range(Ipv4Addr::new(10, 0, 0, 0), Ipv4Addr::new(10, 0, 0, 255));
        assert_eq!(cover, vec![p("10.0.0.0/24")]);
    }

    #[test]
    fn cover_range_unaligned() {
        let cover = Prefix::cover_range(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 6));
        // 1, 2-3, 4-5, 6.
        assert_eq!(
            cover,
            vec![
                p("10.0.0.1/32"),
                p("10.0.0.2/31"),
                p("10.0.0.4/31"),
                p("10.0.0.6/32"),
            ]
        );
        // Coverage is exact and disjoint.
        let total: u64 = cover.iter().map(|c| c.size()).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn cover_range_full_space() {
        let cover =
            Prefix::cover_range(Ipv4Addr::new(0, 0, 0, 0), Ipv4Addr::new(255, 255, 255, 255));
        assert_eq!(cover, vec![p("0.0.0.0/0")]);
    }

    #[test]
    fn cover_range_single_and_inverted() {
        assert_eq!(
            Prefix::cover_range(Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(1, 2, 3, 4)),
            vec![p("1.2.3.4/32")]
        );
        assert!(
            Prefix::cover_range(Ipv4Addr::new(1, 2, 3, 5), Ipv4Addr::new(1, 2, 3, 4)).is_empty()
        );
    }

    #[test]
    fn default_route_contains_everything() {
        let d = Prefix::default_route();
        assert!(d.contains(Ipv4Addr::new(0, 0, 0, 0)));
        assert!(d.contains(Ipv4Addr::new(255, 255, 255, 255)));
    }
}

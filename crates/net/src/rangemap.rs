//! Sorted non-overlapping IP range map.
//!
//! IP2Location-style databases ship as CSV rows of
//! `(first_ip, last_ip, location...)`. [`RangeMap`] is the in-memory
//! equivalent: inclusive, non-overlapping `u32` ranges mapped to values,
//! with `O(log n)` point lookup. A [`RangeMapBuilder`] validates input rows
//! (sortedness is not required on input; overlaps are an error).

use std::fmt;
use std::net::Ipv4Addr;

/// Error reported when two inserted ranges overlap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeOverlap {
    /// First range (as inclusive address pair).
    pub a: (Ipv4Addr, Ipv4Addr),
    /// Second, conflicting range.
    pub b: (Ipv4Addr, Ipv4Addr),
}

impl fmt::Display for RangeOverlap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IP ranges overlap: {}-{} vs {}-{}",
            self.a.0, self.a.1, self.b.0, self.b.1
        )
    }
}

impl std::error::Error for RangeOverlap {}

#[derive(Debug, Clone)]
struct Entry<V> {
    start: u32,
    end: u32, // inclusive
    value: V,
}

/// Builder for [`RangeMap`]; accumulates ranges in any order and validates
/// on [`RangeMapBuilder::build`].
#[derive(Debug, Clone)]
pub struct RangeMapBuilder<V> {
    entries: Vec<Entry<V>>,
}

impl<V> Default for RangeMapBuilder<V> {
    fn default() -> Self {
        RangeMapBuilder {
            entries: Vec::new(),
        }
    }
}

impl<V> RangeMapBuilder<V> {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an inclusive `[start, end]` range. `start > end` is rejected at
    /// build time as a zero-length overlap sentinel; prefer passing
    /// well-ordered pairs.
    pub fn push(&mut self, start: Ipv4Addr, end: Ipv4Addr, value: V) -> &mut Self {
        self.entries.push(Entry {
            start: u32::from(start),
            end: u32::from(end),
            value,
        });
        self
    }

    /// Add every address of `prefix` as one range.
    pub fn push_prefix(&mut self, prefix: crate::Prefix, value: V) -> &mut Self {
        let (s, e) = prefix.range_u32();
        self.entries.push(Entry {
            start: s,
            end: e,
            value,
        });
        self
    }

    /// Number of pending ranges.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the builder is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sort, validate, and produce the immutable map.
    pub fn build(mut self) -> Result<RangeMap<V>, RangeOverlap> {
        self.entries.sort_by_key(|e| (e.start, e.end));
        for w in self.entries.windows(2) {
            if w[1].start <= w[0].end {
                return Err(RangeOverlap {
                    a: (Ipv4Addr::from(w[0].start), Ipv4Addr::from(w[0].end)),
                    b: (Ipv4Addr::from(w[1].start), Ipv4Addr::from(w[1].end)),
                });
            }
        }
        if let Some(bad) = self.entries.iter().find(|e| e.start > e.end) {
            return Err(RangeOverlap {
                a: (Ipv4Addr::from(bad.start), Ipv4Addr::from(bad.end)),
                b: (Ipv4Addr::from(bad.start), Ipv4Addr::from(bad.end)),
            });
        }
        Ok(RangeMap {
            entries: self.entries,
        })
    }
}

/// Immutable map from non-overlapping inclusive IPv4 ranges to values.
#[derive(Debug, Clone)]
pub struct RangeMap<V> {
    entries: Vec<Entry<V>>,
}

impl<V> RangeMap<V> {
    /// An empty map.
    pub fn empty() -> Self {
        RangeMap {
            entries: Vec::new(),
        }
    }

    /// Number of ranges.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map holds no ranges.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up the value whose range contains `ip`.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<&V> {
        let needle = u32::from(ip);
        // Index of the first entry with start > needle; candidate is the one
        // before it.
        let idx = self.entries.partition_point(|e| e.start <= needle);
        if idx == 0 {
            return None;
        }
        let e = &self.entries[idx - 1];
        (needle <= e.end).then_some(&e.value)
    }

    /// Locate the entry index containing each needle of a batch.
    ///
    /// Equivalent to calling [`RangeMap::lookup`] per address but
    /// cache-friendly: needles are visited in ascending address order
    /// while a single monotone cursor advances over the sorted entries,
    /// so a batch of `k` lookups costs `O(k + n)` sequential reads —
    /// plus an `O(k log k)` position sort only when the input is not
    /// already ascending (resolver pipelines feed sorted interface
    /// sets, which skip it entirely). The returned vector is in the
    /// *original* needle order; each element is `Some(i)` with
    /// `self.value_at(i)` the matching value, or `None` on a miss.
    pub fn locate_batch(&self, ips: &[Ipv4Addr]) -> Vec<Option<usize>> {
        if ips.is_sorted() {
            // Sorted fast path: sweep in place, no position indirection
            // and no sort. `Ipv4Addr` orders like its big-endian u32.
            // Duplicate adjacent needles collapse onto the previous
            // answer — resolver batches repeat hot interfaces heavily,
            // and a repeat can answer from the last (needle, hit) pair
            // without touching the entry array at all.
            let mut out = Vec::with_capacity(ips.len());
            let mut cursor = 0usize;
            let mut last: Option<(u32, Option<usize>)> = None;
            for ip in ips {
                let needle = u32::from(*ip);
                let hit = match last {
                    Some((prev, hit)) if prev == needle => hit,
                    _ => self.sweep_to(needle, &mut cursor),
                };
                last = Some((needle, hit));
                out.push(hit);
            }
            return out;
        }
        if u32::try_from(ips.len()).is_err() {
            // Positions would not fit the packed 8-byte sort key; split
            // the (pathologically large) batch and stitch the halves.
            let mid = ips.len() / 2;
            let mut out = self.locate_batch(&ips[..mid]);
            out.extend(self.locate_batch(&ips[mid..]));
            return out;
        }
        // 8-byte (address, position) keys: half the memory traffic of a
        // (u32, usize) pair, which is where the sort spends its time.
        let mut order: Vec<(u32, u32)> = ips
            .iter()
            .enumerate()
            .map(|(pos, ip)| (u32::from(*ip), u32::try_from(pos).unwrap_or(u32::MAX)))
            .collect();
        order.sort_unstable();
        let mut out = vec![None; ips.len()];
        let mut cursor = 0usize;
        for (needle, pos) in order {
            let pos = usize::try_from(pos).unwrap_or(usize::MAX);
            let hit = self.sweep_to(needle, &mut cursor);
            if let Some(slot) = out.get_mut(pos) {
                *slot = hit;
            }
        }
        out
    }

    /// One step of the monotone batch sweep: advance `cursor` past every
    /// entry starting at or before `needle` (needles arrive ascending,
    /// so the cursor never moves backward) and report the index of the
    /// entry containing `needle`, if any.
    fn sweep_to(&self, needle: u32, cursor: &mut usize) -> Option<usize> {
        while self.entries.get(*cursor).is_some_and(|e| e.start <= needle) {
            *cursor += 1;
        }
        let idx = cursor.checked_sub(1)?;
        self.entries
            .get(idx)
            .is_some_and(|e| needle <= e.end)
            .then_some(idx)
    }

    /// Value stored at entry index `idx` (as returned by
    /// [`RangeMap::locate_batch`]).
    pub fn value_at(&self, idx: usize) -> Option<&V> {
        self.entries.get(idx).map(|e| &e.value)
    }

    /// Iterate `(start, end, &value)` in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = (Ipv4Addr, Ipv4Addr, &V)> {
        self.entries
            .iter()
            .map(|e| (Ipv4Addr::from(e.start), Ipv4Addr::from(e.end), &e.value))
    }

    /// Total number of addresses covered by all ranges.
    pub fn address_count(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| u64::from(e.end) - u64::from(e.start) + 1)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn lookup_hits_and_misses() {
        let mut b = RangeMapBuilder::new();
        b.push(ip("10.0.0.0"), ip("10.0.0.255"), "a");
        b.push(ip("10.0.2.0"), ip("10.0.2.255"), "b");
        let m = b.build().unwrap();
        assert_eq!(m.lookup(ip("10.0.0.0")), Some(&"a"));
        assert_eq!(m.lookup(ip("10.0.0.255")), Some(&"a"));
        assert_eq!(m.lookup(ip("10.0.1.0")), None);
        assert_eq!(m.lookup(ip("10.0.2.128")), Some(&"b"));
        assert_eq!(m.lookup(ip("9.255.255.255")), None);
        assert_eq!(m.lookup(ip("10.0.3.0")), None);
    }

    #[test]
    fn adjacent_ranges_are_fine() {
        let mut b = RangeMapBuilder::new();
        b.push(ip("10.0.0.0"), ip("10.0.0.255"), 1);
        b.push(ip("10.0.1.0"), ip("10.0.1.255"), 2);
        assert!(b.build().is_ok());
    }

    #[test]
    fn overlap_detected() {
        let mut b = RangeMapBuilder::new();
        b.push(ip("10.0.0.0"), ip("10.0.1.0"), 1);
        b.push(ip("10.0.0.255"), ip("10.0.2.0"), 2);
        assert!(b.build().is_err());
    }

    #[test]
    fn identical_ranges_detected() {
        let mut b = RangeMapBuilder::new();
        b.push(ip("10.0.0.0"), ip("10.0.0.255"), 1);
        b.push(ip("10.0.0.0"), ip("10.0.0.255"), 2);
        assert!(b.build().is_err());
    }

    #[test]
    fn inverted_range_detected() {
        let mut b = RangeMapBuilder::new();
        b.push(ip("10.0.1.0"), ip("10.0.0.0"), 1);
        assert!(b.build().is_err());
    }

    #[test]
    fn push_prefix_covers_block() {
        let mut b = RangeMapBuilder::new();
        b.push_prefix("192.0.2.0/24".parse().unwrap(), 7);
        let m = b.build().unwrap();
        assert_eq!(m.address_count(), 256);
        assert_eq!(m.lookup(ip("192.0.2.200")), Some(&7));
    }

    #[test]
    fn locate_batch_agrees_with_pointwise_lookup() {
        let mut b = RangeMapBuilder::new();
        b.push(ip("10.0.0.0"), ip("10.0.0.255"), "a");
        b.push(ip("10.0.2.0"), ip("10.0.2.255"), "b");
        b.push(ip("200.1.0.0"), ip("200.1.255.255"), "c");
        let m = b.build().unwrap();
        // Unsorted, duplicated, hit-and-miss needles.
        let needles: Vec<Ipv4Addr> = [
            "200.1.44.3",
            "10.0.0.0",
            "10.0.1.7",
            "10.0.2.255",
            "10.0.0.0",
            "0.0.0.0",
            "255.255.255.255",
            "10.0.0.255",
        ]
        .iter()
        .map(|s| ip(s))
        .collect();
        let located = m.locate_batch(&needles);
        assert_eq!(located.len(), needles.len());
        for (got, needle) in located.iter().zip(&needles) {
            let via_batch = got.and_then(|i| m.value_at(i));
            assert_eq!(via_batch, m.lookup(*needle), "needle {needle}");
        }
    }

    #[test]
    fn sorted_batch_with_duplicates_matches_pointwise_lookup() {
        // Regression: the sorted fast path memoizes the last needle, so
        // runs of duplicates (hits AND misses, including leading and
        // trailing runs) must still agree with pointwise `lookup`.
        let mut b = RangeMapBuilder::new();
        b.push(ip("10.0.0.0"), ip("10.0.0.255"), "a");
        b.push(ip("10.0.2.0"), ip("10.0.2.255"), "b");
        b.push(ip("200.1.0.0"), ip("200.1.255.255"), "c");
        let m = b.build().unwrap();
        let needles: Vec<Ipv4Addr> = [
            "0.0.0.0",
            "0.0.0.0",
            "10.0.0.7",
            "10.0.0.7",
            "10.0.0.7",
            "10.0.1.1", // miss between ranges, duplicated next
            "10.0.1.1",
            "10.0.2.9",
            "200.1.0.0",
            "200.1.0.0",
            "255.255.255.255",
            "255.255.255.255",
        ]
        .iter()
        .map(|s| ip(s))
        .collect();
        assert!(needles.is_sorted(), "must exercise the sorted fast path");
        let located = m.locate_batch(&needles);
        assert_eq!(located.len(), needles.len());
        for (got, needle) in located.iter().zip(&needles) {
            let via_batch = got.and_then(|i| m.value_at(i));
            assert_eq!(via_batch, m.lookup(*needle), "needle {needle}");
        }
        // Same needles shuffled out of order take the sort path and must
        // land on the identical answers once restored to input order.
        let mut shuffled = needles.clone();
        shuffled.reverse();
        let mut relocated = m.locate_batch(&shuffled);
        relocated.reverse();
        assert_eq!(relocated, located);
    }

    #[test]
    fn locate_batch_on_empty_map_and_empty_batch() {
        let m: RangeMap<u8> = RangeMap::empty();
        assert_eq!(m.locate_batch(&[ip("1.2.3.4")]), vec![None]);
        let mut b = RangeMapBuilder::new();
        b.push(ip("10.0.0.0"), ip("10.0.0.255"), 1);
        let m = b.build().unwrap();
        assert!(m.locate_batch(&[]).is_empty());
        assert_eq!(m.value_at(0), Some(&1));
        assert_eq!(m.value_at(1), None);
    }

    #[test]
    fn empty_map() {
        let m: RangeMap<u8> = RangeMap::empty();
        assert!(m.is_empty());
        assert_eq!(m.lookup(ip("1.2.3.4")), None);
        assert_eq!(m.address_count(), 0);
    }

    #[test]
    fn full_space_single_range() {
        let mut b = RangeMapBuilder::new();
        b.push(ip("0.0.0.0"), ip("255.255.255.255"), ());
        let m = b.build().unwrap();
        assert_eq!(m.address_count(), 1u64 << 32);
        assert!(m.lookup(ip("255.255.255.255")).is_some());
    }
}

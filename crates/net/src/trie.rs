//! Binary prefix trie with longest-prefix-match lookup.
//!
//! This is the in-memory shape of MaxMind-style binary databases (a bit
//! trie over the address, walked MSB-first) and of the synthetic world's
//! address-allocation plan. Nodes are kept in a flat arena (`Vec`) with
//! index links — no `Box` chasing, cache-friendly walks, and trivially
//! serializable by `routergeo-db`'s RGDB writer.

use crate::prefix::Prefix;
use std::net::Ipv4Addr;

const NO_NODE: u32 = u32::MAX;

/// Arena link as a slice index. `u32` always fits in `usize` on the
/// 32/64-bit targets this crate supports, so the check never fires; it
/// exists to make the conversion explicit rather than silently lossy.
#[inline]
fn ix(i: u32) -> usize {
    usize::try_from(i).expect("u32 arena index fits in usize")
}

#[derive(Debug, Clone)]
struct Node {
    children: [u32; 2],
    /// Index into `values`, or `u32::MAX`.
    value: u32,
}

impl Node {
    fn new() -> Self {
        Node {
            children: [NO_NODE, NO_NODE],
            value: NO_NODE,
        }
    }

    /// Child link for bit `b`; callers only pass [`PrefixTrie::bit`]
    /// output or a loop index over `0..2`.
    #[inline]
    fn child(&self, b: usize) -> u32 {
        *self.children.get(b).expect("child slot is 0 or 1")
    }

    /// Mutable child link; same contract as [`Node::child`].
    #[inline]
    fn child_mut(&mut self, b: usize) -> &mut u32 {
        self.children.get_mut(b).expect("child slot is 0 or 1")
    }
}

/// A binary trie mapping CIDR prefixes to values, answering
/// longest-prefix-match queries.
///
/// Inserting the same prefix twice replaces the previous value (like a map).
#[derive(Debug, Clone)]
pub struct PrefixTrie<V> {
    nodes: Vec<Node>,
    values: Vec<(Prefix, V)>,
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PrefixTrie<V> {
    /// New empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            nodes: vec![Node::new()],
            values: Vec::new(),
        }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the trie holds no prefixes.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of trie nodes (for format/size diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    fn bit(addr: u32, depth: u8) -> usize {
        usize::from((addr >> (31 - u32::from(depth))) & 1 == 1)
    }

    /// Checked arena access. Links only ever come from the arena
    /// itself, so a miss is a structural bug, never input-dependent.
    #[inline]
    fn node(&self, i: u32) -> &Node {
        self.nodes
            .get(ix(i))
            .expect("trie arena link in bounds by construction")
    }

    /// Mutable arena access; same invariant as [`PrefixTrie::node`].
    #[inline]
    fn node_mut(&mut self, i: u32) -> &mut Node {
        self.nodes
            .get_mut(ix(i))
            .expect("trie arena link in bounds by construction")
    }

    /// Checked value-table access; `i` always comes from a node's
    /// `value` link, assigned at insertion time.
    #[inline]
    fn value_entry(&self, i: u32) -> &(Prefix, V) {
        self.values
            .get(ix(i))
            .expect("trie value link in bounds by construction")
    }

    /// Mutable value-table access; same invariant as
    /// [`PrefixTrie::value_entry`].
    #[inline]
    fn value_entry_mut(&mut self, i: u32) -> &mut (Prefix, V) {
        self.values
            .get_mut(ix(i))
            .expect("trie value link in bounds by construction")
    }

    /// Insert `prefix -> value`, replacing any existing value at exactly
    /// that prefix. Returns the previous value if one was replaced.
    pub fn insert(&mut self, prefix: Prefix, value: V) -> Option<V> {
        let addr = prefix.network_u32();
        let mut node = 0u32;
        for depth in 0..prefix.len() {
            let b = Self::bit(addr, depth);
            let next = self.node(node).child(b);
            let next = if next == NO_NODE {
                let idx = u32::try_from(self.nodes.len())
                    .expect("trie arena exceeds the u32 node-link limit");
                self.nodes.push(Node::new());
                *self.node_mut(node).child_mut(b) = idx;
                idx
            } else {
                next
            };
            node = next;
        }
        let slot = self.node(node).value;
        if slot == NO_NODE {
            self.node_mut(node).value = u32::try_from(self.values.len())
                .expect("trie value table exceeds the u32 link limit");
            self.values.push((prefix, value));
            None
        } else {
            let entry = self.value_entry_mut(slot);
            let old = std::mem::replace(&mut entry.1, value);
            entry.0 = prefix;
            Some(old)
        }
    }

    /// Longest-prefix match: the most specific stored prefix containing
    /// `ip`, with its value.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<(&Prefix, &V)> {
        let addr = u32::from(ip);
        let mut node = 0u32;
        let mut best: Option<u32> = None;
        let mut depth = 0u8;
        loop {
            let n = self.node(node);
            if n.value != NO_NODE {
                best = Some(n.value);
            }
            if depth == 32 {
                break;
            }
            let b = Self::bit(addr, depth);
            let next = n.child(b);
            if next == NO_NODE {
                break;
            }
            node = next;
            depth += 1;
        }
        best.map(|i| {
            let (p, v) = self.value_entry(i);
            (p, v)
        })
    }

    /// Value stored at exactly `prefix`, if any.
    pub fn get_exact(&self, prefix: &Prefix) -> Option<&V> {
        let addr = prefix.network_u32();
        let mut node = 0u32;
        for depth in 0..prefix.len() {
            let b = Self::bit(addr, depth);
            let next = self.node(node).child(b);
            if next == NO_NODE {
                return None;
            }
            node = next;
        }
        let v = self.node(node).value;
        (v != NO_NODE).then(|| &self.value_entry(v).1)
    }

    /// Iterate all `(prefix, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&Prefix, &V)> {
        self.values.iter().map(|(p, v)| (p, v))
    }

    /// Walk the trie depth-first, invoking `f` on every stored prefix in
    /// address order (pre-order: shorter prefixes before their children).
    pub fn walk<F: FnMut(&Prefix, &V)>(&self, mut f: F) {
        self.walk_node(0, &mut f);
    }

    fn walk_node<F: FnMut(&Prefix, &V)>(&self, node: u32, f: &mut F) {
        let n = self.node(node);
        if n.value != NO_NODE {
            let (p, v) = self.value_entry(n.value);
            f(p, v);
        }
        for b in 0..2 {
            let child = n.child(b);
            if child != NO_NODE {
                self.walk_node(child, f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn empty_lookup_misses() {
        let t: PrefixTrie<u8> = PrefixTrie::new();
        assert!(t.lookup(ip("1.2.3.4")).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn longest_prefix_wins() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), "eight");
        t.insert(p("10.1.0.0/16"), "sixteen");
        t.insert(p("10.1.2.0/24"), "twentyfour");
        assert_eq!(t.lookup(ip("10.1.2.3")).unwrap().1, &"twentyfour");
        assert_eq!(t.lookup(ip("10.1.9.9")).unwrap().1, &"sixteen");
        assert_eq!(t.lookup(ip("10.200.0.1")).unwrap().1, &"eight");
        assert!(t.lookup(ip("11.0.0.0")).is_none());
    }

    #[test]
    fn lookup_reports_matched_prefix() {
        let mut t = PrefixTrie::new();
        t.insert(p("192.0.2.0/24"), ());
        let (matched, _) = t.lookup(ip("192.0.2.99")).unwrap();
        assert_eq!(*matched, p("192.0.2.0/24"));
    }

    #[test]
    fn default_route_catches_all() {
        let mut t = PrefixTrie::new();
        t.insert(Prefix::default_route(), "default");
        t.insert(p("10.0.0.0/8"), "ten");
        assert_eq!(t.lookup(ip("1.1.1.1")).unwrap().1, &"default");
        assert_eq!(t.lookup(ip("10.1.1.1")).unwrap().1, &"ten");
    }

    #[test]
    fn insert_replaces() {
        let mut t = PrefixTrie::new();
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(ip("10.0.0.1")).unwrap().1, &2);
    }

    #[test]
    fn slash32_entries() {
        let mut t = PrefixTrie::new();
        t.insert(p("1.2.3.4/32"), "host");
        assert_eq!(t.lookup(ip("1.2.3.4")).unwrap().1, &"host");
        assert!(t.lookup(ip("1.2.3.5")).is_none());
    }

    #[test]
    fn get_exact_distinguishes_lengths() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 8);
        assert_eq!(t.get_exact(&p("10.0.0.0/8")), Some(&8));
        assert_eq!(t.get_exact(&p("10.0.0.0/16")), None);
        assert_eq!(t.get_exact(&p("11.0.0.0/8")), None);
    }

    #[test]
    fn walk_visits_in_address_order() {
        let mut t = PrefixTrie::new();
        t.insert(p("192.0.2.0/24"), 3);
        t.insert(p("10.0.0.0/8"), 1);
        t.insert(p("10.128.0.0/9"), 2);
        let mut seen = Vec::new();
        t.walk(|pre, v| seen.push((pre.to_string(), *v)));
        assert_eq!(
            seen,
            vec![
                ("10.0.0.0/8".to_string(), 1),
                ("10.128.0.0/9".to_string(), 2),
                ("192.0.2.0/24".to_string(), 3),
            ]
        );
    }

    #[test]
    fn sibling_prefixes_do_not_interfere() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/1"), "low");
        t.insert(p("128.0.0.0/1"), "high");
        assert_eq!(t.lookup(ip("1.0.0.0")).unwrap().1, &"low");
        assert_eq!(t.lookup(ip("200.0.0.0")).unwrap().1, &"high");
    }
}

//! IPv4 addressing primitives for the `routergeo` workspace.
//!
//! Geolocation databases are, structurally, maps from IPv4 ranges or
//! prefixes to location records. This crate supplies the address types and
//! the two lookup structures the rest of the workspace builds on:
//!
//! * [`Prefix`] — a validated CIDR prefix (`10.0.0.0/8`), with the `/24`
//!   block arithmetic the paper leans on ("block-level — /24 block or
//!   larger — locations", §5.2.3).
//! * [`RangeMap`] — sorted, non-overlapping inclusive ranges → value;
//!   the natural shape of IP2Location-style CSV databases.
//! * [`PrefixTrie`] — a binary trie with longest-prefix-match lookup;
//!   the natural shape of MaxMind-style binary databases and of the
//!   address-allocation plan in `routergeo-world`.
//!
//! All structures are plain in-memory containers; serialization formats
//! live in `routergeo-db`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod prefix;
pub mod rangemap;
pub mod trie;

pub use prefix::{Prefix, PrefixError};
pub use rangemap::{RangeMap, RangeMapBuilder, RangeOverlap};
pub use trie::PrefixTrie;

use std::net::Ipv4Addr;

/// Convert an [`Ipv4Addr`] to its `u32` value (network byte order).
#[inline]
pub fn ip_to_u32(ip: Ipv4Addr) -> u32 {
    u32::from(ip)
}

/// Convert a `u32` back to an [`Ipv4Addr`].
#[inline]
pub fn u32_to_ip(v: u32) -> Ipv4Addr {
    Ipv4Addr::from(v)
}

/// The `/24` block containing `ip` — the granularity at which both the
/// paper's Ark destinations and typical database entries operate.
#[inline]
pub fn block24(ip: Ipv4Addr) -> Prefix {
    Prefix::new(Ipv4Addr::from(u32::from(ip) & 0xFFFF_FF00), 24).expect("masked /24 is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_roundtrip() {
        for ip in [
            Ipv4Addr::new(0, 0, 0, 0),
            Ipv4Addr::new(10, 1, 2, 3),
            Ipv4Addr::new(255, 255, 255, 255),
        ] {
            assert_eq!(u32_to_ip(ip_to_u32(ip)), ip);
        }
    }

    #[test]
    fn block24_masks_host_byte() {
        let p = block24(Ipv4Addr::new(192, 0, 2, 77));
        assert_eq!(p.to_string(), "192.0.2.0/24");
        assert!(p.contains(Ipv4Addr::new(192, 0, 2, 0)));
        assert!(p.contains(Ipv4Addr::new(192, 0, 2, 255)));
        assert!(!p.contains(Ipv4Addr::new(192, 0, 3, 0)));
    }
}

//! Property tests for the trace crate's serialization formats and RTT
//! model invariants.

use proptest::prelude::*;
use routergeo_trace::rttmodel::{RttModel, SplitMix64};
use routergeo_trace::wire;
use routergeo_trace::{Hop, TracerouteRecord};
use std::net::Ipv4Addr;

fn arb_record() -> impl Strategy<Value = TracerouteRecord> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        proptest::collection::vec(
            (
                any::<u8>(),
                proptest::option::of((any::<u32>(), proptest::option::of(0.0f64..1e5))),
            ),
            0..30,
        ),
        any::<bool>(),
    )
        .prop_map(|(origin, src, dst, hops, reached)| TracerouteRecord {
            origin_id: origin,
            src_ip: Ipv4Addr::from(src),
            dst_ip: Ipv4Addr::from(dst),
            hops: hops
                .into_iter()
                .map(|(no, reply)| match reply {
                    Some((ip, rtt)) => Hop {
                        hop: no,
                        ip: Some(Ipv4Addr::from(ip)),
                        rtt_ms: rtt,
                    },
                    None => Hop::timeout(no),
                })
                .collect(),
            reached,
        })
}

proptest! {
    #[test]
    fn warts_roundtrips_structure(records in proptest::collection::vec(arb_record(), 0..12)) {
        let buf = wire::write_all(&records);
        let back = wire::read_all(&buf).expect("own output parses");
        prop_assert_eq!(back.len(), records.len());
        for (a, b) in records.iter().zip(back.iter()) {
            prop_assert_eq!(a.origin_id, b.origin_id);
            prop_assert_eq!(a.src_ip, b.src_ip);
            prop_assert_eq!(a.dst_ip, b.dst_ip);
            prop_assert_eq!(a.reached, b.reached);
            prop_assert_eq!(a.hops.len(), b.hops.len());
            for (x, y) in a.hops.iter().zip(b.hops.iter()) {
                prop_assert_eq!(x.hop, y.hop);
                prop_assert_eq!(x.ip, y.ip);
                match (x.rtt_ms, y.rtt_ms) {
                    (Some(p), Some(q)) => prop_assert!((p - q).abs() < 0.001),
                    (None, None) => {}
                    other => prop_assert!(false, "{:?}", other),
                }
            }
        }
    }

    #[test]
    fn warts_reader_never_panics_on_random_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = wire::read_all(&bytes);
    }

    #[test]
    fn warts_reader_never_panics_on_corrupted_valid_streams(
        records in proptest::collection::vec(arb_record(), 1..6),
        flip_at in any::<prop::sample::Index>(),
        flip_bits in 1u8..=255,
    ) {
        let mut buf = wire::write_all(&records);
        let idx = flip_at.index(buf.len());
        buf[idx] ^= flip_bits;
        let _ = wire::read_all(&buf);
    }

    #[test]
    fn atlas_json_roundtrips_structure(rec in arb_record()) {
        let json = rec.to_atlas_json();
        let back = TracerouteRecord::from_atlas_json(&json).expect("parses");
        prop_assert_eq!(rec.hops.len(), back.hops.len());
        prop_assert_eq!(rec.src_ip, back.src_ip);
    }

    #[test]
    fn rtt_model_never_beats_physics(
        seed in any::<u64>(),
        km in 0.0f64..20_000.0,
    ) {
        let model = RttModel::default();
        let mut rng = SplitMix64::new(seed);
        let inflation = model.draw_inflation(&mut rng);
        let rtt = model.hop_rtt_ms(km, inflation, &mut rng);
        prop_assert!(rtt >= routergeo_geo::distance::min_rtt_ms(km));
    }

    #[test]
    fn splitmix_uniform_is_in_unit_interval(seed in any::<u64>()) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..64 {
            let v = rng.next_f64();
            prop_assert!((0.0..1.0).contains(&v));
        }
    }
}

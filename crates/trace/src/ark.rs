//! Ark-style topology campaign (§2.1).
//!
//! CAIDA Ark monitors traceroute a randomly selected address in every
//! routed /24. The synthetic campaign does the same over the world's block
//! plan: monitors hosted in stub networks around the world take turns
//! tracing to a random host in randomly drawn /24 blocks; the interface
//! addresses observed on paths form the **Ark-topo-router dataset** the
//! paper's coverage and consistency analysis (§5.1) runs on.

use crate::engine::TraceEngine;
use crate::graph::{PathTree, Topology};
use crate::record::TracerouteRecord;
use crate::rttmodel::SplitMix64;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use routergeo_pool::{plan_shards, Pool, Shard};
use routergeo_world::{OperatorKind, PopId, World};
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// Traceroutes per shard. Fixed (never derived from the thread count) so
/// the per-shard destination RNG streams — and therefore the extracted
/// dataset — are identical at every thread count.
const ARK_SHARD_SIZE: usize = 1024;

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct ArkConfig {
    /// Campaign RNG seed (independent of the world seed).
    pub seed: u64,
    /// Number of monitors (Ark runs of order dozens).
    pub monitors: usize,
    /// Number of traceroutes to run. `None` = eight passes over every
    /// allocated /24 (the paper probes every routed /24 repeatedly over a
    /// week).
    pub traceroutes: Option<usize>,
}

impl Default for ArkConfig {
    fn default() -> Self {
        ArkConfig {
            seed: 0xA4C,
            monitors: 40,
            traceroutes: None,
        }
    }
}

/// The extracted Ark-topo-router dataset: unique router interface
/// addresses observed on traceroute paths.
#[derive(Debug, Clone)]
pub struct ArkDataset {
    /// Sorted unique interface addresses.
    pub interfaces: Vec<Ipv4Addr>,
    /// Number of traceroutes run to produce it.
    pub traceroutes_run: usize,
}

impl ArkDataset {
    /// Number of interface addresses.
    pub fn len(&self) -> usize {
        self.interfaces.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.interfaces.is_empty()
    }
}

/// A prepared Ark campaign: monitors chosen, shortest-path trees computed.
pub struct ArkCampaign<'w> {
    engine: TraceEngine<'w>,
    monitors: Vec<Monitor>,
    config: ArkConfig,
}

struct Monitor {
    pop: PopId,
    tree: PathTree,
    src_ip: Ipv4Addr,
}

impl<'w> ArkCampaign<'w> {
    /// Prepare a campaign: pick monitors (spread across countries, hosted
    /// in stub networks like real Ark vantage points) and precompute a
    /// shortest-path tree per monitor.
    pub fn new(world: &'w World, topo: &Topology, config: ArkConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x13D0);
        // Group stub PoPs by country, then take one per country in random
        // country order until we have enough monitors.
        let mut by_country: std::collections::HashMap<_, Vec<PopId>> = Default::default();
        for pop in &world.pops {
            if world.operator(pop.op).kind == OperatorKind::Stub {
                by_country
                    .entry(world.city(pop.city).country)
                    .or_default()
                    .push(pop.id);
            }
        }
        let mut countries: Vec<_> = by_country.keys().copied().collect();
        countries.sort();
        countries.shuffle(&mut rng);
        let mut pops = Vec::new();
        'outer: loop {
            for c in &countries {
                let pool = &by_country[c];
                pops.push(pool[rng.gen_range(0..pool.len())]);
                if pops.len() >= config.monitors {
                    break 'outer;
                }
            }
            if countries.is_empty() {
                break;
            }
        }

        let monitors = pops
            .into_iter()
            .enumerate()
            .map(|(i, pop)| Monitor {
                pop,
                tree: topo.shortest_paths(pop),
                // Monitor host addresses live outside the router plan.
                src_ip: Ipv4Addr::new(203, (i >> 8) as u8, (i & 0xFF) as u8, 10),
            })
            .collect();

        ArkCampaign {
            engine: TraceEngine::new(world, config.seed),
            monitors,
            config,
        }
    }

    /// Number of monitors actually provisioned.
    pub fn monitor_count(&self) -> usize {
        self.monitors.len()
    }

    /// Total traceroutes a full campaign runs (the `traceroutes`
    /// override, or eight passes over every allocated /24).
    pub fn total_traceroutes(&self) -> usize {
        let blocks = self.engine.world().plan().blocks();
        if blocks.is_empty() || self.monitors.is_empty() {
            return 0;
        }
        self.config
            .traceroutes
            .unwrap_or_else(|| blocks.len().saturating_mul(8))
    }

    /// Run one shard of the campaign, invoking `sink` on every record.
    ///
    /// Destination draws come from the shard's private [`SplitMix64`]
    /// stream, so the traceroutes of shard `k` are the same no matter
    /// which worker (or how many workers) executes it. Monitors rotate
    /// round-robin on the *global* traceroute index, mirroring Ark's
    /// team probing.
    pub fn run_shard<F: FnMut(&TracerouteRecord)>(&self, shard: &Shard, mut sink: F) {
        let world = self.engine.world();
        let blocks = world.plan().blocks();
        if blocks.is_empty() || self.monitors.is_empty() {
            return;
        }
        let mut rng = SplitMix64::new(shard.seed);
        for i in shard.start..shard.end {
            let monitor = &self.monitors[i % self.monitors.len()];
            let block = &blocks[(rng.next_u64() % blocks.len() as u64) as usize];
            let host = 1 + rng.next_u64() % 254;
            let dst_ip = block.block.nth(host).expect("host in /24");
            let src_coord = world.city(world.pop(monitor.pop).city).coord;
            if let Some(rec) = self.engine.trace(
                &monitor.tree,
                src_coord,
                (i % self.monitors.len()) as u32,
                monitor.src_ip,
                block.pop,
                dst_ip,
            ) {
                sink(&rec);
            }
        }
    }

    /// Run the whole campaign serially, invoking `sink` on every
    /// traceroute record in global order.
    pub fn run<F: FnMut(&TracerouteRecord)>(&self, mut sink: F) -> usize {
        let total = self.total_traceroutes();
        for shard in plan_shards(self.config.seed ^ 0xDE57, total, ARK_SHARD_SIZE) {
            self.run_shard(&shard, &mut sink);
        }
        total
    }

    /// Run the campaign and extract the unique interface addresses —
    /// the Ark-topo-router dataset. Thread count from the environment
    /// ([`Pool::from_env`]).
    pub fn extract_dataset(&self) -> ArkDataset {
        self.extract_dataset_with(&Pool::from_env())
    }

    /// [`extract_dataset`](ArkCampaign::extract_dataset) on an explicit
    /// pool. Shards run concurrently; each yields its own sorted
    /// interface set and the union is re-sorted, so the result is
    /// byte-identical at every thread count.
    pub fn extract_dataset_with(&self, pool: &Pool) -> ArkDataset {
        let world = self.engine.world();
        let total = self.total_traceroutes();
        let mut span = routergeo_obs::span!(
            "ark.extract",
            traceroutes = total,
            monitors = self.monitors.len()
        );
        routergeo_obs::counter("ark.traceroutes").add(total as u64);
        let per_shard: Vec<Vec<Ipv4Addr>> =
            pool.run_shards(self.config.seed ^ 0xDE57, total, ARK_SHARD_SIZE, |shard| {
                let mut seen: HashSet<Ipv4Addr> = HashSet::new();
                self.run_shard(shard, |rec| {
                    for ip in rec.responding_intermediate_ips() {
                        // Keep only addresses that are actually router
                        // interfaces; destination hosts that happened to
                        // reply are endpoints.
                        if world.find_interface(ip).is_some() {
                            seen.insert(ip);
                        }
                    }
                });
                let mut found: Vec<Ipv4Addr> = seen.into_iter().collect();
                found.sort();
                found
            });
        let mut interfaces: Vec<Ipv4Addr> = per_shard.into_iter().flatten().collect();
        interfaces.sort();
        interfaces.dedup();
        routergeo_obs::counter("ark.interfaces").add(interfaces.len() as u64);
        span.attr("interfaces", interfaces.len());
        ArkDataset {
            interfaces,
            traceroutes_run: total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routergeo_world::{World, WorldConfig};

    fn campaign(world: &World) -> (Topology, ArkConfig) {
        let topo = Topology::build(world);
        let cfg = ArkConfig {
            seed: 5,
            monitors: 10,
            traceroutes: Some(2_000),
        };
        (topo, cfg)
    }

    #[test]
    fn dataset_is_deterministic() {
        let w = World::generate(WorldConfig::tiny(41));
        let (topo, cfg) = campaign(&w);
        let a = ArkCampaign::new(&w, &topo, cfg.clone()).extract_dataset();
        let b = ArkCampaign::new(&w, &topo, cfg).extract_dataset();
        assert_eq!(a.interfaces, b.interfaces);
        assert!(!a.is_empty());
    }

    #[test]
    fn parallel_dataset_is_identical_to_serial() {
        let w = World::generate(WorldConfig::tiny(46));
        let (topo, cfg) = campaign(&w);
        let c = ArkCampaign::new(&w, &topo, cfg);
        let serial = c.extract_dataset_with(&Pool::serial());
        for threads in [2, 8] {
            let parallel = c.extract_dataset_with(&Pool::new(threads));
            assert_eq!(serial.interfaces, parallel.interfaces, "threads={threads}");
            assert_eq!(serial.traceroutes_run, parallel.traceroutes_run);
        }
        assert!(!serial.is_empty());
    }

    #[test]
    fn run_matches_sharded_traversal() {
        // `run` must visit exactly the shard plan in order: collecting
        // per-shard records by hand reproduces the serial sink stream.
        let w = World::generate(WorldConfig::tiny(47));
        let (topo, cfg) = campaign(&w);
        let c = ArkCampaign::new(&w, &topo, cfg.clone());
        let mut via_run = Vec::new();
        let total = c.run(|rec| via_run.push(rec.dst_ip));
        let mut via_shards = Vec::new();
        for shard in plan_shards(cfg.seed ^ 0xDE57, total, ARK_SHARD_SIZE) {
            c.run_shard(&shard, |rec| via_shards.push(rec.dst_ip));
        }
        assert_eq!(via_run, via_shards);
    }

    #[test]
    fn dataset_contains_only_real_interfaces() {
        let w = World::generate(WorldConfig::tiny(42));
        let (topo, cfg) = campaign(&w);
        let ds = ArkCampaign::new(&w, &topo, cfg).extract_dataset();
        for ip in &ds.interfaces {
            assert!(w.find_interface(*ip).is_some(), "{ip} not an interface");
        }
    }

    #[test]
    fn more_traceroutes_discover_more_interfaces() {
        let w = World::generate(WorldConfig::tiny(43));
        let topo = Topology::build(&w);
        let small = ArkCampaign::new(
            &w,
            &topo,
            ArkConfig {
                seed: 5,
                monitors: 10,
                traceroutes: Some(200),
            },
        )
        .extract_dataset();
        let large = ArkCampaign::new(
            &w,
            &topo,
            ArkConfig {
                seed: 5,
                monitors: 10,
                traceroutes: Some(4_000),
            },
        )
        .extract_dataset();
        assert!(large.len() > small.len());
    }

    #[test]
    fn campaign_discovers_multiple_operators() {
        let w = World::generate(WorldConfig::tiny(44));
        let (topo, cfg) = campaign(&w);
        let ds = ArkCampaign::new(&w, &topo, cfg).extract_dataset();
        let mut ops = HashSet::new();
        for ip in &ds.interfaces {
            ops.insert(w.block_info(*ip).unwrap().op);
        }
        assert!(ops.len() > 10, "only {} operators discovered", ops.len());
    }

    #[test]
    fn monitors_span_countries() {
        let w = World::generate(WorldConfig::tiny(45));
        let topo = Topology::build(&w);
        let c = ArkCampaign::new(
            &w,
            &topo,
            ArkConfig {
                seed: 5,
                monitors: 12,
                traceroutes: Some(1),
            },
        );
        assert_eq!(c.monitor_count(), 12);
        let countries: HashSet<_> = c
            .monitors
            .iter()
            .map(|m| w.city(w.pop(m.pop).city).country)
            .collect();
        assert!(countries.len() >= 8, "monitors clustered: {countries:?}");
    }
}

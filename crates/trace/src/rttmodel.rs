//! The RTT model.
//!
//! The paper's RTT-proximity method depends on one physical invariant:
//! *measured RTT can never be lower than the propagation floor* implied by
//! the fibre distance (§2.3.2 — "a 0.5ms RTT between two locations maps to
//! a distance of at most 50 km — likely much less due to inflation in RTT
//! measurement"). The model therefore composes:
//!
//! * a **floor**: great-circle path distance at ≈ 2/3 c, round trip;
//! * **path inflation**: fibre does not follow geodesics; a per-flow
//!   multiplicative factor in `[1.2, 2.4]`;
//! * **per-hop processing/queueing jitter**: additive, exponential-ish tail;
//! * a **LAN/local constant** for the first metres out of the host.
//!
//! All randomness is drawn from a [SplitMix64] stream keyed by the flow, so
//! the same (campaign, src, dst) triple always measures the same RTTs.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

use routergeo_geo::distance::min_rtt_ms;

/// Deterministic 64-bit stream used for per-flow randomness.
///
/// SplitMix64 — tiny, fast, and good enough for simulation jitter. `rand`'s
/// `StdRng` would cost a ChaCha setup per flow; this is two multiplies.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the stream.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Exponential with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = self.next_f64().max(1e-12);
        -mean * u.ln()
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// Hash a flow identity into a seed (FNV-1a over the fields).
pub fn flow_seed(campaign_seed: u64, src: u32, dst: u32) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64 ^ campaign_seed;
    for b in src.to_be_bytes().into_iter().chain(dst.to_be_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// RTT model parameters.
#[derive(Debug, Clone)]
pub struct RttModel {
    /// Lower bound of the per-flow path-inflation factor.
    pub inflation_min: f64,
    /// Upper bound of the per-flow path-inflation factor.
    pub inflation_max: f64,
    /// Mean of the per-hop additive jitter (exponential), ms.
    pub hop_jitter_mean_ms: f64,
    /// Fixed local/LAN cost added to every hop's RTT, ms.
    pub local_cost_ms: f64,
}

impl Default for RttModel {
    fn default() -> Self {
        RttModel {
            inflation_min: 1.2,
            inflation_max: 2.4,
            hop_jitter_mean_ms: 0.16,
            local_cost_ms: 0.22,
        }
    }
}

impl RttModel {
    /// Draw the flow's path-inflation factor.
    pub fn draw_inflation(&self, rng: &mut SplitMix64) -> f64 {
        rng.uniform(self.inflation_min, self.inflation_max)
    }

    /// RTT in ms for a hop at cumulative path distance `path_km`, given
    /// the flow's inflation factor.
    ///
    /// Guaranteed `>= min_rtt_ms(path_km)`: the physical floor is never
    /// undercut.
    pub fn hop_rtt_ms(&self, path_km: f64, inflation: f64, rng: &mut SplitMix64) -> f64 {
        debug_assert!(inflation >= 1.0, "inflation must not beat physics");
        let floor = min_rtt_ms(path_km);
        floor * inflation + self.local_cost_ms + rng.exponential(self.hop_jitter_mean_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(100);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            let v = rng.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn exponential_is_positive_with_roughly_right_mean() {
        let mut rng = SplitMix64::new(2);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.exponential(0.5);
            assert!(v >= 0.0);
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn flow_seed_distinguishes_flows() {
        let a = flow_seed(1, 10, 20);
        let b = flow_seed(1, 10, 21);
        let c = flow_seed(2, 10, 20);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, flow_seed(1, 10, 20));
    }

    #[test]
    fn rtt_never_beats_physics() {
        let model = RttModel::default();
        let mut rng = SplitMix64::new(7);
        for km in [0.0, 1.0, 50.0, 500.0, 8000.0] {
            let inflation = model.draw_inflation(&mut rng);
            for _ in 0..100 {
                let rtt = model.hop_rtt_ms(km, inflation, &mut rng);
                assert!(
                    rtt >= min_rtt_ms(km),
                    "rtt {rtt} below floor {} at {km} km",
                    min_rtt_ms(km)
                );
            }
        }
    }

    #[test]
    fn same_city_hops_often_satisfy_half_ms() {
        // The RTT-proximity extraction needs intra-metro hops (≤ ~20 km)
        // to frequently measure under 0.5 ms.
        let model = RttModel::default();
        let mut rng = SplitMix64::new(11);
        let mut under = 0;
        let n = 2000;
        for _ in 0..n {
            let inflation = model.draw_inflation(&mut rng);
            let rtt = model.hop_rtt_ms(10.0, inflation, &mut rng);
            if rtt < 0.5 {
                under += 1;
            }
        }
        let frac = under as f64 / n as f64;
        assert!(frac > 0.25, "only {frac} of 10 km hops under 0.5 ms");
    }

    #[test]
    fn distant_hops_never_satisfy_half_ms() {
        // 60 km of path distance already needs ≥ 0.6 ms.
        let model = RttModel::default();
        let mut rng = SplitMix64::new(13);
        for _ in 0..1000 {
            let inflation = model.draw_inflation(&mut rng);
            let rtt = model.hop_rtt_ms(60.0, inflation, &mut rng);
            assert!(rtt > 0.5);
        }
    }
}

//! Atlas-style built-in measurements (§2.3.2).
//!
//! Every RIPE Atlas probe continuously traceroutes a set of well-known
//! targets (DNS root servers). The synthetic equivalent: a handful of
//! anycast services, each with instances at several global-transit PoPs;
//! every probe traces to its nearest instance of every service. The
//! resulting records — origin probe, target, intermediate hops, RTTs — are
//! what `routergeo-rtt` mines for 0.5 ms-proximity ground truth.
//!
//! Anycast routing trick: rather than running Dijkstra per probe
//! (thousands of sources), trees are computed per *instance* (dozens) and
//! paths reversed — the graph is undirected, so the shortest path is the
//! same in both directions.

use crate::engine::TraceEngine;
use crate::graph::{PathTree, Topology};
use crate::record::TracerouteRecord;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use routergeo_world::{OperatorKind, PopId, World};
use std::net::Ipv4Addr;

/// Built-in measurement configuration.
#[derive(Debug, Clone)]
pub struct AtlasConfig {
    /// Campaign seed.
    pub seed: u64,
    /// Number of anycast target services (13 root servers in reality).
    pub targets: usize,
    /// Anycast instances per service.
    pub instances_per_target: usize,
}

impl Default for AtlasConfig {
    fn default() -> Self {
        AtlasConfig {
            seed: 0xA71A5,
            targets: 13,
            instances_per_target: 8,
        }
    }
}

/// Prepared built-in measurement campaign.
pub struct AtlasBuiltins<'w> {
    engine: TraceEngine<'w>,
    /// Per target: service address plus its instances (PoP + tree).
    targets: Vec<ServiceTarget>,
}

struct ServiceTarget {
    addr: Ipv4Addr,
    instances: Vec<(PopId, PathTree)>,
}

impl<'w> AtlasBuiltins<'w> {
    /// Place anycast instances and precompute their path trees.
    pub fn new(world: &'w World, topo: &Topology, config: AtlasConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x0075);
        let global_pops: Vec<PopId> = world
            .pops
            .iter()
            .filter(|p| world.operator(p.op).kind == OperatorKind::GlobalTransit)
            .map(|p| p.id)
            .collect();
        let mut targets = Vec::with_capacity(config.targets);
        for t in 0..config.targets {
            let mut pool = global_pops.clone();
            pool.shuffle(&mut rng);
            let n = config.instances_per_target.min(pool.len()).max(1);
            let instances = pool
                .into_iter()
                .take(n)
                .map(|pop| (pop, topo.shortest_paths(pop)))
                .collect();
            targets.push(ServiceTarget {
                // Service addresses live outside the router plan
                // (100.64.0.0/10 is never allocated to operators).
                addr: Ipv4Addr::new(100, 64 + (t as u8 % 64), 0, 53),
                instances,
            });
        }
        AtlasBuiltins {
            engine: TraceEngine::new(world, config.seed),
            targets,
        }
    }

    /// Number of services configured.
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// Run the built-ins for every probe in the world: each probe traces
    /// to its nearest instance of every service. Records are returned in
    /// (probe, target) order.
    pub fn run(&self) -> Vec<TracerouteRecord> {
        let world = self.engine.world();
        let mut out = Vec::with_capacity(world.probes.len() * self.targets.len());
        for probe in &world.probes {
            // Probe host address: outside the router plan.
            let src_ip = Ipv4Addr::new(
                240,
                (probe.id.0 >> 16) as u8,
                (probe.id.0 >> 8) as u8,
                probe.id.0 as u8,
            );
            for target in &self.targets {
                // Nearest instance by path distance.
                let Some((_, tree)) = target
                    .instances
                    .iter()
                    .filter_map(|(_pop, tree)| tree.distance_km(probe.host_pop).map(|d| (d, tree)))
                    .min_by(|a, b| a.0.total_cmp(&b.0))
                else {
                    continue;
                };
                // Reverse the instance→probe path into probe→instance and
                // recompute cumulative distances from the probe side.
                let Some(path) = tree.path_to(probe.host_pop) else {
                    continue;
                };
                let total = path.last().map(|(_, d)| *d).unwrap_or(0.0);
                let reversed: Vec<(PopId, f32)> = path
                    .iter()
                    .rev()
                    .map(|(pop, cum)| (*pop, total - *cum))
                    .collect();
                let rec = self.engine.trace_along(
                    &reversed,
                    probe.true_coord,
                    probe.id.0,
                    src_ip,
                    target.addr,
                );
                out.push(rec);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routergeo_world::{World, WorldConfig};

    fn run_builtins(seed: u64) -> (World, Vec<TracerouteRecord>) {
        let w = World::generate(WorldConfig::tiny(seed));
        let topo = Topology::build(&w);
        let cfg = AtlasConfig {
            seed: 3,
            targets: 4,
            instances_per_target: 3,
        };
        let records = AtlasBuiltins::new(&w, &topo, cfg).run();
        (w, records)
    }

    #[test]
    fn every_probe_measures_every_target() {
        let (w, records) = run_builtins(51);
        assert_eq!(records.len(), w.probes.len() * 4);
        let probes: std::collections::HashSet<_> = records.iter().map(|r| r.origin_id).collect();
        assert_eq!(probes.len(), w.probes.len());
    }

    #[test]
    fn first_hops_are_near_the_probe() {
        // The property RTT-proximity extraction depends on: hops measured
        // under 0.5 ms are physically within 50 km of the probe.
        let (w, records) = run_builtins(52);
        let mut checked = 0;
        for rec in &records {
            let probe = &w.probes[rec.origin_id as usize];
            for hop in &rec.hops {
                let (Some(ip), Some(rtt)) = (hop.ip, hop.rtt_ms) else {
                    continue;
                };
                if rtt >= 0.5 || ip == rec.dst_ip {
                    continue;
                }
                // Private CPE gateways are not world interfaces.
                let Some(router) = w.router_of_ip(ip) else {
                    assert!(ip.is_private(), "non-interface public hop {ip}");
                    continue;
                };
                let d = probe.true_coord.distance_km(&router.coord);
                assert!(d <= 50.0, "hop {ip} at {d} km with rtt {rtt}");
                checked += 1;
            }
        }
        assert!(checked > 50, "too few sub-0.5ms hops: {checked}");
    }

    #[test]
    fn most_probes_have_multiple_local_hops() {
        // §2.3.2: >80% of RTT-proximity addresses are ≥2 hops from the
        // probe, i.e. the built-ins expose more than just the gateway.
        let (_, records) = run_builtins(53);
        let with_two = records
            .iter()
            .filter(|r| r.hops.iter().filter(|h| h.ip.is_some()).count() >= 2)
            .count();
        assert!(with_two * 10 > records.len() * 7);
    }

    #[test]
    fn target_addresses_are_not_world_interfaces() {
        let (w, records) = run_builtins(54);
        for rec in records.iter().take(100) {
            assert!(w.find_interface(rec.dst_ip).is_none());
        }
    }

    #[test]
    fn deterministic() {
        let (_, a) = run_builtins(55);
        let (_, b) = run_builtins(55);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
    }
}

//! Measurement records and RIPE-Atlas-shaped JSON.
//!
//! The paper consumes Atlas built-in measurements "provided in JSON format
//! that specify the measurement origin, target, intermediate hops and their
//! observed RTTs" (§2.3.2). This module defines the in-memory record and a
//! faithful-enough JSON mapping (`prb_id`, `src_addr`, `dst_addr`,
//! `result[].hop`, `result[].result[].from/rtt`, `"x": "*"` for timeouts)
//! so the downstream extraction code parses the same shape it would parse
//! from a real Atlas dump. Serialization is hand-rolled over
//! [`crate::json`] — the workspace builds without `serde`.

use crate::json::{self, Value};
use std::fmt;
use std::net::Ipv4Addr;

/// One traceroute hop. A hop that did not respond has neither address nor
/// RTT (rendered as `*` in classic traceroute output).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hop {
    /// 1-based hop index.
    pub hop: u8,
    /// Responding interface address, if any.
    pub ip: Option<Ipv4Addr>,
    /// Observed RTT in milliseconds, if the hop responded.
    pub rtt_ms: Option<f64>,
}

impl Hop {
    /// A responding hop.
    pub fn reply(hop: u8, ip: Ipv4Addr, rtt_ms: f64) -> Hop {
        Hop {
            hop,
            ip: Some(ip),
            rtt_ms: Some(rtt_ms),
        }
    }

    /// A timeout hop.
    pub fn timeout(hop: u8) -> Hop {
        Hop {
            hop,
            ip: None,
            rtt_ms: None,
        }
    }
}

/// A complete traceroute measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct TracerouteRecord {
    /// Measurement origin id (Ark monitor index or Atlas probe index).
    pub origin_id: u32,
    /// Source address of the measurement host.
    pub src_ip: Ipv4Addr,
    /// Destination address.
    pub dst_ip: Ipv4Addr,
    /// Hops in order.
    pub hops: Vec<Hop>,
    /// Whether the destination itself replied.
    pub reached: bool,
}

impl TracerouteRecord {
    /// Iterate the responding intermediate-hop addresses (excludes the
    /// destination's own reply) — exactly what Ark-style interface
    /// extraction wants.
    pub fn responding_intermediate_ips(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.hops
            .iter()
            .filter(move |h| h.ip != Some(self.dst_ip))
            .filter_map(|h| h.ip)
    }

    /// Serialize to Atlas-shaped JSON.
    pub fn to_atlas_json(&self) -> String {
        let mut out = String::with_capacity(96 + self.hops.len() * 48);
        out.push_str("{\"prb_id\":");
        out.push_str(&self.origin_id.to_string());
        out.push_str(",\"src_addr\":");
        json::write_escaped(&mut out, &self.src_ip.to_string());
        out.push_str(",\"dst_addr\":");
        json::write_escaped(&mut out, &self.dst_ip.to_string());
        out.push_str(",\"type\":\"traceroute\",\"result\":[");
        for (i, h) in self.hops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"hop\":");
            out.push_str(&h.hop.to_string());
            out.push_str(",\"result\":[{");
            match (h.ip, h.rtt_ms) {
                (Some(ip), rtt) => {
                    out.push_str("\"from\":");
                    json::write_escaped(&mut out, &ip.to_string());
                    if let Some(rtt) = rtt {
                        out.push_str(",\"rtt\":");
                        json::write_f64(&mut out, rtt);
                    }
                }
                (None, _) => out.push_str("\"x\":\"*\""),
            }
            out.push_str("}]}");
        }
        out.push_str("],\"destination_replied\":");
        out.push_str(if self.reached { "true" } else { "false" });
        out.push('}');
        out
    }

    /// Parse from Atlas-shaped JSON.
    pub fn from_atlas_json(s: &str) -> Result<TracerouteRecord, RecordParseError> {
        let doc = json::parse(s).map_err(|e| RecordParseError(e.to_string()))?;
        record_from_value(&doc)
    }
}

/// Error parsing an Atlas-shaped JSON record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordParseError(pub String);

impl fmt::Display for RecordParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad traceroute record: {}", self.0)
    }
}

impl std::error::Error for RecordParseError {}

// ---- Atlas JSON shape -------------------------------------------------------

fn record_from_value(doc: &Value) -> Result<TracerouteRecord, RecordParseError> {
    let kind = doc
        .get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| RecordParseError("missing measurement type".into()))?;
    if kind != "traceroute" {
        return Err(RecordParseError(format!(
            "unsupported measurement type {kind:?}"
        )));
    }
    let prb_id = doc
        .get("prb_id")
        .and_then(Value::as_u64)
        .and_then(|v| u32::try_from(v).ok())
        .ok_or_else(|| RecordParseError("missing or invalid prb_id".into()))?;
    let src_ip = parse_ip(doc.get("src_addr"), "src_addr")?;
    let dst_ip = parse_ip(doc.get("dst_addr"), "dst_addr")?;
    let result = doc
        .get("result")
        .and_then(Value::as_array)
        .ok_or_else(|| RecordParseError("missing result array".into()))?;

    let mut hops = Vec::with_capacity(result.len());
    for h in result {
        let hop_no = h
            .get("hop")
            .and_then(Value::as_u64)
            .and_then(|v| u8::try_from(v).ok())
            .ok_or_else(|| RecordParseError("missing or invalid hop number".into()))?;
        let replies = h
            .get("result")
            .and_then(Value::as_array)
            .ok_or_else(|| RecordParseError("hop without result array".into()))?;
        let reply = replies
            .first()
            .ok_or_else(|| RecordParseError("hop with no result entries".into()))?;
        let from = reply.get("from");
        let timeout = reply.get("x");
        match (from, timeout) {
            (Some(from), _) => {
                let ip = from
                    .as_str()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| RecordParseError(format!("bad address {from:?}")))?;
                let rtt = reply
                    .get("rtt")
                    .and_then(Value::as_f64)
                    .filter(|r| r.is_finite() && *r >= 0.0);
                hops.push(Hop {
                    hop: hop_no,
                    ip: Some(ip),
                    rtt_ms: rtt,
                });
            }
            (None, Some(_)) => hops.push(Hop::timeout(hop_no)),
            (None, None) => {
                return Err(RecordParseError("hop reply with neither from nor x".into()))
            }
        }
    }
    Ok(TracerouteRecord {
        origin_id: prb_id,
        src_ip,
        dst_ip,
        hops,
        reached: doc
            .get("destination_replied")
            .and_then(Value::as_bool)
            .unwrap_or(false),
    })
}

fn parse_ip(v: Option<&Value>, what: &str) -> Result<Ipv4Addr, RecordParseError> {
    let s = v
        .and_then(Value::as_str)
        .ok_or_else(|| RecordParseError(format!("missing {what}")))?;
    s.parse()
        .map_err(|_| RecordParseError(format!("bad address {s:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TracerouteRecord {
        TracerouteRecord {
            origin_id: 42,
            src_ip: "203.0.113.9".parse().unwrap(),
            dst_ip: "100.64.0.53".parse().unwrap(),
            hops: vec![
                Hop::reply(1, "10.0.0.1".parse().unwrap(), 0.42),
                Hop::timeout(2),
                Hop::reply(3, "6.0.0.1".parse().unwrap(), 12.7),
                Hop::reply(4, "100.64.0.53".parse().unwrap(), 13.2),
            ],
            reached: true,
        }
    }

    #[test]
    fn json_roundtrip() {
        let rec = sample();
        let json = rec.to_atlas_json();
        let back = TracerouteRecord::from_atlas_json(&json).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn json_shape_matches_atlas_conventions() {
        let json = sample().to_atlas_json();
        assert!(json.contains("\"prb_id\":42"));
        assert!(json.contains("\"type\":\"traceroute\""));
        assert!(json.contains("\"from\":\"10.0.0.1\""));
        assert!(json.contains("\"x\":\"*\""));
    }

    #[test]
    fn intermediate_extraction_skips_timeouts_and_destination() {
        let ips: Vec<_> = sample().responding_intermediate_ips().collect();
        assert_eq!(
            ips,
            vec![
                "10.0.0.1".parse::<Ipv4Addr>().unwrap(),
                "6.0.0.1".parse().unwrap()
            ]
        );
    }

    #[test]
    fn parse_rejects_junk() {
        assert!(TracerouteRecord::from_atlas_json("").is_err());
        assert!(TracerouteRecord::from_atlas_json("{}").is_err());
        assert!(TracerouteRecord::from_atlas_json("not json").is_err());
        // Wrong measurement type.
        let ping =
            r#"{"prb_id":1,"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","type":"ping","result":[]}"#;
        assert!(TracerouteRecord::from_atlas_json(ping).is_err());
        // Bad address.
        let bad =
            r#"{"prb_id":1,"src_addr":"zz","dst_addr":"2.2.2.2","type":"traceroute","result":[]}"#;
        assert!(TracerouteRecord::from_atlas_json(bad).is_err());
    }

    #[test]
    fn negative_rtt_is_dropped_not_propagated() {
        let j = r#"{"prb_id":1,"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","type":"traceroute",
                    "result":[{"hop":1,"result":[{"from":"3.3.3.3","rtt":-5.0}]}]}"#;
        let rec = TracerouteRecord::from_atlas_json(j).unwrap();
        assert_eq!(rec.hops[0].ip, Some("3.3.3.3".parse().unwrap()));
        assert_eq!(rec.hops[0].rtt_ms, None);
    }
}

//! Measurement records and RIPE-Atlas-shaped JSON.
//!
//! The paper consumes Atlas built-in measurements "provided in JSON format
//! that specify the measurement origin, target, intermediate hops and their
//! observed RTTs" (§2.3.2). This module defines the in-memory record and a
//! faithful-enough JSON mapping (`prb_id`, `src_addr`, `dst_addr`,
//! `result[].hop`, `result[].result[].from/rtt`, `"x": "*"` for timeouts)
//! so the downstream extraction code parses the same shape it would parse
//! from a real Atlas dump.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// One traceroute hop. A hop that did not respond has neither address nor
/// RTT (rendered as `*` in classic traceroute output).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hop {
    /// 1-based hop index.
    pub hop: u8,
    /// Responding interface address, if any.
    pub ip: Option<Ipv4Addr>,
    /// Observed RTT in milliseconds, if the hop responded.
    pub rtt_ms: Option<f64>,
}

impl Hop {
    /// A responding hop.
    pub fn reply(hop: u8, ip: Ipv4Addr, rtt_ms: f64) -> Hop {
        Hop {
            hop,
            ip: Some(ip),
            rtt_ms: Some(rtt_ms),
        }
    }

    /// A timeout hop.
    pub fn timeout(hop: u8) -> Hop {
        Hop {
            hop,
            ip: None,
            rtt_ms: None,
        }
    }
}

/// A complete traceroute measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct TracerouteRecord {
    /// Measurement origin id (Ark monitor index or Atlas probe index).
    pub origin_id: u32,
    /// Source address of the measurement host.
    pub src_ip: Ipv4Addr,
    /// Destination address.
    pub dst_ip: Ipv4Addr,
    /// Hops in order.
    pub hops: Vec<Hop>,
    /// Whether the destination itself replied.
    pub reached: bool,
}

impl TracerouteRecord {
    /// Iterate the responding intermediate-hop addresses (excludes the
    /// destination's own reply) — exactly what Ark-style interface
    /// extraction wants.
    pub fn responding_intermediate_ips(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.hops
            .iter()
            .filter(move |h| h.ip != Some(self.dst_ip))
            .filter_map(|h| h.ip)
    }

    /// Serialize to Atlas-shaped JSON.
    pub fn to_atlas_json(&self) -> String {
        serde_json::to_string(&AtlasTraceroute::from(self)).expect("record serializes")
    }

    /// Parse from Atlas-shaped JSON.
    pub fn from_atlas_json(s: &str) -> Result<TracerouteRecord, RecordParseError> {
        let raw: AtlasTraceroute =
            serde_json::from_str(s).map_err(|e| RecordParseError(e.to_string()))?;
        raw.try_into()
    }
}

/// Error parsing an Atlas-shaped JSON record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordParseError(pub String);

impl fmt::Display for RecordParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad traceroute record: {}", self.0)
    }
}

impl std::error::Error for RecordParseError {}

// ---- Atlas JSON shape -------------------------------------------------------

#[derive(Serialize, Deserialize)]
struct AtlasTraceroute {
    prb_id: u32,
    src_addr: String,
    dst_addr: String,
    #[serde(rename = "type")]
    kind: String,
    result: Vec<AtlasHop>,
    #[serde(skip_serializing_if = "Option::is_none")]
    destination_replied: Option<bool>,
}

#[derive(Serialize, Deserialize)]
struct AtlasHop {
    hop: u8,
    result: Vec<AtlasReply>,
}

#[derive(Serialize, Deserialize)]
struct AtlasReply {
    #[serde(skip_serializing_if = "Option::is_none")]
    from: Option<String>,
    #[serde(skip_serializing_if = "Option::is_none")]
    rtt: Option<f64>,
    /// `"*"` marker for timeouts, as in real Atlas dumps.
    #[serde(skip_serializing_if = "Option::is_none")]
    x: Option<String>,
}

impl From<&TracerouteRecord> for AtlasTraceroute {
    fn from(r: &TracerouteRecord) -> Self {
        AtlasTraceroute {
            prb_id: r.origin_id,
            src_addr: r.src_ip.to_string(),
            dst_addr: r.dst_ip.to_string(),
            kind: "traceroute".to_string(),
            result: r
                .hops
                .iter()
                .map(|h| AtlasHop {
                    hop: h.hop,
                    result: vec![match (h.ip, h.rtt_ms) {
                        (Some(ip), rtt) => AtlasReply {
                            from: Some(ip.to_string()),
                            rtt,
                            x: None,
                        },
                        (None, _) => AtlasReply {
                            from: None,
                            rtt: None,
                            x: Some("*".to_string()),
                        },
                    }],
                })
                .collect(),
            destination_replied: Some(r.reached),
        }
    }
}

impl TryFrom<AtlasTraceroute> for TracerouteRecord {
    type Error = RecordParseError;

    fn try_from(raw: AtlasTraceroute) -> Result<Self, Self::Error> {
        if raw.kind != "traceroute" {
            return Err(RecordParseError(format!(
                "unsupported measurement type {:?}",
                raw.kind
            )));
        }
        let parse_ip = |s: &str| -> Result<Ipv4Addr, RecordParseError> {
            s.parse()
                .map_err(|_| RecordParseError(format!("bad address {s:?}")))
        };
        let mut hops = Vec::with_capacity(raw.result.len());
        for h in &raw.result {
            let reply = h
                .result
                .first()
                .ok_or_else(|| RecordParseError("hop with no result entries".into()))?;
            match (&reply.from, &reply.x) {
                (Some(from), _) => {
                    let ip = parse_ip(from)?;
                    let rtt = reply.rtt.filter(|r| r.is_finite() && *r >= 0.0);
                    hops.push(Hop {
                        hop: h.hop,
                        ip: Some(ip),
                        rtt_ms: rtt,
                    });
                }
                (None, Some(_)) => hops.push(Hop::timeout(h.hop)),
                (None, None) => {
                    return Err(RecordParseError("hop reply with neither from nor x".into()))
                }
            }
        }
        Ok(TracerouteRecord {
            origin_id: raw.prb_id,
            src_ip: parse_ip(&raw.src_addr)?,
            dst_ip: parse_ip(&raw.dst_addr)?,
            hops,
            reached: raw.destination_replied.unwrap_or(false),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TracerouteRecord {
        TracerouteRecord {
            origin_id: 42,
            src_ip: "203.0.113.9".parse().unwrap(),
            dst_ip: "100.64.0.53".parse().unwrap(),
            hops: vec![
                Hop::reply(1, "10.0.0.1".parse().unwrap(), 0.42),
                Hop::timeout(2),
                Hop::reply(3, "6.0.0.1".parse().unwrap(), 12.7),
                Hop::reply(4, "100.64.0.53".parse().unwrap(), 13.2),
            ],
            reached: true,
        }
    }

    #[test]
    fn json_roundtrip() {
        let rec = sample();
        let json = rec.to_atlas_json();
        let back = TracerouteRecord::from_atlas_json(&json).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn json_shape_matches_atlas_conventions() {
        let json = sample().to_atlas_json();
        assert!(json.contains("\"prb_id\":42"));
        assert!(json.contains("\"type\":\"traceroute\""));
        assert!(json.contains("\"from\":\"10.0.0.1\""));
        assert!(json.contains("\"x\":\"*\""));
    }

    #[test]
    fn intermediate_extraction_skips_timeouts_and_destination() {
        let ips: Vec<_> = sample().responding_intermediate_ips().collect();
        assert_eq!(
            ips,
            vec![
                "10.0.0.1".parse::<Ipv4Addr>().unwrap(),
                "6.0.0.1".parse().unwrap()
            ]
        );
    }

    #[test]
    fn parse_rejects_junk() {
        assert!(TracerouteRecord::from_atlas_json("").is_err());
        assert!(TracerouteRecord::from_atlas_json("{}").is_err());
        assert!(TracerouteRecord::from_atlas_json("not json").is_err());
        // Wrong measurement type.
        let ping = r#"{"prb_id":1,"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","type":"ping","result":[]}"#;
        assert!(TracerouteRecord::from_atlas_json(ping).is_err());
        // Bad address.
        let bad = r#"{"prb_id":1,"src_addr":"zz","dst_addr":"2.2.2.2","type":"traceroute","result":[]}"#;
        assert!(TracerouteRecord::from_atlas_json(bad).is_err());
    }

    #[test]
    fn negative_rtt_is_dropped_not_propagated() {
        let j = r#"{"prb_id":1,"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","type":"traceroute",
                    "result":[{"hop":1,"result":[{"from":"3.3.3.3","rtt":-5.0}]}]}"#;
        let rec = TracerouteRecord::from_atlas_json(j).unwrap();
        assert_eq!(rec.hops[0].ip, Some("3.3.3.3".parse().unwrap()));
        assert_eq!(rec.hops[0].rtt_ms, None);
    }
}

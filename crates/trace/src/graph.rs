//! PoP-level topology graph and shortest paths.
//!
//! Nodes are the world's PoPs; edges model:
//!
//! 1. **Stub uplinks** — each stub PoP connects to up to 3 transit PoPs in
//!    its own city, falling back to the nearest transit PoP in the same
//!    country, then to the nearest global-transit PoP anywhere. Every stub
//!    has at least one uplink.
//! 2. **Metro peering** — transit PoPs in the same city form a full mesh
//!    (the IX), with small intra-metro distances.
//! 3. **Operator backbone** — each transit PoP connects to its operator's
//!    3 nearest other PoPs and to the operator's HQ PoP.
//! 4. **International uplinks** — each domestic-transit HQ PoP connects to
//!    the 2 nearest global-transit PoPs, guaranteeing every country an exit.
//!
//! Edge weights are great-circle distances between the PoP cities (plus a
//! small intra-metro constant), so Dijkstra yields geographically sensible
//! routes and, through the RTT model, physically consistent delays.

use routergeo_world::{AsId, CityId, OperatorKind, PopId, World};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// Distance used for hops within one metro area, km.
const INTRA_METRO_KM: f32 = 5.0;
/// Maximum stub uplinks into the local metro mesh.
const STUB_UPLINKS: usize = 3;
/// Backbone neighbours per transit PoP.
const BACKBONE_NEIGHBOURS: usize = 3;
/// International uplinks per domestic HQ PoP.
const INTL_UPLINKS: usize = 2;

/// The PoP-level topology graph.
pub struct Topology {
    adj: Vec<Vec<(u32, f32)>>,
    edge_count: usize,
}

impl Topology {
    /// Build the graph from a world. Deterministic (no RNG involved).
    pub fn build(world: &World) -> Topology {
        let n = world.pops.len();
        let mut adj: Vec<Vec<(u32, f32)>> = vec![Vec::new(); n];
        let mut edge_count = 0usize;

        // Index transit PoPs by city and collect global transit PoPs.
        let mut transit_by_city: HashMap<CityId, Vec<PopId>> = HashMap::new();
        let mut transit_by_country: HashMap<_, Vec<PopId>> = HashMap::new();
        let mut global_pops: Vec<PopId> = Vec::new();
        let mut by_operator: HashMap<AsId, Vec<PopId>> = HashMap::new();
        for pop in &world.pops {
            let op = world.operator(pop.op);
            match op.kind {
                OperatorKind::GlobalTransit | OperatorKind::DomesticTransit => {
                    transit_by_city.entry(pop.city).or_default().push(pop.id);
                    let country = world.city(pop.city).country;
                    transit_by_country.entry(country).or_default().push(pop.id);
                    by_operator.entry(pop.op).or_default().push(pop.id);
                    if op.kind == OperatorKind::GlobalTransit {
                        global_pops.push(pop.id);
                    }
                }
                OperatorKind::Stub => {}
            }
        }

        let mut add_edge = |adj: &mut Vec<Vec<(u32, f32)>>, a: PopId, b: PopId, km: f32| {
            if a == b {
                return;
            }
            let (ai, bi) = (a.index(), b.index());
            if adj[ai].iter().any(|(n, _)| *n == b.0) {
                return;
            }
            adj[ai].push((b.0, km));
            adj[bi].push((a.0, km));
            edge_count += 1;
        };

        // 2. Metro peering mesh.
        for pops in transit_by_city.values() {
            for (i, a) in pops.iter().enumerate() {
                for b in &pops[i + 1..] {
                    add_edge(&mut adj, *a, *b, INTRA_METRO_KM);
                }
            }
        }

        // 3. Operator backbone.
        for pops in by_operator.values() {
            for a in pops {
                let a_city = world.pop(*a).city;
                let a_coord = world.city(a_city).coord;
                let mut others: Vec<(f32, PopId)> = pops
                    .iter()
                    .filter(|b| **b != *a)
                    .map(|b| {
                        let c = world.city(world.pop(*b).city).coord;
                        (a_coord.distance_km(&c) as f32, *b)
                    })
                    .collect();
                others.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap_or(Ordering::Equal));
                for (km, b) in others.into_iter().take(BACKBONE_NEIGHBOURS) {
                    add_edge(&mut adj, *a, b, km.max(INTRA_METRO_KM));
                }
            }
            // HQ spoke: connect every PoP to the first PoP (the HQ city is
            // always first in the presence list).
            if let Some((hq, rest)) = pops.split_first() {
                let hq_coord = world.city(world.pop(*hq).city).coord;
                for b in rest {
                    let c = world.city(world.pop(*b).city).coord;
                    let km = (hq_coord.distance_km(&c) as f32).max(INTRA_METRO_KM);
                    add_edge(&mut adj, *hq, *b, km);
                }
            }
        }

        // 4. International uplinks for domestic transits' HQ PoPs.
        for pop in &world.pops {
            if world.operator(pop.op).kind != OperatorKind::DomesticTransit {
                continue;
            }
            // Only the operator's first PoP (HQ).
            if by_operator[&pop.op][0] != pop.id {
                continue;
            }
            let coord = world.city(pop.city).coord;
            let mut globals: Vec<(f32, PopId)> = global_pops
                .iter()
                .map(|g| {
                    let c = world.city(world.pop(*g).city).coord;
                    (coord.distance_km(&c) as f32, *g)
                })
                .collect();
            globals.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap_or(Ordering::Equal));
            for (km, g) in globals.into_iter().take(INTL_UPLINKS) {
                add_edge(&mut adj, pop.id, g, km.max(INTRA_METRO_KM));
            }
        }

        // 1. Stub uplinks (after the meshes exist so fallbacks can search).
        for pop in &world.pops {
            if world.operator(pop.op).kind != OperatorKind::Stub {
                continue;
            }
            let city = pop.city;
            let country = world.city(city).country;
            let coord = world.city(city).coord;
            let locals = transit_by_city.get(&city);
            if let Some(locals) = locals.filter(|l| !l.is_empty()) {
                for t in locals.iter().take(STUB_UPLINKS) {
                    add_edge(&mut adj, pop.id, *t, INTRA_METRO_KM);
                }
                continue;
            }
            // Fallback: nearest transit PoP in country, then any global.
            let pool = transit_by_country
                .get(&country)
                .filter(|l| !l.is_empty())
                .unwrap_or(&global_pops);
            if let Some((km, best)) = pool
                .iter()
                .map(|t| {
                    let c = world.city(world.pop(*t).city).coord;
                    (coord.distance_km(&c) as f32, *t)
                })
                .min_by(|x, y| x.0.partial_cmp(&y.0).unwrap_or(Ordering::Equal))
            {
                add_edge(&mut adj, pop.id, best, km.max(INTRA_METRO_KM));
            }
        }

        Topology { adj, edge_count }
    }

    /// Number of nodes (== PoPs).
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Neighbours of a PoP.
    pub fn neighbours(&self, pop: PopId) -> &[(u32, f32)] {
        &self.adj[pop.index()]
    }

    /// Single-source shortest paths (Dijkstra) from `src`.
    pub fn shortest_paths(&self, src: PopId) -> PathTree {
        const UNREACHED: u32 = u32::MAX;
        let n = self.adj.len();
        let mut dist = vec![f32::INFINITY; n];
        let mut prev = vec![UNREACHED; n];
        let mut heap: BinaryHeap<HeapItem> = BinaryHeap::new();
        dist[src.index()] = 0.0;
        prev[src.index()] = src.0;
        heap.push(HeapItem {
            dist: 0.0,
            node: src.0,
        });
        while let Some(HeapItem { dist: d, node }) = heap.pop() {
            if d > dist[node as usize] {
                continue;
            }
            for &(next, w) in &self.adj[node as usize] {
                let nd = d + w;
                if nd < dist[next as usize] {
                    dist[next as usize] = nd;
                    prev[next as usize] = node;
                    heap.push(HeapItem {
                        dist: nd,
                        node: next,
                    });
                }
            }
        }
        PathTree { src, dist, prev }
    }
}

#[derive(PartialEq)]
struct HeapItem {
    dist: f32,
    node: u32,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Shortest-path tree from one source PoP.
pub struct PathTree {
    src: PopId,
    dist: Vec<f32>,
    prev: Vec<u32>,
}

impl PathTree {
    /// The source PoP.
    pub fn source(&self) -> PopId {
        self.src
    }

    /// Path distance in km to `dst`, `None` if unreachable.
    pub fn distance_km(&self, dst: PopId) -> Option<f32> {
        let d = self.dist[dst.index()];
        d.is_finite().then_some(d)
    }

    /// Cumulative distance of every node on the path to `dst` — used by
    /// the RTT model. `None` if unreachable.
    pub fn path_to(&self, dst: PopId) -> Option<Vec<(PopId, f32)>> {
        if !self.dist[dst.index()].is_finite() {
            return None;
        }
        let mut rev = Vec::new();
        let mut cur = dst.0;
        loop {
            rev.push((PopId(cur), self.dist[cur as usize]));
            if cur == self.src.0 {
                break;
            }
            let p = self.prev[cur as usize];
            debug_assert_ne!(p, u32::MAX, "reachable node must have a predecessor");
            cur = p;
        }
        rev.reverse();
        Some(rev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routergeo_world::{World, WorldConfig};

    fn world() -> World {
        World::generate(WorldConfig::tiny(21))
    }

    #[test]
    fn graph_is_fully_connected_from_a_stub() {
        let w = world();
        let topo = Topology::build(&w);
        assert_eq!(topo.node_count(), w.pops.len());
        // From any stub PoP, the vast majority of PoPs must be reachable.
        let stub = w
            .pops
            .iter()
            .find(|p| w.operator(p.op).kind == OperatorKind::Stub)
            .expect("some stub");
        let tree = topo.shortest_paths(stub.id);
        let reachable = (0..w.pops.len())
            .filter(|i| tree.distance_km(PopId(*i as u32)).is_some())
            .count();
        assert_eq!(reachable, w.pops.len(), "world must be connected");
    }

    #[test]
    fn every_stub_has_an_uplink() {
        let w = world();
        let topo = Topology::build(&w);
        for pop in &w.pops {
            if w.operator(pop.op).kind == OperatorKind::Stub {
                assert!(
                    !topo.neighbours(pop.id).is_empty(),
                    "stub PoP {} has no uplink",
                    pop.id
                );
            }
        }
    }

    #[test]
    fn paths_start_at_source_and_end_at_destination() {
        let w = world();
        let topo = Topology::build(&w);
        let src = w.pops[0].id;
        let tree = topo.shortest_paths(src);
        let dst = w.pops[w.pops.len() - 1].id;
        let path = tree.path_to(dst).expect("reachable");
        assert_eq!(path.first().unwrap().0, src);
        assert_eq!(path.last().unwrap().0, dst);
        // Cumulative distances are nondecreasing.
        for pair in path.windows(2) {
            assert!(pair[0].1 <= pair[1].1 + 1e-3);
        }
    }

    #[test]
    fn distances_respect_triangle_vs_direct_geo() {
        // Path distance can never undercut the great-circle distance
        // between the endpoint cities.
        let w = world();
        let topo = Topology::build(&w);
        let src = w.pops[3].id;
        let tree = topo.shortest_paths(src);
        let src_coord = w.city(w.pop(src).city).coord;
        for pop in w.pops.iter().step_by(17) {
            if let Some(d) = tree.distance_km(pop.id) {
                let geo = src_coord.distance_km(&w.city(pop.city).coord) as f32;
                assert!(
                    d + 60.0 >= geo,
                    "path {d} km shorter than geodesic {geo} km"
                );
            }
        }
    }

    #[test]
    fn path_to_self_is_single_node() {
        let w = world();
        let topo = Topology::build(&w);
        let src = w.pops[0].id;
        let tree = topo.shortest_paths(src);
        let path = tree.path_to(src).unwrap();
        assert_eq!(path.len(), 1);
        assert_eq!(tree.distance_km(src), Some(0.0));
    }
}

//! The traceroute engine: PoP paths → hop-by-hop measurements.
//!
//! Given a PoP-level path (from [`crate::graph`]), the engine selects the
//! ingress router and interface at every PoP (per-flow deterministic, so a
//! campaign's flows spread load across a PoP's routers the way real ECMP
//! does), assigns RTTs from the [`crate::rttmodel`], and injects loss —
//! both individual non-responding hops and early path abort, mirroring the
//! fault injection the smoltcp examples make standard practice.

use crate::graph::PathTree;
use crate::record::{Hop, TracerouteRecord};
use crate::rttmodel::{flow_seed, RttModel, SplitMix64};
use routergeo_geo::Coordinate;
use routergeo_world::{PopId, World};
use std::net::Ipv4Addr;

/// Traceroute engine over one world.
pub struct TraceEngine<'w> {
    world: &'w World,
    /// RTT model parameters.
    pub model: RttModel,
    /// Probability that an individual hop does not respond.
    pub hop_loss: f64,
    /// Probability per hop that the remainder of the path is lost
    /// (filtered ICMP, rate limiting, routing anomaly).
    pub abort_prob: f64,
    /// Probability the destination itself answers when the path completes.
    pub dst_reply_prob: f64,
    /// Probability the source's first hop is a NAT/CPE gateway answering
    /// from private address space (invisible to interface extraction) —
    /// most Atlas probes sit behind home routers.
    pub private_first_hop: f64,
    campaign_seed: u64,
}

impl<'w> TraceEngine<'w> {
    /// Engine with default fault rates.
    pub fn new(world: &'w World, campaign_seed: u64) -> Self {
        TraceEngine {
            world,
            model: RttModel::default(),
            hop_loss: 0.04,
            abort_prob: 0.01,
            dst_reply_prob: 0.85,
            private_first_hop: 0.55,
            campaign_seed,
        }
    }

    /// The world this engine traces over.
    pub fn world(&self) -> &'w World {
        self.world
    }

    /// Trace from the source of `tree` to `dst_ip` whose /24 is deployed at
    /// `dst_pop`. Returns `None` when the destination PoP is unreachable in
    /// the topology graph.
    #[allow(clippy::too_many_arguments)]
    pub fn trace(
        &self,
        tree: &PathTree,
        src_coord: Coordinate,
        origin_id: u32,
        src_ip: Ipv4Addr,
        dst_pop: PopId,
        dst_ip: Ipv4Addr,
    ) -> Option<TracerouteRecord> {
        let path = tree.path_to(dst_pop)?;
        Some(self.trace_along(&path, src_coord, origin_id, src_ip, dst_ip))
    }

    /// Trace along an explicit PoP path with cumulative distances from the
    /// source. Used directly when the path was computed from the far end
    /// (anycast target trees) and reversed.
    pub fn trace_along(
        &self,
        path: &[(PopId, f32)],
        src_coord: Coordinate,
        origin_id: u32,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
    ) -> TracerouteRecord {
        let mut rng = SplitMix64::new(flow_seed(
            self.campaign_seed,
            u32::from(src_ip),
            u32::from(dst_ip),
        ));
        let inflation = self.model.draw_inflation(&mut rng);
        let mut hops: Vec<Hop> = Vec::with_capacity(path.len() + 2);
        let mut hop_no = 1u8;
        let mut aborted = false;

        for (i, (pop_id, cum_km)) in path.iter().enumerate() {
            // Within the source PoP, emit the gateway router and (sometimes)
            // one more local router; other PoPs contribute their ingress.
            let local_hops = if i == 0 {
                1 + usize::from(rng.chance(0.5))
            } else {
                1
            };
            for k in 0..local_hops {
                if rng.chance(self.abort_prob) {
                    aborted = true;
                    break;
                }
                // A measurement host has exactly one gateway: the first
                // hop is sticky per source address, not per flow — and for
                // many hosts it is a private-space CPE.
                if i == 0 && k == 0 {
                    let h = flow_seed(self.campaign_seed, u32::from(src_ip), 0xC9E);
                    if (h % 10_000) as f64 / 10_000.0 < self.private_first_hop {
                        let gw = Ipv4Addr::new(192, 168, (h >> 16) as u8, 1);
                        let rtt = self.model.hop_rtt_ms(0.0, inflation, &mut rng);
                        hops.push(Hop::reply(hop_no, gw, rtt));
                        hop_no = hop_no.saturating_add(1);
                        continue;
                    }
                }
                let sticky = (i == 0 && k == 0)
                    .then(|| flow_seed(self.campaign_seed, u32::from(src_ip), 0x6A7E));
                let hop = self.emit_hop(
                    *pop_id,
                    k as u64,
                    *cum_km as f64,
                    inflation,
                    src_coord,
                    sticky,
                    &mut rng,
                    hop_no,
                );
                hops.push(hop);
                hop_no = hop_no.saturating_add(1);
            }
            if aborted {
                break;
            }
        }

        let reached = !aborted && rng.chance(self.dst_reply_prob);
        if reached {
            let total_km = path.last().map(|(_, d)| *d as f64).unwrap_or(0.0);
            let rtt = self.model.hop_rtt_ms(total_km, inflation, &mut rng);
            hops.push(Hop::reply(hop_no, dst_ip, rtt));
        }

        TracerouteRecord {
            origin_id,
            src_ip,
            dst_ip,
            hops,
            reached,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_hop(
        &self,
        pop_id: PopId,
        salt: u64,
        cum_km: f64,
        inflation: f64,
        src_coord: Coordinate,
        sticky: Option<u64>,
        rng: &mut SplitMix64,
        hop_no: u8,
    ) -> Hop {
        if rng.chance(self.hop_loss) {
            return Hop::timeout(hop_no);
        }
        let pop = self.world.pop(pop_id);
        let n_routers = pop.router_count() as u64;
        debug_assert!(n_routers > 0, "PoP without routers");
        let pick = match sticky {
            // Keep the rng stream in step either way.
            Some(s) => {
                let _ = rng.next_u64();
                s
            }
            None => rng.next_u64(),
        }
        .wrapping_add(salt.wrapping_mul(0x9E37_79B9));
        let router_id = pop.routers.start + (pick % n_routers) as u32;
        let router = &self.world.routers[router_id as usize];
        let n_if = router.interface_count() as u64;
        let if_idx = router.interfaces.start + ((pick >> 32) % n_if) as u32;
        let ip = self.world.interfaces[if_idx as usize].ip;

        // The physical floor is the direct distance from the measurement
        // source to the actual router; the path distance drives the
        // inflated component. Never undercuts physics w.r.t. true
        // locations — the invariant RTT-proximity extraction relies on.
        let direct_km = src_coord.distance_km(&router.coord);
        let eff_km = cum_km.max(direct_km);
        let rtt = self.model.hop_rtt_ms(eff_km, inflation, rng);
        Hop::reply(hop_no, ip, rtt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Topology;
    use routergeo_geo::distance::min_rtt_ms;
    use routergeo_world::{World, WorldConfig};

    fn setup() -> (World, Topology) {
        let w = World::generate(WorldConfig::tiny(31));
        let t = Topology::build(&w);
        (w, t)
    }

    #[test]
    fn trace_is_deterministic_per_flow() {
        let (w, topo) = setup();
        let engine = TraceEngine::new(&w, 7);
        let src = w.pops[0].id;
        let tree = topo.shortest_paths(src);
        let src_coord = w.city(w.pop(src).city).coord;
        let dst_pop = w.pops[w.pops.len() / 2].id;
        let dst_ip: Ipv4Addr = "198.51.100.7".parse().unwrap();
        let a = engine
            .trace(
                &tree,
                src_coord,
                0,
                "203.0.113.1".parse().unwrap(),
                dst_pop,
                dst_ip,
            )
            .unwrap();
        let b = engine
            .trace(
                &tree,
                src_coord,
                0,
                "203.0.113.1".parse().unwrap(),
                dst_pop,
                dst_ip,
            )
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn hop_rtts_are_monotone_modulo_jitter() {
        let (w, topo) = setup();
        let mut engine = TraceEngine::new(&w, 9);
        engine.hop_loss = 0.0;
        engine.abort_prob = 0.0;
        let src = w.pops[1].id;
        let tree = topo.shortest_paths(src);
        let src_coord = w.city(w.pop(src).city).coord;
        let dst_pop = w.pops[w.pops.len() - 1].id;
        let rec = engine
            .trace(
                &tree,
                src_coord,
                0,
                "203.0.113.2".parse().unwrap(),
                dst_pop,
                "198.51.100.9".parse().unwrap(),
            )
            .unwrap();
        assert!(rec.hops.len() >= 2);
        // RTTs broadly increase along the path (allow 1 ms of jitter slack).
        let rtts: Vec<f64> = rec.hops.iter().filter_map(|h| h.rtt_ms).collect();
        for pair in rtts.windows(2) {
            assert!(pair[1] + 1.0 >= pair[0], "rtts {rtts:?}");
        }
    }

    #[test]
    fn hop_rtt_never_beats_distance_to_true_router_location() {
        let (w, topo) = setup();
        let mut engine = TraceEngine::new(&w, 11);
        engine.hop_loss = 0.0;
        engine.abort_prob = 0.0;
        for (si, di) in [(0usize, 5usize), (2, 9), (4, 20)] {
            let src = w.pops[si % w.pops.len()].id;
            let tree = topo.shortest_paths(src);
            let src_coord = w.city(w.pop(src).city).coord;
            let dst_pop = w.pops[di % w.pops.len()].id;
            let rec = engine
                .trace(
                    &tree,
                    src_coord,
                    0,
                    "203.0.113.3".parse().unwrap(),
                    dst_pop,
                    "198.51.100.1".parse().unwrap(),
                )
                .unwrap();
            for hop in &rec.hops {
                let (Some(ip), Some(rtt)) = (hop.ip, hop.rtt_ms) else {
                    continue;
                };
                if ip == rec.dst_ip {
                    continue;
                }
                let router = w.router_of_ip(ip).expect("hop is an interface");
                let direct = src_coord.distance_km(&router.coord);
                assert!(
                    rtt >= min_rtt_ms(direct),
                    "hop {ip} rtt {rtt} beats physics for {direct} km"
                );
            }
        }
    }

    #[test]
    fn loss_produces_timeout_hops() {
        let (w, topo) = setup();
        let mut engine = TraceEngine::new(&w, 13);
        engine.hop_loss = 0.9;
        engine.abort_prob = 0.0;
        let src = w.pops[0].id;
        let tree = topo.shortest_paths(src);
        let src_coord = w.city(w.pop(src).city).coord;
        let dst_pop = w.pops[w.pops.len() / 3].id;
        let rec = engine
            .trace(
                &tree,
                src_coord,
                0,
                "203.0.113.4".parse().unwrap(),
                dst_pop,
                "198.51.100.2".parse().unwrap(),
            )
            .unwrap();
        assert!(
            rec.hops.iter().any(|h| h.ip.is_none()),
            "expected timeouts at 90% loss"
        );
    }

    #[test]
    fn emitted_interfaces_belong_to_path_pops() {
        let (w, topo) = setup();
        let mut engine = TraceEngine::new(&w, 17);
        engine.hop_loss = 0.0;
        engine.abort_prob = 0.0;
        engine.dst_reply_prob = 0.0;
        let src = w.pops[2].id;
        let tree = topo.shortest_paths(src);
        let src_coord = w.city(w.pop(src).city).coord;
        let dst_pop = w.pops[w.pops.len() - 2].id;
        let path: Vec<PopId> = tree
            .path_to(dst_pop)
            .unwrap()
            .into_iter()
            .map(|(p, _)| p)
            .collect();
        let rec = engine
            .trace(
                &tree,
                src_coord,
                0,
                "203.0.113.5".parse().unwrap(),
                dst_pop,
                "198.51.100.3".parse().unwrap(),
            )
            .unwrap();
        for hop in &rec.hops {
            if let Some(ip) = hop.ip {
                let router = w.router_of_ip(ip).expect("interface");
                assert!(path.contains(&router.pop), "hop outside path");
            }
        }
    }
}

//! Minimal JSON reader/writer for Atlas-shaped records.
//!
//! The workspace builds offline without `serde`, so the trace crate
//! carries its own tiny JSON layer: a recursive-descent parser into
//! [`Value`] (objects keep key order), and string/number escapers for the
//! writer side. Numbers are stored as `f64`, which is exact for every
//! integer the Atlas shape uses (probe ids, hop counts) and round-trips
//! RTT values through Rust's shortest-representation float formatting.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Field of an object, if this is an object containing `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric payload as `u64`, if this is a non-negative integer that
    /// fits losslessly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // xtask-allow: RG004 integrality test: fract() returns exactly 0.0 for whole numbers
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Error from [`parse`]: a message and the byte offset it refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: &'static str,
    /// Byte offset in the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: u32 = 128;

/// Parse one JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            message,
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: u32) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: u32) -> Result<Value, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: u32) -> Result<Value, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let c = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling: a high surrogate must
                            // be followed by `\u` and a low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ if c < 0x20 => return Err(self.err("control character in string")),
                _ => {
                    // Re-decode UTF-8 from the source; the input is a &str
                    // so multibyte sequences are valid by construction.
                    let start = self.pos - 1;
                    let width = utf8_width(c);
                    self.pos = (start + width).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Value::Num(n))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Append `s` to `out` as a JSON string literal (with quotes).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite `f64` to `out` using Rust's shortest round-trip
/// formatting (always a valid JSON number for finite inputs).
pub fn write_f64(out: &mut String, n: f64) {
    debug_assert!(n.is_finite(), "JSON numbers must be finite");
    let _ = write!(out, "{n}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,{"b":null}],"c":"x\ny","d":true}"#).unwrap();
        assert_eq!(v.get("d").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x\ny"));
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].get("b"), Some(&Value::Null));
    }

    #[test]
    fn rejects_junk() {
        for junk in [
            "", "not json", "{", "[1,", "{\"a\":}", "01x", "\"\\q\"", "{}{}",
        ] {
            assert!(parse(junk).is_err(), "accepted {junk:?}");
        }
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("A\u{1F600}"));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for x in [0.42, 13.2, 1e-9, 123456.789012345, 0.1 + 0.2] {
            let mut s = String::new();
            write_f64(&mut s, x);
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back, x);
        }
    }

    #[test]
    fn escaping_roundtrips() {
        let original = "line1\nline2\t\"quoted\" \\ end\u{0001}";
        let mut s = String::new();
        write_escaped(&mut s, original);
        assert_eq!(parse(&s).unwrap().as_str(), Some(original));
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }
}

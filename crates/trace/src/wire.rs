//! Warts-lite: a compact binary stream format for traceroute records.
//!
//! CAIDA distributes Ark traceroutes in the binary *warts* format; a week
//! of the topology dataset is far too large for JSON. This module is the
//! synthetic counterpart: a length-prefixed, checksummed record stream
//! that an Ark campaign can be spooled into and replayed from.
//!
//! Layout (integers little-endian):
//!
//! ```text
//! stream  = magic b"RTW1" , record*
//! record  = len u16 (bytes after this field, including the checksum)
//!           , origin_id u32 , src_ip [4] , dst_ip [4]
//!           , flags u8 (bit0 = reached)
//!           , hop_count u8
//!           , hop*      (hop = index u8, hflags u8 (bit0 ip, bit1 rtt),
//!                        [ip 4], [rtt_us u32 — RTT in microseconds])
//!           , checksum u32 (FNV-1a32 over the record body)
//! ```
//!
//! RTTs are stored as microseconds in `u32` (saturating at ~71 minutes),
//! which preserves every digit the RTT model produces at a quarter of the
//! size of an `f64`.

use crate::record::{Hop, TracerouteRecord};
use std::fmt;
use std::net::Ipv4Addr;

const MAGIC: &[u8; 4] = b"RTW1";

/// Errors reading a warts-lite stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Stream does not start with the magic bytes.
    BadMagic,
    /// Stream ended inside a record.
    Truncated,
    /// Record checksum mismatch.
    ChecksumMismatch {
        /// Index of the broken record in the stream.
        record: usize,
    },
    /// Structurally invalid record contents.
    Corrupt {
        /// Index of the broken record.
        record: usize,
        /// What was wrong.
        what: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => f.write_str("not a warts-lite stream (bad magic)"),
            WireError::Truncated => f.write_str("warts-lite stream truncated"),
            WireError::ChecksumMismatch { record } => {
                write!(f, "warts-lite record {record} checksum mismatch")
            }
            WireError::Corrupt { record, what } => {
                write!(f, "warts-lite record {record} corrupt: {what}")
            }
        }
    }
}

impl std::error::Error for WireError {}

fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h = 0x811C_9DC5u32;
    for b in bytes {
        h ^= *b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Incremental writer over any byte sink.
pub struct WartsWriter<W: std::io::Write> {
    sink: W,
    records: usize,
}

impl<W: std::io::Write> WartsWriter<W> {
    /// Start a stream: writes the magic immediately.
    pub fn new(mut sink: W) -> std::io::Result<Self> {
        sink.write_all(MAGIC)?;
        Ok(WartsWriter { sink, records: 0 })
    }

    /// Append one record.
    pub fn write(&mut self, rec: &TracerouteRecord) -> std::io::Result<()> {
        let mut body = Vec::with_capacity(16 + rec.hops.len() * 10);
        body.extend_from_slice(&rec.origin_id.to_le_bytes());
        body.extend_from_slice(&rec.src_ip.octets());
        body.extend_from_slice(&rec.dst_ip.octets());
        body.push(u8::from(rec.reached));
        let hop_count = rec.hops.len().min(255);
        body.push(hop_count as u8);
        for hop in rec.hops.iter().take(hop_count) {
            body.push(hop.hop);
            let mut flags = 0u8;
            if hop.ip.is_some() {
                flags |= 1;
            }
            if hop.rtt_ms.is_some() {
                flags |= 2;
            }
            body.push(flags);
            if let Some(ip) = hop.ip {
                body.extend_from_slice(&ip.octets());
            }
            if let Some(rtt) = hop.rtt_ms {
                let us = (rtt * 1000.0).round().clamp(0.0, u32::MAX as f64) as u32;
                body.extend_from_slice(&us.to_le_bytes());
            }
        }
        let checksum = fnv1a32(&body);
        let len = (body.len() + 4) as u16;
        self.sink.write_all(&len.to_le_bytes())?;
        self.sink.write_all(&body)?;
        self.sink.write_all(&checksum.to_le_bytes())?;
        self.records += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Flush and return the sink.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Serialize a batch of records into a fresh buffer.
pub fn write_all(records: &[TracerouteRecord]) -> Vec<u8> {
    let mut w = WartsWriter::new(Vec::new()).expect("vec sink");
    for r in records {
        w.write(r).expect("vec sink");
    }
    w.finish().expect("vec sink")
}

/// Streaming reader over an in-memory warts-lite buffer.
pub struct WartsReader<'a> {
    buf: &'a [u8],
    at: usize,
    record_idx: usize,
}

impl<'a> WartsReader<'a> {
    /// Validate the magic and position at the first record.
    pub fn new(buf: &'a [u8]) -> Result<Self, WireError> {
        if buf.len() < 4 {
            return Err(WireError::Truncated);
        }
        if &buf[..4] != MAGIC {
            return Err(WireError::BadMagic);
        }
        Ok(WartsReader {
            buf,
            at: 4,
            record_idx: 0,
        })
    }

    fn read_record(&mut self) -> Result<TracerouteRecord, WireError> {
        let idx = self.record_idx;
        let take = |at: &mut usize, n: usize, buf: &[u8]| -> Result<usize, WireError> {
            let start = *at;
            let end = start.checked_add(n).ok_or(WireError::Truncated)?;
            if end > buf.len() {
                return Err(WireError::Truncated);
            }
            *at = end;
            Ok(start)
        };

        let s = take(&mut self.at, 2, self.buf)?;
        let len = u16::from_le_bytes([self.buf[s], self.buf[s + 1]]) as usize;
        if len < 4 + 14 - 14 + 4 {
            // At minimum the checksum must fit.
            return Err(WireError::Corrupt {
                record: idx,
                what: "record too short",
            });
        }
        let s = take(&mut self.at, len, self.buf)?;
        let body = &self.buf[s..s + len - 4];
        let stored = u32::from_le_bytes(
            self.buf[s + len - 4..s + len]
                .try_into()
                .expect("4 bytes sliced"),
        );
        if fnv1a32(body) != stored {
            return Err(WireError::ChecksumMismatch { record: idx });
        }

        // Decode the body.
        let mut at = 0usize;
        let need = |at: &mut usize, n: usize| -> Result<usize, WireError> {
            let start = *at;
            if start + n > body.len() {
                return Err(WireError::Corrupt {
                    record: idx,
                    what: "body truncated",
                });
            }
            *at = start + n;
            Ok(start)
        };
        let p = need(&mut at, 4)?;
        let origin_id = u32::from_le_bytes(body[p..p + 4].try_into().expect("4"));
        let p = need(&mut at, 4)?;
        let src_ip = Ipv4Addr::new(body[p], body[p + 1], body[p + 2], body[p + 3]);
        let p = need(&mut at, 4)?;
        let dst_ip = Ipv4Addr::new(body[p], body[p + 1], body[p + 2], body[p + 3]);
        let p = need(&mut at, 1)?;
        let reached = match body[p] {
            0 => false,
            1 => true,
            _ => {
                return Err(WireError::Corrupt {
                    record: idx,
                    what: "flags",
                })
            }
        };
        let p = need(&mut at, 1)?;
        let hop_count = body[p] as usize;
        let mut hops = Vec::with_capacity(hop_count);
        for _ in 0..hop_count {
            let p = need(&mut at, 2)?;
            let hop_no = body[p];
            let flags = body[p + 1];
            if flags & !3 != 0 {
                return Err(WireError::Corrupt {
                    record: idx,
                    what: "hop flags",
                });
            }
            let ip = if flags & 1 != 0 {
                let p = need(&mut at, 4)?;
                Some(Ipv4Addr::new(
                    body[p],
                    body[p + 1],
                    body[p + 2],
                    body[p + 3],
                ))
            } else {
                None
            };
            let rtt_ms = if flags & 2 != 0 {
                let p = need(&mut at, 4)?;
                let us = u32::from_le_bytes(body[p..p + 4].try_into().expect("4"));
                Some(us as f64 / 1000.0)
            } else {
                None
            };
            hops.push(Hop {
                hop: hop_no,
                ip,
                rtt_ms,
            });
        }
        if at != body.len() {
            return Err(WireError::Corrupt {
                record: idx,
                what: "trailing bytes",
            });
        }
        self.record_idx += 1;
        Ok(TracerouteRecord {
            origin_id,
            src_ip,
            dst_ip,
            hops,
            reached,
        })
    }
}

impl<'a> Iterator for WartsReader<'a> {
    type Item = Result<TracerouteRecord, WireError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.at >= self.buf.len() {
            return None;
        }
        match self.read_record() {
            Ok(rec) => Some(Ok(rec)),
            Err(e) => {
                // Poison: stop after the first error.
                self.at = self.buf.len();
                Some(Err(e))
            }
        }
    }
}

/// Parse an entire buffer, failing on the first broken record.
pub fn read_all(buf: &[u8]) -> Result<Vec<TracerouteRecord>, WireError> {
    WartsReader::new(buf)?.collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<TracerouteRecord> {
        (0..n)
            .map(|i| TracerouteRecord {
                origin_id: i as u32,
                src_ip: Ipv4Addr::new(203, 0, 113, i as u8),
                dst_ip: Ipv4Addr::new(198, 51, 100, (i * 3) as u8),
                hops: vec![
                    Hop::reply(1, Ipv4Addr::new(10, 0, 0, 1), 0.42 + i as f64),
                    Hop::timeout(2),
                    Hop {
                        hop: 3,
                        ip: Some(Ipv4Addr::new(6, 0, 0, 9)),
                        rtt_ms: None,
                    },
                ],
                reached: i % 2 == 0,
            })
            .collect()
    }

    #[test]
    fn roundtrip() {
        let records = sample(25);
        let buf = write_all(&records);
        let back = read_all(&buf).unwrap();
        assert_eq!(back.len(), records.len());
        for (a, b) in records.iter().zip(back.iter()) {
            assert_eq!(a.origin_id, b.origin_id);
            assert_eq!(a.src_ip, b.src_ip);
            assert_eq!(a.dst_ip, b.dst_ip);
            assert_eq!(a.reached, b.reached);
            assert_eq!(a.hops.len(), b.hops.len());
            for (x, y) in a.hops.iter().zip(b.hops.iter()) {
                assert_eq!(x.hop, y.hop);
                assert_eq!(x.ip, y.ip);
                match (x.rtt_ms, y.rtt_ms) {
                    (Some(p), Some(q)) => assert!((p - q).abs() < 0.001),
                    (None, None) => {}
                    other => panic!("rtt mismatch {other:?}"),
                }
            }
        }
    }

    #[test]
    fn empty_stream() {
        let buf = write_all(&[]);
        assert_eq!(buf, MAGIC);
        assert!(read_all(&buf).unwrap().is_empty());
    }

    #[test]
    fn detects_bad_magic_and_truncation() {
        assert_eq!(read_all(b"XXXX"), Err(WireError::BadMagic));
        assert_eq!(read_all(b"RT"), Err(WireError::Truncated));
        let buf = write_all(&sample(3));
        for cut in [5, buf.len() - 1] {
            assert!(read_all(&buf[..cut]).is_err(), "cut {cut} accepted");
        }
    }

    #[test]
    fn detects_bit_flips() {
        let buf = write_all(&sample(3));
        // Flip one byte in each record region; the checksum must catch
        // body flips, and structural validation the rest.
        for pos in [6usize, 12, 20, buf.len() - 2] {
            let mut broken = buf.clone();
            broken[pos] ^= 0x40;
            assert!(read_all(&broken).is_err(), "flip at {pos} accepted");
        }
    }

    #[test]
    fn streaming_iterator_stops_at_first_error() {
        let mut buf = write_all(&sample(4));
        // Corrupt the second record's checksum area.
        let n = buf.len();
        buf[n / 2] ^= 0xFF;
        let items: Vec<_> = WartsReader::new(&buf).unwrap().collect();
        assert!(items.iter().any(|r| r.is_err()));
        // Nothing after the error.
        let err_pos = items.iter().position(|r| r.is_err()).unwrap();
        assert_eq!(err_pos, items.len() - 1);
    }

    #[test]
    fn compact_compared_to_json() {
        let records = sample(100);
        let wire = write_all(&records);
        let json: usize = records.iter().map(|r| r.to_atlas_json().len()).sum();
        assert!(
            wire.len() * 3 < json,
            "wire {} not much smaller than JSON {}",
            wire.len(),
            json
        );
    }

    #[test]
    fn rtt_microsecond_precision() {
        let rec = TracerouteRecord {
            origin_id: 1,
            src_ip: Ipv4Addr::new(1, 1, 1, 1),
            dst_ip: Ipv4Addr::new(2, 2, 2, 2),
            hops: vec![Hop::reply(1, Ipv4Addr::new(3, 3, 3, 3), 0.123456)],
            reached: true,
        };
        let back = read_all(&write_all(&[rec])).unwrap();
        let rtt = back[0].hops[0].rtt_ms.unwrap();
        assert!((rtt - 0.123).abs() < 0.001, "got {rtt}");
    }
}

//! Traceroute simulation over the synthetic world.
//!
//! Substitutes for the two measurement platforms the paper consumes:
//!
//! * **CAIDA Ark** (§2.1): [`ark`] runs a campaign of traceroutes from a
//!   set of monitors toward random addresses in routed /24s and extracts
//!   the set of router interface addresses seen on paths — the
//!   *Ark-topo-router* dataset.
//! * **RIPE Atlas built-in measurements** (§2.3.2): [`atlas`] has every
//!   probe traceroute a set of root-server-like anycast targets; the
//!   records carry per-hop RTTs that `routergeo-rtt` mines for
//!   0.5 ms-proximity ground truth.
//!
//! The machinery underneath:
//!
//! * [`graph`] — a PoP-level topology graph (stub uplinks, metro peering
//!   meshes, operator backbones, international uplinks) with Dijkstra
//!   shortest paths.
//! * [`rttmodel`] — a physically grounded RTT model: great-circle
//!   propagation at ≈ 2/3 c as the floor, multiplied by per-flow path
//!   inflation, plus per-hop queueing jitter. Measurements can only
//!   inflate the floor, never beat it — the invariant the paper's 0.5 ms
//!   threshold relies on.
//! * [`engine`] — turns a PoP path into a hop-by-hop traceroute with
//!   ingress-interface selection and loss.
//! * [`record`] — measurement records plus RIPE-Atlas-shaped JSON
//!   import/export.
//! * [`wire`] — *warts-lite*, a compact checksummed binary stream format
//!   for spooling campaigns to disk (CAIDA ships Ark data as binary warts
//!   for the same reason).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ark;
pub mod atlas;
pub mod engine;
pub mod graph;
pub mod json;
pub mod record;
pub mod rttmodel;
pub mod wire;

pub use ark::{ArkCampaign, ArkConfig, ArkDataset};
pub use atlas::{AtlasBuiltins, AtlasConfig};
pub use engine::TraceEngine;
pub use graph::{PathTree, Topology};
pub use record::{Hop, TracerouteRecord};
pub use rttmodel::RttModel;
pub use wire::{WartsReader, WartsWriter, WireError};

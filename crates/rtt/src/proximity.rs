//! Candidate extraction: hops within the RTT threshold of their probe.

use routergeo_trace::TracerouteRecord;
use routergeo_world::{ProbeId, World};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Extraction and QA thresholds. Defaults are the paper's.
#[derive(Debug, Clone)]
pub struct ProximityConfig {
    /// RTT threshold in ms (paper: 0.5 ms ⇒ ≤ 50 km).
    pub threshold_ms: f64,
    /// Radius around a country's default coordinates that marks a probe as
    /// centroid-registered (paper: 5 km).
    pub centroid_radius_km: f64,
    /// Maximum distance between two RTT-nearby probes (paper: 100 km —
    /// twice the 50 km bound).
    pub nearby_max_km: f64,
    /// Disagreements beyond this are "prominent" and trigger probe
    /// disqualification (the paper tolerates small disagreements under
    /// 128 km and removes the prominent ones).
    pub prominent_km: f64,
}

impl Default for ProximityConfig {
    fn default() -> Self {
        ProximityConfig {
            threshold_ms: 0.5,
            centroid_radius_km: 5.0,
            nearby_max_km: 100.0,
            prominent_km: 128.0,
        }
    }
}

impl ProximityConfig {
    /// Whether a hop RTT qualifies as proximate: **strictly below** the
    /// threshold. The paper (§2.3.2) keeps hops whose RTT is *less
    /// than* 0.5 ms — the threshold maps to the ≤ 50 km speed-of-light
    /// bound, and a hop at exactly 0.5 ms is already at the boundary of
    /// that bound, so it is excluded. This predicate is the single
    /// place the comparison lives; see DESIGN.md §9 for the rationale.
    pub fn within_threshold(&self, rtt_ms: f64) -> bool {
        rtt_ms < self.threshold_ms
    }
}

/// Candidate interface addresses with the probes that observed them under
/// the threshold, and the minimum RTT seen per (address, probe).
#[derive(Debug, Clone, Default)]
pub struct CandidateSet {
    /// address → (probe, min RTT ms) pairs, probe-unique.
    pub by_ip: HashMap<Ipv4Addr, Vec<(ProbeId, f64)>>,
}

impl CandidateSet {
    /// Number of candidate addresses.
    pub fn len(&self) -> usize {
        self.by_ip.len()
    }

    /// Whether no candidates were extracted.
    pub fn is_empty(&self) -> bool {
        self.by_ip.is_empty()
    }

    /// All probes that contributed at least one candidate.
    pub fn contributing_probes(&self) -> Vec<ProbeId> {
        let mut set: Vec<ProbeId> = self
            .by_ip
            .values()
            .flat_map(|v| v.iter().map(|(p, _)| *p))
            .collect();
        set.sort();
        set.dedup();
        set
    }
}

/// Extract candidates from built-in measurement records.
///
/// A hop qualifies when it responded, its RTT is strictly under the
/// threshold ([`ProximityConfig::within_threshold`]), it is a real
/// router interface of the world (destination service addresses and
/// endpoint hosts are not), and it is not the record's destination.
pub fn extract_candidates(
    world: &World,
    records: &[TracerouteRecord],
    config: &ProximityConfig,
) -> CandidateSet {
    let mut by_ip: HashMap<Ipv4Addr, Vec<(ProbeId, f64)>> = HashMap::new();
    for rec in records {
        let probe = ProbeId(rec.origin_id);
        debug_assert!(
            (probe.index()) < world.probes.len(),
            "record from unknown probe"
        );
        for hop in &rec.hops {
            let (Some(ip), Some(rtt)) = (hop.ip, hop.rtt_ms) else {
                continue;
            };
            if !config.within_threshold(rtt) || ip == rec.dst_ip {
                continue;
            }
            if world.find_interface(ip).is_none() {
                continue;
            }
            let entry = by_ip.entry(ip).or_default();
            match entry.iter_mut().find(|(p, _)| *p == probe) {
                Some((_, best)) => *best = best.min(rtt),
                None => entry.push((probe, rtt)),
            }
        }
    }
    CandidateSet { by_ip }
}

#[cfg(test)]
mod tests {
    use super::*;
    use routergeo_trace::{AtlasBuiltins, AtlasConfig, Topology};
    use routergeo_world::{World, WorldConfig};

    fn candidates(seed: u64) -> (World, CandidateSet) {
        let w = World::generate(WorldConfig::tiny(seed));
        let topo = Topology::build(&w);
        let records = AtlasBuiltins::new(
            &w,
            &topo,
            AtlasConfig {
                seed: 1,
                targets: 4,
                instances_per_target: 3,
            },
        )
        .run();
        let set = extract_candidates(&w, &records, &ProximityConfig::default());
        (w, set)
    }

    #[test]
    fn candidates_are_close_to_their_probes() {
        let (w, set) = candidates(101);
        assert!(!set.is_empty());
        for (ip, probes) in &set.by_ip {
            let router = w.router_of_ip(*ip).expect("interface");
            for (probe, rtt) in probes {
                assert!(*rtt < 0.5);
                let p = &w.probes[probe.index()];
                let d = p.true_coord.distance_km(&router.coord);
                assert!(d <= 50.0, "{ip} at {d} km from probe {probe}");
            }
        }
    }

    #[test]
    fn several_interfaces_per_probe_on_average() {
        // The paper finds ~3.5 qualifying interfaces per probe
        // (4,960 addresses / 1,387 probes).
        let (w, set) = candidates(102);
        let probes = set.contributing_probes().len();
        assert!(probes > 0);
        let ratio = set.len() as f64 / probes as f64;
        assert!(
            (1.0..=12.0).contains(&ratio),
            "ratio {ratio} ({} addrs / {probes} probes)",
            set.len()
        );
        assert!(probes as f64 > w.probes.len() as f64 * 0.5);
    }

    #[test]
    fn higher_threshold_extracts_more() {
        let (w, _) = candidates(103);
        let topo = Topology::build(&w);
        let records = AtlasBuiltins::new(
            &w,
            &topo,
            AtlasConfig {
                seed: 1,
                targets: 4,
                instances_per_target: 3,
            },
        )
        .run();
        let half = extract_candidates(&w, &records, &ProximityConfig::default());
        let one = extract_candidates(
            &w,
            &records,
            &ProximityConfig {
                threshold_ms: 1.0,
                ..Default::default()
            },
        );
        assert!(one.len() >= half.len());
        // Everything under 0.5 is also under 1.0.
        for ip in half.by_ip.keys() {
            assert!(one.by_ip.contains_key(ip));
        }
    }

    #[test]
    fn threshold_boundary_is_exclusive() {
        let config = ProximityConfig::default();
        // A hop at exactly the 0.5 ms threshold does NOT qualify: the
        // threshold maps to the ≤ 50 km bound and the boundary value is
        // already outside it. Strictly-below values do.
        assert!(!config.within_threshold(0.5));
        assert!(config.within_threshold(0.4999999));
        assert!(config.within_threshold(0.0));
        assert!(!config.within_threshold(0.5000001));
        // NaN RTTs never qualify.
        assert!(!config.within_threshold(f64::NAN));
    }

    #[test]
    fn min_rtt_is_kept_per_probe() {
        let (_, set) = candidates(104);
        for probes in set.by_ip.values() {
            let unique: std::collections::HashSet<_> = probes.iter().map(|(p, _)| *p).collect();
            assert_eq!(unique.len(), probes.len(), "duplicate probe entries");
        }
    }
}

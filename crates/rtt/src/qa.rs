//! Probe disqualification and dataset assembly (§3.2).

use crate::dataset::{RttEntry, RttProximityDataset};
use crate::proximity::{extract_candidates, CandidateSet, ProximityConfig};
use routergeo_geo::country::lookup;
use routergeo_trace::TracerouteRecord;
use routergeo_world::{ProbeId, World};
use std::collections::{HashMap, HashSet};

/// Counters describing what QA did — the §3.2 narrative numbers.
#[derive(Debug, Clone, Default)]
pub struct QaReport {
    /// Candidate addresses before any QA.
    pub candidates_before: usize,
    /// Probes contributing candidates.
    pub probes_total: usize,
    /// Probes found within the centroid radius of their country's default
    /// coordinates.
    pub centroid_probes: Vec<ProbeId>,
    /// Addresses removed because all their probes were centroid-flagged.
    pub removed_by_centroid: usize,
    /// Addresses that had an RTT-nearby group of ≥ 2 probes.
    pub nearby_groups: usize,
    /// Of those, addresses whose group had any pair beyond the nearby
    /// maximum distance.
    pub inconsistent_groups: usize,
    /// Probes that are part of at least one nearby group.
    pub probes_in_groups: usize,
    /// Probes disqualified by the consistency vote.
    pub disqualified_probes: Vec<ProbeId>,
    /// Addresses removed with the disqualified probes.
    pub removed_by_consistency: usize,
    /// Final dataset size.
    pub final_size: usize,
}

/// Run extraction and both QA passes; return the dataset plus the report.
pub fn build_dataset(
    world: &World,
    records: &[TracerouteRecord],
    config: &ProximityConfig,
) -> (RttProximityDataset, QaReport) {
    let candidates = extract_candidates(world, records, config);
    build_from_candidates(world, candidates, config)
}

/// QA + assembly from an already-extracted candidate set.
pub fn build_from_candidates(
    world: &World,
    mut candidates: CandidateSet,
    config: &ProximityConfig,
) -> (RttProximityDataset, QaReport) {
    let mut report = QaReport {
        candidates_before: candidates.len(),
        probes_total: candidates.contributing_probes().len(),
        ..Default::default()
    };

    // ---- Pass 1: default-centroid probes (§3.2 first method) ----------
    let mut centroid_flagged: HashSet<ProbeId> = HashSet::new();
    for probe_id in candidates.contributing_probes() {
        let probe = &world.probes[probe_id.index()];
        let Some(info) = lookup(probe.registered_country) else {
            continue;
        };
        let d = probe.registered_coord.distance_km(&info.centroid());
        if d <= config.centroid_radius_km {
            centroid_flagged.insert(probe_id);
        }
    }
    let before = candidates.len();
    candidates.by_ip.retain(|_, probes| {
        probes.retain(|(p, _)| !centroid_flagged.contains(p));
        !probes.is_empty()
    });
    report.removed_by_centroid = before - candidates.len();
    report.centroid_probes = {
        let mut v: Vec<_> = centroid_flagged.into_iter().collect();
        v.sort();
        v
    };

    // ---- Pass 2: RTT-nearby consistency (§3.2 second method) ----------
    // For each address observed by ≥2 probes, all pairs must be within
    // `nearby_max_km` of each other (registered locations). Prominent
    // violations vote against the probe that disagrees with the most
    // peers.
    let mut conflicts: HashMap<ProbeId, HashSet<ProbeId>> = HashMap::new();
    let mut agreements: HashMap<ProbeId, usize> = HashMap::new();
    let mut probes_in_groups: HashSet<ProbeId> = HashSet::new();
    for probes in candidates.by_ip.values() {
        if probes.len() < 2 {
            continue;
        }
        report.nearby_groups += 1;
        let mut group_inconsistent = false;
        for i in 0..probes.len() {
            probes_in_groups.insert(probes[i].0);
            for j in i + 1..probes.len() {
                let a = &world.probes[probes[i].0.index()];
                let b = &world.probes[probes[j].0.index()];
                let d = a.registered_coord.distance_km(&b.registered_coord);
                if d > config.nearby_max_km {
                    group_inconsistent = true;
                    if d > config.prominent_km {
                        conflicts
                            .entry(probes[i].0)
                            .or_default()
                            .insert(probes[j].0);
                        conflicts
                            .entry(probes[j].0)
                            .or_default()
                            .insert(probes[i].0);
                    }
                } else {
                    *agreements.entry(probes[i].0).or_default() += 1;
                    *agreements.entry(probes[j].0).or_default() += 1;
                }
            }
        }
        if group_inconsistent {
            report.inconsistent_groups += 1;
        }
    }
    report.probes_in_groups = probes_in_groups.len();

    // Vote: a probe is disqualified when it prominently conflicts with
    // more probes than it agrees with.
    let mut disqualified: Vec<ProbeId> = conflicts
        .iter()
        .filter(|(p, confl)| confl.len() > agreements.get(*p).copied().unwrap_or(0))
        .map(|(p, _)| *p)
        .collect();
    // A conflict pair where neither side wins the vote: drop the side with
    // more conflicts (tie → both, conservatively).
    if disqualified.is_empty() && !conflicts.is_empty() {
        let max = conflicts.values().map(|c| c.len()).max().unwrap_or(0);
        disqualified = conflicts
            .iter()
            .filter(|(_, c)| c.len() == max)
            .map(|(p, _)| *p)
            .collect();
    }
    disqualified.sort();
    let disq_set: HashSet<ProbeId> = disqualified.iter().copied().collect();

    let before = candidates.len();
    candidates.by_ip.retain(|_, probes| {
        probes.retain(|(p, _)| !disq_set.contains(p));
        !probes.is_empty()
    });
    report.removed_by_consistency = before - candidates.len();
    report.disqualified_probes = disqualified;

    // ---- Assemble ------------------------------------------------------
    let mut entries: Vec<RttEntry> = candidates
        .by_ip
        .iter()
        .map(|(ip, probes)| {
            let (best_probe, min_rtt) = probes
                .iter()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .copied()
                .expect("non-empty after retain");
            let p = &world.probes[best_probe.index()];
            RttEntry {
                ip: *ip,
                coord: p.registered_coord,
                country: p.registered_country,
                probe: best_probe,
                min_rtt_ms: min_rtt,
                probe_count: probes.len(),
            }
        })
        .collect();
    entries.sort_by_key(|e| e.ip);
    report.final_size = entries.len();
    (RttProximityDataset { entries }, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use routergeo_trace::{AtlasBuiltins, AtlasConfig, Topology};
    use routergeo_world::probes::ProbeLocationQuality;
    use routergeo_world::{World, WorldConfig};

    fn dataset(seed: u64) -> (World, RttProximityDataset, QaReport) {
        let w = World::generate(WorldConfig::small(seed));
        let topo = Topology::build(&w);
        let records = AtlasBuiltins::new(
            &w,
            &topo,
            AtlasConfig {
                seed: 2,
                targets: 6,
                instances_per_target: 4,
            },
        )
        .run();
        let (ds, report) = build_dataset(&w, &records, &ProximityConfig::default());
        (w, ds, report)
    }

    #[test]
    fn qa_flags_default_centroid_probes() {
        let (w, _, report) = dataset(111);
        // Every flagged probe must actually sit near its country centroid.
        for p in &report.centroid_probes {
            let probe = &w.probes[p.index()];
            let c = lookup(probe.registered_country).unwrap().centroid();
            assert!(probe.registered_coord.distance_km(&c) <= 5.0);
        }
        // And the world's DefaultCentroid probes that contributed
        // candidates must be among them.
        let flagged: HashSet<_> = report.centroid_probes.iter().collect();
        for probe in &w.probes {
            if probe.quality == ProbeLocationQuality::DefaultCentroid {
                let contributed =
                    report.centroid_probes.contains(&probe.id) || !flagged.contains(&probe.id);
                assert!(contributed); // flagged or never contributed
            }
        }
    }

    #[test]
    fn final_dataset_has_no_centroid_probes() {
        let (w, ds, _) = dataset(112);
        for e in &ds.entries {
            let probe = &w.probes[e.probe.index()];
            let c = lookup(probe.registered_country).unwrap().centroid();
            assert!(probe.registered_coord.distance_km(&c) > 5.0);
        }
    }

    #[test]
    fn dataset_locations_are_mostly_correct() {
        // After QA, the registered location credited to an address should
        // be within ~60 km of the router's true location for the vast
        // majority of entries (QA removes the worst offenders; a residual
        // tail of small-group moved probes may survive, as in the paper).
        let (w, ds, _) = dataset(113);
        assert!(ds.len() > 100, "dataset too small: {}", ds.len());
        let mut bad = 0;
        for e in &ds.entries {
            let router = w.router_of_ip(e.ip).expect("interface");
            if e.coord.distance_km(&router.coord) > 60.0 {
                bad += 1;
            }
        }
        let frac = bad as f64 / ds.len() as f64;
        assert!(frac < 0.05, "{bad}/{} bad entries", ds.len());
    }

    #[test]
    fn report_counters_are_consistent() {
        let (_, ds, report) = dataset(114);
        assert_eq!(report.final_size, ds.len());
        assert_eq!(
            report.candidates_before,
            ds.len() + report.removed_by_centroid + report.removed_by_consistency
        );
        assert!(report.nearby_groups >= report.inconsistent_groups);
    }

    #[test]
    fn disqualified_probe_fraction_is_small() {
        // §3.2: 19/1387 centroid probes, 5/223 consistency — QA should
        // remove few probes, not gut the population.
        let (_, _, report) = dataset(115);
        assert!(report.probes_total > 100);
        let removed = report.centroid_probes.len() + report.disqualified_probes.len();
        assert!(
            (removed as f64) < report.probes_total as f64 * 0.12,
            "{removed}/{} probes removed",
            report.probes_total
        );
    }

    #[test]
    fn moved_probes_cause_inconsistencies_that_qa_catches() {
        // Construct a candidate set by hand: one address seen by one
        // honest probe and one moved probe far away.
        // Probe populations are random; scan seeds until one contains a
        // probe that moved far enough for a prominent inconsistency.
        let w = (116..140)
            .map(|seed| World::generate(WorldConfig::small(seed)))
            .find(|w| {
                w.probes.iter().any(|p| {
                    p.quality == ProbeLocationQuality::Moved && p.registration_error_km() > 200.0
                })
            })
            .expect("some seed yields a far-moved probe");
        let honest = w
            .probes
            .iter()
            .find(|p| p.quality == ProbeLocationQuality::Accurate)
            .unwrap();
        let moved = w
            .probes
            .iter()
            .find(|p| p.quality == ProbeLocationQuality::Moved && p.registration_error_km() > 200.0)
            .expect("a far-moved probe");
        let ip = w.interfaces[0].ip;
        let mut set = CandidateSet::default();
        set.by_ip
            .insert(ip, vec![(honest.id, 0.3), (moved.id, 0.4)]);
        // Give the honest probe an agreeing partner on another address so
        // the vote favours it.
        let honest2 = w.probes.iter().find(|p| {
            p.quality == ProbeLocationQuality::Accurate
                && p.id != honest.id
                && p.registered_coord.distance_km(&honest.registered_coord) < 100.0
        });
        if let Some(h2) = honest2 {
            set.by_ip
                .insert(w.interfaces[1].ip, vec![(honest.id, 0.2), (h2.id, 0.3)]);
        }
        let (_, report) = build_from_candidates(&w, set, &ProximityConfig::default());
        assert!(report.inconsistent_groups >= 1);
        assert!(
            report.disqualified_probes.contains(&moved.id),
            "moved probe not disqualified: {report:?}"
        );
    }
}

//! Constraint-based geolocation (CBG) — the delay-based alternative the
//! paper's introduction points researchers to when databases fall short
//! (Gueye et al., "Constraint-based Geolocation of Internet Hosts").
//!
//! Every landmark that measured an RTT to the target constrains the target
//! to a disk: radius = the distance light can travel in fibre in half the
//! RTT. The target lies in the intersection of all disks; the estimator
//! returns a point in (or nearest to) that intersection together with the
//! tightest constraint radius as a confidence measure.
//!
//! The implementation is measurement-agnostic: feed it any
//! `(landmark, rtt)` pairs — here they come from the Atlas-style built-in
//! traceroutes, turning the probe fleet into a landmark network.

use routergeo_geo::distance::destination;
use routergeo_geo::{rtt_to_max_distance_km, Coordinate};
use routergeo_trace::TracerouteRecord;
use routergeo_world::World;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// One distance constraint: the target is within `radius_km` of `at`.
#[derive(Debug, Clone, Copy)]
pub struct Constraint {
    /// Landmark position.
    pub at: Coordinate,
    /// Maximum distance implied by the measured RTT.
    pub radius_km: f64,
}

impl Constraint {
    /// Build from a landmark position and a measured RTT.
    pub fn from_rtt(at: Coordinate, rtt_ms: f64) -> Constraint {
        Constraint {
            at,
            radius_km: rtt_to_max_distance_km(rtt_ms),
        }
    }

    /// Signed violation of the constraint at `p` (≤ 0 when satisfied).
    fn violation(&self, p: &Coordinate) -> f64 {
        self.at.distance_km(p) - self.radius_km
    }
}

/// A CBG position estimate.
#[derive(Debug, Clone, Copy)]
pub struct CbgEstimate {
    /// Estimated position.
    pub coord: Coordinate,
    /// Tightest constraint radius — an upper bound on the error when the
    /// constraints are consistent.
    pub confidence_km: f64,
    /// Total constraint violation at the estimate (0 when the constraint
    /// region is non-empty and the estimate is inside it).
    pub residual_km: f64,
    /// Number of constraints used.
    pub landmarks: usize,
}

/// Estimate a position from distance constraints.
///
/// Strategy: start from the centre of the tightest constraint, then refine
/// with a shrinking pattern search minimizing the total violation (which
/// is 0 anywhere inside the feasible intersection). Returns `None` when no
/// constraints are given.
pub fn estimate(constraints: &[Constraint]) -> Option<CbgEstimate> {
    if constraints.is_empty() {
        return None;
    }
    let tightest = constraints
        .iter()
        .min_by(|a, b| a.radius_km.total_cmp(&b.radius_km))
        .expect("non-empty");

    let total_violation = |p: &Coordinate| -> f64 {
        constraints
            .iter()
            .map(|c| c.violation(p).max(0.0))
            .sum::<f64>()
    };

    // Pattern search: probe the four compass directions with a shrinking
    // step, keeping any move that lowers the violation.
    let mut best = tightest.at;
    let mut best_v = total_violation(&best);
    let mut step = tightest.radius_km.max(1.0);
    while step > 0.25 && best_v > 0.0 {
        let mut improved = false;
        for bearing in [0.0, 90.0, 180.0, 270.0, 45.0, 135.0, 225.0, 315.0] {
            let cand = destination(&best, bearing, step);
            let v = total_violation(&cand);
            if v < best_v {
                best = cand;
                best_v = v;
                improved = true;
            }
        }
        if !improved {
            step /= 2.0;
        }
    }

    Some(CbgEstimate {
        coord: best,
        confidence_km: tightest.radius_km,
        residual_km: best_v,
        landmarks: constraints.len(),
    })
}

/// Collect per-target constraints from measurement records: every
/// responding hop on a probe's traceroute yields a `(probe location, RTT)`
/// constraint for that hop's address. Only router interfaces of the world
/// are kept, and RTTs above `max_rtt_ms` are discarded (loose constraints
/// add nothing but noise).
pub fn collect_constraints(
    world: &World,
    records: &[TracerouteRecord],
    max_rtt_ms: f64,
) -> HashMap<Ipv4Addr, Vec<Constraint>> {
    let mut out: HashMap<Ipv4Addr, Vec<Constraint>> = HashMap::new();
    for rec in records {
        let probe = &world.probes[rec.origin_id as usize];
        for hop in &rec.hops {
            let (Some(ip), Some(rtt)) = (hop.ip, hop.rtt_ms) else {
                continue;
            };
            if rtt > max_rtt_ms || ip == rec.dst_ip {
                continue;
            }
            if world.find_interface(ip).is_none() {
                continue;
            }
            out.entry(ip)
                .or_default()
                .push(Constraint::from_rtt(probe.registered_coord, rtt));
        }
    }
    // Keep only the tightest few constraints per target: CBG's accuracy is
    // set by the nearest landmarks, and dozens of loose disks slow the
    // search without adding information.
    for constraints in out.values_mut() {
        constraints.sort_by(|a, b| a.radius_km.total_cmp(&b.radius_km));
        constraints.truncate(8);
    }
    out
}

/// Geolocate every multi-landmark target and report the error CDF samples
/// against the oracle.
pub fn evaluate_cbg(
    world: &World,
    records: &[TracerouteRecord],
    max_rtt_ms: f64,
    min_landmarks: usize,
) -> Vec<(Ipv4Addr, CbgEstimate, f64)> {
    let mut out = Vec::new();
    for (ip, constraints) in collect_constraints(world, records, max_rtt_ms) {
        if constraints.len() < min_landmarks {
            continue;
        }
        let Some(est) = estimate(&constraints) else {
            continue;
        };
        let Some(router) = world.router_of_ip(ip) else {
            continue;
        };
        let err = est.coord.distance_km(&router.coord);
        out.push((ip, est, err));
    }
    out.sort_by_key(|(ip, _, _)| *ip);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use routergeo_geo::distance::min_rtt_ms;

    fn c(lat: f64, lon: f64) -> Coordinate {
        Coordinate::new(lat, lon).unwrap()
    }

    #[test]
    fn no_constraints_no_estimate() {
        assert!(estimate(&[]).is_none());
    }

    #[test]
    fn single_tight_constraint_centres_on_landmark() {
        let est = estimate(&[Constraint::from_rtt(c(50.0, 8.0), 0.4)]).unwrap();
        assert!(est.coord.distance_km(&c(50.0, 8.0)) < 1.0);
        assert!(est.confidence_km < 45.0);
        assert_eq!(est.landmarks, 1);
        assert_eq!(est.residual_km, 0.0);
    }

    #[test]
    fn triangulation_converges_near_target() {
        // Target at (50, 8); three landmarks ~300 km away in different
        // directions, RTTs exactly at the physical floor (tight disks that
        // intersect only near the target).
        let target = c(50.0, 8.0);
        let landmarks = [
            destination(&target, 0.0, 300.0),
            destination(&target, 120.0, 280.0),
            destination(&target, 240.0, 320.0),
        ];
        let constraints: Vec<Constraint> = landmarks
            .iter()
            .map(|lm| Constraint::from_rtt(*lm, min_rtt_ms(lm.distance_km(&target)) * 1.05))
            .collect();
        let est = estimate(&constraints).unwrap();
        let err = est.coord.distance_km(&target);
        assert!(err < 120.0, "estimate {err} km off");
        assert!(est.residual_km < 1.0, "residual {}", est.residual_km);
    }

    #[test]
    fn contradictory_constraints_leave_residual() {
        // Two disjoint tiny disks 1000 km apart.
        let a = Constraint::from_rtt(c(40.0, 0.0), 0.2);
        let b = Constraint::from_rtt(c(49.0, 0.0), 0.2);
        let est = estimate(&[a, b]).unwrap();
        assert!(est.residual_km > 100.0, "residual {}", est.residual_km);
    }

    #[test]
    fn end_to_end_cbg_beats_loose_guessing() {
        use routergeo_trace::{AtlasBuiltins, AtlasConfig, Topology};
        use routergeo_world::{World, WorldConfig};
        let w = World::generate(WorldConfig::tiny(401));
        let topo = Topology::build(&w);
        let records = AtlasBuiltins::new(
            &w,
            &topo,
            AtlasConfig {
                seed: 4,
                targets: 5,
                instances_per_target: 3,
            },
        )
        .run();
        let results = evaluate_cbg(&w, &records, 10.0, 2);
        assert!(results.len() > 30, "too few CBG targets: {}", results.len());
        let within_conf = results
            .iter()
            .filter(|(_, est, err)| *err <= est.confidence_km + 25.0)
            .count();
        // The confidence radius is a physical bound (modulo the ≤25 km
        // probe/router scatter): it must hold essentially always.
        assert!(
            within_conf * 100 >= results.len() * 95,
            "{within_conf}/{} within confidence",
            results.len()
        );
        let median = {
            let mut errs: Vec<f64> = results.iter().map(|(_, _, e)| *e).collect();
            errs.sort_by(f64::total_cmp);
            errs[errs.len() / 2]
        };
        assert!(median < 100.0, "median CBG error {median} km");
    }
}

//! RTT-proximity ground truth (§2.3.2) and probe quality assurance (§3.2).
//!
//! The method: a hop observed with RTT below 0.5 ms is physically within
//! 50 km of the probe — "likely much less due to inflation" — so the hop's
//! interface can be credited with the probe's location at city accuracy.
//! The catch: probe locations are crowdsourced and sometimes wrong, so the
//! paper disqualifies probes two ways before trusting them:
//!
//! 1. **Default-centroid check** — probes registered within 5 km of their
//!    country's default coordinates are suspect (locations were never
//!    really filled in); all their addresses are dropped.
//! 2. **RTT-nearby consistency** — two probes both within 50 km of the
//!    same router must be within 100 km of each other. Groups violating
//!    that expose probes with bad locations; prominent offenders are
//!    disqualified and their addresses dropped.
//!
//! [`build_dataset`] runs extraction + QA and returns both the dataset and
//! a [`QaReport`] whose counters line up with §3.2's narrative numbers.
//!
//! [`cbg`] adds the delay-based alternative the paper's introduction
//! mentions: constraint-based geolocation over the same probe fleet.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cbg;
pub mod dataset;
pub mod proximity;
pub mod qa;

pub use cbg::{estimate as cbg_estimate, CbgEstimate, Constraint};
pub use dataset::{RttEntry, RttProximityDataset};
pub use proximity::{extract_candidates, CandidateSet, ProximityConfig};
pub use qa::{build_dataset, QaReport};

//! The finished RTT-proximity ground-truth dataset.

use routergeo_geo::{Coordinate, CountryCode};
use routergeo_world::ProbeId;
use std::net::Ipv4Addr;

/// One ground-truth entry: an interface address credited with a probe's
/// registered location.
#[derive(Debug, Clone)]
pub struct RttEntry {
    /// The router interface address.
    pub ip: Ipv4Addr,
    /// Location credited to it (the probe's registered coordinates).
    pub coord: Coordinate,
    /// Country of the registered location.
    pub country: CountryCode,
    /// The probe whose location was used (lowest observed RTT).
    pub probe: ProbeId,
    /// Lowest RTT observed from that probe, ms.
    pub min_rtt_ms: f64,
    /// How many distinct qualifying probes observed the address.
    pub probe_count: usize,
}

/// The RTT-proximity ground truth: entries sorted by address.
#[derive(Debug, Clone, Default)]
pub struct RttProximityDataset {
    /// Entries, ascending by IP.
    pub entries: Vec<RttEntry>,
}

impl RttProximityDataset {
    /// Number of addresses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Find an entry by address.
    pub fn get(&self, ip: Ipv4Addr) -> Option<&RttEntry> {
        self.entries
            .binary_search_by_key(&ip, |e| e.ip)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Unique countries covered.
    pub fn country_count(&self) -> usize {
        let mut c: Vec<_> = self.entries.iter().map(|e| e.country).collect();
        c.sort();
        c.dedup();
        c.len()
    }

    /// Unique coordinates covered (Table 1's `lat/lon` column).
    pub fn unique_coord_count(&self) -> usize {
        let set: std::collections::HashSet<Coordinate> =
            self.entries.iter().map(|e| e.coord).collect();
        set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ip: &str, lat: f64) -> RttEntry {
        RttEntry {
            ip: ip.parse().unwrap(),
            coord: Coordinate::new(lat, 0.0).unwrap(),
            country: "DE".parse().unwrap(),
            probe: ProbeId(0),
            min_rtt_ms: 0.3,
            probe_count: 1,
        }
    }

    #[test]
    fn get_by_ip() {
        let ds = RttProximityDataset {
            entries: vec![entry("1.0.0.1", 1.0), entry("1.0.0.5", 2.0)],
        };
        assert!(ds.get("1.0.0.1".parse().unwrap()).is_some());
        assert!(ds.get("1.0.0.2".parse().unwrap()).is_none());
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn unique_counts() {
        let ds = RttProximityDataset {
            entries: vec![
                entry("1.0.0.1", 1.0),
                entry("1.0.0.2", 1.0),
                entry("1.0.0.3", 3.0),
            ],
        };
        assert_eq!(ds.country_count(), 1);
        assert_eq!(ds.unique_coord_count(), 2);
    }
}

//! `cargo xtask` — entry point for the workspace static-analysis gate.

use std::collections::BTreeMap;
use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use xtask::{bench, deps, engine, json};

const USAGE: &str = "usage: cargo xtask <command>\n\n\
commands:\n  \
  lint [--waivers] [--json]\n  \
                        run RG001-RG013 over workspace sources; non-zero exit on violations\n  \
                        (--json prints machine-readable findings on stdout)\n  \
  unsafe-audit [--json] inventory every `unsafe` site workspace-wide; non-zero exit unless\n  \
                        each carries a `// SAFETY:` comment\n  \
  fix-audit             print the violation/waiver burn-down dashboard by rule and crate\n  \
  deps                  check manifests against the workspace dependency policy\n  \
  bench-check [--bless] run repro --timings at tiny scale and gate per-stage wall clock\n  \
                        against BENCH_pipeline.json (--bless refreshes the baseline)\n  \
  obs-check FILE        verify the structural invariants of a `repro --obs` JSONL trace\n  \
                        (span accounting, counter identities, histogram totals)\n  \
  fuzz [--budget-ms N] [--json]\n  \
                        run the structural fuzzing + differential harness (RGDB mutants,\n  \
                        whois protocol abuse, three-way lookup agreement); the trial plan\n  \
                        is a pure function of the budget, so output is byte-identical\n  \
                        across runs (default budget 30000 ms)\n  \
  serve-check [--budget-ms N] [--vendor-images]\n  \
                        run the serve loadgen (virtual-time sim, hot swap under load,\n  \
                        abuse, wall-clock ratio gates) and write the deterministic\n  \
                        report to target/ci-artifacts/serve_ci.json (default budget\n  \
                        8000 ms); --vendor-images additionally sweeps the daemon over\n  \
                        real tenth-scale vendor v2.1 images served from disk\n  \
  resolve-check [--budget-ms N] [--bless]\n  \
                        run the paper-scale resolve smoke (four synthetic vendor RGDB\n  \
                        v2.1 images, 1.5 M batched lookups through ResolvedView) and\n  \
                        write the report to target/ci-artifacts/resolve_ci.json;\n  \
                        non-zero exit when the resolve stage exceeds the budget\n  \
                        (default 20000 ms), when a stage regresses beyond 2x against\n  \
                        BENCH_resolve.json, or when lookup_ns_per_addr regresses\n  \
                        beyond 2x (both median-normalised); --bless refreshes the\n  \
                        baseline\n";

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(root) = current_root() else {
        eprintln!("xtask: could not locate the workspace root from the current directory");
        return ExitCode::FAILURE;
    };

    match args.first().map(String::as_str) {
        Some("lint") => {
            let show_waivers = args.iter().any(|a| a == "--waivers");
            let as_json = args.iter().any(|a| a == "--json");
            if let Some(bad) = args[1..]
                .iter()
                .find(|a| *a != "--waivers" && *a != "--json")
            {
                eprintln!("xtask lint: unknown flag `{bad}`\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
            run_lint(&root, show_waivers, as_json)
        }
        Some("unsafe-audit") => {
            let as_json = args.iter().any(|a| a == "--json");
            if let Some(bad) = args[1..].iter().find(|a| *a != "--json") {
                eprintln!("xtask unsafe-audit: unknown flag `{bad}`\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
            run_unsafe_audit(&root, as_json)
        }
        Some("fix-audit") => run_fix_audit(&root),
        Some("deps") => run_deps(&root),
        Some("bench-check") => {
            let bless = args.iter().any(|a| a == "--bless");
            if let Some(bad) = args[1..].iter().find(|a| *a != "--bless") {
                eprintln!("xtask bench-check: unknown flag `{bad}`\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
            run_bench_check(&root, bless)
        }
        Some("obs-check") => match args.get(1) {
            Some(file) if args.len() == 2 => run_obs_check(&PathBuf::from(file)),
            _ => {
                eprintln!("xtask obs-check: expected exactly one FILE argument\n\n{USAGE}");
                ExitCode::FAILURE
            }
        },
        Some("fuzz") => {
            let as_json = args.iter().any(|a| a == "--json");
            let mut budget_ms: u64 = 30_000;
            let mut rest = args[1..].iter();
            while let Some(flag) = rest.next() {
                match flag.as_str() {
                    "--json" => {}
                    "--budget-ms" => match rest.next().and_then(|v| v.parse().ok()) {
                        Some(v) => budget_ms = v,
                        None => {
                            eprintln!(
                                "xtask fuzz: --budget-ms needs a millisecond count\n\n{USAGE}"
                            );
                            return ExitCode::FAILURE;
                        }
                    },
                    bad => {
                        eprintln!("xtask fuzz: unknown flag `{bad}`\n\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            run_fuzz(budget_ms, as_json)
        }
        Some("serve-check") => {
            let mut budget_ms: u64 = 8_000;
            let mut vendor_images = false;
            let mut rest = args[1..].iter();
            while let Some(flag) = rest.next() {
                match flag.as_str() {
                    "--vendor-images" => vendor_images = true,
                    "--budget-ms" => match rest.next().and_then(|v| v.parse().ok()) {
                        Some(v) => budget_ms = v,
                        None => {
                            eprintln!(
                                "xtask serve-check: --budget-ms needs a millisecond count\n\n{USAGE}"
                            );
                            return ExitCode::FAILURE;
                        }
                    },
                    bad => {
                        eprintln!("xtask serve-check: unknown flag `{bad}`\n\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            run_serve_check(&root, budget_ms, vendor_images)
        }
        Some("resolve-check") => {
            let mut budget_ms: u64 = 20_000;
            let mut bless = false;
            let mut rest = args[1..].iter();
            while let Some(flag) = rest.next() {
                match flag.as_str() {
                    "--bless" => bless = true,
                    "--budget-ms" => match rest.next().and_then(|v| v.parse().ok()) {
                        Some(v) => budget_ms = v,
                        None => {
                            eprintln!(
                                "xtask resolve-check: --budget-ms needs a millisecond count\n\n{USAGE}"
                            );
                            return ExitCode::FAILURE;
                        }
                    },
                    bad => {
                        eprintln!("xtask resolve-check: unknown flag `{bad}`\n\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            run_resolve_check(&root, budget_ms, bless)
        }
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`\n\n{USAGE}");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn current_root() -> Option<PathBuf> {
    let cwd = env::current_dir().ok()?;
    engine::find_root(&cwd)
}

fn run_lint(root: &PathBuf, show_waivers: bool, as_json: bool) -> ExitCode {
    let outcome = match engine::lint_workspace(root) {
        Ok(o) => o,
        Err(err) => {
            eprintln!("xtask lint: failed to walk workspace: {err}");
            return ExitCode::FAILURE;
        }
    };
    if as_json {
        println!("{}", json::lint_json(&outcome));
        return if outcome.violations.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    for v in &outcome.violations {
        println!("{v}");
    }
    if show_waivers {
        if outcome.waivers.is_empty() {
            println!("no active waivers");
        } else {
            println!("active waivers:");
            for w in &outcome.waivers {
                println!(
                    "  {}:{} {} ({} finding{}) — {}",
                    w.file,
                    w.line,
                    w.rules.join(","),
                    w.suppressed,
                    if w.suppressed == 1 { "" } else { "s" },
                    w.reason
                );
            }
        }
    }
    eprintln!(
        "xtask lint: {} file(s) scanned, {} violation(s), {} active waiver(s)",
        outcome.files_scanned,
        outcome.violations.len(),
        outcome.waivers.len()
    );
    if outcome.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_unsafe_audit(root: &PathBuf, as_json: bool) -> ExitCode {
    let audit = match engine::unsafe_audit_workspace(root) {
        Ok(a) => a,
        Err(err) => {
            eprintln!("xtask unsafe-audit: failed to walk workspace: {err}");
            return ExitCode::FAILURE;
        }
    };
    let violations = audit.violations().len();
    if as_json {
        println!("{}", json::unsafe_audit_json(&audit));
    } else {
        for site in &audit.sites {
            println!("{site}");
        }
    }
    eprintln!(
        "xtask unsafe-audit: {} file(s) scanned, {} unsafe site(s), {} missing SAFETY comment(s)",
        audit.files_scanned,
        audit.sites.len(),
        violations
    );
    if violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_fix_audit(root: &PathBuf) -> ExitCode {
    let outcome = match engine::lint_workspace(root) {
        Ok(o) => o,
        Err(err) => {
            eprintln!("xtask fix-audit: failed to walk workspace: {err}");
            return ExitCode::FAILURE;
        }
    };
    let mut by_rule: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for v in &outcome.violations {
        by_rule.entry(v.rule.clone()).or_default().0 += 1;
    }
    for w in &outcome.waivers {
        for r in &w.rules {
            by_rule.entry(r.clone()).or_default().1 += w.suppressed;
        }
    }
    let mut by_crate: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for v in &outcome.violations {
        by_crate.entry(crate_of(&v.file)).or_default().0 += 1;
    }
    for w in &outcome.waivers {
        by_crate.entry(crate_of(&w.file)).or_default().1 += w.suppressed;
    }

    println!("burn-down by rule:");
    println!("  {:<8} {:>10} {:>8}", "rule", "violations", "waived");
    for (rule, (open, waived)) in &by_rule {
        println!("  {rule:<8} {open:>10} {waived:>8}");
    }
    println!();
    println!("burn-down by crate:");
    println!("  {:<12} {:>10} {:>8}", "crate", "violations", "waived");
    for (krate, (open, waived)) in &by_crate {
        println!("  {krate:<12} {open:>10} {waived:>8}");
    }
    println!();
    println!(
        "total: {} open violation(s), {} waived finding(s) across {} file(s)",
        outcome.violations.len(),
        outcome.waivers.iter().map(|w| w.suppressed).sum::<usize>(),
        outcome.files_scanned
    );
    ExitCode::SUCCESS
}

fn crate_of(rel: &str) -> String {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("routergeo")
        .to_string()
}

/// The experiments timed for the baseline: the lab build stages come for
/// free; these names also pull the four analysis stages into the report.
const BENCH_EXPERIMENTS: [&str; 4] = ["table1", "coverage", "consistency", "fig2"];

fn run_bench_check(root: &PathBuf, bless: bool) -> ExitCode {
    let baseline_path = root.join("BENCH_pipeline.json");
    let fresh_path = root.join("target").join("BENCH_pipeline.fresh.json");
    if let Err(err) = std::fs::create_dir_all(root.join("target")) {
        eprintln!("xtask bench-check: cannot create target dir: {err}");
        return ExitCode::FAILURE;
    }

    eprintln!("xtask bench-check: timing repro at tiny scale (release)…");
    let status = std::process::Command::new("cargo")
        .current_dir(root)
        .args([
            "run",
            "--release",
            "-q",
            "-p",
            "routergeo-bench",
            "--bin",
            "repro",
            "--",
        ])
        .args(BENCH_EXPERIMENTS)
        .arg("--timings")
        .arg(&fresh_path)
        .env("ROUTERGEO_SCALE", "tiny")
        .env("ROUTERGEO_SEED", "20170301")
        .stdout(std::process::Stdio::null())
        .status();
    match status {
        Ok(s) if s.success() => {}
        Ok(s) => {
            eprintln!("xtask bench-check: repro exited with {s}");
            return ExitCode::FAILURE;
        }
        Err(err) => {
            eprintln!("xtask bench-check: cannot run repro: {err}");
            return ExitCode::FAILURE;
        }
    }

    if bless {
        return match std::fs::copy(&fresh_path, &baseline_path) {
            Ok(_) => {
                eprintln!(
                    "xtask bench-check: blessed {} from this run",
                    baseline_path.display()
                );
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!(
                    "xtask bench-check: cannot write {}: {err}",
                    baseline_path.display()
                );
                ExitCode::FAILURE
            }
        };
    }

    let read = |p: &std::path::Path| -> Result<bench::Report, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
        bench::parse_report(&text).map_err(|e| format!("{}: {e}", p.display()))
    };
    let (base, fresh) = match (read(&baseline_path), read(&fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!(
                "xtask bench-check: {e}\n(run `cargo xtask bench-check --bless` to create the baseline)"
            );
            return ExitCode::FAILURE;
        }
    };
    let cmp = match bench::compare(&base, &fresh, bench::THRESHOLD) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("xtask bench-check: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{:<14} {:>10} {:>10} {:>8} {:>8}",
        "stage", "base ms", "fresh ms", "ratio", "norm"
    );
    for c in &cmp {
        println!("{c}");
    }
    let failed = cmp.iter().filter(|c| c.failed).count();
    eprintln!(
        "xtask bench-check: {} stage(s), {} regression(s) beyond {:.1}x (smoothing {:.0} ms, median-normalised)",
        cmp.len(),
        failed,
        bench::THRESHOLD,
        bench::SMOOTHING_MS
    );
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_obs_check(path: &std::path::Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(err) => {
            eprintln!("xtask obs-check: cannot read {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let report = match routergeo_obs::check::parse(&text) {
        Ok(r) => r,
        Err(err) => {
            eprintln!("xtask obs-check: {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let violations = routergeo_obs::check::verify(&report);
    for v in &violations {
        println!("{}: {v}", path.display());
    }
    eprintln!(
        "xtask obs-check: {} span(s), {} counter(s), {} histogram(s), {} violation(s)",
        report.spans.len(),
        report.counters.len(),
        report.histograms.len(),
        violations.len()
    );
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_fuzz(budget_ms: u64, as_json: bool) -> ExitCode {
    let config = routergeo_fuzz::FuzzConfig::from_budget(budget_ms);
    let report = routergeo_fuzz::run(config);
    let violations = report.violations();
    if as_json {
        // `to_json` already ends with a newline and must stay
        // byte-identical across runs, so no println framing.
        print!("{}", report.to_json());
    } else {
        for v in &violations {
            println!("{v}");
        }
    }
    let trials: u64 = report.rgdb.classes.iter().map(|c| c.trials).sum();
    let proto_runs: u64 = report.proto.scenarios.iter().map(|s| s.runs).sum();
    let diff_addrs: u64 = report.diff.scales.iter().map(|s| s.addresses).sum();
    eprintln!(
        "xtask fuzz: {} mutation trial(s) across {} class(es), {} protocol scenario run(s), \
         {} differential address(es), {} violation(s)",
        trials,
        report.rgdb.classes.len(),
        proto_runs,
        diff_addrs,
        violations.len()
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The seed pinned for the CI serve/resolve gates: each report is a pure function of
/// `(budget, seed)`, so the artifact diffs cleanly between runs.
const CI_SEED: &str = "20170301";

fn run_serve_check(root: &PathBuf, budget_ms: u64, vendor_images: bool) -> ExitCode {
    let art_dir = root.join("target").join("ci-artifacts");
    if let Err(err) = std::fs::create_dir_all(&art_dir) {
        eprintln!(
            "xtask serve-check: cannot create {}: {err}",
            art_dir.display()
        );
        return ExitCode::FAILURE;
    }
    let artifact = art_dir.join("serve_ci.json");
    let out_file = match std::fs::File::create(&artifact) {
        Ok(f) => f,
        Err(err) => {
            eprintln!(
                "xtask serve-check: cannot create {}: {err}",
                artifact.display()
            );
            return ExitCode::FAILURE;
        }
    };

    eprintln!("xtask serve-check: running loadgen (budget {budget_ms} ms, release)…");
    let status = std::process::Command::new("cargo")
        .current_dir(root)
        .args([
            "run",
            "--release",
            "-q",
            "-p",
            "routergeo-serve",
            "--bin",
            "loadgen",
            "--",
            "--budget-ms",
        ])
        .arg(budget_ms.to_string())
        .args(["--seed", CI_SEED, "--json"])
        .stdout(out_file)
        .status();
    match status {
        Ok(s) if s.success() => {
            eprintln!("xtask serve-check: wrote {}", artifact.display());
        }
        Ok(s) => {
            eprintln!(
                "xtask serve-check: loadgen exited with {s} (report at {})",
                artifact.display()
            );
            return ExitCode::FAILURE;
        }
        Err(err) => {
            eprintln!("xtask serve-check: cannot run loadgen: {err}");
            return ExitCode::FAILURE;
        }
    }
    if !vendor_images {
        return ExitCode::SUCCESS;
    }

    // Opt-in: sweep the daemon over real tenth-scale lab vendors encoded
    // as file-backed v2.1 images (the `#[ignore]`d half of the
    // vendor_serve suite). Not part of the budgeted CI gate.
    eprintln!("xtask serve-check: tenth-scale vendor v2.1 image sweep (release)…");
    let status = std::process::Command::new("cargo")
        .current_dir(root)
        .args([
            "test",
            "--release",
            "-q",
            "-p",
            "routergeo-bench",
            "--test",
            "vendor_serve",
            "--",
            "--ignored",
        ])
        .status();
    match status {
        Ok(s) if s.success() => {
            eprintln!("xtask serve-check: vendor image sweep clean");
            ExitCode::SUCCESS
        }
        Ok(s) => {
            eprintln!("xtask serve-check: vendor image sweep exited with {s}");
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("xtask serve-check: cannot run vendor image sweep: {err}");
            ExitCode::FAILURE
        }
    }
}

/// The resolve smoke gate: the paper-scale batched-lookup workload
/// (four synthetic vendor databases as RGDB v2.1 images, 1.5 M
/// interface addresses through `ResolvedView`) under a wall budget on
/// the resolve stage alone, plus a regression gate against the blessed
/// `BENCH_resolve.json`: per-stage wall clock AND per-lookup
/// `lookup_ns_per_addr`, both smoothed and median-normalised exactly
/// like bench-check so a uniformly slower machine passes. Synthesis and
/// probes are a pure function of the pinned seed, so everything in the
/// artifact except the wall-clock fields is byte-stable.
fn run_resolve_check(root: &PathBuf, budget_ms: u64, bless: bool) -> ExitCode {
    let art_dir = root.join("target").join("ci-artifacts");
    if let Err(err) = std::fs::create_dir_all(&art_dir) {
        eprintln!(
            "xtask resolve-check: cannot create {}: {err}",
            art_dir.display()
        );
        return ExitCode::FAILURE;
    }
    let artifact = art_dir.join("resolve_ci.json");
    let out_file = match std::fs::File::create(&artifact) {
        Ok(f) => f,
        Err(err) => {
            eprintln!(
                "xtask resolve-check: cannot create {}: {err}",
                artifact.display()
            );
            return ExitCode::FAILURE;
        }
    };

    eprintln!("xtask resolve-check: paper-scale resolve smoke (budget {budget_ms} ms, release)…");
    let status = std::process::Command::new("cargo")
        .current_dir(root)
        .env("ROUTERGEO_SCALE", "paper")
        .env("ROUTERGEO_SEED", CI_SEED)
        .args([
            "run",
            "--release",
            "-q",
            "-p",
            "routergeo-bench",
            "--bin",
            "resolve_smoke",
            "--",
            "--budget-ms",
        ])
        .arg(budget_ms.to_string())
        .stdout(out_file)
        .status();
    match status {
        Ok(s) if s.success() => {
            eprintln!("xtask resolve-check: wrote {}", artifact.display());
        }
        Ok(s) => {
            eprintln!(
                "xtask resolve-check: resolve_smoke exited with {s} (report at {})",
                artifact.display()
            );
            return ExitCode::FAILURE;
        }
        Err(err) => {
            eprintln!("xtask resolve-check: cannot run resolve_smoke: {err}");
            return ExitCode::FAILURE;
        }
    }

    let baseline_path = root.join("BENCH_resolve.json");
    if bless {
        return match std::fs::copy(&artifact, &baseline_path) {
            Ok(_) => {
                eprintln!(
                    "xtask resolve-check: blessed {} from this run",
                    baseline_path.display()
                );
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!(
                    "xtask resolve-check: cannot write {}: {err}",
                    baseline_path.display()
                );
                ExitCode::FAILURE
            }
        };
    }

    let read = |p: &std::path::Path| -> Result<(bench::Report, f64), String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
        let report = bench::parse_report(&text).map_err(|e| format!("{}: {e}", p.display()))?;
        let per_lookup = lookup_ns_per_addr(&text)
            .ok_or_else(|| format!("{}: no lookup_ns_per_addr field", p.display()))?;
        Ok((report, per_lookup))
    };
    let ((base, base_ns), (fresh, fresh_ns)) = match (read(&baseline_path), read(&artifact)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!(
                "xtask resolve-check: {e}\n(run `cargo xtask resolve-check --bless` to create the baseline)"
            );
            return ExitCode::FAILURE;
        }
    };
    let cmp = match bench::compare(&base, &fresh, bench::THRESHOLD) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("xtask resolve-check: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{:<14} {:>10} {:>10} {:>8} {:>8}",
        "stage", "base ms", "fresh ms", "ratio", "norm"
    );
    for c in &cmp {
        println!("{c}");
    }
    let mut failed = cmp.iter().filter(|c| c.failed).count();

    // Per-lookup cost gate: normalise the fresh/base ratio by the run's
    // median stage ratio (the machine-speed factor bench::compare
    // already derived) so only a *relative* regression fails. The
    // median is recoverable from any unfailed comparison as
    // `ratio / normalized`.
    let machine = cmp.first().map_or(1.0, |c| {
        if c.normalized > 0.0 {
            c.ratio / c.normalized
        } else {
            1.0
        }
    });
    let per_lookup_ratio = if base_ns > 0.0 {
        fresh_ns / base_ns
    } else {
        1.0
    };
    let per_lookup_norm = if machine > 0.0 {
        per_lookup_ratio / machine
    } else {
        per_lookup_ratio
    };
    let lookup_failed = !per_lookup_norm.is_finite() || per_lookup_norm > bench::THRESHOLD;
    println!(
        "{:<14} {:>8.1}ns {:>8.1}ns {:>7.2}x {:>7.2}x  {}",
        "per-lookup",
        base_ns,
        fresh_ns,
        per_lookup_ratio,
        per_lookup_norm,
        if lookup_failed { "FAIL" } else { "ok" }
    );
    if lookup_failed {
        failed += 1;
    }
    eprintln!(
        "xtask resolve-check: {} stage(s) + per-lookup gate, {} regression(s) beyond {:.1}x",
        cmp.len(),
        failed,
        bench::THRESHOLD
    );
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Pull `lookup_ns_per_addr` out of a resolve_ci.json text.
fn lookup_ns_per_addr(text: &str) -> Option<f64> {
    let pat = "\"lookup_ns_per_addr\":";
    let rest = &text[text.find(pat)? + pat.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn run_deps(root: &PathBuf) -> ExitCode {
    let violations = match deps::check_workspace(root) {
        Ok(v) => v,
        Err(err) => {
            eprintln!("xtask deps: failed to read manifests: {err}");
            return ExitCode::FAILURE;
        }
    };
    for v in &violations {
        println!("{v}");
    }
    eprintln!("xtask deps: {} violation(s)", violations.len());
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

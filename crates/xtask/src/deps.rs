//! Offline manifest checker for `cargo xtask deps`.
//!
//! Enforces the workspace dependency policy without touching the
//! network or the cargo resolver:
//!
//! - **XD001** — member crates must inherit every dependency from the
//!   workspace (`foo.workspace = true` / `foo = { workspace = true }`),
//!   never declare a local `version`, `path`, or `git`.
//! - **XD002** — every dependency a member names must exist in the root
//!   `[workspace.dependencies]` table.
//! - **XD003** — every `path` entry in `[workspace.dependencies]` must
//!   point at a directory whose `Cargo.toml` declares the same package
//!   name, so the unified graph is closed under the repository.
//! - **XD004** — member `[package]` tables must inherit `version`,
//!   `edition`, and `license` from `[workspace.package]` so releases
//!   stay version-unified.
//!
//! The parser is a line-oriented subset of TOML sufficient for this
//! workspace's manifests: section headers, `key = value`, and one-line
//! inline tables. It is deliberately strict — anything it cannot parse
//! in a dependency position is reported rather than skipped.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// One dependency-policy violation.
#[derive(Debug, Clone)]
pub struct DepViolation {
    /// Workspace-relative manifest path.
    pub file: String,
    /// 1-based line in the manifest.
    pub line: u32,
    /// `XD001` … `XD004`.
    pub rule: &'static str,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for DepViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} {} {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A `key = value` entry with its line number.
#[derive(Debug, Clone)]
struct Entry {
    key: String,
    value: String,
    line: u32,
}

/// A parsed manifest: entries grouped by section header.
#[derive(Debug, Default)]
struct Manifest {
    sections: Vec<(String, Vec<Entry>)>,
}

impl Manifest {
    fn section(&self, name: &str) -> Option<&[Entry]> {
        self.sections
            .iter()
            .find(|(s, _)| s == name)
            .map(|(_, e)| e.as_slice())
    }
}

fn parse_manifest(text: &str) -> Manifest {
    let mut m = Manifest::default();
    let mut current = String::new();
    for (ix, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') && line.ends_with(']') {
            current = line
                .trim_matches(|c| c == '[' || c == ']')
                .trim()
                .to_string();
            m.sections.push((current.clone(), Vec::new()));
            continue;
        }
        if let Some(eq) = find_top_level_eq(line) {
            let key = line[..eq].trim().trim_matches('"').to_string();
            let value = line[eq + 1..].trim().to_string();
            if current.is_empty() {
                m.sections.push((String::new(), Vec::new()));
                current = String::new();
            }
            if let Some((_, entries)) = m.sections.iter_mut().rev().find(|(s, _)| *s == current) {
                entries.push(Entry {
                    key,
                    value,
                    line: (ix + 1) as u32,
                });
            }
        }
    }
    m
}

/// Strip a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Position of the first `=` outside quotes and braces (so inline-table
/// values like `{ workspace = true }` stay intact).
fn find_top_level_eq(line: &str) -> Option<usize> {
    let mut in_str = false;
    let mut depth = 0i32;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '{' | '[' if !in_str => depth += 1,
            '}' | ']' if !in_str => depth -= 1,
            '=' if !in_str && depth == 0 => return Some(i),
            _ => {}
        }
    }
    None
}

/// Whether a dependency value inherits from the workspace.
fn inherits_workspace(value: &str) -> bool {
    if value == "true" {
        // `foo.workspace = true` arrives with key `foo.workspace`.
        return true;
    }
    value.starts_with('{')
        && value.contains("workspace")
        && inline_table_has(value, "workspace", "true")
        && !value.contains("path")
        && !value.contains("git")
        && !value.contains("version")
}

fn inline_table_has(table: &str, key: &str, want: &str) -> bool {
    let inner = table.trim_start_matches('{').trim_end_matches('}');
    inner.split(',').any(|pair| {
        let mut it = pair.splitn(2, '=');
        let k = it.next().unwrap_or("").trim();
        let v = it.next().unwrap_or("").trim();
        k == key && v == want
    })
}

/// Extract a string field (`path = "…"`) from an inline table value.
fn inline_table_str(table: &str, key: &str) -> Option<String> {
    let inner = table.trim_start_matches('{').trim_end_matches('}');
    for pair in inner.split(',') {
        let mut it = pair.splitn(2, '=');
        let k = it.next().unwrap_or("").trim();
        let v = it.next().unwrap_or("").trim();
        if k == key {
            return Some(v.trim_matches('"').to_string());
        }
    }
    None
}

const DEP_SECTIONS: [&str; 3] = ["dependencies", "dev-dependencies", "build-dependencies"];
const INHERITED_PACKAGE_KEYS: [&str; 3] = ["version", "edition", "license"];

/// Run the dependency policy over the workspace rooted at `root`.
/// Returns all violations, sorted by manifest path and line.
pub fn check_workspace(root: &Path) -> io::Result<Vec<DepViolation>> {
    let mut out = Vec::new();

    let root_manifest_path = root.join("Cargo.toml");
    let root_text = fs::read_to_string(&root_manifest_path)?;
    let root_manifest = parse_manifest(&root_text);

    // Names available for inheritance.
    let mut workspace_deps: Vec<(String, String, u32)> = Vec::new();
    if let Some(entries) = root_manifest.section("workspace.dependencies") {
        for e in entries {
            workspace_deps.push((e.key.clone(), e.value.clone(), e.line));
        }
    }

    // XD003: workspace path deps resolve to a matching package.
    for (name, value, line) in &workspace_deps {
        let Some(path) = inline_table_str(value, "path") else {
            out.push(DepViolation {
                file: "Cargo.toml".into(),
                line: *line,
                rule: "XD003",
                message: format!(
                    "workspace dependency `{name}` has no `path` — this offline workspace \
                     only supports vendored path dependencies"
                ),
            });
            continue;
        };
        let target = root.join(&path).join("Cargo.toml");
        match fs::read_to_string(&target) {
            Err(_) => out.push(DepViolation {
                file: "Cargo.toml".into(),
                line: *line,
                rule: "XD003",
                message: format!(
                    "workspace dependency `{name}` points at `{path}` which has no Cargo.toml"
                ),
            }),
            Ok(text) => {
                let pkg = parse_manifest(&text);
                let pkg_name = pkg
                    .section("package")
                    .and_then(|es| es.iter().find(|e| e.key == "name"))
                    .map(|e| e.value.trim_matches('"').to_string());
                if pkg_name.as_deref() != Some(name.as_str()) {
                    out.push(DepViolation {
                        file: "Cargo.toml".into(),
                        line: *line,
                        rule: "XD003",
                        message: format!(
                            "workspace dependency `{name}` points at `{path}` whose package \
                             is named `{}`",
                            pkg_name.unwrap_or_else(|| "<missing>".into())
                        ),
                    });
                }
            }
        }
    }

    // Member manifests: root package + crates/* + vendor/*.
    let mut members: Vec<std::path::PathBuf> = vec![root_manifest_path.clone()];
    for group in ["crates", "vendor"] {
        let dir = root.join(group);
        let Ok(rd) = fs::read_dir(&dir) else { continue };
        let mut paths: Vec<_> = rd.filter_map(|e| e.ok().map(|e| e.path())).collect();
        paths.sort();
        for p in paths {
            let manifest = p.join("Cargo.toml");
            if manifest.is_file() {
                members.push(manifest);
            }
        }
    }

    for manifest_path in &members {
        let rel = manifest_path
            .strip_prefix(root)
            .unwrap_or(manifest_path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = fs::read_to_string(manifest_path)?;
        let manifest = parse_manifest(&text);
        let is_vendor = rel.starts_with("vendor/");

        for section in DEP_SECTIONS {
            let Some(entries) = manifest.section(section) else {
                continue;
            };
            for e in entries {
                // `foo.workspace = true` parses as key `foo.workspace`.
                let (name, dotted_workspace) = match e.key.strip_suffix(".workspace") {
                    Some(base) => (base.to_string(), true),
                    None => (e.key.clone(), false),
                };
                let ok = (dotted_workspace && e.value == "true") || inherits_workspace(&e.value);
                if !ok {
                    out.push(DepViolation {
                        file: rel.clone(),
                        line: e.line,
                        rule: "XD001",
                        message: format!(
                            "dependency `{name}` does not inherit from the workspace — \
                             write `{name}.workspace = true` and declare it once in \
                             [workspace.dependencies]"
                        ),
                    });
                    continue;
                }
                if !workspace_deps.iter().any(|(n, _, _)| *n == name) {
                    out.push(DepViolation {
                        file: rel.clone(),
                        line: e.line,
                        rule: "XD002",
                        message: format!(
                            "dependency `{name}` is not declared in [workspace.dependencies]"
                        ),
                    });
                }
            }
        }

        // XD004: version unification via [workspace.package] inheritance.
        // Vendor stubs are exempt: they must carry the upstream crate's
        // own version to satisfy semver requirements.
        if rel == "Cargo.toml" || is_vendor {
            continue;
        }
        if let Some(entries) = manifest.section("package") {
            for key in INHERITED_PACKAGE_KEYS {
                let dotted = format!("{key}.workspace");
                let inherited = entries.iter().any(|e| {
                    (e.key == dotted && e.value == "true")
                        || (e.key == key && inherits_workspace(&e.value))
                });
                if !inherited {
                    let line = entries
                        .iter()
                        .find(|e| e.key == key || e.key == dotted)
                        .map(|e| e.line)
                        .unwrap_or(1);
                    out.push(DepViolation {
                        file: rel.clone(),
                        line,
                        rule: "XD004",
                        message: format!(
                            "package `{key}` is not inherited — use `{key}.workspace = true` \
                             so releases stay unified"
                        ),
                    });
                }
            }
        }
    }

    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_sections_and_inline_tables() {
        let m = parse_manifest(
            "[package]\nname = \"demo\"\n\n[dependencies]\n\
             a.workspace = true\nb = { workspace = true }\nc = \"1.0\" # pinned\n",
        );
        let deps = m.section("dependencies").expect("dependencies section");
        assert_eq!(deps.len(), 3);
        assert_eq!(deps[0].key, "a.workspace");
        assert_eq!(deps[0].value, "true");
        assert!(inherits_workspace(&deps[1].value));
        assert!(!inherits_workspace(&deps[2].value));
        assert_eq!(deps[2].line, 7);
    }

    #[test]
    fn local_path_overrides_are_not_inheritance() {
        assert!(!inherits_workspace("{ workspace = true, path = \"../x\" }"));
        assert!(!inherits_workspace("{ version = \"1\" }"));
        assert!(inherits_workspace("{ workspace = true }"));
    }

    #[test]
    fn comment_stripping_respects_strings() {
        assert_eq!(strip_comment("a = \"x # y\" # real"), "a = \"x # y\" ");
        assert_eq!(strip_comment("# whole line"), "");
    }

    #[test]
    fn inline_table_path_extraction() {
        assert_eq!(
            inline_table_str("{ path = \"vendor/rand\" }", "path"),
            Some("vendor/rand".into())
        );
        assert_eq!(inline_table_str("{ workspace = true }", "path"), None);
    }
}

//! Token-level scanner for Rust source.
//!
//! The lint engine works on a token stream rather than a full AST: the
//! build environment has no `syn`, and every rule the engine enforces is
//! expressible over tokens plus light context (attribute spans, brace
//! depth, comment positions). The lexer understands everything that can
//! confuse a naive text scan — nested block comments, raw strings, byte
//! strings, char-vs-lifetime disambiguation, numeric literal shapes — so
//! the rules never fire inside string or comment text.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// Integer literal (including suffixed like `3u8`).
    Int,
    /// Float literal (has `.`, an exponent, or an `f32`/`f64` suffix).
    Float,
    /// String-ish literal (`"…"`, `r#"…"#`, `b"…"`). `text` holds the
    /// unquoted inner bytes for ordinary (non-raw) strings.
    Str,
    /// Char or byte literal.
    Char,
    /// Punctuation. Multi-char operators that the rules care about
    /// (`==`, `!=`, `::`, `->`, `..`, `..=`) come through as one token.
    Punct,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token.
    pub kind: TokKind,
    /// Token text. For [`TokKind::Str`] this is the *inner* text with
    /// simple escapes resolved (enough to recognise the empty string).
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
}

/// One comment with its position; rules read waivers and doc status here.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Full comment text excluding the delimiters.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (equals `line` for `//` comments;
    /// block comments may span several).
    pub end_line: u32,
    /// Whether this is a doc comment (`///`, `//!`, `/** */`, `/*! */`).
    pub doc: bool,
}

/// A fully lexed file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in order.
    pub tokens: Vec<Tok>,
    /// Comments in order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    chars: Vec<char>,
    src: &'a str,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<char> {
        self.chars.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into tokens and comments. Unterminated constructs never
/// panic — the lexer consumes to end-of-file and returns what it has.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        src,
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek_at(1) == Some('/') => lex_line_comment(&mut cur, &mut out),
            '/' if cur.peek_at(1) == Some('*') => lex_block_comment(&mut cur, &mut out),
            '"' => lex_string(&mut cur, &mut out, line, col),
            'r' if matches!(cur.peek_at(1), Some('"' | '#')) && raw_string_follows(&cur, 1) => {
                cur.bump();
                lex_raw_string(&mut cur, &mut out, line, col);
            }
            'b' if cur.peek_at(1) == Some('"') => {
                cur.bump();
                lex_string(&mut cur, &mut out, line, col);
            }
            'b' if cur.peek_at(1) == Some('\'') => {
                cur.bump();
                lex_char(&mut cur, &mut out, line, col);
            }
            'b' if cur.peek_at(1) == Some('r') && raw_string_follows(&cur, 2) => {
                cur.bump();
                cur.bump();
                lex_raw_string(&mut cur, &mut out, line, col);
            }
            '\'' => lex_char_or_lifetime(&mut cur, &mut out, line, col),
            c if is_ident_start(c) => {
                let mut text = String::new();
                while let Some(c) = cur.peek() {
                    if is_ident_continue(c) {
                        text.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                    col,
                });
            }
            c if c.is_ascii_digit() => lex_number(&mut cur, &mut out, line, col),
            _ => lex_punct(&mut cur, &mut out, line, col),
        }
    }
    out
}

/// Whether the characters after the `r` at `cur.pos + off - 1` look like a
/// raw-string opener (`r"`, `r#"`, `r##"`, …) rather than an identifier
/// like `r#keyword`.
fn raw_string_follows(cur: &Cursor<'_>, mut off: usize) -> bool {
    while cur.peek_at(off) == Some('#') {
        off += 1;
    }
    cur.peek_at(off) == Some('"')
}

fn lex_line_comment(cur: &mut Cursor<'_>, out: &mut Lexed) {
    let line = cur.line;
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    let doc = (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
    let body = text
        .trim_start_matches('/')
        .trim_start_matches('!')
        .to_string();
    out.comments.push(Comment {
        text: body,
        line,
        end_line: line,
        doc,
    });
}

fn lex_block_comment(cur: &mut Cursor<'_>, out: &mut Lexed) {
    let line = cur.line;
    let mut text = String::new();
    cur.bump();
    cur.bump();
    let doc_probe: String = cur.chars[cur.pos..cur.pos + 1.min(cur.chars.len() - cur.pos)]
        .iter()
        .collect();
    let doc = doc_probe == "*" && cur.peek_at(1) != Some('/') || doc_probe == "!";
    let mut depth = 1u32;
    while let Some(c) = cur.peek() {
        if c == '/' && cur.peek_at(1) == Some('*') {
            depth += 1;
            cur.bump();
            cur.bump();
            text.push_str("/*");
        } else if c == '*' && cur.peek_at(1) == Some('/') {
            depth -= 1;
            cur.bump();
            cur.bump();
            if depth == 0 {
                break;
            }
            text.push_str("*/");
        } else {
            text.push(c);
            cur.bump();
        }
    }
    out.comments.push(Comment {
        text,
        line,
        end_line: cur.line,
        doc,
    });
}

fn lex_string(cur: &mut Cursor<'_>, out: &mut Lexed, line: u32, col: u32) {
    cur.bump(); // opening quote
    let mut inner = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '"' => break,
            '\\' => {
                if let Some(esc) = cur.bump() {
                    match esc {
                        'n' => inner.push('\n'),
                        't' => inner.push('\t'),
                        'r' => inner.push('\r'),
                        '0' => inner.push('\0'),
                        '\n' => {} // line continuation
                        other => inner.push(other),
                    }
                }
            }
            _ => inner.push(c),
        }
    }
    out.tokens.push(Tok {
        kind: TokKind::Str,
        text: inner,
        line,
        col,
    });
}

fn lex_raw_string(cur: &mut Cursor<'_>, out: &mut Lexed, line: u32, col: u32) {
    let mut hashes = 0usize;
    while cur.peek() == Some('#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    let closer: String = std::iter::once('"')
        .chain(std::iter::repeat('#').take(hashes))
        .collect();
    let mut inner = String::new();
    'outer: while let Some(c) = cur.peek() {
        if c == '"' {
            // Check for `"###...` closer of the right arity.
            for (i, want) in closer.chars().enumerate() {
                if cur.peek_at(i) != Some(want) {
                    inner.push(cur.bump().unwrap_or('"'));
                    continue 'outer;
                }
            }
            for _ in 0..closer.len() {
                cur.bump();
            }
            break;
        }
        inner.push(c);
        cur.bump();
    }
    out.tokens.push(Tok {
        kind: TokKind::Str,
        text: inner,
        line,
        col,
    });
}

fn lex_char(cur: &mut Cursor<'_>, out: &mut Lexed, line: u32, col: u32) {
    cur.bump(); // opening quote
    if cur.peek() == Some('\\') {
        cur.bump();
        cur.bump();
    } else {
        cur.bump();
    }
    if cur.peek() == Some('\'') {
        cur.bump();
    }
    out.tokens.push(Tok {
        kind: TokKind::Char,
        text: String::new(),
        line,
        col,
    });
}

fn lex_char_or_lifetime(cur: &mut Cursor<'_>, out: &mut Lexed, line: u32, col: u32) {
    // `'a'` is a char; `'a` (no closing quote right after one char) is a
    // lifetime; `'\n'` is a char.
    if cur.peek_at(1) == Some('\\') || cur.peek_at(2) == Some('\'') {
        lex_char(cur, out, line, col);
        return;
    }
    cur.bump(); // the quote
    let mut text = String::from("'");
    while let Some(c) = cur.peek() {
        if is_ident_continue(c) {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    out.tokens.push(Tok {
        kind: TokKind::Lifetime,
        text,
        line,
        col,
    });
}

fn lex_number(cur: &mut Cursor<'_>, out: &mut Lexed, line: u32, col: u32) {
    let mut text = String::new();
    let mut is_float = false;

    let radix_prefix = cur.peek() == Some('0')
        && matches!(cur.peek_at(1), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'));
    if radix_prefix {
        text.push(cur.bump().unwrap_or('0'));
        text.push(cur.bump().unwrap_or('x'));
        while let Some(c) = cur.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
    } else {
        while let Some(c) = cur.peek() {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        // Fractional part: a dot followed by a digit (so `0..10` stays
        // two ints and a range operator).
        if cur.peek() == Some('.') && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            text.push('.');
            cur.bump();
            while let Some(c) = cur.peek() {
                if c.is_ascii_digit() || c == '_' {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
        }
        // Exponent.
        if matches!(cur.peek(), Some('e' | 'E'))
            && (cur.peek_at(1).is_some_and(|c| c.is_ascii_digit())
                || (matches!(cur.peek_at(1), Some('+' | '-'))
                    && cur.peek_at(2).is_some_and(|c| c.is_ascii_digit())))
        {
            is_float = true;
            text.push(cur.bump().unwrap_or('e'));
            if matches!(cur.peek(), Some('+' | '-')) {
                text.push(cur.bump().unwrap_or('+'));
            }
            while let Some(c) = cur.peek() {
                if c.is_ascii_digit() || c == '_' {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
        }
        // Suffix (`u8`, `f64`, …).
        let mut suffix = String::new();
        while let Some(c) = cur.peek() {
            if is_ident_continue(c) {
                suffix.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        if suffix == "f32" || suffix == "f64" {
            is_float = true;
        }
        text.push_str(&suffix);
    }

    out.tokens.push(Tok {
        kind: if is_float {
            TokKind::Float
        } else {
            TokKind::Int
        },
        text,
        line,
        col,
    });
}

fn lex_punct(cur: &mut Cursor<'_>, out: &mut Lexed, line: u32, col: u32) {
    let c = cur.bump().unwrap_or(' ');
    let mut text = String::from(c);
    // Join the few multi-char operators the rules inspect, so `!=` never
    // looks like a macro bang and `..` never looks like member access.
    let joined = match (c, cur.peek()) {
        ('=', Some('=')) | ('!', Some('=')) | ('<', Some('=')) | ('>', Some('=')) => true,
        (':', Some(':')) => true,
        ('-', Some('>')) | ('=', Some('>')) => true,
        ('.', Some('.')) => true,
        _ => false,
    };
    if joined {
        if let Some(n) = cur.bump() {
            text.push(n);
        }
        if text == ".." && cur.peek() == Some('=') {
            text.push('=');
            cur.bump();
        }
    }
    out.tokens.push(Tok {
        kind: TokKind::Punct,
        text,
        line,
        col,
    });
}

// Unused-field silencer: `src` is kept for future span extraction.
impl<'a> Cursor<'a> {
    #[allow(dead_code)]
    fn source(&self) -> &'a str {
        self.src
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn ranges_are_not_floats() {
        let ks = kinds("0..10 0.5..0.9 1..=9u32");
        assert_eq!(ks[0], (TokKind::Int, "0".into()));
        assert_eq!(ks[1], (TokKind::Punct, "..".into()));
        assert_eq!(ks[2], (TokKind::Int, "10".into()));
        assert_eq!(ks[3], (TokKind::Float, "0.5".into()));
        assert_eq!(ks[5], (TokKind::Float, "0.9".into()));
        assert_eq!(ks[7], (TokKind::Punct, "..=".into()));
        assert_eq!(ks[8], (TokKind::Int, "9u32".into()));
    }

    #[test]
    fn floats_by_suffix_and_exponent() {
        let ks = kinds("1e6 2f64 0x1E 3.0");
        assert_eq!(ks[0].0, TokKind::Float);
        assert_eq!(ks[1].0, TokKind::Float);
        assert_eq!(ks[2].0, TokKind::Int);
        assert_eq!(ks[3].0, TokKind::Float);
    }

    #[test]
    fn strings_and_rules_inside_them_are_inert() {
        let lexed = lex(r#"let s = "a.unwrap() // not a comment";"#);
        assert_eq!(lexed.comments.len(), 0);
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("unwrap"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let lexed = lex(r###"let s = r#"has "quotes" inside"#;"###);
        let s = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokKind::Str)
            .expect("string token");
        assert_eq!(s.text, r#"has "quotes" inside"#);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let ks = kinds("'a 'x' '\\n' 'static");
        assert_eq!(ks[0].0, TokKind::Lifetime);
        assert_eq!(ks[1].0, TokKind::Char);
        assert_eq!(ks[2].0, TokKind::Char);
        assert_eq!(ks[3].0, TokKind::Lifetime);
    }

    #[test]
    fn nested_block_comments_and_docs() {
        let lexed = lex("/* outer /* inner */ still */ /// doc line\nfn x() {}");
        assert_eq!(lexed.comments.len(), 2);
        assert!(!lexed.comments[0].doc);
        assert!(lexed.comments[1].doc);
    }

    #[test]
    fn comment_end_lines_span_blocks() {
        let lexed = lex("/* one\n   two\n   three */ x // tail\n");
        assert_eq!((lexed.comments[0].line, lexed.comments[0].end_line), (1, 3));
        assert_eq!((lexed.comments[1].line, lexed.comments[1].end_line), (3, 3));
    }

    #[test]
    fn positions_are_one_based() {
        let lexed = lex("a\n  b");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }

    #[test]
    fn equality_operators_join() {
        let ks = kinds("a == b != c ! d");
        assert_eq!(ks[1], (TokKind::Punct, "==".into()));
        assert_eq!(ks[3], (TokKind::Punct, "!=".into()));
        assert_eq!(ks[5], (TokKind::Punct, "!".into()));
    }
}

//! Brace-matched scope tree over the lexed token stream.
//!
//! The v2 lint engine needs more than a flat token stream: "a lock guard
//! is live in this scope", "this index expression sits inside a reader
//! function", "this `unsafe` block spans lines 40–55". This module builds
//! that structure in one pass: every `{ … }` region becomes a [`Scope`]
//! node, classified by the construct that introduced it (`fn`, `impl`,
//! `mod`, `trait`, closure, `unsafe` block, or a plain block), with
//! `#[cfg(test)]` / `#[test]` regions tracked structurally — the gated
//! item's scope carries `test = true` and every token inside it is masked,
//! replacing the older item-end heuristic.
//!
//! The lexer has already removed everything that can confuse brace
//! matching — braces inside string literals, char literals (`'{'`),
//! comments, and raw strings never reach the token stream — so matching
//! here is exact. Macro bodies keep balanced delimiters by Rust's grammar
//! and simply contribute ordinary block scopes.
//!
//! Known limits (documented, pinned in tests): a const-generic brace in a
//! return type (`fn f() -> [u8; { N }]`) would claim the pending `fn`
//! early, and a closure whose body is a bare expression (no braces) does
//! not get its own scope. Neither shape occurs in this workspace.

use crate::lexer::{Lexed, Tok, TokKind};

/// What introduced a scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeKind {
    /// The whole file.
    Root,
    /// A function body (`fn name(…) { … }`).
    Fn,
    /// A closure body (`|args| { … }`).
    Closure,
    /// An `unsafe { … }` block.
    Unsafe,
    /// An `impl … { … }` block.
    Impl,
    /// A `trait … { … }` block.
    Trait,
    /// A `mod name { … }` block.
    Mod,
    /// Any other braced region: struct/enum bodies, match/if/loop blocks,
    /// struct literals, macro braces.
    Block,
}

impl ScopeKind {
    /// Short display name used by [`ScopeTree::render`].
    pub fn label(self) -> &'static str {
        match self {
            ScopeKind::Root => "root",
            ScopeKind::Fn => "fn",
            ScopeKind::Closure => "closure",
            ScopeKind::Unsafe => "unsafe",
            ScopeKind::Impl => "impl",
            ScopeKind::Trait => "trait",
            ScopeKind::Mod => "mod",
            ScopeKind::Block => "block",
        }
    }
}

/// One node of the scope tree.
#[derive(Debug, Clone)]
pub struct Scope {
    /// What introduced the scope.
    pub kind: ScopeKind,
    /// Item name for `fn` / `mod` / `impl` / `trait` scopes.
    pub name: Option<String>,
    /// Token index of the opening `{` (0 for the root).
    pub open: usize,
    /// Token index of the matching `}`; `tokens.len()` when unterminated
    /// (and always for the root).
    pub close: usize,
    /// 1-based line of the introducing token (`fn`, `unsafe`, the `{`…).
    pub line: u32,
    /// 1-based column of the introducing token.
    pub col: u32,
    /// Whether the scope sits inside a `#[cfg(test)]` / `#[test]` item.
    pub test: bool,
    /// Whether the construct carries the `unsafe` qualifier
    /// (`unsafe fn`, `unsafe impl`) — `Unsafe` block scopes are
    /// implicitly unsafe.
    pub is_unsafe: bool,
    /// Parent scope index (`None` for the root).
    pub parent: Option<usize>,
    /// Child scope indices in source order.
    pub children: Vec<usize>,
}

/// The scope tree plus per-token derived maps.
#[derive(Debug)]
pub struct ScopeTree {
    /// All scopes; index 0 is the root.
    pub scopes: Vec<Scope>,
    /// `enclosing[i]` is the innermost scope containing token `i`.
    pub enclosing: Vec<usize>,
    /// `test_mask[i]` is true when token `i` belongs to a test-gated
    /// item, including the gating attribute tokens themselves.
    pub test_mask: Vec<bool>,
    /// Inclusive line spans covered by attributes (`#[…]` / `#![…]`).
    pub attr_spans: Vec<(u32, u32)>,
}

/// Keywords that can precede `[` without making it an index expression
/// (`let [a, b] = …`, `for x in [1, 2]`, `return [0; 4]`, …).
const NON_POSTFIX_KEYWORDS: [&str; 24] = [
    "let", "mut", "ref", "in", "if", "while", "match", "return", "else", "move", "static", "const",
    "as", "dyn", "impl", "for", "where", "use", "pub", "break", "continue", "type", "enum",
    "struct",
];

/// Whether the token can end an expression, making a following `[` an
/// index/slice operation and a following `|` a binary operator.
pub fn ends_expression(t: &Tok) -> bool {
    match t.kind {
        TokKind::Ident => !NON_POSTFIX_KEYWORDS.contains(&t.text.as_str()),
        TokKind::Int | TokKind::Float | TokKind::Str | TokKind::Char | TokKind::Lifetime => true,
        TokKind::Punct => matches!(t.text.as_str(), ")" | "]" | "}" | "?"),
    }
}

/// Pending item classification between its keyword and its `{`.
struct Pending {
    kind: ScopeKind,
    name: Option<String>,
    line: u32,
    col: u32,
    is_unsafe: bool,
}

/// Build the scope tree for a lexed file. Never panics: unbalanced
/// braces close at end-of-file.
pub fn build(lexed: &Lexed) -> ScopeTree {
    let toks = &lexed.tokens;
    let mut scopes = vec![Scope {
        kind: ScopeKind::Root,
        name: None,
        open: 0,
        close: toks.len(),
        line: 1,
        col: 1,
        test: false,
        is_unsafe: false,
        parent: None,
        children: Vec::new(),
    }];
    let mut stack: Vec<usize> = vec![0];
    let mut enclosing = vec![0usize; toks.len()];
    let mut test_mask = vec![false; toks.len()];
    let mut attr_spans = Vec::new();

    let mut pending: Option<Pending> = None;
    // Token index of the `#[cfg(test)]`-ish attribute waiting for its item.
    let mut pending_test: Option<usize> = None;
    // Scope index -> attribute token that gated it (for mask back-fill).
    let mut gated_by: Vec<Option<usize>> = vec![None];
    let mut unsafe_qualifier = false;
    let mut bracket_depth = 0i32;

    let mut i = 0usize;
    while i < toks.len() {
        let top = *stack.last().unwrap_or(&0);
        enclosing[i] = top;
        let t = &toks[i];

        // Attributes: `#[…]` / `#![…]` — record the span, note test gates.
        if t.kind == TokKind::Punct && t.text == "#" && is_attr_open(toks, i) {
            let open = if tok_text(toks, i + 1) == Some("!") {
                i + 2
            } else {
                i + 1
            };
            let close = matching_square(toks, open).unwrap_or(toks.len() - 1);
            for slot in enclosing.iter_mut().take(close + 1).skip(i) {
                *slot = top;
            }
            attr_spans.push((t.line, toks[close].line));
            if pending_test.is_none() && attr_gates_tests(&toks[open + 1..close]) {
                pending_test = Some(i);
            }
            i = close + 1;
            continue;
        }

        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, "fn") => {
                let name = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident);
                pending = Some(Pending {
                    kind: ScopeKind::Fn,
                    name: name.map(|n| n.text.clone()),
                    line: t.line,
                    col: t.col,
                    is_unsafe: unsafe_qualifier,
                });
                unsafe_qualifier = false;
            }
            (TokKind::Ident, "impl") => {
                pending = Some(Pending {
                    kind: ScopeKind::Impl,
                    name: impl_name(toks, i + 1),
                    line: t.line,
                    col: t.col,
                    is_unsafe: unsafe_qualifier,
                });
                unsafe_qualifier = false;
            }
            (TokKind::Ident, "trait") => {
                let name = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident);
                pending = Some(Pending {
                    kind: ScopeKind::Trait,
                    name: name.map(|n| n.text.clone()),
                    line: t.line,
                    col: t.col,
                    is_unsafe: unsafe_qualifier,
                });
                unsafe_qualifier = false;
            }
            (TokKind::Ident, "mod") => {
                let name = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident);
                pending = Some(Pending {
                    kind: ScopeKind::Mod,
                    name: name.map(|n| n.text.clone()),
                    line: t.line,
                    col: t.col,
                    is_unsafe: false,
                });
            }
            (TokKind::Ident, "unsafe") => {
                if tok_text(toks, i + 1) == Some("{") {
                    pending = Some(Pending {
                        kind: ScopeKind::Unsafe,
                        name: None,
                        line: t.line,
                        col: t.col,
                        is_unsafe: true,
                    });
                } else {
                    // `unsafe fn` / `unsafe impl` / `unsafe trait`.
                    unsafe_qualifier = true;
                }
            }
            (TokKind::Punct, "|") => {
                if let Some(body_open) = closure_body_brace(toks, i) {
                    if pending.is_none() {
                        pending = Some(Pending {
                            kind: ScopeKind::Closure,
                            name: None,
                            line: t.line,
                            col: t.col,
                            is_unsafe: false,
                        });
                        // Jump to just before the body brace so an inner
                        // `|` in the parameter list is not re-examined.
                        for slot in enclosing.iter_mut().take(body_open).skip(i) {
                            *slot = top;
                        }
                        i = body_open;
                        continue;
                    }
                }
            }
            (TokKind::Punct, "[") => bracket_depth += 1,
            (TokKind::Punct, "]") => bracket_depth -= 1,
            (TokKind::Punct, "{") => {
                let p = pending.take().unwrap_or(Pending {
                    kind: ScopeKind::Block,
                    name: None,
                    line: t.line,
                    col: t.col,
                    is_unsafe: false,
                });
                let parent = top;
                let test = scopes[parent].test || pending_test.is_some();
                let ix = scopes.len();
                scopes.push(Scope {
                    kind: p.kind,
                    name: p.name,
                    open: i,
                    close: toks.len(),
                    line: p.line,
                    col: p.col,
                    test,
                    is_unsafe: p.is_unsafe,
                    parent: Some(parent),
                    children: Vec::new(),
                });
                scopes[parent].children.push(ix);
                gated_by.push(pending_test.take());
                stack.push(ix);
                enclosing[i] = ix;
            }
            (TokKind::Punct, "}") => {
                if stack.len() > 1 {
                    let ix = stack.pop().unwrap_or(0);
                    scopes[ix].close = i;
                    enclosing[i] = ix;
                    if let Some(attr_start) = gated_by.get(ix).copied().flatten() {
                        for slot in test_mask.iter_mut().take(i + 1).skip(attr_start) {
                            *slot = true;
                        }
                    }
                }
            }
            (TokKind::Punct, ";") if bracket_depth == 0 => {
                // A `;` before any brace terminates the pending item:
                // trait method declarations (`fn f();`) and brace-less
                // gated items (`#[cfg(test)] mod tests;`).
                pending = None;
                if let Some(attr_start) = pending_test.take() {
                    for slot in test_mask.iter_mut().take(i + 1).skip(attr_start) {
                        *slot = true;
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }

    // Tokens inside any scope flagged `test` are masked even when the
    // gating attribute sat on an ancestor.
    for (ix, slot) in enclosing.iter().enumerate() {
        if scopes.get(*slot).is_some_and(|s| s.test) {
            test_mask[ix] = true;
        }
    }

    ScopeTree {
        scopes,
        enclosing,
        test_mask,
        attr_spans,
    }
}

impl ScopeTree {
    /// Innermost scope containing token `i` (root when out of range).
    pub fn scope_of(&self, i: usize) -> &Scope {
        let ix = self.enclosing.get(i).copied().unwrap_or(0);
        self.scopes.get(ix).unwrap_or(&self.scopes[0])
    }

    /// Innermost enclosing `fn` or closure scope of token `i`, if any.
    pub fn enclosing_fn(&self, i: usize) -> Option<&Scope> {
        let mut ix = self.enclosing.get(i).copied().unwrap_or(0);
        loop {
            let s = self.scopes.get(ix)?;
            if matches!(s.kind, ScopeKind::Fn | ScopeKind::Closure) {
                return Some(s);
            }
            ix = s.parent?;
        }
    }

    /// Iterate scopes of a given kind.
    pub fn of_kind(&self, kind: ScopeKind) -> impl Iterator<Item = &Scope> {
        self.scopes.iter().filter(move |s| s.kind == kind)
    }

    /// Render the tree as indented text — one line per scope with kind,
    /// name, token span, line span, and flags. The format is pinned
    /// byte-exact against a real workspace file in the fixture tests, so
    /// treat changes as breaking.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_node(0, 0, &mut out);
        out
    }

    fn render_node(&self, ix: usize, depth: usize, out: &mut String) {
        use std::fmt::Write as _;
        let Some(s) = self.scopes.get(ix) else { return };
        for _ in 0..depth {
            out.push_str("  ");
        }
        let _ = write!(out, "{}", s.kind.label());
        if let Some(name) = &s.name {
            let _ = write!(out, " {name}");
        }
        let _ = write!(out, " @{}:{} tok[{}..{}]", s.line, s.col, s.open, s.close);
        if s.test {
            out.push_str(" test");
        }
        if s.is_unsafe {
            out.push_str(" unsafe");
        }
        out.push('\n');
        for child in &s.children {
            self.render_node(*child, depth + 1, out);
        }
    }
}

fn tok_text(toks: &[Tok], i: usize) -> Option<&str> {
    toks.get(i).map(|t| t.text.as_str())
}

fn is_attr_open(toks: &[Tok], i: usize) -> bool {
    match tok_text(toks, i + 1) {
        Some("[") => true,
        Some("!") => tok_text(toks, i + 2) == Some("["),
        _ => false,
    }
}

/// Index of the `]` matching the `[` at `open`.
fn matching_square(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Whether the attribute body gates the following item to test builds:
/// it mentions `test` without a `not(…)` or `cfg_attr` wrapper.
fn attr_gates_tests(body: &[Tok]) -> bool {
    let mut saw_test = false;
    for t in body {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "cfg_attr" | "not" => return false,
            "test" => saw_test = true,
            _ => {}
        }
    }
    saw_test
}

/// First identifier of the implemented type/trait, skipping the generic
/// parameter list (`impl<V> PrefixTrie<V>` → `PrefixTrie`).
fn impl_name(toks: &[Tok], mut i: usize) -> Option<String> {
    if tok_text(toks, i) == Some("<") {
        let mut depth = 0i32;
        while let Some(t) = toks.get(i) {
            match t.text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    toks.get(i)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
}

/// If the `|` at `i` opens a closure parameter list whose body is a
/// braced block, return the index of that `{`.
fn closure_body_brace(toks: &[Tok], i: usize) -> Option<usize> {
    // Expression position: a `|` after an expression end is bitwise-or
    // (or a pattern alternative), not a closure.
    if i > 0 && ends_expression(&toks[i - 1]) {
        return None;
    }
    // Scan for the closing `|` of the parameter list at bracket depth 0.
    let mut depth = 0i32;
    let mut j = i + 1;
    while let Some(t) = toks.get(j) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" | ">" => depth -= 1,
                "|" if depth == 0 => {
                    return (tok_text(toks, j + 1) == Some("{")).then_some(j + 1);
                }
                ";" | "{" => return None, // ran off the statement
                _ => {}
            }
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> ScopeTree {
        build(&lex(src))
    }

    fn kinds(t: &ScopeTree) -> Vec<(ScopeKind, Option<String>)> {
        t.scopes.iter().map(|s| (s.kind, s.name.clone())).collect()
    }

    #[test]
    fn fn_impl_mod_scopes_are_classified() {
        let t = tree("mod m { impl<V> Foo<V> { fn bar(&self) { let x = 1; } } }");
        let ks = kinds(&t);
        assert_eq!(ks[0], (ScopeKind::Root, None));
        assert_eq!(ks[1], (ScopeKind::Mod, Some("m".into())));
        assert_eq!(ks[2], (ScopeKind::Impl, Some("Foo".into())));
        assert_eq!(ks[3], (ScopeKind::Fn, Some("bar".into())));
        // Nesting: root -> mod -> impl -> fn.
        assert_eq!(t.scopes[3].parent, Some(2));
        assert_eq!(t.scopes[2].parent, Some(1));
    }

    #[test]
    fn braces_are_matched_exactly() {
        let t = tree("fn a() { if x { y(); } else { z(); } } fn b() {}");
        let fns: Vec<_> = t.of_kind(ScopeKind::Fn).collect();
        assert_eq!(fns.len(), 2);
        let a = fns[0];
        let blocks: Vec<_> = t.of_kind(ScopeKind::Block).collect();
        assert_eq!(blocks.len(), 2, "if and else blocks");
        assert!(blocks.iter().all(|b| b.open > a.open && b.close < a.close));
    }

    #[test]
    fn unsafe_block_and_unsafe_fn() {
        let t = tree("unsafe fn f() { unsafe { g(); } } unsafe impl Send for X {}");
        let f = t.of_kind(ScopeKind::Fn).next().expect("fn scope");
        assert!(f.is_unsafe);
        let b = t.of_kind(ScopeKind::Unsafe).next().expect("unsafe block");
        assert!(b.is_unsafe && b.parent == Some(1));
        let im = t.of_kind(ScopeKind::Impl).next().expect("impl scope");
        assert!(im.is_unsafe);
        assert_eq!(im.name.as_deref(), Some("Send"));
    }

    #[test]
    fn cfg_test_marks_scopes_structurally() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let t = tree(src);
        let live = t.of_kind(ScopeKind::Fn).next().expect("live fn");
        assert!(!live.test);
        let m = t.of_kind(ScopeKind::Mod).next().expect("tests mod");
        assert!(m.test);
        let helper = t.of_kind(ScopeKind::Fn).nth(1).expect("helper fn");
        assert!(helper.test, "scopes inside a gated item inherit test");
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let t = tree("#[cfg(not(test))]\nfn live() { body(); }");
        assert!(!t.of_kind(ScopeKind::Fn).next().expect("fn").test);
        assert!(t.test_mask.iter().all(|m| !m));
    }

    #[test]
    fn braceless_gated_items_mask_to_semicolon() {
        let src = "#[cfg(test)]\nmod tests;\nfn live() {}";
        let t = tree(src);
        let lexed = lex(src);
        // Every token through the `;` is masked; `fn live` is not.
        let semi = lexed
            .tokens
            .iter()
            .position(|t| t.text == ";")
            .expect("semicolon");
        assert!(t.test_mask[..=semi].iter().all(|m| *m));
        assert!(t.test_mask[semi + 1..].iter().all(|m| !m));
    }

    #[test]
    fn closures_with_braced_bodies_get_scopes() {
        let t = tree("fn f() { run(|x| { x + 1 }); let g = || { 2 }; let h = |a, b| a | b; }");
        let closures: Vec<_> = t.of_kind(ScopeKind::Closure).collect();
        assert_eq!(closures.len(), 2, "expression-bodied closure has no scope");
    }

    #[test]
    fn bitwise_or_is_not_a_closure() {
        let t = tree("fn f(a: u32, b: u32) -> u32 { a | b }");
        assert_eq!(t.of_kind(ScopeKind::Closure).count(), 0);
    }

    #[test]
    fn braces_in_literals_do_not_break_matching() {
        let src = "fn f() { let a = \"} { }\"; let b = '{'; let c = r#\"{{{\"#; }";
        let t = tree(src);
        let f = t.of_kind(ScopeKind::Fn).next().expect("fn scope");
        let lexed = lex(src);
        assert_eq!(
            f.close,
            lexed.tokens.len() - 1,
            "body closes at the real brace"
        );
        assert_eq!(t.scopes.len(), 2, "root + fn only");
    }

    #[test]
    fn trait_method_declarations_do_not_leak_pending_fn() {
        let t = tree("trait T { fn a(&self); fn b(&self) { default(); } }");
        let fns: Vec<_> = t.of_kind(ScopeKind::Fn).collect();
        assert_eq!(fns.len(), 1, "only the defaulted method has a body scope");
        assert_eq!(fns[0].name.as_deref(), Some("b"));
    }

    #[test]
    fn array_type_semicolons_do_not_cancel_pending() {
        let t = tree("fn f(x: [u8; 4]) { body(); }");
        let fns: Vec<_> = t.of_kind(ScopeKind::Fn).collect();
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name.as_deref(), Some("f"));
    }

    #[test]
    fn enclosing_fn_walks_up_through_blocks() {
        let src = "fn outer() { if a { inner_call(); } }";
        let t = tree(src);
        let lexed = lex(src);
        let call = lexed
            .tokens
            .iter()
            .position(|t| t.text == "inner_call")
            .expect("call token");
        let f = t.enclosing_fn(call).expect("enclosing fn");
        assert_eq!(f.name.as_deref(), Some("outer"));
    }

    #[test]
    fn unbalanced_braces_close_at_eof() {
        let t = tree("fn f() { let x = 1;");
        let f = t.of_kind(ScopeKind::Fn).next().expect("fn scope");
        assert_eq!(f.close, lex("fn f() { let x = 1;").tokens.len());
    }

    #[test]
    fn render_is_stable() {
        let t = tree("fn f() { g(); }\n#[cfg(test)]\nmod tests { fn t() {} }\n");
        assert_eq!(
            t.render(),
            "root @1:1 tok[0..27]\n  fn f @1:1 tok[4..9]\n  mod tests @3:1 tok[19..26] test\n    fn t @3:13 tok[24..25] test\n"
        );
    }
}

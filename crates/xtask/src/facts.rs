//! Intra-function fact extraction over the scope tree.
//!
//! Where [`crate::scope`] answers "what region am I in", this pass
//! answers "what is live here": which lock guards a statement holds,
//! which in-file functions return `Result`, where index/slice
//! expressions sit, and where `unsafe` code lives. The RG010–RG012
//! rules and the `unsafe-audit` subcommand consume these facts instead
//! of re-deriving them token by token.
//!
//! All of it is deliberately intra-file: the engine has no crate graph,
//! so a fact is only recorded when the evidence is in the same source
//! file. That keeps every rule's false-positive story auditable — a
//! guard binding is a `let` whose right-hand side calls `.lock()` /
//! `.read()` / `.write()` with no arguments, a fallible callee is a
//! `fn` declared in this file with `Result` in its return type, and so
//! on. Cross-file helpers (e.g. a free function that returns a
//! `MutexGuard`) are out of scope by design and documented in
//! CONTRIBUTING.md.

use crate::lexer::{Lexed, Tok, TokKind};
use crate::scope::{ends_expression, ScopeKind, ScopeTree};

/// A live lock-guard binding: `let g = m.lock()…;`, `if let Ok(g) =
/// m.lock()`, `let Ok(g) = m.lock() else { … };`.
#[derive(Debug, Clone)]
pub struct GuardBinding {
    /// The bound variable name.
    pub name: String,
    /// Acquisition method: `lock`, `read`, or `write`.
    pub method: String,
    /// 1-based line of the binding.
    pub line: u32,
    /// 1-based column of the binding.
    pub col: u32,
    /// Token index of the `let` keyword.
    pub binding_tok: usize,
    /// First token index at which the guard is live.
    pub start: usize,
    /// Token index at which liveness ends: the enclosing scope's `}`,
    /// or an explicit `drop(name)` call.
    pub end: usize,
}

/// What shape an indexing site takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// `x[i]` with a non-range index expression.
    Index,
    /// `x[a..b]` / `x[..n]` — range slicing.
    Slice,
    /// A `*_unchecked(…)` call (`get_unchecked`, `slice_unchecked`, …).
    UncheckedCall,
}

/// One index/slice expression in expression position.
#[derive(Debug, Clone)]
pub struct IndexSite {
    /// Token index of the `[` (or the `*_unchecked` identifier).
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Index, slice, or unchecked call.
    pub kind: IndexKind,
    /// The index expression is a single integer literal (`x[0]`) whose
    /// bounds the compiler can see — exempt from RG010.
    pub literal: bool,
    /// Short source rendering for diagnostics (`image[at..at + 12]`).
    pub snippet: String,
}

/// One `unsafe` occurrence, for `cargo xtask unsafe-audit`.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// `"unsafe block"`, `"unsafe fn"`, `"unsafe impl"`, `"unsafe trait"`.
    pub kind: &'static str,
    /// Item name when the site is a fn/impl/trait.
    pub name: Option<String>,
    /// Whether a `// SAFETY:` comment sits on or directly above the site.
    pub has_safety_comment: bool,
    /// Whether the site is inside test-gated code.
    pub test: bool,
}

/// The extracted facts for one file.
#[derive(Debug, Default)]
pub struct Facts {
    /// Live lock-guard bindings with their liveness ranges.
    pub guards: Vec<GuardBinding>,
    /// Names of functions declared in this file whose return type
    /// mentions `Result`.
    pub fallible_fns: Vec<String>,
    /// Index/slice expressions in expression position.
    pub index_sites: Vec<IndexSite>,
}

/// Methods whose no-argument call form acquires a lock guard.
const GUARD_METHODS: [&str; 3] = ["lock", "read", "write"];

/// How many lines above an `unsafe` site a `SAFETY:` comment may end:
/// directly above (1) or trailing on the same line (0). Anything
/// further away belongs to some other site.
const SAFETY_COMMENT_REACH: u32 = 1;

/// Extract all facts for a lexed file.
pub fn build(lexed: &Lexed, tree: &ScopeTree) -> Facts {
    let toks = &lexed.tokens;
    let mut facts = Facts {
        guards: Vec::new(),
        fallible_fns: fallible_fns(toks),
        index_sites: index_sites(toks),
    };
    collect_guards(toks, tree, &mut facts.guards);
    facts
}

/// Names of `fn`s declared in the file whose return type mentions
/// `Result` (covers `io::Result<T>` and aliases spelled `Result`).
fn fallible_fns(toks: &[Tok]) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "fn") {
            continue;
        }
        let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        let mut saw_arrow = false;
        let mut fallible = false;
        let mut depth = 0i32;
        for t in toks.iter().skip(i + 2) {
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "(" | "[") => depth += 1,
                (TokKind::Punct, ")" | "]") => depth -= 1,
                (TokKind::Punct, "->") if depth == 0 => saw_arrow = true,
                (TokKind::Punct, "{" | ";") if depth == 0 => break,
                (TokKind::Ident, "Result") if saw_arrow => fallible = true,
                _ => {}
            }
        }
        if fallible && !out.contains(&name.text) {
            out.push(name.text.clone());
        }
    }
    out
}

/// All index/slice expressions in expression position, plus
/// `*_unchecked(` calls.
fn index_sites(toks: &[Tok]) -> Vec<IndexSite> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && (t.text.ends_with("_unchecked") || t.text.ends_with("_unchecked_mut"))
            && tok_text(toks, i + 1) == Some("(")
        {
            out.push(IndexSite {
                tok: i,
                line: t.line,
                col: t.col,
                kind: IndexKind::UncheckedCall,
                literal: false,
                snippet: format!("{}(…)", t.text),
            });
            continue;
        }
        if !(t.kind == TokKind::Punct && t.text == "[") {
            continue;
        }
        // Postfix position only: `expr[…]`. Attribute brackets (`#[`),
        // array types (`: [u8; 4]`), array literals (`= [0; 4]`), and
        // slice patterns (`let [a, b] =`) all have a non-expression
        // token before the `[`.
        if i == 0 || !ends_expression(&toks[i - 1]) {
            continue;
        }
        let Some(close) = matching_square(toks, i) else {
            continue;
        };
        let inner = &toks[i + 1..close];
        let literal = inner.len() == 1 && inner[0].kind == TokKind::Int;
        let kind = if inner
            .iter()
            .any(|t| t.kind == TokKind::Punct && (t.text == ".." || t.text == "..="))
        {
            IndexKind::Slice
        } else {
            IndexKind::Index
        };
        out.push(IndexSite {
            tok: i,
            line: t.line,
            col: t.col,
            kind,
            literal,
            snippet: render_snippet(toks, i, close),
        });
    }
    out
}

/// `base[inner]` rendered from tokens, truncated to keep diagnostics
/// single-line.
fn render_snippet(toks: &[Tok], open: usize, close: usize) -> String {
    let mut s = String::new();
    if open > 0 {
        s.push_str(&toks[open - 1].text);
    }
    s.push('[');
    for (n, t) in toks[open + 1..close].iter().enumerate() {
        if n > 0 && glue_needs_space(t) {
            s.push(' ');
        }
        s.push_str(&t.text);
        if s.len() > 40 {
            s.push('…');
            break;
        }
    }
    s.push(']');
    s
}

fn glue_needs_space(t: &Tok) -> bool {
    t.kind != TokKind::Punct || matches!(t.text.as_str(), "+" | "-" | "*" | "/")
}

/// Collect guard bindings with liveness ranges.
fn collect_guards(toks: &[Tok], tree: &ScopeTree, out: &mut Vec<GuardBinding>) {
    for i in 0..toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "let") {
            continue;
        }
        // `if let` / `while let` bind into the *following block* rather
        // than the rest of the current scope.
        let block_form = i > 0
            && toks[i - 1].kind == TokKind::Ident
            && matches!(toks[i - 1].text.as_str(), "if" | "while");

        let Some((name, after_pat)) = binding_name(toks, i + 1) else {
            continue;
        };
        // Find the `=` introducing the right-hand side.
        let Some(eq) = (after_pat..toks.len().min(after_pat + 12))
            .find(|&j| toks[j].kind == TokKind::Punct && toks[j].text == "=")
        else {
            continue;
        };
        // Scan the RHS for a no-argument `.lock()` / `.read()` /
        // `.write()` up to the statement terminator.
        let term = if block_form { "{" } else { ";" };
        let mut depth = 0i32;
        let mut method: Option<&str> = None;
        let mut term_ix = None;
        let mut j = eq + 1;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" if !(depth == 0 && t.text == term) => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    _ => {}
                }
                if t.text == term && depth == 0 {
                    term_ix = Some(j);
                    break;
                }
            }
            if t.text == "."
                && toks.get(j + 1).is_some_and(|m| {
                    m.kind == TokKind::Ident && GUARD_METHODS.contains(&m.text.as_str())
                })
                && tok_text(toks, j + 2) == Some("(")
                && tok_text(toks, j + 3) == Some(")")
            {
                method = Some(match toks[j + 1].text.as_str() {
                    "lock" => "lock",
                    "read" => "read",
                    _ => "write",
                });
            }
            j += 1;
        }
        let (Some(method), Some(term_ix)) = (method, term_ix) else {
            continue;
        };
        if name == "_" {
            continue; // dropped immediately, never live
        }

        let (start, mut end) = if block_form {
            // Liveness is exactly the block the pattern guards.
            match tree.scopes.iter().find(|s| s.open == term_ix) {
                Some(s) => (s.open, s.close),
                None => (term_ix, toks.len()),
            }
        } else {
            (term_ix + 1, tree.scope_of(i).close)
        };
        // An explicit `drop(name)` ends liveness early.
        for k in start..end.min(toks.len()) {
            if toks[k].kind == TokKind::Ident
                && toks[k].text == "drop"
                && tok_text(toks, k + 1) == Some("(")
                && toks.get(k + 2).is_some_and(|t| t.text == name)
                && tok_text(toks, k + 3) == Some(")")
            {
                end = k;
                break;
            }
        }
        out.push(GuardBinding {
            name: name.to_string(),
            method: method.to_string(),
            line: toks[i].line,
            col: toks[i].col,
            binding_tok: i,
            start,
            end,
        });
    }
}

/// The identifier bound by the pattern starting at `j`, plus the index
/// just past the pattern. Handles `name`, `mut name`, `Ok(name)` /
/// `Some(name)` (with optional `mut`). Tuple and struct patterns return
/// `None` — no workspace guard uses them.
fn binding_name(toks: &[Tok], mut j: usize) -> Option<(&str, usize)> {
    if tok_text(toks, j) == Some("mut") {
        j += 1;
    }
    let head = toks.get(j)?;
    if head.kind != TokKind::Ident {
        return None;
    }
    if matches!(head.text.as_str(), "Ok" | "Some") && tok_text(toks, j + 1) == Some("(") {
        let mut k = j + 2;
        if tok_text(toks, k) == Some("mut") {
            k += 1;
        }
        let inner = toks.get(k)?;
        if inner.kind == TokKind::Ident && tok_text(toks, k + 1) == Some(")") {
            return Some((&inner.text, k + 2));
        }
        return None;
    }
    Some((&head.text, j + 1))
}

/// Inventory every `unsafe` site (blocks and `unsafe`-qualified items)
/// with its `SAFETY:` comment status.
pub fn unsafe_sites(lexed: &Lexed, tree: &ScopeTree) -> Vec<UnsafeSite> {
    let mut out = Vec::new();
    for s in &tree.scopes {
        if !s.is_unsafe {
            continue;
        }
        let kind = match s.kind {
            ScopeKind::Unsafe => "unsafe block",
            ScopeKind::Fn => "unsafe fn",
            ScopeKind::Impl => "unsafe impl",
            ScopeKind::Trait => "unsafe trait",
            _ => continue,
        };
        let has_safety_comment = lexed.comments.iter().any(|c| {
            c.text.contains("SAFETY:")
                && c.end_line >= s.line.saturating_sub(SAFETY_COMMENT_REACH)
                && c.line <= s.line
        });
        out.push(UnsafeSite {
            line: s.line,
            col: s.col,
            kind,
            name: s.name.clone(),
            has_safety_comment,
            test: s.test,
        });
    }
    out.sort_by_key(|s| (s.line, s.col));
    out
}

fn tok_text(toks: &[Tok], i: usize) -> Option<&str> {
    toks.get(i).map(|t| t.text.as_str())
}

/// Index of the `]` matching the `[` at `open`.
fn matching_square(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope;

    fn facts(src: &str) -> Facts {
        let lexed = lex(src);
        let tree = scope::build(&lexed);
        build(&lexed, &tree)
    }

    #[test]
    fn plain_let_guard_is_live_to_scope_end() {
        let src = "fn f(&self) { let mut cache = self.m.lock().unwrap(); cache.insert(1); }";
        let fs = facts(src);
        assert_eq!(fs.guards.len(), 1);
        let g = &fs.guards[0];
        assert_eq!((g.name.as_str(), g.method.as_str()), ("cache", "lock"));
        let toks = lex(src).tokens;
        assert_eq!(toks[g.end].text, "}", "live to the fn close");
    }

    #[test]
    fn match_rhs_guard_is_detected() {
        let src = "fn f(&self) { let mut c = match self.m.lock() { Ok(g) => g, Err(p) => p.into_inner(), }; c.get(&k); }";
        let fs = facts(src);
        assert_eq!(fs.guards.len(), 1);
        assert_eq!(fs.guards[0].name, "c");
    }

    #[test]
    fn if_let_guard_is_live_only_in_its_block() {
        let src = "fn f(&self) { if let Ok(st) = self.m.lock() { st.push(1); } after(); }";
        let fs = facts(src);
        assert_eq!(fs.guards.len(), 1);
        let g = &fs.guards[0];
        let toks = lex(src).tokens;
        let after = toks.iter().position(|t| t.text == "after").expect("after");
        assert!(g.end < after, "guard dies with the if-let block");
    }

    #[test]
    fn let_else_guard_binds_rest_of_scope() {
        let src = "fn f(&self) { let Ok(guard) = self.rx.lock() else { return }; guard.recv(); }";
        let fs = facts(src);
        assert_eq!(fs.guards.len(), 1);
        let g = &fs.guards[0];
        assert_eq!(g.name, "guard");
        let toks = lex(src).tokens;
        let recv = toks.iter().position(|t| t.text == "recv").expect("recv");
        assert!(g.start < recv && recv < g.end);
    }

    #[test]
    fn drop_ends_liveness_early() {
        let src = "fn f(&self) { let g = self.m.lock().unwrap(); g.touch(); drop(g); later(); }";
        let fs = facts(src);
        let g = &fs.guards[0];
        let toks = lex(src).tokens;
        let later = toks.iter().position(|t| t.text == "later").expect("later");
        assert!(g.end < later, "drop(g) ends the range");
    }

    #[test]
    fn rwlock_read_write_and_io_read_are_distinguished() {
        let src = "fn f(&self) { let r = self.l.read().unwrap(); let n = file.read(&mut buf); }";
        let fs = facts(src);
        assert_eq!(fs.guards.len(), 1, "read(&mut buf) takes arguments");
        assert_eq!(fs.guards[0].method, "read");
    }

    #[test]
    fn underscore_binding_is_not_live() {
        let fs = facts("fn f(&self) { let _ = self.m.lock(); }");
        assert!(fs.guards.is_empty());
    }

    #[test]
    fn fallible_fn_table_reads_return_types() {
        let src = "fn a() -> std::io::Result<()> { Ok(()) }\n\
                   fn b() -> u32 { 1 }\n\
                   fn c(x: Result<u8, E>) { }\n\
                   pub fn d() -> Result<Vec<u8>, Error> { Ok(vec![]) }\n";
        let fs = facts(src);
        assert_eq!(fs.fallible_fns, vec!["a".to_string(), "d".to_string()]);
    }

    #[test]
    fn index_sites_classify_literal_index_and_slice() {
        let src = "fn f(v: &[u8], i: usize) { let a = v[0]; let b = v[i]; let c = &v[1..3]; }";
        let fs = facts(src);
        assert_eq!(fs.index_sites.len(), 3);
        assert!(fs.index_sites[0].literal);
        assert_eq!(fs.index_sites[0].kind, IndexKind::Index);
        assert!(!fs.index_sites[1].literal);
        assert_eq!(fs.index_sites[2].kind, IndexKind::Slice);
        assert_eq!(fs.index_sites[1].snippet, "v[i]");
    }

    #[test]
    fn types_literals_and_attrs_are_not_index_sites() {
        let src = "#[derive(Debug)]\nstruct S { a: [u8; 4] }\nfn f() { let x: [u8; 2] = [0; 2]; let [p, q] = x; let v = vec![1, 2]; }";
        let fs = facts(src);
        assert!(
            fs.index_sites.is_empty(),
            "got: {:?}",
            fs.index_sites
                .iter()
                .map(|s| &s.snippet)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn unchecked_calls_are_index_sites() {
        let fs = facts("fn f(v: &[u8]) { let x = unsafe { v.get_unchecked(3) }; }");
        assert_eq!(fs.index_sites.len(), 1);
        assert_eq!(fs.index_sites[0].kind, IndexKind::UncheckedCall);
    }

    #[test]
    fn unsafe_sites_require_safety_comments() {
        let src = "fn f(v: &[u8]) {\n    // SAFETY: bounds checked by caller.\n    let x = unsafe { v.get_unchecked(0) };\n    let y = unsafe { v.get_unchecked(1) };\n}\n";
        let lexed = lex(src);
        let tree = scope::build(&lexed);
        let sites = unsafe_sites(&lexed, &tree);
        assert_eq!(sites.len(), 2);
        assert!(sites[0].has_safety_comment);
        assert!(
            !sites[1].has_safety_comment,
            "comment is 2 lines away but belongs to the first"
        );
    }

    #[test]
    fn unsafe_fn_and_impl_are_inventoried() {
        let src = "/// Doc.\n/// SAFETY: caller upholds the aliasing rules.\nunsafe fn raw() {}\nunsafe impl Send for X {}\n";
        let lexed = lex(src);
        let tree = scope::build(&lexed);
        let sites = unsafe_sites(&lexed, &tree);
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].kind, "unsafe fn");
        assert!(sites[0].has_safety_comment);
        assert_eq!(sites[1].kind, "unsafe impl");
        assert!(!sites[1].has_safety_comment);
    }
}

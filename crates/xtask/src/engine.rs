//! Lint driver: file classification, waiver application, workspace walk.
//!
//! The engine decides which [`RuleSet`] applies to each file from its
//! workspace-relative path, lints every in-scope `.rs` file, subtracts
//! waived findings, and reports stale or malformed waivers as findings
//! of their own so the waiver ledger can never rot silently.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use crate::facts;
use crate::lexer;
use crate::rules::{self, Finding, RuleSet};
use crate::scope;

/// Library crates subject to the panic-safety rules (RG001): everything
/// under `crates/` that external code links against. `xtask` dogfoods
/// the same rules; `bench` is a harness binary and exempt from RG001.
const LIB_CRATES: [&str; 16] = [
    "geo",
    "net",
    "db",
    "core",
    "trace",
    "world",
    "dns",
    "rtt",
    "cymru",
    "faultnet",
    "gazetteer",
    "pool",
    "obs",
    "xtask",
    "fuzz",
    "serve",
];

/// Files exempt from RG008 (ad-hoc instrumentation): the bench crate's
/// sanctioned timing module. `crates/obs` itself and binary entry
/// points (`/bin/`, `main.rs`) are exempted structurally in
/// [`rules_for`].
const RG008_EXEMPT_FILES: [&str; 1] = ["crates/bench/src/timing.rs"];

/// Files whose values flow through the `net::trie` / `db::rgdb` lookup
/// paths; RG003 (checked numeric conversions) applies only here.
const RG003_FILES: [&str; 5] = [
    "crates/net/src/trie.rs",
    "crates/net/src/rangemap.rs",
    "crates/net/src/prefix.rs",
    "crates/db/src/rgdb.rs",
    "crates/db/src/rgdb2.rs",
];

/// Crates whose public functions must carry doc comments (RG005).
const RG005_CRATES: [&str; 2] = ["core", "db"];

/// The core analysis modules that must consume the resolve-once
/// `ResolvedView` rather than re-querying databases; RG009 (no
/// allocating `GeoDatabase::lookup`) applies only here.
const RG009_FILES: [&str; 3] = [
    "crates/core/src/coverage.rs",
    "crates/core/src/consistency.rs",
    "crates/core/src/accuracy.rs",
];

/// The reader/trie lookup paths that parse or index untrusted database
/// bytes; RG010 (no unchecked indexing) applies only here — including
/// the v2 flat reader, which is pointer-arithmetic-heavy by design and
/// therefore must stay on checked `get`/`ok_or` access.
const RG010_FILES: [&str; 4] = [
    "crates/db/src/rgdb.rs",
    "crates/db/src/rgdb2.rs",
    "crates/net/src/trie.rs",
    "crates/net/src/prefix.rs",
];

/// Directory names never descended into during the workspace walk.
/// `vendor/` holds offline API stubs for third-party crates — external
/// code by policy, like any vendored dependency. `results/` holds
/// generated experiment artifacts, never source.
const SKIP_DIRS: [&str; 8] = [
    "target", "vendor", ".git", "tests", "benches", "examples", "fixtures", "results",
];

/// Directory names skipped by the `unsafe-audit` walk. Narrower than
/// [`SKIP_DIRS`]: test and bench sources still contain real `unsafe`
/// blocks that need `// SAFETY:` comments, so only non-source trees and
/// deliberately-bad lint fixtures are excluded.
const AUDIT_SKIP_DIRS: [&str; 5] = ["target", "vendor", ".git", "fixtures", "results"];

/// A diagnostic bound to a file, ready for display as
/// `file:line:col RULE-ID message`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule identifier.
    pub rule: String,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{} {} {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// A waiver that matched at least one finding, for `--waivers` audits.
#[derive(Debug, Clone)]
pub struct WaiverRecord {
    /// Workspace-relative path.
    pub file: String,
    /// Line of the waiver comment.
    pub line: u32,
    /// Rules it suppressed.
    pub rules: Vec<String>,
    /// The justification given in the comment.
    pub reason: String,
    /// How many findings it suppressed.
    pub suppressed: usize,
}

/// Result of linting one file or the whole workspace.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Findings that survive waiver subtraction — these fail the build.
    pub violations: Vec<Diagnostic>,
    /// Waivers that suppressed at least one finding.
    pub waivers: Vec<WaiverRecord>,
    /// Number of files actually linted.
    pub files_scanned: usize,
}

impl Outcome {
    fn absorb(&mut self, other: Outcome) {
        self.violations.extend(other.violations);
        self.waivers.extend(other.waivers);
        self.files_scanned += other.files_scanned;
    }
}

/// Decide which rules apply to the file at workspace-relative path
/// `rel` (forward slashes). `None` means the file is out of scope.
pub fn rules_for(rel: &str) -> Option<RuleSet> {
    if !rel.ends_with(".rs") {
        return None;
    }
    let first = rel.split('/').next().unwrap_or("");
    if SKIP_DIRS.contains(&first) || rel.split('/').any(|c| SKIP_DIRS.contains(&c)) {
        return None;
    }

    let mut rules = RuleSet::default();
    if let Some(rest) = rel.strip_prefix("crates/") {
        let krate = rest.split('/').next().unwrap_or("");
        if !rest[krate.len()..].starts_with("/src/") {
            return None; // crate-level build scripts, fixtures, …
        }
        rules.rg001 = LIB_CRATES.contains(&krate);
        rules.rg002 = true;
        rules.rg003 = RG003_FILES.contains(&rel);
        rules.rg004 = true;
        rules.rg005 = RG005_CRATES.contains(&krate);
        rules.rg006 = true;
        // `pool` is the one place allowed to own threads: everything
        // else goes through its deterministic sharded map-reduce.
        rules.rg007 = krate != "pool";
        // `obs` owns wall-clock reads; binaries keep `eprintln!` for
        // CLI diagnostics.
        rules.rg008 = krate != "obs" && !RG008_EXEMPT_FILES.contains(&rel) && !is_binary_entry(rel);
        rules.rg009 = RG009_FILES.contains(&rel);
        rules.rg010 = RG010_FILES.contains(&rel);
        // Holding a lock across a blocking call is a hazard everywhere.
        rules.rg011 = true;
        // Swallowed Results are a library-crate concern; the bench
        // harness may discard at will.
        rules.rg012 = LIB_CRATES.contains(&krate);
        // Placeholder macros (`todo!` / `unimplemented!`) are likewise a
        // library-crate concern — a harness may scaffold.
        rules.rg013 = LIB_CRATES.contains(&krate);
    } else if rel.starts_with("src/") {
        // Umbrella library + CLI binaries: panics are still forbidden in
        // non-test code, but startup `expect`s with reasons are allowed.
        rules.rg002 = true;
        rules.rg004 = true;
        rules.rg006 = true;
        rules.rg007 = true;
        rules.rg008 = !is_binary_entry(rel);
        rules.rg011 = true;
    } else {
        return None;
    }
    Some(rules)
}

/// Whether `rel` is a binary entry point: anything under a `/bin/`
/// directory or a crate's `main.rs`.
fn is_binary_entry(rel: &str) -> bool {
    rel.split('/').any(|c| c == "bin") || rel.ends_with("/main.rs") || rel == "main.rs"
}

/// Lint a single source text as if it lived at `rel`. Pure — fixture
/// tests drive this directly.
pub fn lint_source(rel: &str, src: &str, rules: &RuleSet) -> Outcome {
    let lexed = lexer::lex(src);
    let ctx = rules::build_context(&lexed);
    let mut findings = rules::run_rules(&lexed, &ctx, rules);
    let waivers = rules::parse_waivers(&lexed, &mut findings);

    // Keep (rule, line) of every pre-waiver finding so a stale waiver
    // can report where its target drifted to.
    let all_findings: Vec<(String, u32)> = findings
        .iter()
        .map(|f| (f.rule.to_string(), f.line))
        .collect();

    let mut used = vec![0usize; waivers.len()];
    let mut violations = Vec::new();
    for f in findings {
        let slot = waivers
            .iter()
            .position(|w| w.applies_to == f.line && w.rules.iter().any(|r| r == f.rule));
        match slot {
            Some(ix) if f.rule != "XW001" => used[ix] += 1,
            _ => violations.push(to_diag(rel, &f)),
        }
    }
    let mut records = Vec::new();
    for (w, &count) in waivers.iter().zip(&used) {
        if count == 0 {
            // Line-drift aid: point at the nearest surviving finding for
            // the same rule, so a waiver whose code moved is a one-line
            // fix rather than an archaeology session.
            let nearest = all_findings
                .iter()
                .filter(|(rule, _)| w.rules.iter().any(|r| r == rule))
                .min_by_key(|(_, line)| line.abs_diff(w.applies_to));
            let hint = match nearest {
                Some((rule, line)) => format!(
                    "nearest {rule} finding is now on line {line} — move the waiver or \
                     remove it"
                ),
                None => format!(
                    "no {} findings remain in this file; remove it",
                    w.rules.join(",")
                ),
            };
            violations.push(Diagnostic {
                file: rel.to_string(),
                line: w.line,
                col: 1,
                rule: "XW002".into(),
                message: format!(
                    "stale waiver for {} — no matching finding on line {}; {}",
                    w.rules.join(","),
                    w.applies_to,
                    hint
                ),
            });
        } else {
            records.push(WaiverRecord {
                file: rel.to_string(),
                line: w.line,
                rules: w.rules.clone(),
                reason: w.reason.clone(),
                suppressed: count,
            });
        }
    }
    violations.sort_by(|a, b| (a.line, a.col).cmp(&(b.line, b.col)));
    Outcome {
        violations,
        waivers: records,
        files_scanned: 1,
    }
}

fn to_diag(rel: &str, f: &Finding) -> Diagnostic {
    Diagnostic {
        file: rel.to_string(),
        line: f.line,
        col: f.col,
        rule: f.rule.to_string(),
        message: f.message.clone(),
    }
}

/// Lint every in-scope file under the workspace root.
pub fn lint_workspace(root: &Path) -> io::Result<Outcome> {
    let mut out = Outcome::default();
    walk(root, root, &mut out)?;
    out.violations
        .sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    out.waivers
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Outcome) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if let Some(rules) = rules_for(&rel) {
                if rules.is_empty() {
                    continue;
                }
                let src = fs::read_to_string(&path)?;
                out.absorb(lint_source(&rel, &src, &rules));
            }
        }
    }
    Ok(())
}

/// One `unsafe` site found by the audit, bound to its file.
#[derive(Debug, Clone)]
pub struct UnsafeSiteReport {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// `"unsafe block"`, `"unsafe fn"`, `"unsafe impl"`, `"unsafe trait"`.
    pub kind: &'static str,
    /// Item name for fn/impl/trait sites.
    pub name: Option<String>,
    /// Whether a `// SAFETY:` comment sits on or directly above the site.
    pub has_safety_comment: bool,
    /// Whether the site is inside test-gated code.
    pub test: bool,
}

impl fmt::Display for UnsafeSiteReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{} {}", self.file, self.line, self.col, self.kind)?;
        if let Some(name) = &self.name {
            write!(f, " `{name}`")?;
        }
        if self.test {
            write!(f, " [test]")?;
        }
        if self.has_safety_comment {
            write!(f, " — SAFETY documented")
        } else {
            write!(f, " — MISSING `// SAFETY:` comment")
        }
    }
}

/// Result of the workspace unsafe audit.
#[derive(Debug, Default)]
pub struct UnsafeAudit {
    /// Every `unsafe` site, in file/line order.
    pub sites: Vec<UnsafeSiteReport>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl UnsafeAudit {
    /// Sites that fail the audit: no `// SAFETY:` comment.
    pub fn violations(&self) -> Vec<&UnsafeSiteReport> {
        self.sites
            .iter()
            .filter(|s| !s.has_safety_comment)
            .collect()
    }
}

/// Audit one source text as if it lived at `rel` — fixture tests drive
/// this directly.
pub fn audit_source(rel: &str, src: &str) -> Vec<UnsafeSiteReport> {
    let lexed = lexer::lex(src);
    let tree = scope::build(&lexed);
    facts::unsafe_sites(&lexed, &tree)
        .into_iter()
        .map(|s| UnsafeSiteReport {
            file: rel.to_string(),
            line: s.line,
            col: s.col,
            kind: s.kind,
            name: s.name,
            has_safety_comment: s.has_safety_comment,
            test: s.test,
        })
        .collect()
}

/// Inventory every `unsafe` site under the workspace root — including
/// test and bench sources, which the lint walk skips.
pub fn unsafe_audit_workspace(root: &Path) -> io::Result<UnsafeAudit> {
    let mut audit = UnsafeAudit::default();
    audit_walk(root, root, &mut audit)?;
    audit
        .sites
        .sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    Ok(audit)
}

fn audit_walk(root: &Path, dir: &Path, audit: &mut UnsafeAudit) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if AUDIT_SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            audit_walk(root, &path, audit)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let src = fs::read_to_string(&path)?;
            audit.sites.extend(audit_source(&rel, &src));
            audit.files_scanned += 1;
        }
    }
    Ok(())
}

/// Locate the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        cur = dir.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_path() {
        let geo = rules_for("crates/geo/src/coord.rs").expect("in scope");
        assert!(geo.rg001 && geo.rg002 && geo.rg004 && geo.rg006 && geo.rg007);
        assert!(!geo.rg003 && !geo.rg005);

        let faultnet = rules_for("crates/faultnet/src/proxy.rs").expect("in scope");
        assert!(faultnet.rg001 && faultnet.rg006 && faultnet.rg007);

        let pool = rules_for("crates/pool/src/lib.rs").expect("in scope");
        assert!(pool.rg001 && !pool.rg007, "pool owns the threads");

        let trie = rules_for("crates/net/src/trie.rs").expect("in scope");
        assert!(trie.rg003);

        let db = rules_for("crates/db/src/rgdb.rs").expect("in scope");
        assert!(db.rg003 && db.rg005);
        let db2 = rules_for("crates/db/src/rgdb2.rs").expect("in scope");
        assert!(
            db2.rg003 && db2.rg005,
            "the v2 reader converts untrusted numerics and is a db API"
        );

        let core = rules_for("crates/core/src/accuracy.rs").expect("in scope");
        assert!(core.rg005 && !core.rg003);
        assert!(core.rg009, "analysis modules must use the ResolvedView");
        let consistency = rules_for("crates/core/src/consistency.rs").expect("in scope");
        assert!(consistency.rg009);
        let resolve = rules_for("crates/core/src/resolve.rs").expect("in scope");
        assert!(!resolve.rg009, "the view builder itself resolves lookups");
        let inmem = rules_for("crates/db/src/inmem.rs").expect("in scope");
        assert!(!inmem.rg009, "database impls own their lookups");

        let serve = rules_for("crates/serve/src/daemon.rs").expect("in scope");
        assert!(
            serve.rg001 && serve.rg006 && serve.rg007,
            "the daemon is a lib crate: panic-safety and thread rules apply"
        );
        let loadgen = rules_for("crates/serve/src/bin/loadgen.rs").expect("in scope");
        assert!(!loadgen.rg008, "binary entry points own their wall clock");

        let bench = rules_for("crates/bench/src/lab.rs").expect("in scope");
        assert!(!bench.rg001 && bench.rg002 && bench.rg008);

        let timing = rules_for("crates/bench/src/timing.rs").expect("in scope");
        assert!(!timing.rg008, "timing.rs owns the bench wall clock");

        let obs = rules_for("crates/obs/src/lib.rs").expect("in scope");
        assert!(obs.rg001 && !obs.rg008, "obs owns Instant reads");

        let repro = rules_for("crates/bench/src/bin/repro.rs").expect("in scope");
        assert!(!repro.rg008, "binaries keep eprintln for CLI output");

        let xtask_main = rules_for("crates/xtask/src/main.rs").expect("in scope");
        assert!(!xtask_main.rg008 && xtask_main.rg001);

        let fuzz = rules_for("crates/fuzz/src/mutate.rs").expect("in scope");
        assert!(
            fuzz.rg001 && fuzz.rg012 && fuzz.rg013,
            "the fuzz harness is a library crate and dogfoods the gates"
        );

        let root_bin = rules_for("src/bin/routergeo.rs").expect("in scope");
        assert!(!root_bin.rg001 && root_bin.rg002 && root_bin.rg006 && root_bin.rg007);
        assert!(!root_bin.rg008);

        assert!(rules_for("vendor/rand/src/lib.rs").is_none());
        assert!(rules_for("crates/geo/tests/prop_geo.rs").is_none());
        assert!(rules_for("crates/xtask/tests/fixtures/bad.rs").is_none());
        assert!(rules_for("target/debug/build/foo.rs").is_none());
        assert!(rules_for("README.md").is_none());
    }

    #[test]
    fn scope_rule_classification_by_path() {
        let rgdb = rules_for("crates/db/src/rgdb.rs").expect("in scope");
        assert!(rgdb.rg010 && rgdb.rg011 && rgdb.rg012);
        let rgdb2 = rules_for("crates/db/src/rgdb2.rs").expect("in scope");
        assert!(
            rgdb2.rg010 && rgdb2.rg011 && rgdb2.rg012,
            "the pointer-arithmetic v2 reader must stay on checked access"
        );
        let trie = rules_for("crates/net/src/trie.rs").expect("in scope");
        assert!(trie.rg010);
        let prefix = rules_for("crates/net/src/prefix.rs").expect("in scope");
        assert!(prefix.rg010);

        let geo = rules_for("crates/geo/src/coord.rs").expect("in scope");
        assert!(!geo.rg010 && geo.rg011 && geo.rg012 && geo.rg013);
        let bench = rules_for("crates/bench/src/lab.rs").expect("in scope");
        assert!(
            bench.rg011 && !bench.rg012 && !bench.rg013,
            "bench harness may discard and scaffold"
        );
        let bin = rules_for("src/bin/routergeo.rs").expect("in scope");
        assert!(bin.rg011 && !bin.rg010 && !bin.rg012 && !bin.rg013);

        assert!(rules_for("results/leftover.rs").is_none());
    }

    #[test]
    fn stale_waiver_reports_nearest_current_match() {
        let src = "fn f() {\n    let a = 1; // xtask-allow: RG001 drifted\n    \
                   let x = y.unwrap();\n}\n";
        let out = lint_source("lib.rs", src, &RuleSet::all());
        let stale = out
            .violations
            .iter()
            .find(|v| v.rule == "XW002")
            .expect("stale waiver reported");
        assert!(
            stale
                .message
                .contains("nearest RG001 finding is now on line 3"),
            "{}",
            stale.message
        );
    }

    #[test]
    fn stale_waiver_with_no_matching_rule_suggests_removal() {
        let src = "fn f() {\n    let a = 1; // xtask-allow: RG009 gone\n}\n";
        let out = lint_source("lib.rs", src, &RuleSet::all());
        let stale = out
            .violations
            .iter()
            .find(|v| v.rule == "XW002")
            .expect("stale waiver reported");
        assert!(
            stale.message.contains("no RG009 findings remain"),
            "{}",
            stale.message
        );
    }

    #[test]
    fn audit_source_flags_missing_safety_comments() {
        let src = "fn f(v: &[u8]) {\n    // SAFETY: in bounds, len checked above.\n    \
                   let a = unsafe { v.get_unchecked(0) };\n    \
                   let b = unsafe { v.get_unchecked(1) };\n}\n";
        let sites = audit_source("lib.rs", src);
        assert_eq!(sites.len(), 2);
        assert!(sites[0].has_safety_comment);
        assert!(!sites[1].has_safety_comment);
        assert!(sites[1].to_string().contains("MISSING"));
    }

    #[test]
    fn waiver_suppresses_and_stale_waiver_fails() {
        let src = "fn f() {\n    let x = y.unwrap(); // xtask-allow: RG001 y seeded above\n\
                       let z = 1; // xtask-allow: RG001 nothing here\n}\n";
        let out = lint_source("lib.rs", src, &RuleSet::all());
        assert_eq!(out.waivers.len(), 1);
        assert_eq!(out.waivers[0].suppressed, 1);
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.violations[0].rule, "XW002");
    }

    #[test]
    fn waiver_for_wrong_rule_does_not_suppress() {
        let src = "fn f() { let x = y.unwrap(); } // xtask-allow: RG002 wrong rule\n";
        let out = lint_source("lib.rs", src, &RuleSet::all());
        let rules: Vec<_> = out.violations.iter().map(|v| v.rule.as_str()).collect();
        assert!(rules.contains(&"RG001"), "{rules:?}");
        assert!(rules.contains(&"XW002"), "{rules:?}");
    }

    #[test]
    fn diagnostic_display_format() {
        let d = Diagnostic {
            file: "crates/geo/src/coord.rs".into(),
            line: 7,
            col: 13,
            rule: "RG004".into(),
            message: "float `==` comparison".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/geo/src/coord.rs:7:13 RG004 float `==` comparison"
        );
    }
}

//! The lint rules (RG001–RG012) evaluated over a lexed token stream.
//!
//! Each rule is a pure function of the token stream plus precomputed
//! context: the brace-matched scope tree ([`crate::scope`]), the
//! intra-function facts ([`crate::facts`] — guard liveness, fallible
//! functions, index sites), and doc-comment lines. Test code — anything
//! under `#[cfg(test)]` or annotated `#[test]`, tracked structurally by
//! the scope tree — is exempt from every rule, matching the project
//! policy that panics are the correct failure mode inside tests.

use crate::facts::{self, Facts, IndexKind};
use crate::lexer::{Lexed, Tok, TokKind};
use crate::scope::{self, ScopeTree};

/// Which rules apply to a given file. Produced by
/// [`crate::engine::rules_for`] from the file's workspace-relative path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleSet {
    /// RG001: no `.unwrap()` / `.expect("")` in library code.
    pub rg001: bool,
    /// RG002: no bare `panic!` / `unreachable!` outside tests.
    pub rg002: bool,
    /// RG003: no numeric `as` casts on lookup-path files.
    pub rg003: bool,
    /// RG004: no `==` / `!=` on floating-point values.
    pub rg004: bool,
    /// RG005: every `pub fn` carries a doc comment.
    pub rg005: bool,
    /// RG006: no deadline-less sockets — `TcpStream::connect` or
    /// `set_read_timeout(None)` / `set_write_timeout(None)`.
    pub rg006: bool,
    /// RG007: no ad-hoc threading (`thread::spawn` / `thread::scope`)
    /// outside `crates/pool` — deterministic fan-out goes through the
    /// worker pool.
    pub rg007: bool,
    /// RG008: no ad-hoc instrumentation (`Instant::now()` timing,
    /// `eprintln!` progress prints) outside the observability layer —
    /// `crates/obs` and `crates/bench/src/timing.rs` own wall-clock
    /// reads; binaries keep `eprintln!` for CLI diagnostics.
    pub rg008: bool,
    /// RG009: no allocating `GeoDatabase::lookup` calls in the
    /// `crates/core` analysis modules (coverage/consistency/accuracy) —
    /// the hot path resolves once through a `ResolvedView` and tallies
    /// compact columns.
    pub rg009: bool,
    /// RG010: no unchecked indexing (`x[i]`, range slicing,
    /// `*_unchecked` calls) on the reader/trie lookup paths — corrupt
    /// database input must surface a format error, not a panic. Single
    /// integer-literal indexes (`x[0]`) are compiler-visible and exempt.
    pub rg010: bool,
    /// RG011: no lock guard held across a blocking call (`lookup*`,
    /// `decode_*`/`parse_*`, socket I/O, pool dispatch) — parsing or
    /// waiting under a lock serializes every other reader.
    pub rg011: bool,
    /// RG012: no silently swallowed `Result` in library crates —
    /// `let _ = fallible(…)` for an in-file fallible function,
    /// statement-position `.ok();`, or an explicit `let _: Result` bind.
    pub rg012: bool,
    /// RG013: no unfinished-code placeholders (`todo!` /
    /// `unimplemented!`) in library crates — together with RG002
    /// (`panic!` / `unreachable!`, enforced everywhere) this denies the
    /// full abort-macro trio on library code.
    pub rg013: bool,
}

impl RuleSet {
    /// A set with every rule enabled (used by fixtures).
    pub fn all() -> Self {
        RuleSet {
            rg001: true,
            rg002: true,
            rg003: true,
            rg004: true,
            rg005: true,
            rg006: true,
            rg007: true,
            rg008: true,
            rg009: true,
            rg010: true,
            rg011: true,
            rg012: true,
            rg013: true,
        }
    }

    /// Whether no rule at all applies.
    pub fn is_empty(&self) -> bool {
        *self == RuleSet::default()
    }
}

/// A single finding, before waiver application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`RG001` … `RG013`, or `XW00x` for waiver faults).
    pub rule: &'static str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

/// Context shared by the rules: the scope tree, the intra-function
/// facts, and line-oriented views derived from them.
pub struct Context {
    /// `mask[i]` is true when token `i` belongs to a test item
    /// (mirrors [`ScopeTree::test_mask`]).
    pub test_mask: Vec<bool>,
    /// Inclusive line spans covered by attributes (`#[...]`).
    pub attr_spans: Vec<(u32, u32)>,
    /// Lines on which a doc comment starts or continues.
    pub doc_lines: Vec<u32>,
    /// The brace-matched scope tree.
    pub tree: ScopeTree,
    /// Guard liveness, fallible functions, index sites.
    pub facts: Facts,
}

const NUMERIC_TYPES: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

const COORD_ACCESSORS: [&str; 4] = ["lat", "lon", "latitude", "longitude"];

/// Build the shared [`Context`] for a lexed file. Test masking and
/// attribute spans come from the scope tree, which tracks `#[cfg(test)]`
/// regions structurally (brace-matched) rather than by item-end
/// heuristic.
pub fn build_context(lexed: &Lexed) -> Context {
    let tree = scope::build(lexed);
    let facts = facts::build(lexed, &tree);

    let mut doc_lines = Vec::new();
    for c in &lexed.comments {
        if c.doc {
            for l in c.line..=c.end_line {
                doc_lines.push(l);
            }
        }
    }

    Context {
        test_mask: tree.test_mask.clone(),
        attr_spans: tree.attr_spans.clone(),
        doc_lines,
        tree,
        facts,
    }
}

/// Run every enabled rule; findings come back in token order.
pub fn run_rules(lexed: &Lexed, ctx: &Context, rules: &RuleSet) -> Vec<Finding> {
    let mut findings = Vec::new();
    let toks = &lexed.tokens;

    for i in 0..toks.len() {
        if ctx.test_mask[i] {
            continue;
        }
        if rules.rg001 {
            check_rg001(toks, i, &mut findings);
        }
        if rules.rg002 {
            check_rg002(toks, i, &mut findings);
        }
        if rules.rg003 {
            check_rg003(toks, i, &mut findings);
        }
        if rules.rg004 {
            check_rg004(toks, i, &mut findings);
        }
        if rules.rg005 {
            check_rg005(toks, ctx, i, &mut findings);
        }
        if rules.rg006 {
            check_rg006(toks, i, &mut findings);
        }
        if rules.rg007 {
            check_rg007(toks, i, &mut findings);
        }
        if rules.rg008 {
            check_rg008(toks, i, &mut findings);
        }
        if rules.rg009 {
            check_rg009(toks, i, &mut findings);
        }
        if rules.rg013 {
            check_rg013(toks, i, &mut findings);
        }
    }
    // Scope/fact-driven rules run once per file over the extracted
    // facts rather than per token.
    if rules.rg010 {
        check_rg010(ctx, &mut findings);
    }
    if rules.rg011 {
        check_rg011(toks, ctx, &mut findings);
    }
    if rules.rg012 {
        check_rg012(toks, ctx, &mut findings);
    }
    findings.sort_by_key(|f| (f.line, f.col));
    findings
}

fn tok_is(toks: &[Tok], i: usize, kind: TokKind, text: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == kind && t.text == text)
}

/// RG001: `.unwrap()` or `.expect("")` in library code.
fn check_rg001(toks: &[Tok], i: usize, out: &mut Vec<Finding>) {
    if !tok_is(toks, i, TokKind::Punct, ".") {
        return;
    }
    let Some(name) = toks.get(i + 1) else { return };
    if name.kind != TokKind::Ident {
        return;
    }
    if name.text == "unwrap"
        && tok_is(toks, i + 2, TokKind::Punct, "(")
        && tok_is(toks, i + 3, TokKind::Punct, ")")
    {
        out.push(Finding {
            rule: "RG001",
            line: name.line,
            col: name.col,
            message: "`.unwrap()` in library code — propagate an error or use \
                      `.expect(\"non-empty reason\")`"
                .into(),
        });
    }
    if name.text == "expect" && tok_is(toks, i + 2, TokKind::Punct, "(") {
        if let Some(arg) = toks.get(i + 3) {
            if arg.kind == TokKind::Str
                && arg.text.trim().is_empty()
                && tok_is(toks, i + 4, TokKind::Punct, ")")
            {
                out.push(Finding {
                    rule: "RG001",
                    line: name.line,
                    col: name.col,
                    message: "`.expect(\"\")` with an empty message — give the panic a \
                              diagnosable reason or propagate an error"
                        .into(),
                });
            }
        }
    }
}

/// RG002: bare `panic!` / `unreachable!` outside tests.
fn check_rg002(toks: &[Tok], i: usize, out: &mut Vec<Finding>) {
    let t = &toks[i];
    if t.kind != TokKind::Ident || (t.text != "panic" && t.text != "unreachable") {
        return;
    }
    if !tok_is(toks, i + 1, TokKind::Punct, "!") {
        return;
    }
    // `std::panic::catch_unwind` never matches: the token after a path
    // segment `panic` is `::`, not `!`.
    out.push(Finding {
        rule: "RG002",
        line: t.line,
        col: t.col,
        message: format!(
            "`{}!` outside tests — return an error variant instead of aborting the caller",
            t.text
        ),
    });
}

/// RG013: `todo!` / `unimplemented!` placeholders in library crates. A
/// caller handing untrusted input to a half-finished path must get an
/// error variant back, not an abort. `unreachable!` — the third macro
/// of the trio — is RG002's, which applies even more broadly, so it is
/// not re-reported here.
fn check_rg013(toks: &[Tok], i: usize, out: &mut Vec<Finding>) {
    let t = &toks[i];
    if t.kind != TokKind::Ident || (t.text != "todo" && t.text != "unimplemented") {
        return;
    }
    if !tok_is(toks, i + 1, TokKind::Punct, "!") {
        return;
    }
    // Path segments (`core::todo::x`) never match: the next token would
    // be `::`, not `!`.
    out.push(Finding {
        rule: "RG013",
        line: t.line,
        col: t.col,
        message: format!(
            "`{}!` in library code — finish the path or return an error variant",
            t.text
        ),
    });
}

/// RG003: numeric `as` casts on lookup-path files. Token-level analysis
/// cannot prove a cast lossy, so every numeric `as` in the scoped files
/// is flagged; lossless conversions should be written with `From`, and
/// the rare justified cast carries a waiver explaining why it is safe.
fn check_rg003(toks: &[Tok], i: usize, out: &mut Vec<Finding>) {
    let t = &toks[i];
    if t.kind != TokKind::Ident || t.text != "as" {
        return;
    }
    let Some(ty) = toks.get(i + 1) else { return };
    if ty.kind != TokKind::Ident || !NUMERIC_TYPES.contains(&ty.text.as_str()) {
        return;
    }
    // `use foo as u32`-style renames can't collide with primitive names;
    // no extra guard needed.
    out.push(Finding {
        rule: "RG003",
        line: t.line,
        col: t.col,
        message: format!(
            "`as {}` cast on a lookup path — use `From`/`TryFrom` so width changes are checked",
            ty.text
        ),
    });
}

/// RG004: `==` / `!=` on floating-point values. Heuristic: either side
/// of the operator is a float literal, or the left operand is a call to
/// a coordinate accessor (`lat()`, `lon()`, …).
fn check_rg004(toks: &[Tok], i: usize, out: &mut Vec<Finding>) {
    let t = &toks[i];
    if t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") {
        return;
    }
    let float_right = match toks.get(i + 1) {
        Some(n) if n.kind == TokKind::Float => true,
        // Negated literal: `== -180.0`.
        Some(n) if n.kind == TokKind::Punct && n.text == "-" => {
            toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Float)
        }
        _ => false,
    };
    let float_neighbor = (i > 0 && toks[i - 1].kind == TokKind::Float) || float_right;
    let coord_left =
        i > 0 && tok_is(toks, i - 1, TokKind::Punct, ")") && coord_call_end(toks, i - 1);
    let coord_right = coord_call_ahead(toks, i + 1);
    if float_neighbor || coord_left || coord_right {
        out.push(Finding {
            rule: "RG004",
            line: t.line,
            col: t.col,
            message: format!(
                "float `{}` comparison — use an epsilon helper from `geo::distance` \
                 (`approx_eq`) instead of exact equality",
                t.text
            ),
        });
    }
}

/// Whether the `)` at `close` ends a call to a coordinate accessor,
/// i.e. the tokens read `… . lat ( )`.
fn coord_call_end(toks: &[Tok], close: usize) -> bool {
    if close < 2 || !tok_is(toks, close - 1, TokKind::Punct, "(") {
        return false;
    }
    let name = &toks[close - 2];
    name.kind == TokKind::Ident && COORD_ACCESSORS.contains(&name.text.as_str())
}

/// Whether a coordinate accessor call appears shortly after `start`,
/// before the expression plausibly ends. Bounded lookahead keeps this a
/// heuristic rather than an expression parser.
fn coord_call_ahead(toks: &[Tok], start: usize) -> bool {
    for j in start..(start + 8).min(toks.len()) {
        let t = &toks[j];
        if t.kind == TokKind::Punct
            && matches!(t.text.as_str(), ";" | "," | "{" | "&" | "|" | "==" | "!=")
        {
            return false;
        }
        if t.kind == TokKind::Ident
            && COORD_ACCESSORS.contains(&t.text.as_str())
            && tok_is(toks, j + 1, TokKind::Punct, "(")
            && tok_is(toks, j + 2, TokKind::Punct, ")")
        {
            return true;
        }
    }
    false
}

/// RG005: every externally-visible `pub fn` has a doc comment directly
/// above it (attribute lines in between are allowed). `pub(crate)` and
/// narrower visibilities are internal API and exempt.
fn check_rg005(toks: &[Tok], ctx: &Context, i: usize, out: &mut Vec<Finding>) {
    if !tok_is(toks, i, TokKind::Ident, "pub") {
        return;
    }
    // Skip restricted visibility: `pub(crate)`, `pub(super)`, …
    let mut j = i + 1;
    if tok_is(toks, j, TokKind::Punct, "(") {
        return;
    }
    // Modifiers between `pub` and `fn`.
    loop {
        let Some(t) = toks.get(j) else { return };
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "fn" => break,
                "const" | "async" | "unsafe" => j += 1,
                "extern" => {
                    j += 1;
                    if toks.get(j).is_some_and(|t| t.kind == TokKind::Str) {
                        j += 1;
                    }
                }
                _ => return, // pub struct / pub mod / pub use …
            }
        } else {
            return;
        }
    }
    let Some(name) = toks.get(j + 1) else { return };
    if name.kind != TokKind::Ident {
        return;
    }

    // Walk upward from the line above `pub`, skipping attribute lines,
    // and require a doc-comment line there.
    let mut line = toks[i].line.saturating_sub(1);
    while line > 0
        && ctx
            .attr_spans
            .iter()
            .any(|&(lo, hi)| lo <= line && line <= hi)
    {
        line = line.saturating_sub(1);
    }
    if line == 0 || !ctx.doc_lines.contains(&line) {
        out.push(Finding {
            rule: "RG005",
            line: toks[i].line,
            col: toks[i].col,
            message: format!("public function `{}` lacks a doc comment", name.text),
        });
    }
}

/// RG006: sockets without deadlines outside tests. Two shapes are
/// flagged: `TcpStream::connect(...)` (blocks for the kernel default —
/// minutes — on an unreachable peer; use `connect_timeout`) and
/// `set_read_timeout(None)` / `set_write_timeout(None)` (clears a
/// configured deadline, returning the socket to unbounded blocking).
/// The rule cannot prove a freshly-accepted socket ever *gets* a
/// deadline, so it polices the two constructions that demonstrably
/// remove one; the justified exception carries a waiver.
fn check_rg006(toks: &[Tok], i: usize, out: &mut Vec<Finding>) {
    let t = &toks[i];
    if t.kind != TokKind::Ident {
        return;
    }
    if t.text == "TcpStream"
        && tok_is(toks, i + 1, TokKind::Punct, "::")
        && tok_is(toks, i + 2, TokKind::Ident, "connect")
        && tok_is(toks, i + 3, TokKind::Punct, "(")
    {
        let call = &toks[i + 2];
        out.push(Finding {
            rule: "RG006",
            line: call.line,
            col: call.col,
            message: "`TcpStream::connect` has no deadline — use `connect_timeout` so an \
                      unreachable peer cannot stall the caller"
                .into(),
        });
    }
    if (t.text == "set_read_timeout" || t.text == "set_write_timeout")
        && tok_is(toks, i + 1, TokKind::Punct, "(")
        && tok_is(toks, i + 2, TokKind::Ident, "None")
    {
        out.push(Finding {
            rule: "RG006",
            line: t.line,
            col: t.col,
            message: format!(
                "`{}(None)` removes the socket deadline — pass `Some(duration)` so blocked \
                 I/O cannot hang forever",
                t.text
            ),
        });
    }
}

/// RG007: ad-hoc threading outside the worker pool. `thread::spawn`
/// spreads per-call-site thread management (join handling, panic
/// propagation, nondeterministic merge order) across the codebase;
/// `thread::scope` invites result ordering that depends on the thread
/// count. Both belong behind `routergeo_pool::Pool`, whose sharded
/// map-reduce keeps output byte-identical at any parallelism. The rule
/// matches the path form (`thread::spawn`, `std::thread::scope`), which
/// is how every real call site reads; pre-pool code keeps a waiver.
fn check_rg007(toks: &[Tok], i: usize, out: &mut Vec<Finding>) {
    let t = &toks[i];
    if t.kind != TokKind::Ident || t.text != "thread" {
        return;
    }
    if !tok_is(toks, i + 1, TokKind::Punct, "::") {
        return;
    }
    let Some(call) = toks.get(i + 2) else { return };
    if call.kind != TokKind::Ident || (call.text != "spawn" && call.text != "scope") {
        return;
    }
    out.push(Finding {
        rule: "RG007",
        line: call.line,
        col: call.col,
        message: format!(
            "`thread::{}` outside `crates/pool` — use `routergeo_pool::Pool` so fan-out \
             stays deterministic and panics carry shard attribution",
            call.text
        ),
    });
}

/// RG008: ad-hoc instrumentation outside the observability layer.
/// `Instant::now()` scattered through library code produces one-off
/// timings nothing can collect, and `eprintln!` progress prints bypass
/// the structured trace; both belong in `crates/obs` (spans,
/// `Stopwatch`) or the bench crate's sanctioned `timing.rs`. The rule
/// matches the call forms as written (`Instant::now(`, `eprintln!`);
/// the justified exception — e.g. the system-clock impl behind the
/// injectable `Clock` trait — carries a waiver.
fn check_rg008(toks: &[Tok], i: usize, out: &mut Vec<Finding>) {
    let t = &toks[i];
    if t.kind != TokKind::Ident {
        return;
    }
    if t.text == "Instant"
        && tok_is(toks, i + 1, TokKind::Punct, "::")
        && tok_is(toks, i + 2, TokKind::Ident, "now")
        && tok_is(toks, i + 3, TokKind::Punct, "(")
    {
        let call = &toks[i + 2];
        out.push(Finding {
            rule: "RG008",
            line: call.line,
            col: call.col,
            message: "`Instant::now()` outside the observability layer — open a \
                      `routergeo_obs` span or `Stopwatch` (or use bench's `timing.rs`) \
                      so the measurement reaches the trace"
                .into(),
        });
    }
    if t.text == "eprintln" && tok_is(toks, i + 1, TokKind::Punct, "!") {
        out.push(Finding {
            rule: "RG008",
            line: t.line,
            col: t.col,
            message: "`eprintln!` in library code — record a `routergeo_obs` span \
                      attribute or counter instead of printing to stderr"
                .into(),
        });
    }
}

/// RG009: the allocating `GeoDatabase::lookup` inside a core analysis
/// module. Coverage, consistency, and accuracy tally pre-resolved
/// `ResolvedView` columns; a direct `.lookup(` call re-queries the
/// database per address and clones a `LocationRecord` (two `String`
/// allocations) per answer, exactly the per-lookup cost the resolve-once
/// engine removed. The rule matches the method-call form (`.lookup(`);
/// the lexer reads `lookup_compact` as one identifier, so the compact
/// path never trips it.
fn check_rg009(toks: &[Tok], i: usize, out: &mut Vec<Finding>) {
    let t = &toks[i];
    if t.kind != TokKind::Ident || t.text != "lookup" {
        return;
    }
    if i == 0 || !tok_is(toks, i - 1, TokKind::Punct, ".") {
        return;
    }
    if !tok_is(toks, i + 1, TokKind::Punct, "(") {
        return;
    }
    out.push(Finding {
        rule: "RG009",
        line: t.line,
        col: t.col,
        message: "allocating `GeoDatabase::lookup` in a core analysis module — resolve \
                  once through `ResolvedView` (or `lookup_compact`) and tally the \
                  compact columns"
            .into(),
    });
}

/// RG010: unchecked indexing on a reader/lookup path. Every index,
/// range slice, and `*_unchecked` call that the facts pass found in
/// expression position is flagged, except single integer-literal
/// indexes (`x[0]`) whose bounds the compiler can check against array
/// types. The reader parses untrusted vendor database bytes, so a bad
/// offset must surface as a format error, never a panic — and ROADMAP's
/// v2 pointer-arithmetic reader makes this the pre-gate that keeps that
/// surface closed.
fn check_rg010(ctx: &Context, out: &mut Vec<Finding>) {
    for site in &ctx.facts.index_sites {
        if ctx.test_mask.get(site.tok).copied().unwrap_or(false) || site.literal {
            continue;
        }
        let what = match site.kind {
            IndexKind::Index => "unchecked index",
            IndexKind::Slice => "unchecked slice",
            IndexKind::UncheckedCall => "bounds-check-free call",
        };
        out.push(Finding {
            rule: "RG010",
            line: site.line,
            col: site.col,
            message: format!(
                "{what} `{}` on a reader/lookup path — use `.get(…)` and surface a \
                 format error instead of panicking on corrupt input",
                site.snippet
            ),
        });
    }
}

/// Calls considered blocking while a lock guard is live: prefix
/// families (`lookup*` queries, `decode_*`/`parse_*` of untrusted
/// input) plus exact socket/pool/channel operations. Bare `read` /
/// `write` / `join` are deliberately absent — `Path::join` and
/// `fmt::Write::write_str` would swamp the rule with false positives,
/// and the guard-acquisition forms of `read`/`write` are already what
/// RG011 is protecting.
const RG011_BLOCKING: [&str; 17] = [
    "try_lookup",
    "connect",
    "connect_timeout",
    "accept",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
    "flush",
    "recv",
    "recv_from",
    "recv_timeout",
    "send_to",
    "sleep",
    "wait",
    "run_shards",
    "map_reduce",
];

fn is_blocking_call(name: &str) -> bool {
    name.starts_with("lookup")
        || name.starts_with("decode_")
        || name.starts_with("parse_")
        || RG011_BLOCKING.contains(&name)
}

/// RG011: a blocking call while a lock guard is live. The facts pass
/// gives each guard binding a liveness range (to the enclosing scope's
/// close, the guarded block, or an explicit `drop`); any call to a
/// blocking-family function inside that range serializes every other
/// holder of the lock for the call's duration — the `Mutex<HashMap>`
/// decode-cache hazard.
fn check_rg011(toks: &[Tok], ctx: &Context, out: &mut Vec<Finding>) {
    for g in &ctx.facts.guards {
        if ctx.test_mask.get(g.binding_tok).copied().unwrap_or(false) {
            continue;
        }
        for k in g.start..g.end.min(toks.len()) {
            let t = &toks[k];
            if t.kind != TokKind::Ident || !is_blocking_call(&t.text) {
                continue;
            }
            if !tok_is(toks, k + 1, TokKind::Punct, "(") {
                continue;
            }
            if k > 0 && tok_is(toks, k - 1, TokKind::Ident, "fn") {
                continue; // a declaration, not a call
            }
            out.push(Finding {
                rule: "RG011",
                line: t.line,
                col: t.col,
                message: format!(
                    "blocking call `{}` while guard `{}` (acquired via `.{}()` on line {}) \
                     is held — narrow the critical section or `drop({})` first",
                    t.text, g.name, g.method, g.line, g.name
                ),
            });
        }
    }
}

/// RG012: a silently swallowed `Result`. Three shapes: statement-
/// position `.ok();` (converts the error to `None` and drops it),
/// `let _ = fallible(…)` where `fallible` is declared in this file with
/// a `Result` return type, and an explicit `let _: Result<…> = …` bind.
/// The in-file signature table keeps the rule auditable: discarding a
/// cross-crate `Result` (e.g. socket teardown) is invisible to it, but
/// every discard of one of *our own* fallible calls must be justified
/// with a waiver.
fn check_rg012(toks: &[Tok], ctx: &Context, out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if ctx.test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        if tok_is(toks, i, TokKind::Punct, ".")
            && tok_is(toks, i + 1, TokKind::Ident, "ok")
            && tok_is(toks, i + 2, TokKind::Punct, "(")
            && tok_is(toks, i + 3, TokKind::Punct, ")")
            && tok_is(toks, i + 4, TokKind::Punct, ";")
            && statement_discards(toks, i)
        {
            out.push(Finding {
                rule: "RG012",
                line: toks[i + 1].line,
                col: toks[i + 1].col,
                message: "statement-position `.ok();` swallows the error — handle it, \
                          propagate it, or waive with a justification"
                    .into(),
            });
        }
        if !(tok_is(toks, i, TokKind::Ident, "let") && tok_is(toks, i + 1, TokKind::Ident, "_")) {
            continue;
        }
        if tok_is(toks, i + 2, TokKind::Punct, ":") {
            // `let _: Result<…> = …;` — an explicitly typed discard.
            let mut fallible = false;
            for t in toks.iter().skip(i + 3) {
                if t.kind == TokKind::Punct && (t.text == "=" || t.text == ";") {
                    break;
                }
                if t.kind == TokKind::Ident && t.text == "Result" {
                    fallible = true;
                }
            }
            if fallible {
                out.push(Finding {
                    rule: "RG012",
                    line: toks[i].line,
                    col: toks[i].col,
                    message: "`let _: Result<…>` discards the error — handle it, propagate \
                              it, or waive with a justification"
                        .into(),
                });
            }
        } else if tok_is(toks, i + 2, TokKind::Punct, "=") {
            // `let _ = …;` — flag when the RHS calls an in-file fallible
            // function (identifier directly followed by `(`; macro bangs
            // like `write!` have a `!` in between and never match).
            let mut depth = 0i32;
            let mut j = i + 3;
            while j < toks.len() {
                let t = &toks[j];
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                }
                if t.kind == TokKind::Ident
                    && ctx.facts.fallible_fns.contains(&t.text)
                    && tok_is(toks, j + 1, TokKind::Punct, "(")
                {
                    out.push(Finding {
                        rule: "RG012",
                        line: toks[i].line,
                        col: toks[i].col,
                        message: format!(
                            "`let _ = …` discards the `Result` of `{}` (declared fallible \
                             in this file) — handle it, propagate it, or waive with a \
                             justification",
                            t.text
                        ),
                    });
                    break;
                }
                j += 1;
            }
        }
    }
}

/// Whether the `.ok()` whose `.` sits at `dot` begins at statement
/// position: walking back, we hit a statement boundary (`;`, `{`, `}`)
/// before any evidence the value is consumed (`let`, `return`, `=`,
/// `?`, a match arm, or a control-flow head).
fn statement_discards(toks: &[Tok], dot: usize) -> bool {
    let mut k = dot;
    while k > 0 {
        k -= 1;
        let t = &toks[k];
        if t.kind == TokKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
            return true;
        }
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "let" | "return" | "if" | "while" | "match")
        {
            return false;
        }
        if t.kind == TokKind::Punct && matches!(t.text.as_str(), "=" | "?" | "=>") {
            return false;
        }
    }
    true
}

/// A parsed `xtask-allow` waiver comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Line the waiver comment sits on.
    pub line: u32,
    /// Line the waiver applies to (its own line if it trails code, the
    /// next code line when it stands alone).
    pub applies_to: u32,
    /// Rule IDs the waiver covers.
    pub rules: Vec<String>,
    /// Mandatory free-form justification.
    pub reason: String,
}

/// Marker that introduces a waiver inside a comment.
pub const WAIVER_MARKER: &str = "xtask-allow:";

/// Extract waivers from comments. Malformed waivers (no rule ID or no
/// reason) are reported as `XW001` findings so they cannot silently
/// disable a rule.
pub fn parse_waivers(lexed: &Lexed, findings: &mut Vec<Finding>) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for c in &lexed.comments {
        let Some(pos) = c.text.find(WAIVER_MARKER) else {
            continue;
        };
        let rest = &c.text[pos + WAIVER_MARKER.len()..];
        let mut rules = Vec::new();
        let mut reason_start = rest.len();
        for (off, word) in split_words(rest) {
            let id = word.trim_end_matches(',');
            if is_rule_id(id) {
                rules.push(id.to_string());
            } else {
                reason_start = off;
                break;
            }
        }
        let reason = rest[reason_start.min(rest.len())..].trim().to_string();
        if rules.is_empty() || reason.is_empty() {
            findings.push(Finding {
                rule: "XW001",
                line: c.line,
                col: 1,
                message: "malformed waiver — expected `// xtask-allow: RGxxx <reason>` \
                          with at least one rule ID and a non-empty reason"
                    .into(),
            });
            continue;
        }
        let end_line = c.end_line;
        let standalone = !lexed.tokens.iter().any(|t| t.line == c.line);
        let applies_to = if standalone {
            lexed
                .tokens
                .iter()
                .map(|t| t.line)
                .filter(|&l| l > end_line)
                .min()
                .unwrap_or(end_line + 1)
        } else {
            c.line
        };
        waivers.push(Waiver {
            line: c.line,
            applies_to,
            rules,
            reason,
        });
    }
    waivers
}

fn split_words(s: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut start = None;
    for (i, ch) in s.char_indices() {
        if ch.is_whitespace() {
            if let Some(st) = start.take() {
                out.push((st, &s[st..i]));
            }
        } else if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(st) = start {
        out.push((st, &s[st..]));
    }
    out
}

fn is_rule_id(word: &str) -> bool {
    word.len() == 5
        && (word.starts_with("RG") || word.starts_with("XW"))
        && word[2..].bytes().all(|b| b.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn findings(src: &str, rules: RuleSet) -> Vec<Finding> {
        let lexed = lex(src);
        let ctx = build_context(&lexed);
        run_rules(&lexed, &ctx, &rules)
    }

    #[test]
    fn rg001_flags_unwrap_and_empty_expect() {
        let fs = findings(
            "fn f() { x.unwrap(); y.expect(\"\"); z.expect(\"reason\"); w.unwrap_or(3); }",
            RuleSet {
                rg001: true,
                ..RuleSet::default()
            },
        );
        assert_eq!(fs.len(), 2);
        assert!(fs.iter().all(|f| f.rule == "RG001"));
    }

    #[test]
    fn rg002_skips_test_modules() {
        let src = "fn a() { panic!(\"boom\"); }\n\
                   #[cfg(test)]\nmod tests {\n fn b() { panic!(\"ok in tests\"); }\n}\n";
        let fs = findings(
            src,
            RuleSet {
                rg002: true,
                ..RuleSet::default()
            },
        );
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].line, 1);
    }

    #[test]
    fn cfg_not_test_is_not_test_code() {
        let src = "#[cfg(not(test))]\nfn a() { panic!(); }\n";
        let fs = findings(
            src,
            RuleSet {
                rg002: true,
                ..RuleSet::default()
            },
        );
        assert_eq!(fs.len(), 1);
    }

    #[test]
    fn rg003_flags_numeric_casts_only() {
        let src = "fn f(x: u64, p: *const u8) { let a = x as u32; let b = p as *const i8; \
                   let c = x as f64; }";
        let fs = findings(
            src,
            RuleSet {
                rg003: true,
                ..RuleSet::default()
            },
        );
        // `as u32`, `as f64`, and the pointee `i8` after `*const` —
        // pointer casts keep the primitive name adjacent to `as`? No:
        // `as *const i8` puts `*` after `as`, so only 2 findings.
        assert_eq!(fs.len(), 2);
    }

    #[test]
    fn rg004_float_literal_and_accessors() {
        let src = "fn f() { if x == 0.0 {} if a.lat() == b.lat() {} if n == 3 {} }";
        let fs = findings(
            src,
            RuleSet {
                rg004: true,
                ..RuleSet::default()
            },
        );
        assert_eq!(fs.len(), 2);
    }

    #[test]
    fn rg006_flags_deadline_less_sockets_only() {
        let src = "fn f(a: SocketAddr) {\n\
                   let s = TcpStream::connect(a);\n\
                   let t = TcpStream::connect_timeout(&a, d);\n\
                   t.set_read_timeout(None);\n\
                   t.set_write_timeout(Some(d));\n\
                   }\n\
                   #[cfg(test)]\nmod tests { fn g(a: SocketAddr) { TcpStream::connect(a); } }\n";
        let fs = findings(
            src,
            RuleSet {
                rg006: true,
                ..RuleSet::default()
            },
        );
        let got: Vec<u32> = fs.iter().map(|f| f.line).collect();
        assert_eq!(got, vec![2, 4], "{fs:?}");
        assert!(fs.iter().all(|f| f.rule == "RG006"));
    }

    #[test]
    fn rg007_flags_spawn_and_scope_paths_only() {
        let src = "fn f() {\n\
                   let h = std::thread::spawn(|| 1);\n\
                   thread::scope(|s| { s.spawn(|| 2); });\n\
                   thread::sleep(d);\n\
                   pool.run_shards(0, n, 64, work);\n\
                   }\n\
                   #[cfg(test)]\nmod tests { fn g() { thread::spawn(|| 3); } }\n";
        let fs = findings(
            src,
            RuleSet {
                rg007: true,
                ..RuleSet::default()
            },
        );
        let got: Vec<u32> = fs.iter().map(|f| f.line).collect();
        assert_eq!(got, vec![2, 3], "{fs:?}");
        assert!(fs.iter().all(|f| f.rule == "RG007"));
    }

    #[test]
    fn rg008_flags_adhoc_timing_and_stderr_prints_only() {
        let src = "fn f() {\n\
                   let t0 = Instant::now();\n\
                   let t1 = std::time::Instant::now();\n\
                   eprintln!(\"progress: {t0:?}\");\n\
                   println!(\"tables go to stdout\");\n\
                   clock.now();\n\
                   let d = t0.elapsed();\n\
                   }\n\
                   #[cfg(test)]\nmod tests { fn g() { let _ = Instant::now(); } }\n";
        let fs = findings(
            src,
            RuleSet {
                rg008: true,
                ..RuleSet::default()
            },
        );
        let got: Vec<u32> = fs.iter().map(|f| f.line).collect();
        assert_eq!(got, vec![2, 3, 4], "{fs:?}");
        assert!(fs.iter().all(|f| f.rule == "RG008"));
    }

    #[test]
    fn rg009_flags_allocating_lookup_calls_only() {
        let src = "fn f(db: &D, view: &ResolvedView) {\n\
                   let rec = db.lookup(ip);\n\
                   let compact = db.lookup_compact(ip, &mut interner);\n\
                   let cached = view.record(0, i);\n\
                   let table = country::lookup(cc);\n\
                   map.lookup(ip);\n\
                   }\n\
                   #[cfg(test)]\nmod tests { fn g() { db.lookup(ip); } }\n";
        let fs = findings(
            src,
            RuleSet {
                rg009: true,
                ..RuleSet::default()
            },
        );
        let got: Vec<u32> = fs.iter().map(|f| f.line).collect();
        assert_eq!(got, vec![2, 6], "{fs:?}");
        assert!(fs.iter().all(|f| f.rule == "RG009"));
    }

    #[test]
    fn rg010_flags_computed_indexing_not_literals() {
        let src = "fn f(v: &[u8], i: usize) {\n\
                   let a = v[i];\n\
                   let b = &v[2..6];\n\
                   let c = v[0];\n\
                   let d = unsafe { v.get_unchecked(i) };\n\
                   }\n\
                   #[cfg(test)]\nmod tests { fn g(v: &[u8], i: usize) { let x = v[i]; } }\n";
        let fs = findings(
            src,
            RuleSet {
                rg010: true,
                ..RuleSet::default()
            },
        );
        let got: Vec<u32> = fs.iter().map(|f| f.line).collect();
        assert_eq!(got, vec![2, 3, 5], "{fs:?}");
        assert!(fs.iter().all(|f| f.rule == "RG010"));
    }

    #[test]
    fn rg011_flags_blocking_calls_under_live_guards_only() {
        let src = "fn f(&self) {\n\
                   let mut cache = self.decoded.lock().unwrap();\n\
                   let rec = decode_record(slice);\n\
                   cache.insert(at, rec);\n\
                   }\n\
                   fn g(&self) {\n\
                   let state = self.m.lock().unwrap();\n\
                   let n = state.len();\n\
                   drop(state);\n\
                   let rec = decode_record(slice);\n\
                   }\n";
        let fs = findings(
            src,
            RuleSet {
                rg011: true,
                ..RuleSet::default()
            },
        );
        let got: Vec<u32> = fs.iter().map(|f| f.line).collect();
        assert_eq!(got, vec![3], "{fs:?}");
        assert_eq!(fs[0].rule, "RG011");
        assert!(fs[0].message.contains("cache"));
    }

    #[test]
    fn rg011_if_let_guard_does_not_leak_past_its_block() {
        let src = "fn f(&self) {\n\
                   if let Ok(stats) = self.stats.lock() { stats.bump(); }\n\
                   let rec = decode_record(slice);\n\
                   }\n";
        let fs = findings(
            src,
            RuleSet {
                rg011: true,
                ..RuleSet::default()
            },
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn rg012_flags_swallowed_results() {
        let src = "fn fallible() -> std::io::Result<()> { Ok(()) }\n\
                   fn f(sock: &S) {\n\
                   let _ = fallible();\n\
                   sock.shutdown().ok();\n\
                   let _: Result<(), E> = sock.close();\n\
                   let used = fallible();\n\
                   let _ = infallible_elsewhere();\n\
                   let ok = sock.shutdown().ok();\n\
                   }\n";
        let fs = findings(
            src,
            RuleSet {
                rg012: true,
                ..RuleSet::default()
            },
        );
        let got: Vec<u32> = fs.iter().map(|f| f.line).collect();
        assert_eq!(got, vec![3, 4, 5], "{fs:?}");
        assert!(fs.iter().all(|f| f.rule == "RG012"));
    }

    #[test]
    fn rg012_ignores_macro_discards_and_question_marks() {
        let src = "fn fallible() -> Result<(), E> { Ok(()) }\n\
                   fn f(out: &mut W) -> Result<(), E> {\n\
                   let _ = write!(out, \"x\");\n\
                   fallible()?;\n\
                   Ok(())\n\
                   }\n";
        let fs = findings(
            src,
            RuleSet {
                rg012: true,
                ..RuleSet::default()
            },
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn rg005_requires_doc_above_pub_fn() {
        let src = "/// Documented.\npub fn good() {}\n\npub fn bad() {}\n\
                   \n#[inline]\npub fn also_bad() {}\n\
                   \n/// Doc.\n#[inline]\npub fn attr_between() {}\n\
                   \npub(crate) fn internal() {}\n";
        let fs = findings(
            src,
            RuleSet {
                rg005: true,
                ..RuleSet::default()
            },
        );
        let names: Vec<_> = fs.iter().map(|f| f.message.clone()).collect();
        assert_eq!(fs.len(), 2, "{names:?}");
        assert!(names[0].contains("bad"));
        assert!(names[1].contains("also_bad"));
    }

    #[test]
    fn waiver_parsing_and_malformed() {
        let src = "// xtask-allow: RG001 index checked above\nlet x = v.get(0);\n\
                   // xtask-allow: RG001\nlet y = 1;\n";
        let lexed = lex(src);
        let mut faults = Vec::new();
        let ws = parse_waivers(&lexed, &mut faults);
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].applies_to, 2);
        assert_eq!(ws[0].reason, "index checked above");
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].rule, "XW001");
    }

    #[test]
    fn trailing_waiver_applies_to_own_line() {
        let src = "let x = v.unwrap(); // xtask-allow: RG001 seeded above\n";
        let lexed = lex(src);
        let mut faults = Vec::new();
        let ws = parse_waivers(&lexed, &mut faults);
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].applies_to, 1);
    }
}

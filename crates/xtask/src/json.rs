//! Machine-readable output for `cargo xtask lint --json` and
//! `cargo xtask unsafe-audit --json`.
//!
//! Hand-rolled emission (the workspace vendors no serde): every string
//! passes through one escape routine, field order is fixed, and
//! collections arrive pre-sorted from the engine, so the output is
//! byte-deterministic — CI can diff two runs directly.

use std::fmt::Write as _;

use crate::engine::{Outcome, UnsafeAudit};

/// Render a lint [`Outcome`] as one line of JSON.
pub fn lint_json(out: &Outcome) -> String {
    let mut s = String::new();
    let _ = write!(s, "{{\"files_scanned\":{}", out.files_scanned);
    s.push_str(",\"violations\":[");
    for (n, v) in out.violations.iter().enumerate() {
        if n > 0 {
            s.push(',');
        }
        s.push_str("{\"file\":");
        push_str_value(&mut s, &v.file);
        let _ = write!(s, ",\"line\":{},\"col\":{},\"rule\":", v.line, v.col);
        push_str_value(&mut s, &v.rule);
        s.push_str(",\"message\":");
        push_str_value(&mut s, &v.message);
        s.push('}');
    }
    s.push_str("],\"waivers\":[");
    for (n, w) in out.waivers.iter().enumerate() {
        if n > 0 {
            s.push(',');
        }
        s.push_str("{\"file\":");
        push_str_value(&mut s, &w.file);
        let _ = write!(s, ",\"line\":{},\"rules\":[", w.line);
        for (m, r) in w.rules.iter().enumerate() {
            if m > 0 {
                s.push(',');
            }
            push_str_value(&mut s, r);
        }
        s.push_str("],\"reason\":");
        push_str_value(&mut s, &w.reason);
        let _ = write!(s, ",\"suppressed\":{}}}", w.suppressed);
    }
    s.push_str("]}");
    s
}

/// Render an [`UnsafeAudit`] as one line of JSON.
pub fn unsafe_audit_json(audit: &UnsafeAudit) -> String {
    let mut s = String::new();
    let _ = write!(s, "{{\"files_scanned\":{}", audit.files_scanned);
    let _ = write!(s, ",\"violation_count\":{}", audit.violations().len());
    s.push_str(",\"sites\":[");
    for (n, site) in audit.sites.iter().enumerate() {
        if n > 0 {
            s.push(',');
        }
        s.push_str("{\"file\":");
        push_str_value(&mut s, &site.file);
        let _ = write!(s, ",\"line\":{},\"col\":{},\"kind\":", site.line, site.col);
        push_str_value(&mut s, site.kind);
        s.push_str(",\"name\":");
        match &site.name {
            Some(name) => push_str_value(&mut s, name),
            None => s.push_str("null"),
        }
        let _ = write!(
            s,
            ",\"safety_comment\":{},\"test\":{}}}",
            site.has_safety_comment, site.test
        );
    }
    s.push_str("]}");
    s
}

/// Append `value` as a quoted JSON string with the required escapes.
fn push_str_value(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Diagnostic, Outcome, WaiverRecord};

    #[test]
    fn lint_json_is_exact_and_escaped() {
        let out = Outcome {
            violations: vec![Diagnostic {
                file: "crates/db/src/rgdb.rs".into(),
                line: 7,
                col: 13,
                rule: "RG010".into(),
                message: "unchecked index `image[at]` — use \"get\"".into(),
            }],
            waivers: vec![WaiverRecord {
                file: "crates/cymru/src/server.rs".into(),
                line: 217,
                rules: vec!["RG011".into()],
                reason: "handoff discipline".into(),
                suppressed: 1,
            }],
            files_scanned: 2,
        };
        assert_eq!(
            lint_json(&out),
            "{\"files_scanned\":2,\"violations\":[{\"file\":\"crates/db/src/rgdb.rs\",\
             \"line\":7,\"col\":13,\"rule\":\"RG010\",\"message\":\"unchecked index \
             `image[at]` — use \\\"get\\\"\"}],\"waivers\":[{\"file\":\
             \"crates/cymru/src/server.rs\",\"line\":217,\"rules\":[\"RG011\"],\
             \"reason\":\"handoff discipline\",\"suppressed\":1}]}"
        );
    }

    #[test]
    fn empty_outcome_renders_empty_arrays() {
        let out = Outcome::default();
        assert_eq!(
            lint_json(&out),
            "{\"files_scanned\":0,\"violations\":[],\"waivers\":[]}"
        );
    }

    #[test]
    fn unsafe_audit_json_counts_violations() {
        let sites = crate::engine::audit_source(
            "lib.rs",
            "fn f(v: &[u8]) { let a = unsafe { v.get_unchecked(0) }; }",
        );
        let audit = UnsafeAudit {
            sites,
            files_scanned: 1,
        };
        let json = unsafe_audit_json(&audit);
        assert!(json.starts_with("{\"files_scanned\":1,\"violation_count\":1,"));
        assert!(json.contains("\"kind\":\"unsafe block\""));
        assert!(json.contains("\"name\":null"));
        assert!(json.contains("\"safety_comment\":false"));
    }

    #[test]
    fn control_characters_are_escaped() {
        let mut s = String::new();
        push_str_value(&mut s, "a\nb\t\"c\"\\d\u{1}");
        assert_eq!(s, "\"a\\nb\\t\\\"c\\\"\\\\d\\u0001\"");
    }
}

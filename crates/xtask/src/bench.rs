//! `cargo xtask bench-check` — the perf-baseline gate.
//!
//! `repro --timings` emits `BENCH_pipeline.json`: one stage object per
//! line, with wall-clock milliseconds per pipeline stage. This module
//! parses that deliberately line-oriented format without a JSON library,
//! compares a fresh run against the committed baseline, and fails on a
//! per-stage wall-clock regression beyond the threshold.
//!
//! Two defences keep the gate honest across machines and CI noise:
//!
//! - **Smoothing**: ratios are computed on `wall_ms + SMOOTHING_MS`, so
//!   a 3 ms stage jittering to 9 ms cannot trip a 2× gate, while a 3 ms
//!   stage blowing up to 300 ms still does.
//! - **Median normalisation**: every per-stage ratio is divided by the
//!   median ratio across stages, cancelling the machine-speed factor
//!   between the baseline host and the current host. A uniform 3×-slower
//!   machine passes; one stage regressing 3× relative to its peers fails.

use std::fmt;

/// Per-stage regression threshold on the normalised ratio.
pub const THRESHOLD: f64 = 2.0;

/// Milliseconds added to both sides of a ratio to damp timer noise on
/// sub-ms stages.
pub const SMOOTHING_MS: f64 = 25.0;

/// One timed stage out of `BENCH_pipeline.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Stage name (stable across runs).
    pub name: String,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Items processed.
    pub items: f64,
}

/// A parsed timing report.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Master seed of the run.
    pub seed: f64,
    /// Scale name (`tiny`, `small`, …).
    pub scale: String,
    /// Worker threads used.
    pub threads: f64,
    /// Stages in pipeline order.
    pub stages: Vec<Stage>,
}

/// Extract the number following `"key":` on `line`, if present.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extract the quoted string following `"key":` on `line`, if present.
fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let open = rest.find('"')?;
    let rest = &rest[open + 1..];
    let close = rest.find('"')?;
    Some(rest[..close].to_string())
}

/// Parse a `BENCH_pipeline.json` text. The format contract is one stage
/// object per line (which `PipelineTimings::to_json` guarantees); any
/// line without a `"stage":` key is scanned for the top-level fields.
pub fn parse_report(text: &str) -> Result<Report, String> {
    let mut report = Report {
        seed: 0.0,
        scale: String::new(),
        threads: 0.0,
        stages: Vec::new(),
    };
    for line in text.lines() {
        if let Some(name) = field_str(line, "stage") {
            let wall_ms = field_num(line, "wall_ms")
                .ok_or_else(|| format!("stage `{name}` has no wall_ms: {line}"))?;
            let items = field_num(line, "items").unwrap_or(0.0);
            report.stages.push(Stage {
                name,
                wall_ms,
                items,
            });
        } else {
            if let Some(seed) = field_num(line, "seed") {
                report.seed = seed;
            }
            if let Some(scale) = field_str(line, "scale") {
                report.scale = scale;
            }
            if let Some(threads) = field_num(line, "threads") {
                report.threads = threads;
            }
        }
    }
    if report.stages.is_empty() {
        return Err("no stages found — is this a BENCH_pipeline.json file?".into());
    }
    Ok(report)
}

/// One baseline-vs-fresh stage comparison.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Stage name.
    pub stage: String,
    /// Baseline wall-clock ms.
    pub base_ms: f64,
    /// Fresh wall-clock ms.
    pub fresh_ms: f64,
    /// Smoothed fresh/base ratio before normalisation.
    pub ratio: f64,
    /// Ratio divided by the run's median ratio.
    pub normalized: f64,
    /// Whether this stage trips the gate.
    pub failed: bool,
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} {:>10.1} {:>10.1} {:>7.2}x {:>7.2}x  {}",
            self.stage,
            self.base_ms,
            self.fresh_ms,
            self.ratio,
            self.normalized,
            if self.failed { "FAIL" } else { "ok" }
        )
    }
}

/// Compare `fresh` against `base`. Stages are matched by name in
/// baseline order; a stage missing from the fresh run is an error (a
/// renamed stage must re-bless the baseline). Extra fresh stages are
/// ignored so blessing is forward-compatible.
pub fn compare(base: &Report, fresh: &Report, threshold: f64) -> Result<Vec<Comparison>, String> {
    if base.scale != fresh.scale {
        return Err(format!(
            "scale mismatch: baseline ran at `{}`, fresh at `{}` — re-bless or fix the run",
            base.scale, fresh.scale
        ));
    }
    let mut pairs = Vec::new();
    for b in &base.stages {
        let f = fresh
            .stages
            .iter()
            .find(|f| f.name == b.name)
            .ok_or_else(|| format!("stage `{}` missing from the fresh run", b.name))?;
        let ratio = (f.wall_ms + SMOOTHING_MS) / (b.wall_ms + SMOOTHING_MS);
        // A 0 ms stage on both sides is fine — smoothing makes the ratio
        // exactly 1.0 — but a corrupted report (negative wall_ms) can
        // produce a NaN/∞/non-positive ratio, and one such value would
        // poison the median below and silently pass or fail every other
        // stage. Reject it at the source instead.
        if !ratio.is_finite() || ratio <= 0.0 {
            return Err(format!(
                "stage `{}`: degenerate timing ratio {ratio} (base {} ms, fresh {} ms) — corrupted report?",
                b.name, b.wall_ms, f.wall_ms
            ));
        }
        pairs.push((b, f, ratio));
    }
    let mut ratios: Vec<f64> = pairs.iter().map(|&(_, _, r)| r).collect();
    ratios.sort_by(f64::total_cmp);
    let median = ratios[ratios.len() / 2];
    if !median.is_finite() || median <= 0.0 {
        return Err("degenerate median ratio".into());
    }
    Ok(pairs
        .into_iter()
        .map(|(b, f, ratio)| {
            let normalized = ratio / median;
            Comparison {
                stage: b.name.clone(),
                base_ms: b.wall_ms,
                fresh_ms: f.wall_ms,
                ratio,
                normalized,
                failed: normalized > threshold,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "schema": 1,
  "seed": 20170301,
  "scale": "tiny",
  "threads": 2,
  "total_wall_ms": 52.500,
  "stages": [
    {"stage": "world", "wall_ms": 12.500, "items": 1000, "items_per_sec": 80000.0},
    {"stage": "ark", "wall_ms": 40.000, "items": 800, "items_per_sec": 20000.0},
    {"stage": "accuracy", "wall_ms": 100.000, "items": 4000, "items_per_sec": 40000.0}
  ]
}
"#;

    fn sample() -> Report {
        parse_report(SAMPLE).expect("sample parses")
    }

    #[test]
    fn parses_header_and_stages() {
        let r = sample();
        assert_eq!(r.seed, 20_170_301.0);
        assert_eq!(r.scale, "tiny");
        assert_eq!(r.threads, 2.0);
        assert_eq!(r.stages.len(), 3);
        assert_eq!(r.stages[0].name, "world");
        assert_eq!(r.stages[1].wall_ms, 40.0);
        assert_eq!(r.stages[2].items, 4000.0);
    }

    #[test]
    fn identical_runs_pass() {
        let cmp = compare(&sample(), &sample(), THRESHOLD).expect("comparable");
        assert!(cmp.iter().all(|c| !c.failed), "{cmp:#?}");
        assert!(cmp.iter().all(|c| (c.normalized - 1.0).abs() < 1e-9));
    }

    #[test]
    fn uniformly_slower_machine_passes() {
        let mut fresh = sample();
        for s in &mut fresh.stages {
            s.wall_ms = s.wall_ms * 3.0 + 2.0 * SMOOTHING_MS; // exact 3x on smoothed ratios
        }
        let cmp = compare(&sample(), &fresh, THRESHOLD).expect("comparable");
        assert!(
            cmp.iter().all(|c| !c.failed),
            "machine speed must normalise away: {cmp:#?}"
        );
    }

    #[test]
    fn single_stage_blowup_fails() {
        let mut fresh = sample();
        fresh.stages[2].wall_ms = 1_000.0; // accuracy regresses 10x
        let cmp = compare(&sample(), &fresh, THRESHOLD).expect("comparable");
        assert!(cmp[2].failed, "{cmp:#?}");
        assert!(!cmp[0].failed && !cmp[1].failed);
    }

    #[test]
    fn sub_ms_jitter_is_smoothed_not_flagged() {
        let mut base = sample();
        base.stages[0].wall_ms = 1.0;
        let mut fresh = base.clone();
        fresh.stages[0].wall_ms = 9.0; // 9x raw, but tiny in absolute terms
        let cmp = compare(&base, &fresh, THRESHOLD).expect("comparable");
        assert!(!cmp[0].failed, "{cmp:#?}");
    }

    #[test]
    fn zero_duration_stage_in_both_runs_is_a_clean_pass() {
        // An instant stage (0 ms on both sides) must contribute a ratio
        // of exactly 1.0 — not 0/0 — and must not disturb the median.
        let mut base = sample();
        base.stages.push(Stage {
            name: "noop".into(),
            wall_ms: 0.0,
            items: 0.0,
        });
        let mut fresh = base.clone();
        fresh.stages[3].wall_ms = 0.0;
        let cmp = compare(&base, &fresh, THRESHOLD).expect("comparable");
        assert_eq!(cmp.len(), 4);
        assert!((cmp[3].ratio - 1.0).abs() < 1e-12, "{cmp:#?}");
        assert!(cmp.iter().all(|c| !c.failed), "{cmp:#?}");
        assert!(cmp.iter().all(|c| c.normalized.is_finite()));
    }

    #[test]
    fn corrupted_negative_timing_is_an_error_not_a_poisoned_median() {
        // wall_ms == -SMOOTHING_MS makes the smoothed denominator 0; the
        // resulting ∞/NaN ratio must be rejected, not fed to the median.
        let mut base = sample();
        base.stages[1].wall_ms = -SMOOTHING_MS;
        let fresh = sample();
        let err = compare(&base, &fresh, THRESHOLD).expect_err("degenerate ratio");
        assert!(err.contains("degenerate timing ratio"), "{err}");
        // Same corruption on the fresh side: 0/positive is 0, also
        // non-positive, also rejected.
        let base = sample();
        let mut fresh = sample();
        fresh.stages[1].wall_ms = -SMOOTHING_MS;
        let err = compare(&base, &fresh, THRESHOLD).expect_err("zero ratio");
        assert!(err.contains("degenerate timing ratio"), "{err}");
    }

    #[test]
    fn missing_stage_and_scale_mismatch_are_errors() {
        let mut fresh = sample();
        fresh.stages.remove(1);
        assert!(compare(&sample(), &fresh, THRESHOLD).is_err());
        let mut fresh = sample();
        fresh.scale = "small".into();
        assert!(compare(&sample(), &fresh, THRESHOLD).is_err());
    }

    #[test]
    fn garbage_input_is_rejected() {
        assert!(parse_report("not json at all").is_err());
    }
}

//! Workspace automation for the routergeo repository.
//!
//! The `xtask` crate hosts the project's custom static-analysis gate,
//! invoked through the cargo alias defined in `.cargo/config.toml`:
//!
//! ```text
//! cargo xtask lint            # RG001–RG012 over workspace sources
//! cargo xtask lint --waivers  # also list every active waiver
//! cargo xtask lint --json     # machine-readable findings for CI
//! cargo xtask unsafe-audit    # every unsafe site must carry // SAFETY:
//! cargo xtask fix-audit       # burn-down dashboard by rule and crate
//! cargo xtask deps            # offline manifest / dependency policy
//! cargo xtask bench-check     # compare repro --timings vs the baseline
//! cargo xtask bench-check --bless  # refresh BENCH_pipeline.json
//! ```
//!
//! The engine parses Rust at the token level ([`lexer`]), builds a
//! brace-matched scope tree ([`scope`]) and intra-function facts —
//! guard liveness, fallible functions, index sites — ([`facts`]),
//! evaluates the rules ([`rules`]), classifies files and applies
//! waivers ([`engine`]), renders machine-readable output ([`json`]),
//! checks manifests ([`deps`]), and gates stage timings against the
//! committed baseline ([`bench`]). See CONTRIBUTING.md for the rule
//! catalogue and how to add a rule.

pub mod bench;
pub mod deps;
pub mod engine;
pub mod facts;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod scope;

//! Workspace automation for the routergeo repository.
//!
//! The `xtask` crate hosts the project's custom static-analysis gate,
//! invoked through the cargo alias defined in `.cargo/config.toml`:
//!
//! ```text
//! cargo xtask lint            # RG001–RG007 over workspace sources
//! cargo xtask lint --waivers  # also list every active waiver
//! cargo xtask fix-audit       # burn-down dashboard by rule and crate
//! cargo xtask deps            # offline manifest / dependency policy
//! cargo xtask bench-check     # compare repro --timings vs the baseline
//! cargo xtask bench-check --bless  # refresh BENCH_pipeline.json
//! ```
//!
//! The engine parses Rust at the token level ([`lexer`]), evaluates the
//! rules ([`rules`]), classifies files and applies waivers ([`engine`]),
//! checks manifests ([`deps`]), and gates stage timings against the
//! committed baseline ([`bench`]). See CONTRIBUTING.md for the rule
//! catalogue and how to add a rule.

pub mod bench;
pub mod deps;
pub mod engine;
pub mod lexer;
pub mod rules;

//! End-to-end fixture tests for the lint engine: exact rule IDs, line
//! numbers, and waiver behaviour — plus the acceptance gate that the
//! workspace's own tree lints clean.

use std::fs;
use std::path::{Path, PathBuf};

use xtask::deps;
use xtask::engine::{self, lint_source, rules_for};
use xtask::rules::RuleSet;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).expect("fixture file readable")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels below the root")
        .to_path_buf()
}

#[test]
fn bad_fixture_reports_exact_rules_and_lines() {
    let out = lint_source("bad_rules.rs", &fixture("bad_rules.rs"), &RuleSet::all());
    let got: Vec<(&str, u32)> = out
        .violations
        .iter()
        .map(|v| (v.rule.as_str(), v.line))
        .collect();
    assert_eq!(
        got,
        vec![
            ("RG005", 3),  // pub fn undocumented
            ("RG001", 4),  // .unwrap()
            ("RG001", 8),  // .expect("")
            ("RG002", 13), // panic!
            ("RG002", 15), // unreachable!
            ("RG003", 20), // x as u32
            ("RG004", 24), // a == 0.5
        ],
        "full diagnostics: {:#?}",
        out.violations
    );
    assert!(out.waivers.is_empty());
}

#[test]
fn bad_fixture_reports_exact_columns() {
    let out = lint_source("bad_rules.rs", &fixture("bad_rules.rs"), &RuleSet::all());
    let unwrap = &out.violations[1];
    assert_eq!((unwrap.line, unwrap.col), (4, 7), "col of `unwrap` token");
    let cast = &out.violations[5];
    assert_eq!((cast.line, cast.col), (20, 7), "col of `as` token");
}

#[test]
fn bad_fixture_would_fail_the_lint_gate() {
    // The acceptance criterion: reintroducing any fixture-bad snippet
    // makes the lint exit non-zero, which maps to a non-empty violation
    // list here.
    let out = lint_source("bad_rules.rs", &fixture("bad_rules.rs"), &RuleSet::all());
    assert!(!out.violations.is_empty());
}

#[test]
fn test_code_in_fixture_is_exempt() {
    let out = lint_source("bad_rules.rs", &fixture("bad_rules.rs"), &RuleSet::all());
    assert!(
        out.violations.iter().all(|v| v.line < 26),
        "nothing inside #[cfg(test)] may be flagged: {:#?}",
        out.violations
    );
}

#[test]
fn waived_fixture_is_clean_and_audited() {
    let out = lint_source(
        "good_waived.rs",
        &fixture("good_waived.rs"),
        &RuleSet::all(),
    );
    assert!(
        out.violations.is_empty(),
        "waivers must suppress everything: {:#?}",
        out.violations
    );
    let got: Vec<(u32, &str)> = out
        .waivers
        .iter()
        .map(|w| (w.line, w.rules[0].as_str()))
        .collect();
    assert_eq!(
        got,
        vec![(4, "RG001"), (7, "RG002"), (11, "RG003"), (15, "RG004")]
    );
    assert!(
        out.waivers.iter().all(|w| !w.reason.is_empty()),
        "every audited waiver carries its reason"
    );
}

#[test]
fn stale_and_malformed_waivers_fail() {
    let out = lint_source(
        "bad_waivers.rs",
        &fixture("bad_waivers.rs"),
        &RuleSet::all(),
    );
    let got: Vec<(&str, u32)> = out
        .violations
        .iter()
        .map(|v| (v.rule.as_str(), v.line))
        .collect();
    assert_eq!(
        got,
        vec![(XW_STALE, 4), (XW_MALFORMED, 7)],
        "{:#?}",
        out.violations
    );
}

const XW_STALE: &str = "XW002";
const XW_MALFORMED: &str = "XW001";

#[test]
fn rg006_fixture_reports_deadline_less_sockets_and_honours_waivers() {
    let out = lint_source("bad_rg006.rs", &fixture("bad_rg006.rs"), &RuleSet::all());
    let got: Vec<(&str, u32)> = out
        .violations
        .iter()
        .map(|v| (v.rule.as_str(), v.line))
        .collect();
    assert_eq!(
        got,
        vec![
            ("RG006", 8),  // TcpStream::connect without a deadline
            ("RG006", 16), // set_read_timeout(None)
            ("RG006", 17), // set_write_timeout(None)
        ],
        "full diagnostics: {:#?}",
        out.violations
    );
    // connect_timeout, Some(..) deadlines, and #[cfg(test)] code pass;
    // the waived self-nudge is suppressed and audited.
    assert_eq!(out.waivers.len(), 1);
    assert_eq!(out.waivers[0].rules, vec!["RG006".to_string()]);
    assert_eq!(out.waivers[0].suppressed, 1);
}

#[test]
fn rg007_fixture_reports_ad_hoc_threading_and_honours_waivers() {
    let out = lint_source("bad_rg007.rs", &fixture("bad_rg007.rs"), &RuleSet::all());
    let got: Vec<(&str, u32)> = out
        .violations
        .iter()
        .map(|v| (v.rule.as_str(), v.line))
        .collect();
    assert_eq!(
        got,
        vec![
            ("RG007", 7),  // thread::spawn fan-out
            ("RG007", 11), // thread::scope fan-out
        ],
        "full diagnostics: {:#?}",
        out.violations
    );
    // thread::sleep, scope-handle `.spawn`, and #[cfg(test)] code pass;
    // the waived watchdog is suppressed and audited.
    assert_eq!(out.waivers.len(), 1);
    assert_eq!(out.waivers[0].rules, vec!["RG007".to_string()]);
    assert_eq!(out.waivers[0].suppressed, 1);
}

#[test]
fn rg008_fixture_reports_adhoc_instrumentation_and_honours_waivers() {
    let out = lint_source("bad_rg008.rs", &fixture("bad_rg008.rs"), &RuleSet::all());
    let got: Vec<(&str, u32)> = out
        .violations
        .iter()
        .map(|v| (v.rule.as_str(), v.line))
        .collect();
    assert_eq!(
        got,
        vec![
            ("RG008", 7),  // Instant::now()
            ("RG008", 8),  // std::time::Instant::now()
            ("RG008", 14), // eprintln! progress print
        ],
        "full diagnostics: {:#?}",
        out.violations
    );
    // println! (stdout tables), injected clocks, and #[cfg(test)] code
    // pass; the waived system-clock impl is suppressed and audited.
    assert_eq!(out.waivers.len(), 1);
    assert_eq!(out.waivers[0].rules, vec!["RG008".to_string()]);
    assert_eq!(out.waivers[0].suppressed, 1);
}

#[test]
fn rg009_fixture_reports_allocating_lookups_and_honours_waivers() {
    let out = lint_source("bad_rg009.rs", &fixture("bad_rg009.rs"), &RuleSet::all());
    let got: Vec<(&str, u32)> = out
        .violations
        .iter()
        .map(|v| (v.rule.as_str(), v.line))
        .collect();
    assert_eq!(
        got,
        vec![
            ("RG009", 7),  // db.lookup(*ip) in a tally loop
            ("RG009", 15), // d.lookup(ip) in a map chain
        ],
        "full diagnostics: {:#?}",
        out.violations
    );
    // lookup_compact, view.record, path-form country::lookup, and
    // #[cfg(test)] code pass; the waived bridge is suppressed and audited.
    assert_eq!(out.waivers.len(), 1);
    assert_eq!(out.waivers[0].rules, vec!["RG009".to_string()]);
    assert_eq!(out.waivers[0].suppressed, 1);
}

#[test]
fn rg010_fixture_reports_unchecked_indexing_with_exact_positions() {
    let out = lint_source("bad_rg010.rs", &fixture("bad_rg010.rs"), &RuleSet::all());
    let got: Vec<(&str, u32, u32)> = out
        .violations
        .iter()
        .map(|v| (v.rule.as_str(), v.line, v.col))
        .collect();
    assert_eq!(
        got,
        vec![
            ("RG010", 6, 21), // image[at]
            ("RG010", 7, 24), // &image[at..at + len]
            ("RG010", 9, 32), // get_unchecked(at)
        ],
        "full diagnostics: {:#?}",
        out.violations
    );
    // image[0] (single literal), .get(at), and #[cfg(test)] code pass.
}

#[test]
fn rg011_fixture_flags_guards_held_across_blocking_calls() {
    let out = lint_source("bad_rg011.rs", &fixture("bad_rg011.rs"), &RuleSet::all());
    let got: Vec<(&str, u32, u32)> = out
        .violations
        .iter()
        .map(|v| (v.rule.as_str(), v.line, v.col))
        .collect();
    assert_eq!(
        got,
        vec![
            ("RG011", 16, 15), // decode_record under `guard`
            ("RG011", 27, 18), // thread::sleep under read guard
        ],
        "full diagnostics: {:#?}",
        out.violations
    );
    // Scoped probe, decode-after-drop, and re-lock-to-publish pass.
    let msg = &out.violations[0].message;
    assert!(
        msg.contains("`decode_record`") && msg.contains("`guard`") && msg.contains("line 9"),
        "message names the call, the guard, and the acquisition line: {msg}"
    );
}

#[test]
fn rg012_fixture_flags_swallowed_results() {
    let out = lint_source("bad_rg012.rs", &fixture("bad_rg012.rs"), &RuleSet::all());
    let got: Vec<(&str, u32, u32)> = out
        .violations
        .iter()
        .map(|v| (v.rule.as_str(), v.line, v.col))
        .collect();
    assert_eq!(
        got,
        vec![
            ("RG012", 6, 21), // statement-position .ok()
            ("RG012", 7, 5),  // let _: Result<..> typed discard
            ("RG012", 8, 5),  // let _ = in-file fallible call
        ],
        "full diagnostics: {:#?}",
        out.violations
    );
    // is_ok(), unwrap_or, propagation, and #[cfg(test)] discards pass.
}

#[test]
fn rg013_fixture_flags_placeholders_and_honours_waivers() {
    let out = lint_source("bad_rg013.rs", &fixture("bad_rg013.rs"), &RuleSet::all());
    let got: Vec<(&str, u32)> = out
        .violations
        .iter()
        .map(|v| (v.rule.as_str(), v.line))
        .collect();
    assert_eq!(
        got,
        vec![
            ("RG013", 5),  // todo! on a library path
            ("RG013", 14), // unimplemented! arm
            ("RG002", 15), // unreachable! stays RG002's, reported once
        ],
        "full diagnostics: {:#?}",
        out.violations
    );
    // The waived scaffold is suppressed and audited; #[cfg(test)]
    // placeholders pass outright.
    assert_eq!(out.waivers.len(), 1);
    assert_eq!(out.waivers[0].rules, vec!["RG013".to_string()]);
    assert_eq!(out.waivers[0].suppressed, 1);
}

#[test]
fn unsafe_audit_fixture_reports_every_site_and_flags_undocumented_ones() {
    let sites = engine::audit_source("bad_unsafe.rs", &fixture("bad_unsafe.rs"));
    let got: Vec<(u32, &str, Option<&str>, bool, bool)> = sites
        .iter()
        .map(|s| {
            (
                s.line,
                s.kind,
                s.name.as_deref(),
                s.has_safety_comment,
                s.test,
            )
        })
        .collect();
    assert_eq!(
        got,
        vec![
            (6, "unsafe block", None, true, false),
            (11, "unsafe block", None, false, false),
            (15, "unsafe fn", Some("third"), false, false),
            (24, "unsafe block", None, false, true),
        ],
        "full sites: {:#?}",
        sites
    );
    let audit = engine::UnsafeAudit {
        sites,
        files_scanned: 1,
    };
    assert_eq!(audit.violations().len(), 3);
}

#[test]
fn scope_tree_of_net_lib_is_pinned_byte_exact() {
    // The scope tree of a real workspace file, rendered and compared
    // byte-for-byte. Regenerate after intentional changes with:
    //   BLESS=1 cargo test -p xtask --test lint_fixtures scope_tree
    let src = fs::read_to_string(workspace_root().join("crates/net/src/lib.rs"))
        .expect("crates/net/src/lib.rs readable");
    let lexed = xtask::lexer::lex(&src);
    let rendered = xtask::scope::build(&lexed).render();
    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/net_lib_scope.txt");
    if std::env::var("BLESS").is_ok() {
        fs::write(&golden_path, &rendered).expect("golden writable");
    }
    let golden = fs::read_to_string(&golden_path).expect("golden scope render present");
    assert_eq!(
        rendered, golden,
        "scope tree of crates/net/src/lib.rs drifted from the golden render"
    );
}

#[test]
fn only_core_analysis_modules_carry_rg009() {
    let coverage = rules_for("crates/core/src/coverage.rs").expect("in scope");
    assert!(coverage.rg009);
    let resolve = rules_for("crates/core/src/resolve.rs").expect("in scope");
    assert!(!resolve.rg009, "the view builder itself resolves lookups");
    let inmem = rules_for("crates/db/src/inmem.rs").expect("in scope");
    assert!(!inmem.rg009, "database impls own their lookups");
}

#[test]
fn obs_and_timing_files_are_exempt_from_rg008() {
    let obs = rules_for("crates/obs/src/lib.rs").expect("in scope");
    assert!(!obs.rg008);
    let timing = rules_for("crates/bench/src/timing.rs").expect("in scope");
    assert!(!timing.rg008);
    let lab = rules_for("crates/bench/src/lab.rs").expect("in scope");
    assert!(lab.rg008);
}

#[test]
fn pool_crate_is_exempt_from_rg007_everyone_else_is_not() {
    let pool = rules_for("crates/pool/src/lib.rs").expect("in scope");
    assert!(!pool.rg007);
    let core = rules_for("crates/core/src/accuracy.rs").expect("in scope");
    assert!(core.rg007);
}

#[test]
fn fixtures_are_outside_workspace_lint_scope() {
    assert!(rules_for("crates/xtask/tests/fixtures/bad_rules.rs").is_none());
}

#[test]
fn workspace_tree_lints_clean() {
    let out = engine::lint_workspace(&workspace_root()).expect("workspace walk succeeds");
    assert!(out.files_scanned > 50, "walk found the workspace sources");
    assert!(
        out.violations.is_empty(),
        "the tree must stay lint-clean; fix or waive:\n{}",
        out.violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_manifests_pass_dependency_policy() {
    let violations = deps::check_workspace(&workspace_root()).expect("manifests readable");
    assert!(
        violations.is_empty(),
        "dependency policy violations:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

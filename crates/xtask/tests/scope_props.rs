//! Property-style batteries for the lexer and the scope builder.
//!
//! These are deterministic (the workspace vendors no fuzzing crate):
//! each battery crosses a table of adversarial snippets — raw strings,
//! brace characters in char literals, nested generics, macro bodies —
//! with a set of wrappers, and asserts structural invariants that must
//! hold for *every* combination rather than pinning one example.

use xtask::lexer::{self, TokKind};
use xtask::scope::{self, ScopeKind, ScopeTree};

/// Structural invariants every scope tree must satisfy.
fn check_invariants(src: &str, tree: &ScopeTree, ntoks: usize) {
    let root = &tree.scopes[0];
    assert_eq!(root.kind, ScopeKind::Root, "scope 0 is the root: {src:?}");
    assert_eq!(root.parent, None);
    assert_eq!((root.open, root.close), (0, ntoks), "root spans the file");
    for (ix, s) in tree.scopes.iter().enumerate() {
        assert!(
            s.open <= s.close && s.close <= ntoks,
            "scope {ix} span [{}, {}] out of range in {src:?}",
            s.open,
            s.close
        );
        if let Some(p) = s.parent {
            let parent = &tree.scopes[p];
            assert!(
                parent.open <= s.open && s.close <= parent.close,
                "scope {ix} escapes its parent in {src:?}"
            );
            assert!(
                parent.children.contains(&ix),
                "parent/child links agree in {src:?}"
            );
        }
        for &c in &s.children {
            assert_eq!(tree.scopes[c].parent, Some(ix));
        }
    }
    assert_eq!(tree.enclosing.len(), ntoks);
    assert_eq!(tree.test_mask.len(), ntoks);
    // Every token strictly inside a scope's braces must map to that
    // scope or one of its descendants (introducing tokens like
    // `fn name(…)` are also claimed by the scope, so only the interior
    // is asserted).
    for (ix, s) in tree.scopes.iter().enumerate().skip(1) {
        for i in (s.open + 1)..s.close.min(ntoks) {
            let mut at = Some(tree.enclosing[i]);
            let mut found = false;
            while let Some(e) = at {
                if e == ix {
                    found = true;
                    break;
                }
                at = tree.scopes[e].parent;
            }
            assert!(
                found,
                "token {i} inside scope {ix} maps outside it in {src:?}"
            );
        }
    }
}

/// Lex + build + invariant-check, returning the tree.
fn checked_tree(src: &str) -> ScopeTree {
    let lexed = lexer::lex(src);
    let tree = scope::build(&lexed);
    check_invariants(src, &tree, lexed.tokens.len());
    tree
}

/// Expression snippets whose literals contain brace/bracket noise. Each
/// must lex to balanced scopes without the noise leaking into matching.
const NOISY_EXPRS: &[&str] = &[
    r#"let a = "} { } {{";"#,
    r#"let b = "\" } \" {";"#,
    "let c = '{';",
    "let d = '}';",
    "let e = '\\'';",
    "let f = '\"';",
    r##"let g = r"} {";"##,
    r###"let h = r#"} "quoted" {"#;"###,
    r####"let i = r##"}## {"## ;"####,
    "let j: Vec<Vec<(u8, u8)>> = Vec::new();",
    "let k: Result<Box<[u8; 4]>, String> = Err(String::new());",
    "let l = a < b && c > d;",
    "let m = vec![1, 2, 3];",
    "let n = matches!(x, Some(_));",
    "// comment with } { braces\nlet o = 1;",
    "/* block } comment { */ let p = 2;",
];

/// Wrappers that embed a statement at a known scope depth. `{}`
/// placeholder marks the insertion point; `fns` is the expected number
/// of Fn scopes.
struct Wrapper {
    template: &'static str,
    fns: usize,
    depth_kinds: &'static [ScopeKind],
}

const WRAPPERS: &[Wrapper] = &[
    Wrapper {
        template: "fn top() { «» }",
        fns: 1,
        depth_kinds: &[ScopeKind::Fn],
    },
    Wrapper {
        template: "fn top() { if cond { «» } }",
        fns: 1,
        depth_kinds: &[ScopeKind::Fn, ScopeKind::Block],
    },
    Wrapper {
        template: "impl Widget { fn m(&self) { «» } }",
        fns: 1,
        depth_kinds: &[ScopeKind::Impl, ScopeKind::Fn],
    },
    Wrapper {
        template: "mod inner { fn deep() { loop { «» } } }",
        fns: 1,
        depth_kinds: &[ScopeKind::Mod, ScopeKind::Fn, ScopeKind::Block],
    },
    Wrapper {
        template: "fn a() { «» }\nfn b() { «» }",
        fns: 2,
        depth_kinds: &[ScopeKind::Fn],
    },
];

#[test]
fn noisy_literals_never_break_scope_matching() {
    for w in WRAPPERS {
        for snippet in NOISY_EXPRS {
            let src = w.template.replace("«»", snippet);
            let tree = checked_tree(&src);
            let fns = tree.of_kind(ScopeKind::Fn).count();
            assert_eq!(fns, w.fns, "fn count for {src:?}");
            // The innermost wrapper scope must close: `close` strictly
            // inside the token stream means the `}` was found, i.e. no
            // literal swallowed a brace.
            let ntoks = lexer::lex(&src).tokens.len();
            for s in tree.scopes.iter().skip(1) {
                assert!(s.close < ntoks, "unterminated scope in {src:?}");
            }
        }
    }
}

#[test]
fn wrapper_nesting_depth_is_exact() {
    for w in WRAPPERS {
        let src = w.template.replace("«»", "let x = 1;");
        let tree = checked_tree(&src);
        // Walk from the deepest `let` token up to the root and compare
        // the kind chain (innermost-first) with the wrapper's spec.
        let lexed = lexer::lex(&src);
        let x_tok = lexed
            .tokens
            .iter()
            .position(|t| t.text == "x")
            .expect("placeholder token present");
        let mut chain = Vec::new();
        let mut at = Some(&tree.scopes[tree.enclosing[x_tok]]);
        while let Some(s) = at {
            if s.kind == ScopeKind::Root {
                break;
            }
            chain.push(s.kind);
            at = s.parent.map(|p| &tree.scopes[p]);
        }
        chain.reverse();
        assert_eq!(chain, w.depth_kinds, "kind chain for {src:?}");
    }
}

#[test]
fn macro_bodies_nest_like_ordinary_blocks() {
    let src = "macro_rules! tally {\n    ($($name:ident),*) => {\n        $(\n            fn $name() { body(); }\n        )*\n    };\n}\nfn real() { tally!(a, b); }\n";
    let tree = checked_tree(src);
    // The macro body's `fn $name` is still seen as a pending fn by the
    // token-level builder — that is fine for linting (macro-generated
    // code is linted at expansion sites in real crates, and the scope
    // here still balances). `real` must be found regardless.
    assert!(
        tree.of_kind(ScopeKind::Fn)
            .any(|s| s.name.as_deref() == Some("real")),
        "fn after a macro_rules item is still classified"
    );
}

#[test]
fn nested_generics_do_not_eat_function_bodies() {
    let srcs = [
        "fn f() -> Result<Vec<(u8, u8)>, Box<String>> { body(); }",
        "fn g<T: Iterator<Item = Result<u8, E>>>(it: T) { body(); }",
        "fn h(map: std::collections::HashMap<String, Vec<u32>>) { body(); }",
        "struct S<T> { field: Vec<T> }\nfn after_struct() { body(); }",
    ];
    for src in srcs {
        let tree = checked_tree(src);
        assert_eq!(
            tree.of_kind(ScopeKind::Fn).count(),
            1,
            "exactly one fn in {src:?}"
        );
    }
}

#[test]
fn lexer_token_kinds_survive_adversarial_literals() {
    let cases: &[(&str, TokKind)] = &[
        (r#""} {""#, TokKind::Str),
        (r##"r#"} {"#"##, TokKind::Str),
        ("'{'", TokKind::Char),
        ("'\\''", TokKind::Char),
        ("'a'", TokKind::Char),
        ("1_000", TokKind::Int),
        ("0xFF", TokKind::Int),
        ("1.5e3", TokKind::Float),
        ("ident_07", TokKind::Ident),
    ];
    for (text, kind) in cases {
        let src = format!("fn f() {{ let v = {text}; }}");
        let lexed = lexer::lex(&src);
        let got = lexed
            .tokens
            .iter()
            .find(|t| t.kind == *kind)
            .unwrap_or_else(|| panic!("no {kind:?} token lexed from {src:?}"));
        assert_eq!(got.kind, *kind);
        checked_tree(&src);
    }
}

#[test]
fn lifetimes_are_not_char_literals() {
    let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
    let lexed = lexer::lex(src);
    assert!(
        lexed.tokens.iter().all(|t| t.kind != TokKind::Char),
        "lifetimes must lex as lifetimes, not chars"
    );
    assert_eq!(
        lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count(),
        3
    );
    let tree = checked_tree(src);
    assert_eq!(tree.of_kind(ScopeKind::Fn).count(), 1);
}

#[test]
fn test_gating_is_stable_under_noise() {
    for snippet in NOISY_EXPRS {
        let src = format!(
            "fn live() {{ {snippet} }}\n#[cfg(test)]\nmod tests {{\n    fn t() {{ {snippet} }}\n}}\n"
        );
        let tree = checked_tree(&src);
        for s in tree.of_kind(ScopeKind::Fn) {
            match s.name.as_deref() {
                Some("live") => assert!(!s.test, "live fn wrongly gated in {src:?}"),
                Some("t") => assert!(s.test, "test fn not gated in {src:?}"),
                other => panic!("unexpected fn {other:?} in {src:?}"),
            }
        }
    }
}

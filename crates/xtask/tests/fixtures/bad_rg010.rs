//! RG010 fixture: unchecked indexing and slicing in a lookup path.
//! Checked `.get(..)` forms, single-literal indexes, and test code pass.

/// Reads one byte and a window out of the image the unchecked way.
pub fn lookup(image: &[u8], at: usize, len: usize) -> u8 {
    let byte = image[at];
    let window = &image[at..at + len];
    let first = image[0];
    let tail = unsafe { *image.get_unchecked(at) };
    byte.wrapping_add(first)
        .wrapping_add(tail)
        .wrapping_add(u8::try_from(window.len()).unwrap_or(0))
}

/// The checked shapes the rule steers toward.
pub fn checked_lookup(image: &[u8], at: usize) -> Option<u8> {
    image.get(at).copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn indexing_in_tests_is_exempt() {
        let v = [1u8, 2, 3];
        let i = 1;
        assert_eq!(v[i], 2);
    }
}

//! RG012 fixture: silently swallowed Results.
//! Inspected, propagated, or genuinely handled Results pass.

/// Discards fallible outcomes three ways the rule catches.
pub fn swallow(input: &str) {
    fallible(input).ok();
    let _: Result<u16, String> = fallible(input);
    let _ = fallible(input);
}

/// The shapes the rule steers toward.
pub fn handled(input: &str) -> Result<u16, String> {
    if fallible(input).is_ok() {
        let port = fallible(input).unwrap_or(0);
        let _ = usize::from(port);
    }
    fallible(input)
}

fn fallible(input: &str) -> Result<u16, String> {
    input.parse().map_err(|_| String::from("bad port"))
}

#[cfg(test)]
mod tests {
    use super::fallible;

    #[test]
    fn discards_in_tests_are_exempt() {
        let _ = fallible("80");
        fallible("81").ok();
    }
}

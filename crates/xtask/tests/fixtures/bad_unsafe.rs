//! unsafe-audit fixture: sites with and without `// SAFETY:` comments.

/// Documented site: the comment sits directly above the block.
pub fn first(v: &[u8]) -> u8 {
    // SAFETY: caller guarantees `v` is non-empty.
    unsafe { *v.get_unchecked(0) }
}

/// Undocumented unsafe block — an audit violation.
pub fn second(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(1) }
}

/// Undocumented unsafe fn — also a violation.
pub unsafe fn third(p: *const u8) -> u8 {
    *p
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_sites_are_reported_and_marked() {
        let v = [7u8];
        let got = unsafe { *v.get_unchecked(0) };
        assert_eq!(got, 7);
    }
}

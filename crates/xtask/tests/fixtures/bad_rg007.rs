//! Fixture: RG007 fires on ad-hoc threading and respects waivers and
//! test exemptions.

use std::thread;

fn detached_fanout(n: usize) -> Vec<thread::JoinHandle<usize>> {
    (0..n).map(|i| thread::spawn(move || i * 2)).collect()
}

fn scoped_fanout(items: &[u64]) -> u64 {
    thread::scope(|s| {
        let h = s.spawn(|| items.iter().sum::<u64>());
        h.join().unwrap_or(0)
    })
}

fn sleeping_is_fine() {
    thread::sleep(std::time::Duration::from_millis(1));
}

fn waived_watchdog() {
    // xtask-allow: RG007 watchdog must outlive the caller; not data-parallel work
    std::thread::spawn(|| loop {
        thread::sleep(std::time::Duration::from_secs(60));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_spawn() {
        let h = thread::spawn(|| 42);
        assert_eq!(h.join().unwrap(), 42);
    }
}

//! RG013 fixture: unfinished-code placeholders in library code.

fn decode(x: u32) -> u32 {
    if x > 10 {
        todo!("wide records")
    } else {
        x
    }
}

fn classify(x: u32) -> u32 {
    match x {
        0 => 1,
        1 => unimplemented!(),
        _ => unreachable!(),
    }
}

fn waived() -> u32 {
    // xtask-allow: RG013 scaffolding pinned by a tracking issue
    todo!()
}

#[cfg(test)]
mod tests {
    #[test]
    fn placeholders_are_fine_in_tests() {
        fn later() -> u32 {
            todo!()
        }
        let _ = later as fn() -> u32;
    }
}

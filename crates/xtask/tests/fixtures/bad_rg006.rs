//! Fixture: RG006 fires on deadline-less sockets and respects waivers
//! and test exemptions.

use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn dial_no_deadline(addr: SocketAddr) -> std::io::Result<TcpStream> {
    TcpStream::connect(addr)
}

fn dial_bounded(addr: SocketAddr) -> std::io::Result<TcpStream> {
    TcpStream::connect_timeout(&addr, Duration::from_millis(500))
}

fn clear_deadlines(s: &TcpStream) -> std::io::Result<()> {
    s.set_read_timeout(None)?;
    s.set_write_timeout(None)?;
    s.set_read_timeout(Some(Duration::from_secs(2)))
}

fn waived_probe(addr: SocketAddr) -> std::io::Result<TcpStream> {
    // xtask-allow: RG006 loopback self-nudge; peer is our own listener
    TcpStream::connect(addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_block() {
        let s = TcpStream::connect("127.0.0.1:9".parse::<SocketAddr>().unwrap()).unwrap();
        s.set_read_timeout(None).unwrap();
    }
}

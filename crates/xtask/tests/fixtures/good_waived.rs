//! Fixture: the same violations, each carrying an audited waiver.

fn lookup(x: Option<u32>) -> u32 {
    x.unwrap() // xtask-allow: RG001 fixture demonstrates a trailing waiver
}

// xtask-allow: RG002 fixture demonstrates a standalone waiver on the next line
fn boom() { panic!("waived"); }

fn casts(x: u64) -> u32 {
    x as u32 // xtask-allow: RG003 fixture: truncation is the point
}

fn float_eq(a: f64) -> bool {
    a == 0.5 // xtask-allow: RG004 fixture: exact sentinel comparison
}

//! RG011 fixture: a lock guard held across a blocking call.
//! Dropping or scoping the guard before the call passes.

use std::collections::HashMap;
use std::sync::{Mutex, RwLock};

/// Decodes through a cache, wrongly parsing while the lock is held.
pub fn cached_decode(cache: &Mutex<HashMap<u32, String>>, off: u32) -> String {
    let mut guard = match cache.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(hit) = guard.get(&off) {
        return hit.clone();
    }
    let rec = decode_record(off);
    guard.insert(off, rec.clone());
    rec
}

/// Naps while holding a read guard.
pub fn nap_with_lock(lock: &RwLock<u32>) -> u32 {
    let guard = match lock.read() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    std::thread::sleep(std::time::Duration::from_millis(1));
    *guard
}

/// The correct shape: probe under a scoped guard, decode unlocked.
pub fn correct_decode(cache: &Mutex<HashMap<u32, String>>, off: u32) -> String {
    {
        let guard = match cache.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(hit) = guard.get(&off) {
            return hit.clone();
        }
    }
    let rec = decode_record(off);
    let mut guard = match cache.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    guard.insert(off, rec.clone());
    rec
}

/// Explicitly dropping the guard before the call also passes.
pub fn drop_then_decode(cache: &Mutex<HashMap<u32, String>>, off: u32) -> String {
    let guard = match cache.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    let missing = !guard.contains_key(&off);
    drop(guard);
    if missing {
        decode_record(off)
    } else {
        String::new()
    }
}

fn decode_record(off: u32) -> String {
    off.to_string()
}

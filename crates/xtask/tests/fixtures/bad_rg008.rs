//! Fixture: RG008 fires on ad-hoc instrumentation and respects waivers
//! and test exemptions.

use std::time::Instant;

fn adhoc_timing() -> f64 {
    let t0 = Instant::now();
    let t1 = std::time::Instant::now();
    let _ = t1;
    t0.elapsed().as_secs_f64() * 1000.0
}

fn adhoc_progress_print(done: usize, total: usize) {
    eprintln!("progress: {done}/{total}");
}

fn stdout_tables_are_fine(rendered: &str) {
    println!("{rendered}");
}

fn injected_clock_is_fine(clock: &dyn Fn() -> u64) -> u64 {
    clock()
}

fn waived_clock_impl() -> Instant {
    // xtask-allow: RG008 the one system-clock read behind the injectable Clock trait
    Instant::now()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_time_ad_hoc() {
        let t0 = Instant::now();
        eprintln!("elapsed: {:?}", t0.elapsed());
    }
}

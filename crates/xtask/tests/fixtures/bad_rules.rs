//! Fixture: every lint rule fires at a known line and column.

pub fn undocumented(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn empty_expect(x: Option<u32>) -> u32 {
    x.expect("")
}

fn boom(flag: bool) {
    if flag {
        panic!("kaboom");
    } else {
        unreachable!();
    }
}

fn casts(x: u64) -> u32 {
    x as u32
}

fn float_eq(a: f64) -> bool {
    a == 0.5
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        Some(1).unwrap();
        let _ = 1u64 as u32;
        panic!("tests may panic");
    }
}

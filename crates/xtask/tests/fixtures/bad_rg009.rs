//! Fixture: RG009 fires on allocating `GeoDatabase::lookup` calls and
//! respects waivers, path-form lookups, and test exemptions.

fn requery_per_analysis(db: &D, ips: &[Ipv4Addr]) -> usize {
    let mut hits = 0;
    for ip in ips {
        if db.lookup(*ip).is_some() {
            hits += 1;
        }
    }
    hits
}

fn chained_requery(dbs: &[D], ip: Ipv4Addr) -> Vec<Option<LocationRecord>> {
    dbs.iter().map(|d| d.lookup(ip)).collect()
}

fn compact_path_is_fine(db: &D, ip: Ipv4Addr, interner: &mut LocationInterner) {
    let _ = db.lookup_compact(ip, interner);
}

fn view_tally_is_fine(view: &ResolvedView, i: usize) {
    let _ = view.record(0, i);
}

fn path_form_table_lookup_is_fine(cc: CountryCode) {
    let _ = country::lookup(cc);
}

fn waived_bridge(db: &D, ip: Ipv4Addr) -> Option<LocationRecord> {
    // xtask-allow: RG009 the one sanctioned bridge while the view migrates
    db.lookup(ip)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_query_directly() {
        let _ = db.lookup(ip);
    }
}

//! Fixture: waivers that match nothing, or lack a reason, fail the lint.

fn clean() -> u32 {
    42 // xtask-allow: RG001 nothing on this line needs waiving
}

fn also_clean() {} // xtask-allow: RG001

//! RGDB writer↔reader round-trip property battery (satellite of the
//! fuzz harness): at every corpus scale and several seeds, a record
//! set serialized by `rgdb::write` or `rgdb2::write` must come back
//! verbatim through its reader — same record at every prefix boundary,
//! `None` between prefixes — the compact path must agree with the
//! allocating one, and the two formats must agree with each other on
//! both answers and match depth.

use routergeo_db::record::{Granularity, LocationRecord};
use routergeo_db::rgdb::{self, RgdbReader};
use routergeo_db::rgdb2::{self, Rgdb2Reader};
use routergeo_db::{CompactRecord, LocationInterner};
use routergeo_fuzz::corpus::ImageFormat;
use routergeo_fuzz::rng::FuzzRng;
use routergeo_fuzz::{build_entry, Scale};
use std::net::Ipv4Addr;

const SEEDS: [u64; 4] = [1, 2, 47, 0xDEAD_BEEF];

/// Open a corpus entry's image in `format` as a trait object so the
/// same assertions run against both readers.
fn open_as(
    entry: &routergeo_fuzz::CorpusEntry,
    format: ImageFormat,
) -> Box<dyn routergeo_db::GeoDatabase> {
    match format {
        ImageFormat::V1 => Box::new(RgdbReader::open(entry.image()).expect("v1 image opens")),
        ImageFormat::V2 => Box::new(Rgdb2Reader::open(entry.image_v2()).expect("v2 image opens")),
        ImageFormat::V21 => {
            Box::new(Rgdb2Reader::open(entry.image_v21()).expect("v2.1 image opens"))
        }
    }
}

#[test]
fn every_scale_round_trips_every_record_in_both_formats() {
    use routergeo_db::GeoDatabase;
    for format in ImageFormat::ALL {
        for scale in Scale::ALL {
            for seed in SEEDS {
                let entry = build_entry(seed, scale);
                let reader = open_as(&entry, format);
                let mut rng = FuzzRng::new(seed ^ 0x5EED_CAFE);
                for (prefix, record) in &entry.entries {
                    let span = u64::from(u32::from(prefix.last()) - u32::from(prefix.first()));
                    let inner = u32::from(prefix.first())
                        + u32::try_from(rng.below(span + 1)).expect("span fits u32");
                    for ip in [prefix.first(), prefix.last(), Ipv4Addr::from(inner)] {
                        let got = reader.lookup(ip);
                        assert_eq!(
                            got.as_ref(),
                            Some(record),
                            "format={} seed={seed} scale={} ip={ip} prefix={prefix}",
                            format.label(),
                            scale.label()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn formats_agree_on_answers_and_match_depth() {
    // v1 ↔ v2 equivalence: the same record set serialized both ways
    // must agree on every compact answer, every miss, and the matched
    // prefix depth — at prefix edges and over a random sweep.
    use routergeo_db::GeoDatabase;
    for scale in Scale::ALL {
        for seed in SEEDS {
            let entry = build_entry(seed, scale);
            let v1 = RgdbReader::open(entry.image()).expect("v1 image opens");
            let v2 = Rgdb2Reader::open(entry.image_v2()).expect("v2 image opens");
            let mut interner = LocationInterner::new();
            let mut rng = FuzzRng::new(seed.rotate_left(9) ^ 0xF0F0);
            let mut probes: Vec<Ipv4Addr> = Vec::new();
            for (prefix, _) in &entry.entries {
                // The edge pair: last covered address and first beyond.
                probes.push(prefix.first());
                probes.push(prefix.last());
                probes.push(Ipv4Addr::from(u32::from(prefix.last()).wrapping_add(1)));
                probes.push(Ipv4Addr::from(u32::from(prefix.first()).wrapping_sub(1)));
            }
            for _ in 0..256 {
                probes.push(Ipv4Addr::from(
                    u32::try_from(rng.next_u64() & 0xFFFF_FFFF).expect("masked"),
                ));
            }
            for ip in probes {
                let a = v1.lookup_compact(ip, &mut interner);
                let b = v2.lookup_compact(ip, &mut interner);
                assert_eq!(a, b, "seed={seed} scale={} ip={ip}", scale.label());
                assert_eq!(
                    v1.match_len(ip).expect("valid v1 image"),
                    v2.match_len(ip).expect("valid v2 image"),
                    "seed={seed} scale={} ip={ip}",
                    scale.label()
                );
            }
        }
    }
}

#[test]
fn compact_lookups_match_allocating_lookups() {
    use routergeo_db::GeoDatabase;
    let entry = build_entry(7, Scale::Small);
    for format in ImageFormat::ALL {
        let reader = open_as(&entry, format);
        let mut interner = LocationInterner::new();
        let mut rng = FuzzRng::new(0xC0FFEE);
        for _ in 0..512 {
            let ip = Ipv4Addr::from(u32::try_from(rng.next_u64() & 0xFFFF_FFFF).expect("masked"));
            let compact = reader.lookup_compact(ip, &mut interner);
            let full = reader.lookup(ip);
            match (compact, full) {
                (None, None) => {}
                (Some(c), Some(f)) => {
                    assert_eq!(c.to_record(&interner), f, "{} {ip}", format.label());
                }
                (c, f) => panic!(
                    "compact/full disagree at {ip} ({}): {c:?} vs {f:?}",
                    format.label()
                ),
            }
        }
    }
}

#[test]
fn addresses_outside_every_prefix_miss() {
    // 192.0.2.0/24 (TEST-NET-1) can never collide with the corpus,
    // which carves from 10.0.0.0 upward through a=10..129.
    let entry = build_entry(3, Scale::Tenth);
    let reader = RgdbReader::open(entry.image()).expect("corpus image opens");
    for last in [0u8, 1, 128, 255] {
        let ip = Ipv4Addr::new(192, 0, 2, last);
        assert_eq!(reader.try_lookup(ip).expect("no error"), None, "{ip}");
    }
}

#[test]
fn empty_strings_survive_both_binary_formats() {
    // `Some("")` is a present, empty name — not an absent one. Both
    // binary layouts carry it as a set flag with length 0 (and since
    // the quoted-empty CSV fix, the text format round-trips it too, so
    // the differential corpus now generates it freely).
    let prefix: routergeo_net::Prefix = "10.0.0.0/24".parse().expect("prefix literal");
    let record = LocationRecord {
        country: None,
        region: Some(String::new()),
        city: Some(String::new()),
        coord: None,
        granularity: Granularity::SubBlock,
    };
    let v1 = rgdb::write("empties", [(prefix, &record)].into_iter());
    let v2 = rgdb2::write("empties", [(prefix, &record)].into_iter());
    let readers: [Box<dyn routergeo_db::GeoDatabase>; 2] = [
        Box::new(RgdbReader::open(v1).expect("v1 image opens")),
        Box::new(Rgdb2Reader::open(v2).expect("v2 image opens")),
    ];
    for reader in readers {
        let got = reader
            .lookup(Ipv4Addr::new(10, 0, 0, 7))
            .expect("prefix covers the address");
        assert_eq!(got.region.as_deref(), Some(""));
        assert_eq!(got.city.as_deref(), Some(""));
        assert_eq!(got, record);
    }
}

#[test]
fn oversized_strings_are_truncated_at_the_cap_not_corrupted() {
    // The writer caps length-prefixed strings at 255 bytes; a longer
    // source string must round-trip as its 255-byte prefix and leave
    // every neighboring record intact.
    let long = "c".repeat(400);
    let prefix: routergeo_net::Prefix = "10.0.0.0/24".parse().expect("prefix literal");
    let neighbor: routergeo_net::Prefix = "10.0.1.0/24".parse().expect("prefix literal");
    let a = LocationRecord {
        country: None,
        region: None,
        city: Some(long.clone()),
        coord: None,
        granularity: Granularity::SubBlock,
    };
    let b = LocationRecord {
        country: None,
        region: Some("ok".to_string()),
        city: None,
        coord: None,
        granularity: Granularity::Block24,
    };
    let v1 = rgdb::write("caps", [(prefix, &a), (neighbor, &b)].into_iter());
    let v2 = rgdb2::write("caps", [(prefix, &a), (neighbor, &b)].into_iter());
    let readers: [Box<dyn routergeo_db::GeoDatabase>; 2] = [
        Box::new(RgdbReader::open(v1).expect("v1 image opens")),
        Box::new(Rgdb2Reader::open(v2).expect("v2 image opens")),
    ];
    for reader in readers {
        let got_a = reader.lookup(Ipv4Addr::new(10, 0, 0, 1)).expect("covered");
        assert_eq!(got_a.city.as_deref(), Some(&long[..255]));
        let got_b = reader.lookup(Ipv4Addr::new(10, 0, 1, 1)).expect("covered");
        assert_eq!(got_b, b);
    }
}

#[test]
fn interner_ids_are_stable_across_backends_for_equal_strings() {
    // A v1 and a v2 reader over the same record set, one shared
    // interner: the ids a `CompactRecord` carries must depend only on
    // the strings, which is the property the differential pillar's
    // four-way compare rests on.
    use routergeo_db::GeoDatabase;
    let entry = build_entry(5, Scale::Tiny);
    let r1 = RgdbReader::open(entry.image()).expect("opens");
    let r2 = Rgdb2Reader::open(entry.image_v2()).expect("opens");
    let mut interner = LocationInterner::new();
    for (prefix, record) in &entry.entries {
        let a = r1.lookup_compact(prefix.first(), &mut interner);
        let b = r2.lookup_compact(prefix.first(), &mut interner);
        assert_eq!(a, b, "{prefix}");
        let expected = CompactRecord::from_record(record, &mut interner);
        assert_eq!(a, Some(expected), "{prefix}");
    }
}

//! RGDB writer↔reader round-trip property battery (satellite of the
//! fuzz harness): at every corpus scale and several seeds, a record
//! set serialized by `rgdb::write` must come back verbatim through
//! `RgdbReader` — same record at every prefix boundary, `None` between
//! prefixes — and the compact path must agree with the allocating one.

use routergeo_db::record::{Granularity, LocationRecord};
use routergeo_db::rgdb::{self, RgdbReader};
use routergeo_db::{CompactRecord, LocationInterner};
use routergeo_fuzz::rng::FuzzRng;
use routergeo_fuzz::{build_entry, Scale};
use std::net::Ipv4Addr;

const SEEDS: [u64; 4] = [1, 2, 47, 0xDEAD_BEEF];

#[test]
fn every_scale_round_trips_every_record() {
    for scale in Scale::ALL {
        for seed in SEEDS {
            let entry = build_entry(seed, scale);
            let reader = RgdbReader::open(entry.image()).expect("corpus image opens");
            let mut rng = FuzzRng::new(seed ^ 0x5EED_CAFE);
            for (prefix, record) in &entry.entries {
                let span = u64::from(u32::from(prefix.last()) - u32::from(prefix.first()));
                let inner = u32::from(prefix.first())
                    + u32::try_from(rng.below(span + 1)).expect("span fits u32");
                for ip in [prefix.first(), prefix.last(), Ipv4Addr::from(inner)] {
                    let got = reader.try_lookup(ip).expect("valid image never errors");
                    assert_eq!(
                        got.as_ref(),
                        Some(record),
                        "seed={seed} scale={} ip={ip} prefix={prefix}",
                        scale.label()
                    );
                }
            }
        }
    }
}

#[test]
fn compact_lookups_match_allocating_lookups() {
    use routergeo_db::GeoDatabase;
    let entry = build_entry(7, Scale::Small);
    let reader = RgdbReader::open(entry.image()).expect("corpus image opens");
    let mut interner = LocationInterner::new();
    let mut rng = FuzzRng::new(0xC0FFEE);
    for _ in 0..512 {
        let ip = Ipv4Addr::from(u32::try_from(rng.next_u64() & 0xFFFF_FFFF).expect("masked"));
        let compact = reader.lookup_compact(ip, &mut interner);
        let full = reader.try_lookup(ip).expect("valid image never errors");
        match (compact, full) {
            (None, None) => {}
            (Some(c), Some(f)) => assert_eq!(c.to_record(&interner), f, "{ip}"),
            (c, f) => panic!("compact/full disagree at {ip}: {c:?} vs {f:?}"),
        }
    }
}

#[test]
fn addresses_outside_every_prefix_miss() {
    // 192.0.2.0/24 (TEST-NET-1) can never collide with the corpus,
    // which carves from 10.0.0.0 upward through a=10..129.
    let entry = build_entry(3, Scale::Tenth);
    let reader = RgdbReader::open(entry.image()).expect("corpus image opens");
    for last in [0u8, 1, 128, 255] {
        let ip = Ipv4Addr::new(192, 0, 2, last);
        assert_eq!(reader.try_lookup(ip).expect("no error"), None, "{ip}");
    }
}

#[test]
fn empty_strings_survive_the_binary_format() {
    // CSV cannot represent `Some("")` (the differential corpus avoids
    // it), but the binary format must: a set flag with length 0 is a
    // present, empty name — not an absent one.
    let prefix: routergeo_net::Prefix = "10.0.0.0/24".parse().expect("prefix literal");
    let record = LocationRecord {
        country: None,
        region: Some(String::new()),
        city: Some(String::new()),
        coord: None,
        granularity: Granularity::SubBlock,
    };
    let image = rgdb::write("empties", [(prefix, &record)].into_iter());
    let reader = RgdbReader::open(image).expect("image opens");
    let got = reader
        .try_lookup(Ipv4Addr::new(10, 0, 0, 7))
        .expect("no error")
        .expect("prefix covers the address");
    assert_eq!(got.region.as_deref(), Some(""));
    assert_eq!(got.city.as_deref(), Some(""));
    assert_eq!(got, record);
}

#[test]
fn oversized_strings_are_truncated_at_the_cap_not_corrupted() {
    // The writer caps length-prefixed strings at 255 bytes; a longer
    // source string must round-trip as its 255-byte prefix and leave
    // every neighboring record intact.
    let long = "c".repeat(400);
    let prefix: routergeo_net::Prefix = "10.0.0.0/24".parse().expect("prefix literal");
    let neighbor: routergeo_net::Prefix = "10.0.1.0/24".parse().expect("prefix literal");
    let a = LocationRecord {
        country: None,
        region: None,
        city: Some(long.clone()),
        coord: None,
        granularity: Granularity::SubBlock,
    };
    let b = LocationRecord {
        country: None,
        region: Some("ok".to_string()),
        city: None,
        coord: None,
        granularity: Granularity::Block24,
    };
    let image = rgdb::write("caps", [(prefix, &a), (neighbor, &b)].into_iter());
    let reader = RgdbReader::open(image).expect("image opens");
    let got_a = reader
        .try_lookup(Ipv4Addr::new(10, 0, 0, 1))
        .expect("no error")
        .expect("covered");
    assert_eq!(got_a.city.as_deref(), Some(&long[..255]));
    let got_b = reader
        .try_lookup(Ipv4Addr::new(10, 0, 1, 1))
        .expect("no error")
        .expect("covered");
    assert_eq!(got_b, b);
}

#[test]
fn interner_ids_are_stable_across_backends_for_equal_strings() {
    // Two readers over the same image, one shared interner: the ids a
    // `CompactRecord` carries must depend only on the strings, which is
    // the property the differential pillar's three-way compare rests on.
    use routergeo_db::GeoDatabase;
    let entry = build_entry(5, Scale::Tiny);
    let r1 = RgdbReader::open(entry.image()).expect("opens");
    let r2 = RgdbReader::open(entry.image()).expect("opens");
    let mut interner = LocationInterner::new();
    for (prefix, record) in &entry.entries {
        let a = r1.lookup_compact(prefix.first(), &mut interner);
        let b = r2.lookup_compact(prefix.first(), &mut interner);
        assert_eq!(a, b, "{prefix}");
        let expected = CompactRecord::from_record(record, &mut interner);
        assert_eq!(a, Some(expected), "{prefix}");
    }
}

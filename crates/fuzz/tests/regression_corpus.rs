//! Replays every `.case` file in `crates/fuzz/corpus/` on plain
//! `cargo test`, so pinned reader findings stay fixed without any
//! fuzz-budget machinery.

use routergeo_fuzz::replay::replay_corpus_text;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

#[test]
fn every_corpus_case_replays_clean() {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("crates/fuzz/corpus exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "regression corpus must not be empty");
    let mut total = 0u64;
    for file in files {
        let text = std::fs::read_to_string(&file).expect("corpus file reads");
        let ran = replay_corpus_text(&text).unwrap_or_else(|e| panic!("{}: {e}", file.display()));
        assert!(ran > 0, "{}: no cases", file.display());
        total += ran;
    }
    assert!(total >= 20, "corpus shrank to {total} cases");
}

//! Regression-corpus replay: one-line specs that pin past findings.
//!
//! A spec line names the coordinates of a mutation trial:
//!
//! ```text
//! seed=1 scale=tiny class=node-link-corrupt trial=7
//! seed=1 scale=tiny class=node-link-corrupt trial=7 format=v2
//! ```
//!
//! Because a trial is a pure function of those coordinates (see
//! [`crate::rgdb_fuzz::trial_seed`]), the spec regenerates the exact
//! mutant bytes — no binary blobs to check in. The `format` key is
//! optional and defaults to `v1`, so every pre-v2 spec line keeps its
//! historical meaning. `crates/fuzz/corpus/` holds `.case` files of
//! such lines (plus `#` comments), replayed by `cargo test` so a
//! defect fixed once stays fixed.

use crate::corpus::{build_entry, ImageFormat, Scale};
use crate::mutate::{self, MutationClass};
use crate::rgdb_fuzz::{execute_trial, trial_seed, TrialOutcome};
use crate::rng::FuzzRng;

/// The coordinates of one mutation trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayCase {
    /// Corpus seed.
    pub seed: u64,
    /// Corpus scale.
    pub scale: Scale,
    /// Mutation class.
    pub class: MutationClass,
    /// Trial index within the class.
    pub trial: u64,
    /// Wire format the corpus entry was serialized in (`v1` unless the
    /// spec says otherwise).
    pub format: ImageFormat,
}

/// Parse one spec line. Blank lines and `#` comments yield `Ok(None)`;
/// anything else must carry all four `key=value` fields.
pub fn parse_spec(line: &str) -> Result<Option<ReplayCase>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut seed = None;
    let mut scale = None;
    let mut class = None;
    let mut trial = None;
    let mut format = None;
    for word in line.split_whitespace() {
        let (key, value) = word
            .split_once('=')
            .ok_or_else(|| format!("bad token {word:?} (expected key=value)"))?;
        match key {
            "seed" => {
                seed = Some(
                    value
                        .parse::<u64>()
                        .map_err(|_| format!("bad seed {value:?}"))?,
                );
            }
            "scale" => {
                scale = Some(Scale::parse(value).ok_or_else(|| format!("bad scale {value:?}"))?);
            }
            "class" => {
                class = Some(
                    MutationClass::parse(value).ok_or_else(|| format!("bad class {value:?}"))?,
                );
            }
            "trial" => {
                trial = Some(
                    value
                        .parse::<u64>()
                        .map_err(|_| format!("bad trial {value:?}"))?,
                );
            }
            "format" => {
                format =
                    Some(ImageFormat::parse(value).ok_or_else(|| format!("bad format {value:?}"))?);
            }
            other => return Err(format!("unknown key {other:?}")),
        }
    }
    match (seed, scale, class, trial) {
        (Some(seed), Some(scale), Some(class), Some(trial)) => Ok(Some(ReplayCase {
            seed,
            scale,
            class,
            trial,
            format: format.unwrap_or(ImageFormat::V1),
        })),
        _ => Err(format!("incomplete spec {line:?}")),
    }
}

/// Re-execute one case: regenerate the corpus image, re-apply the
/// mutation, and hold the reader to the no-panic/attribution promises.
pub fn replay(case: &ReplayCase) -> Result<(), String> {
    let image = build_entry(case.seed, case.scale).image_as(case.format);
    let ts = trial_seed(case.seed, case.scale, case.class, case.trial, case.format);
    let mut rng = FuzzRng::new(ts);
    let mutated = mutate::apply(case.class, &image, &mut rng);
    match execute_trial(mutated, case.scale, ts ^ 0xA5A5) {
        TrialOutcome::Rejected | TrialOutcome::Opened { .. } => Ok(()),
        TrialOutcome::Panicked => Err(format!("reader panicked replaying {case:?}")),
        TrialOutcome::Unattributed(msg) => {
            Err(format!("unattributed error {msg:?} replaying {case:?}"))
        }
    }
}

/// Replay every spec in a corpus file's text; returns the number of
/// cases executed. The first failing case aborts with its error.
pub fn replay_corpus_text(text: &str) -> Result<u64, String> {
    let mut ran = 0u64;
    for (ix, line) in text.lines().enumerate() {
        let parsed = parse_spec(line).map_err(|e| format!("line {}: {e}", ix + 1))?;
        if let Some(case) = parsed {
            replay(&case).map_err(|e| format!("line {}: {e}", ix + 1))?;
            ran += 1;
        }
    }
    Ok(ran)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_roundtrip() {
        let case = ReplayCase {
            seed: 9,
            scale: Scale::Small,
            class: MutationClass::SectionSplice,
            trial: 3,
            format: ImageFormat::V1,
        };
        let line = format!(
            "seed={} scale={} class={} trial={}",
            case.seed,
            case.scale.label(),
            case.class.label(),
            case.trial
        );
        assert_eq!(parse_spec(&line), Ok(Some(case)));
        let v2 = ReplayCase {
            format: ImageFormat::V2,
            ..case
        };
        assert_eq!(parse_spec(&format!("{line} format=v2")), Ok(Some(v2)));
        assert_eq!(parse_spec("# comment"), Ok(None));
        assert_eq!(parse_spec("   "), Ok(None));
        assert!(parse_spec("seed=1 scale=tiny").is_err());
        assert!(parse_spec("seed=x scale=tiny class=truncate trial=0").is_err());
        assert!(parse_spec("seed=1 scale=tiny class=truncate trial=0 format=v9").is_err());
    }

    #[test]
    fn replaying_a_fresh_case_passes_in_both_formats() {
        for format in ImageFormat::ALL {
            let case = ReplayCase {
                seed: 1,
                scale: Scale::Tiny,
                class: MutationClass::HeaderFieldFlip,
                trial: 0,
                format,
            };
            assert_eq!(replay(&case), Ok(()), "{}", format.label());
        }
    }

    #[test]
    fn corpus_text_is_replayed_line_by_line() {
        let text = "# three cases\n\
                    seed=1 scale=tiny class=truncate trial=0\n\
                    \n\
                    seed=2 scale=small class=record-bit-flip trial=1\n\
                    seed=2 scale=small class=record-bit-flip trial=1 format=v2\n";
        assert_eq!(replay_corpus_text(text), Ok(3));
    }
}

//! Pillar 3: differential lookups across the six database backends.
//!
//! For every corpus entry, the same `(prefix, record)` set is loaded
//! six ways — the RGDB v1 binary trie, the flat RGDB v2 image, the
//! v2.1 root-table image, the same v2.1 image re-loaded from disk
//! through [`routergeo_db::FileImage`], a flat [`InMemoryDb`] range
//! map, and a CSV round-trip through `csvdb::write`/`csvdb::parse` —
//! and all six must answer [`GeoDatabase::lookup_compact`] identically
//! over a seeded address sweep; the binary readers must additionally
//! agree on `match_len`. One [`LocationInterner`] is shared by the
//! backends so equal strings intern to equal ids and [`CompactRecord`]s
//! compare directly.
//!
//! The corpus is constructed to be exactly representable in all four
//! formats (disjoint prefixes, micro-degree coordinates, strings at or
//! under the 255-byte cap — `Some("")` included, which every backend
//! now round-trips — see [`crate::corpus`]), so any disagreement is a
//! backend defect, not a corpus artifact.

use crate::corpus::{build_entry, Scale};
use crate::rgdb_fuzz::CORPUS_SEEDS;
use crate::rng::FuzzRng;
use crate::FuzzConfig;
use routergeo_db::csvdb;
use routergeo_db::inmem::InMemoryDbBuilder;
use routergeo_db::rgdb::RgdbReader;
use routergeo_db::rgdb2::Rgdb2Reader;
use routergeo_db::{CompactRecord, FileImage, GeoDatabase, LocationInterner};
use std::net::Ipv4Addr;

/// Aggregates for one scale.
#[derive(Debug)]
pub struct DiffScaleOutcome {
    /// Scale these counts describe.
    pub scale: Scale,
    /// Corpus entries compared.
    pub entries: u64,
    /// Addresses swept across all entries (each checked four ways).
    pub addresses: u64,
    /// One line per disagreement (empty on a healthy run).
    pub mismatches: Vec<String>,
}

/// Report for the differential pillar.
#[derive(Debug)]
pub struct DiffOutcome {
    /// Per-scale aggregates: tiny and tenth, per the acceptance bar.
    pub scales: Vec<DiffScaleOutcome>,
}

fn render(r: Option<CompactRecord>) -> String {
    match r {
        None => "none".to_string(),
        Some(c) => format!(
            "country={:?} region={:?} city={:?} coord={:?} gran={:?}",
            c.country.map(|cc| cc.as_str().to_string()),
            c.region_id,
            c.city_id,
            c.coord,
            c.granularity
        ),
    }
}

/// Sweep one corpus entry across the six backends. Returns the
/// addresses probed and any disagreement lines.
fn sweep_entry(seed: u64, scale: Scale, diff_addrs: u64, root: u64) -> (u64, Vec<String>) {
    let entry = build_entry(seed, scale);
    let mut mismatches = Vec::new();
    let spec = |what: &str| format!("seed={seed} scale={} {what}", scale.label());

    let rgdb = match RgdbReader::open(entry.image()) {
        Ok(r) => r,
        Err(e) => return (0, vec![spec(&format!("rgdb image failed to open: {e}"))]),
    };
    let rgdb2 = match Rgdb2Reader::open(entry.image_v2()) {
        Ok(r) => r,
        Err(e) => return (0, vec![spec(&format!("rgdb2 image failed to open: {e}"))]),
    };
    let rgdb21 = match Rgdb2Reader::open(entry.image_v21()) {
        Ok(r) => r,
        Err(e) => return (0, vec![spec(&format!("v2.1 image failed to open: {e}"))]),
    };
    // The same v2.1 image again, but round-tripped through disk via
    // FileImage — the serving path's loader must hand back bytes that
    // answer identically to the in-heap buffer.
    static DISK_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let file_path = std::env::temp_dir().join(format!(
        "routergeo-fuzz-diff-{}-{}-{}-{}.rgdb",
        std::process::id(),
        seed,
        scale.label(),
        DISK_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    if let Err(e) = std::fs::write(&file_path, entry.image_v21()) {
        return (
            0,
            vec![spec(&format!("v2.1 image failed to hit disk: {e}"))],
        );
    }
    let file_backed = FileImage::load(&file_path)
        .map_err(|e| e.to_string())
        .and_then(|img| Rgdb2Reader::open(img.into_bytes()).map_err(|e| e.to_string()));
    std::fs::remove_file(&file_path).ok(); // xtask-allow: RG012 best-effort temp-file cleanup; the reader verdict is already captured
    let rgdb21_file = match file_backed {
        Ok(r) => r,
        Err(e) => {
            return (
                0,
                vec![spec(&format!("file-backed v2.1 image failed to open: {e}"))],
            )
        }
    };
    let mut builder = InMemoryDbBuilder::new("mem");
    for (prefix, record) in &entry.entries {
        builder.push_prefix(*prefix, record.clone());
    }
    let inmem = match builder.build() {
        Ok(db) => db,
        Err(e) => return (0, vec![spec(&format!("in-memory build failed: {e}"))]),
    };
    let csv = match csvdb::parse("csv", &csvdb::write(&inmem)) {
        Ok(db) => db,
        Err(e) => return (0, vec![spec(&format!("csv round-trip failed: {e}"))]),
    };

    // One shared interner: identical strings get identical ids no
    // matter which backend interned them first.
    let mut interner = LocationInterner::new();
    let mut addresses = 0u64;
    let mut rng = FuzzRng::new(root ^ seed.rotate_left(13) ^ (scale.records() as u64));

    let probe = |ip: Ipv4Addr,
                 interner: &mut LocationInterner,
                 mismatches: &mut Vec<String>,
                 addresses: &mut u64| {
        let a = rgdb.lookup_compact(ip, interner);
        let a2 = rgdb2.lookup_compact(ip, interner);
        let a21 = rgdb21.lookup_compact(ip, interner);
        let a21f = rgdb21_file.lookup_compact(ip, interner);
        let b = inmem.lookup_compact(ip, interner);
        let c = csv.lookup_compact(ip, interner);
        *addresses += 1;
        if a != a2 || a != a21 || a21 != a21f || a != b || b != c {
            mismatches.push(spec(&format!(
                "addr={ip}: rgdb[{}] rgdb2[{}] v21[{}] v21file[{}] mem[{}] csv[{}]",
                render(a),
                render(a2),
                render(a21),
                render(a21f),
                render(b),
                render(c)
            )));
        }
        // The binary tries must also agree on how deep the match was —
        // the LPM semantics, not just the final answer. The v2.1 root
        // table is a pure accelerator, so its depth must match too.
        let d1 = rgdb.match_len(ip);
        let d2 = rgdb2.match_len(ip);
        let d21 = rgdb21.match_len(ip);
        let d21f = rgdb21_file.match_len(ip);
        if d1 != d2 || d2 != d21 || d21 != d21f {
            mismatches.push(spec(&format!(
                "addr={ip}: match_len v1={d1:?} v2={d2:?} v21={d21:?} v21file={d21f:?}"
            )));
        }
    };

    // Boundary probes: first, last, and a random inner address of every
    // prefix — exactly where trie walks and range maps disagree first.
    for (prefix, _) in &entry.entries {
        probe(
            prefix.first(),
            &mut interner,
            &mut mismatches,
            &mut addresses,
        );
        probe(
            prefix.last(),
            &mut interner,
            &mut mismatches,
            &mut addresses,
        );
        let span = u64::from(u32::from(prefix.last())) - u64::from(u32::from(prefix.first()));
        let inner = u32::from(prefix.first()).wrapping_add(
            u32::try_from(rng.below(span.saturating_add(1)) & 0xFFFF_FFFF).unwrap_or(0),
        );
        probe(
            Ipv4Addr::from(inner),
            &mut interner,
            &mut mismatches,
            &mut addresses,
        );
    }
    // Global sweep: uniform addresses, mostly landing in uncovered
    // space — the `None == None == None` agreement matters too.
    for _ in 0..diff_addrs {
        let word = u32::try_from(rng.next_u64() & 0xFFFF_FFFF).unwrap_or(0);
        probe(
            Ipv4Addr::from(word),
            &mut interner,
            &mut mismatches,
            &mut addresses,
        );
    }
    (addresses, mismatches)
}

/// Run the pillar over the tiny and tenth scales for every corpus seed.
pub fn run(config: &FuzzConfig) -> DiffOutcome {
    let mut scales = Vec::new();
    for scale in [Scale::Tiny, Scale::Tenth] {
        let mut out = DiffScaleOutcome {
            scale,
            entries: 0,
            addresses: 0,
            mismatches: Vec::new(),
        };
        for &seed in &CORPUS_SEEDS {
            let (addresses, mut mismatches) =
                sweep_entry(seed, scale, config.diff_addrs, config.seed);
            out.entries += 1;
            out.addresses += addresses;
            out.mismatches.append(&mut mismatches);
        }
        scales.push(out);
    }
    DiffOutcome { scales }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backends_agree_on_the_corpus() {
        let config = FuzzConfig {
            seed: 7,
            trials_per_class: 1,
            proto_runs: 1,
            diff_addrs: 32,
        };
        let outcome = run(&config);
        assert_eq!(outcome.scales.len(), 2);
        for s in &outcome.scales {
            assert!(s.mismatches.is_empty(), "{:#?}", s.mismatches);
            assert!(s.addresses > 0);
        }
    }
}

//! Pillar 3: differential lookups across the four database backends.
//!
//! For every corpus entry, the same `(prefix, record)` set is loaded
//! four ways — the RGDB v1 binary trie, the flat RGDB v2 image, a flat
//! [`InMemoryDb`] range map, and a CSV round-trip through
//! `csvdb::write`/`csvdb::parse` — and all four must answer
//! [`GeoDatabase::lookup_compact`] identically over a seeded address
//! sweep; the two binary readers must additionally agree on
//! `match_len`. One [`LocationInterner`] is shared by the backends so
//! equal strings intern to equal ids and [`CompactRecord`]s compare
//! directly.
//!
//! The corpus is constructed to be exactly representable in all four
//! formats (disjoint prefixes, micro-degree coordinates, strings at or
//! under the 255-byte cap — `Some("")` included, which every backend
//! now round-trips — see [`crate::corpus`]), so any disagreement is a
//! backend defect, not a corpus artifact.

use crate::corpus::{build_entry, Scale};
use crate::rgdb_fuzz::CORPUS_SEEDS;
use crate::rng::FuzzRng;
use crate::FuzzConfig;
use routergeo_db::csvdb;
use routergeo_db::inmem::InMemoryDbBuilder;
use routergeo_db::rgdb::RgdbReader;
use routergeo_db::rgdb2::Rgdb2Reader;
use routergeo_db::{CompactRecord, GeoDatabase, LocationInterner};
use std::net::Ipv4Addr;

/// Aggregates for one scale.
#[derive(Debug)]
pub struct DiffScaleOutcome {
    /// Scale these counts describe.
    pub scale: Scale,
    /// Corpus entries compared.
    pub entries: u64,
    /// Addresses swept across all entries (each checked four ways).
    pub addresses: u64,
    /// One line per disagreement (empty on a healthy run).
    pub mismatches: Vec<String>,
}

/// Report for the differential pillar.
#[derive(Debug)]
pub struct DiffOutcome {
    /// Per-scale aggregates: tiny and tenth, per the acceptance bar.
    pub scales: Vec<DiffScaleOutcome>,
}

fn render(r: Option<CompactRecord>) -> String {
    match r {
        None => "none".to_string(),
        Some(c) => format!(
            "country={:?} region={:?} city={:?} coord={:?} gran={:?}",
            c.country.map(|cc| cc.as_str().to_string()),
            c.region_id,
            c.city_id,
            c.coord,
            c.granularity
        ),
    }
}

/// Sweep one corpus entry across the three backends. Returns the
/// addresses probed and any disagreement lines.
fn sweep_entry(seed: u64, scale: Scale, diff_addrs: u64, root: u64) -> (u64, Vec<String>) {
    let entry = build_entry(seed, scale);
    let mut mismatches = Vec::new();
    let spec = |what: &str| format!("seed={seed} scale={} {what}", scale.label());

    let rgdb = match RgdbReader::open(entry.image()) {
        Ok(r) => r,
        Err(e) => return (0, vec![spec(&format!("rgdb image failed to open: {e}"))]),
    };
    let rgdb2 = match Rgdb2Reader::open(entry.image_v2()) {
        Ok(r) => r,
        Err(e) => return (0, vec![spec(&format!("rgdb2 image failed to open: {e}"))]),
    };
    let mut builder = InMemoryDbBuilder::new("mem");
    for (prefix, record) in &entry.entries {
        builder.push_prefix(*prefix, record.clone());
    }
    let inmem = match builder.build() {
        Ok(db) => db,
        Err(e) => return (0, vec![spec(&format!("in-memory build failed: {e}"))]),
    };
    let csv = match csvdb::parse("csv", &csvdb::write(&inmem)) {
        Ok(db) => db,
        Err(e) => return (0, vec![spec(&format!("csv round-trip failed: {e}"))]),
    };

    // One shared interner: identical strings get identical ids no
    // matter which backend interned them first.
    let mut interner = LocationInterner::new();
    let mut addresses = 0u64;
    let mut rng = FuzzRng::new(root ^ seed.rotate_left(13) ^ (scale.records() as u64));

    let probe = |ip: Ipv4Addr,
                 interner: &mut LocationInterner,
                 mismatches: &mut Vec<String>,
                 addresses: &mut u64| {
        let a = rgdb.lookup_compact(ip, interner);
        let a2 = rgdb2.lookup_compact(ip, interner);
        let b = inmem.lookup_compact(ip, interner);
        let c = csv.lookup_compact(ip, interner);
        *addresses += 1;
        if a != a2 || a != b || b != c {
            mismatches.push(spec(&format!(
                "addr={ip}: rgdb[{}] rgdb2[{}] mem[{}] csv[{}]",
                render(a),
                render(a2),
                render(b),
                render(c)
            )));
        }
        // The two binary tries must also agree on how deep the match
        // was — the LPM semantics, not just the final answer.
        let d1 = rgdb.match_len(ip);
        let d2 = rgdb2.match_len(ip);
        if d1 != d2 {
            mismatches.push(spec(&format!("addr={ip}: match_len v1={d1:?} v2={d2:?}")));
        }
    };

    // Boundary probes: first, last, and a random inner address of every
    // prefix — exactly where trie walks and range maps disagree first.
    for (prefix, _) in &entry.entries {
        probe(
            prefix.first(),
            &mut interner,
            &mut mismatches,
            &mut addresses,
        );
        probe(
            prefix.last(),
            &mut interner,
            &mut mismatches,
            &mut addresses,
        );
        let span = u64::from(u32::from(prefix.last())) - u64::from(u32::from(prefix.first()));
        let inner = u32::from(prefix.first()).wrapping_add(
            u32::try_from(rng.below(span.saturating_add(1)) & 0xFFFF_FFFF).unwrap_or(0),
        );
        probe(
            Ipv4Addr::from(inner),
            &mut interner,
            &mut mismatches,
            &mut addresses,
        );
    }
    // Global sweep: uniform addresses, mostly landing in uncovered
    // space — the `None == None == None` agreement matters too.
    for _ in 0..diff_addrs {
        let word = u32::try_from(rng.next_u64() & 0xFFFF_FFFF).unwrap_or(0);
        probe(
            Ipv4Addr::from(word),
            &mut interner,
            &mut mismatches,
            &mut addresses,
        );
    }
    (addresses, mismatches)
}

/// Run the pillar over the tiny and tenth scales for every corpus seed.
pub fn run(config: &FuzzConfig) -> DiffOutcome {
    let mut scales = Vec::new();
    for scale in [Scale::Tiny, Scale::Tenth] {
        let mut out = DiffScaleOutcome {
            scale,
            entries: 0,
            addresses: 0,
            mismatches: Vec::new(),
        };
        for &seed in &CORPUS_SEEDS {
            let (addresses, mut mismatches) =
                sweep_entry(seed, scale, config.diff_addrs, config.seed);
            out.entries += 1;
            out.addresses += addresses;
            out.mismatches.append(&mut mismatches);
        }
        scales.push(out);
    }
    DiffOutcome { scales }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backends_agree_on_the_corpus() {
        let config = FuzzConfig {
            seed: 7,
            trials_per_class: 1,
            proto_runs: 1,
            diff_addrs: 32,
        };
        let outcome = run(&config);
        assert_eq!(outcome.scales.len(), 2);
        for s in &outcome.scales {
            assert!(s.mismatches.is_empty(), "{:#?}", s.mismatches);
            assert!(s.addresses > 0);
        }
    }
}

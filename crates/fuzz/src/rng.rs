//! SplitMix64 — the harness's only randomness source.
//!
//! Everything the fuzzer does is a pure function of a `u64` seed fed
//! through this generator, which is what makes every corpus entry,
//! mutation, and sweep byte-replayable from a one-line spec. SplitMix64
//! is the same construction the pool crate uses for per-shard seeds:
//! tiny, fast, and with a well-understood output stream.

/// Deterministic generator; copy of the published SplitMix64 update.
#[derive(Debug, Clone)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// Generator seeded with `seed` verbatim.
    pub fn new(seed: u64) -> FuzzRng {
        FuzzRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`0` when `n == 0`). The modulo bias is
    /// irrelevant at fuzzing sample sizes and keeps the draw branchless.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next_u64() % n
    }

    /// Uniform draw in `lo..=hi` (saturating to `lo` when inverted).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// Signed uniform draw in `lo..=hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        if hi <= lo {
            return lo;
        }
        // Two's-complement reinterpretations, not truncations: the span
        // of a checked-ordered pair fits u64 exactly, and the draw is
        // bounded by that span.
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.below(span.saturating_add(1)) as i64)
    }

    /// True with probability `pct`/100.
    pub fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }

    /// Derive an independent stream for `salt` without disturbing this
    /// generator's own sequence more than one draw.
    pub fn fork(&mut self, salt: u64) -> FuzzRng {
        FuzzRng::new(self.next_u64() ^ salt.wrapping_mul(0x2545_F491_4F6C_DD1D))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = FuzzRng::new(42);
        let mut b = FuzzRng::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bounds_are_respected() {
        let mut r = FuzzRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.range(5, 9);
            assert!((5..=9).contains(&v));
            let s = r.range_i64(-90, 90);
            assert!((-90..=90).contains(&s));
        }
        assert_eq!(r.below(0), 0);
        assert_eq!(r.range(9, 3), 9);
    }

    #[test]
    fn forks_diverge() {
        let mut r = FuzzRng::new(1);
        let mut f1 = r.fork(1);
        let mut f2 = r.fork(2);
        assert_ne!(f1.next_u64(), f2.next_u64());
    }
}

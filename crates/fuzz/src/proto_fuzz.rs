//! Pillar 2: protocol fuzzing of the whois client and server.
//!
//! Three scenario families, all seeded and all quick enough to repeat
//! `proto_runs` times inside the CI budget:
//!
//! * **Client vs scripted peer** — `BulkClient` talks through a
//!   pass-through [`ChaosProxy`] to a one-shot scripted upstream that
//!   answers with seeded adversarial bytes (garbage lines, binary
//!   junk, oversized answers, mid-token FINs, echo mismatches, empty
//!   responses). The client must neither panic nor wedge, and every
//!   requested address must land in exactly one outcome bucket.
//! * **Client vs faulty proxy** — the real `WhoisServer` behind a
//!   `ChaosProxy` injecting `CorruptBytes` / `EarlyFin` /
//!   `TruncateAfter`; the batch must complete on retry and every
//!   answer must match the in-process `MappingService`.
//! * **Adversarial client vs server** — raw seeded byte streams at the
//!   `WhoisServer` (through the proxy), followed by a well-formed
//!   health probe: the worker pool must shed the abuse and keep
//!   serving.
//!
//! The report carries only deterministic fields (scenario names, run
//! counts, invariant violations) — never `io::ErrorKind`s or timings,
//! which vary by platform and scheduling.

use crate::rng::FuzzRng;
use crate::FuzzConfig;
use routergeo_cymru::clock::{SystemClock, TestClock};
use routergeo_cymru::{
    BulkClient, BulkConfig, BulkOutcome, FailReason, MappingService, RetryPolicy, WhoisServer,
};
use routergeo_faultnet::{ChaosProxy, Fault, FaultPlan};
use routergeo_world::{World, WorldConfig};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{Ipv4Addr, Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

/// Mirror of the client/server line cap (`MAX_LINE` in
/// `routergeo_cymru::client`, which is crate-private): oversized-line
/// scenarios send a multiple of this.
const LINE_CAP: usize = 4096;

/// Banner the scripted peer leads with, byte-compatible with the real
/// server's.
const BANNER: &[u8] = b"Bulk mode; whois.routergeo.test [synthetic]\n";

/// Counts for one scenario.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// Stable scenario name.
    pub scenario: &'static str,
    /// Times the scenario ran.
    pub runs: u64,
    /// Requested addresses that came back attributed to exactly one
    /// bucket, summed over runs.
    pub attributed: u64,
    /// Invariant violations (empty on a healthy run).
    pub violations: Vec<String>,
}

/// Report for the protocol pillar.
#[derive(Debug)]
pub struct ProtoOutcome {
    /// Per-scenario aggregates, in a fixed order.
    pub scenarios: Vec<ScenarioOutcome>,
}

/// Tight deadlines so even the nastiest scenario resolves in well under
/// a second of wall time; retries back off on a virtual clock.
fn fast_config(max_attempts: u32) -> BulkConfig {
    BulkConfig {
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_millis(500),
        chunk_size: 1_000,
        retry: RetryPolicy {
            max_attempts,
            base: Duration::from_millis(50),
            max: Duration::from_millis(500),
            jitter_seed: 11,
        },
        breaker_threshold: 0,
    }
}

/// The bucket-partition invariant: every requested address lands in
/// exactly one of found / not-found / failed, and nothing lands there
/// without being requested. Returns a description of the first breach.
fn partition_breach(requested: &[Ipv4Addr], out: &BulkOutcome) -> Option<String> {
    let mut seen: BTreeMap<Ipv4Addr, u32> = BTreeMap::new();
    for (ip, _) in &out.found {
        *seen.entry(*ip).or_insert(0) += 1;
    }
    for ip in &out.not_found {
        *seen.entry(*ip).or_insert(0) += 1;
    }
    for f in &out.failed {
        *seen.entry(f.ip).or_insert(0) += 1;
    }
    for ip in requested {
        match seen.get(ip) {
            Some(1) => {}
            Some(n) => return Some(format!("{ip} attributed {n} times")),
            None => return Some(format!("{ip} has no attributed outcome")),
        }
    }
    for ip in seen.keys() {
        if !requested.contains(ip) {
            return Some(format!("{ip} attributed but never requested"));
        }
    }
    for u in &out.unsolicited {
        if u.reason != FailReason::Unsolicited {
            return Some(format!("{} quarantined with non-Unsolicited reason", u.ip));
        }
    }
    None
}

/// One-shot scripted peer: accepts a single connection, reads the whole
/// request, writes `response`, and closes (a response that does not end
/// in a newline therefore FINs mid-token).
fn scripted_peer(response: Vec<u8>) -> Result<SocketAddr, String> {
    let listener =
        TcpListener::bind(("127.0.0.1", 0)).map_err(|e| format!("bind scripted peer: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("scripted peer addr: {e}"))?;
    // xtask-allow: RG007 one-shot scripted peer for a single fuzz scenario; it ends with the connection, there is no fan-out to make deterministic
    std::thread::spawn(move || {
        if let Ok((mut s, _)) = listener.accept() {
            let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
            let _ = s.set_write_timeout(Some(Duration::from_secs(5)));
            let mut req = Vec::new();
            let _ = s.read_to_end(&mut req);
            let _ = s.write_all(&response);
        }
    });
    Ok(addr)
}

/// Render the scripted response bytes for one client scenario.
fn scripted_response(scenario: &'static str, rng: &mut FuzzRng) -> Vec<u8> {
    let mut out = Vec::new();
    match scenario {
        "client-garbage-lines" => {
            out.extend_from_slice(BANNER);
            let lines = rng.range(3, 20);
            for _ in 0..lines {
                let len = rng.range(0, 80);
                for _ in 0..len {
                    // Printable ASCII, pipes included, so some lines
                    // parse as almost-rows.
                    let b = 0x20 + u8::try_from(rng.below(0x5F)).unwrap_or(0);
                    out.push(b);
                }
                out.push(b'\n');
            }
        }
        "client-binary-junk" => {
            let len = rng.range(64, 2048);
            for _ in 0..len {
                out.push(u8::try_from(rng.below(256)).unwrap_or(0));
            }
        }
        "client-oversized-line" => {
            out.extend_from_slice(BANNER);
            let len = LINE_CAP * usize::try_from(rng.range(2, 8)).unwrap_or(2);
            out.extend(std::iter::repeat(b'x').take(len));
            out.push(b'\n');
        }
        "client-mid-token-fin" => {
            out.extend_from_slice(BANNER);
            // A row cut mid-IP; no trailing newline, so the FIN lands
            // inside the token.
            out.extend_from_slice(b"64500 | 198.51.");
        }
        "client-echo-mismatch" => {
            out.extend_from_slice(BANNER);
            // Rows answering addresses the client never asked about.
            for _ in 0..rng.range(1, 5) {
                let last = rng.below(250);
                let line = format!("64500 | 203.0.113.{last} | 203.0.113.0/24 | US | synthetic\n");
                out.extend_from_slice(line.as_bytes());
            }
        }
        // "client-empty-response" and anything unrecognized: close with
        // no bytes at all.
        _ => {}
    }
    out
}

/// Run the client-vs-scripted-peer scenarios.
fn run_client_scenarios(config: &FuzzConfig, scenarios: &mut Vec<ScenarioOutcome>) {
    const NAMES: [&str; 6] = [
        "client-garbage-lines",
        "client-binary-junk",
        "client-oversized-line",
        "client-mid-token-fin",
        "client-echo-mismatch",
        "client-empty-response",
    ];
    let requested: Vec<Ipv4Addr> = vec![
        Ipv4Addr::new(198, 51, 100, 1),
        Ipv4Addr::new(198, 51, 100, 2),
        Ipv4Addr::new(198, 51, 100, 3),
    ];
    for (s_ix, name) in NAMES.iter().enumerate() {
        let mut out = ScenarioOutcome {
            scenario: name,
            runs: 0,
            attributed: 0,
            violations: Vec::new(),
        };
        for run in 0..config.proto_runs {
            out.runs += 1;
            let mut rng = FuzzRng::new(config.seed ^ (s_ix as u64).rotate_left(32) ^ run);
            let response = scripted_response(name, &mut rng);
            let fail = |msg: String| format!("scenario={name} run={run}: {msg}");
            let upstream = match scripted_peer(response) {
                Ok(a) => a,
                Err(e) => {
                    out.violations.push(fail(e));
                    continue;
                }
            };
            let mut proxy =
                match ChaosProxy::spawn(upstream, FaultPlan::pass_through(), SystemClock::shared())
                {
                    Ok(p) => p,
                    Err(e) => {
                        out.violations.push(fail(format!("spawn proxy: {e}")));
                        continue;
                    }
                };
            let (_clock, handle) = TestClock::shared();
            let client = BulkClient::with_config(proxy.addr(), fast_config(1), handle);
            let ips = requested.clone();
            let outcome = catch_unwind(AssertUnwindSafe(move || client.lookup(&ips)));
            match outcome {
                Err(_) => out.violations.push(fail("client panicked".to_string())),
                Ok(res) => match partition_breach(&requested, &res) {
                    Some(breach) => out.violations.push(fail(breach)),
                    None => out.attributed += requested.len() as u64,
                },
            }
            proxy.shutdown();
        }
        scenarios.push(out);
    }
}

/// Run the client-vs-faulty-proxy scenarios against the real server.
fn run_proxy_fault_scenarios(
    config: &FuzzConfig,
    service: &Arc<MappingService>,
    server_addr: SocketAddr,
    ips: &[Ipv4Addr],
    scenarios: &mut Vec<ScenarioOutcome>,
) {
    const NAMES: [&str; 3] = ["proxy-corrupt-bytes", "proxy-early-fin", "proxy-truncate"];
    for (s_ix, name) in NAMES.iter().enumerate() {
        let mut out = ScenarioOutcome {
            scenario: name,
            runs: 0,
            attributed: 0,
            violations: Vec::new(),
        };
        for run in 0..config.proto_runs {
            out.runs += 1;
            let mut rng = FuzzRng::new(config.seed ^ (s_ix as u64).rotate_left(40) ^ run);
            let fail = |msg: String| format!("scenario={name} run={run}: {msg}");
            let fault = match *name {
                "proxy-corrupt-bytes" => Fault::CorruptBytes {
                    rate_pct: 100,
                    seed: rng.next_u64(),
                },
                "proxy-early-fin" => Fault::EarlyFin,
                _ => Fault::TruncateAfter(usize::try_from(rng.range(60, 400)).unwrap_or(60)),
            };
            let plan = FaultPlan::sequence(vec![fault]);
            let mut proxy = match ChaosProxy::spawn(server_addr, plan, SystemClock::shared()) {
                Ok(p) => p,
                Err(e) => {
                    out.violations.push(fail(format!("spawn proxy: {e}")));
                    continue;
                }
            };
            let (_clock, handle) = TestClock::shared();
            let client = BulkClient::with_config(proxy.addr(), fast_config(3), handle);
            let ips_owned = ips.to_vec();
            let outcome = catch_unwind(AssertUnwindSafe(move || client.lookup(&ips_owned)));
            match outcome {
                Err(_) => out.violations.push(fail("client panicked".to_string())),
                Ok(res) => {
                    if let Some(breach) = partition_breach(ips, &res) {
                        out.violations.push(fail(breach));
                    } else if !res.is_complete() {
                        out.violations.push(fail(format!(
                            "batch incomplete behind a single-shot fault: {} failed",
                            res.failed.len()
                        )));
                    } else {
                        // Nothing from the damaged stream may leak into
                        // the answers.
                        let mut clean = true;
                        for (ip, rec) in &res.found {
                            if service.lookup(*ip) != Some(*rec) {
                                out.violations
                                    .push(fail(format!("{ip} answered with a corrupted record")));
                                clean = false;
                                break;
                            }
                        }
                        for ip in &res.not_found {
                            if service.lookup(*ip).is_some() {
                                clean = false;
                                out.violations.push(fail(format!("{ip} spuriously NA")));
                                break;
                            }
                        }
                        if clean {
                            out.attributed += ips.len() as u64;
                        }
                    }
                }
            }
            proxy.shutdown();
        }
        scenarios.push(out);
    }
}

/// Write seeded adversarial bytes straight at the server (through the
/// given proxy), read whatever comes back, and return it.
fn poke(addr: SocketAddr, payload: &[u8]) -> Result<Vec<u8>, String> {
    let mut s = TcpStream::connect_timeout(&addr, Duration::from_millis(500))
        .map_err(|e| format!("connect: {e}"))?;
    s.set_read_timeout(Some(Duration::from_secs(2)))
        .map_err(|e| format!("deadline: {e}"))?;
    s.set_write_timeout(Some(Duration::from_secs(2)))
        .map_err(|e| format!("deadline: {e}"))?;
    let _ = s.write_all(payload);
    let _ = s.shutdown(Shutdown::Write);
    let mut response = Vec::new();
    let _ = s.read_to_end(&mut response);
    Ok(response)
}

/// Render the raw bytes for one server-side scenario.
fn server_payload(scenario: &'static str, rng: &mut FuzzRng) -> Vec<u8> {
    match scenario {
        "server-no-begin" => b"hello\n198.51.100.1\nend\n".to_vec(),
        "server-garbage" => {
            let mut out = b"begin\n".to_vec();
            for _ in 0..rng.range(2, 10) {
                let len = rng.range(1, 60);
                for _ in 0..len {
                    out.push(0x20 + u8::try_from(rng.below(0x5F)).unwrap_or(0));
                }
                out.push(b'\n');
            }
            out.extend_from_slice(b"end\n");
            out
        }
        "server-endless-line" => {
            let mut out = b"begin\n".to_vec();
            out.extend(std::iter::repeat(b'z').take(LINE_CAP * 4));
            out
        }
        "server-binary" => {
            let len = rng.range(32, 1024);
            let mut out = Vec::new();
            for _ in 0..len {
                out.push(u8::try_from(rng.below(256)).unwrap_or(0));
            }
            out
        }
        // "server-early-fin" and anything unrecognized: a lone `begin`
        // followed by the FIN.
        _ => b"begin\n".to_vec(),
    }
}

/// Run the adversarial-client-vs-server scenarios, each followed by a
/// well-formed health probe proving the worker pool still serves.
fn run_server_scenarios(
    config: &FuzzConfig,
    server_addr: SocketAddr,
    proxy_addr: SocketAddr,
    probe_ips: &[Ipv4Addr],
    scenarios: &mut Vec<ScenarioOutcome>,
) {
    const NAMES: [&str; 5] = [
        "server-no-begin",
        "server-garbage",
        "server-endless-line",
        "server-binary",
        "server-early-fin",
    ];
    for (s_ix, name) in NAMES.iter().enumerate() {
        let mut out = ScenarioOutcome {
            scenario: name,
            runs: 0,
            attributed: 0,
            violations: Vec::new(),
        };
        for run in 0..config.proto_runs {
            out.runs += 1;
            let mut rng = FuzzRng::new(config.seed ^ (s_ix as u64).rotate_left(48) ^ run);
            let fail = |msg: String| format!("scenario={name} run={run}: {msg}");
            let payload = server_payload(name, &mut rng);
            match poke(proxy_addr, &payload) {
                Err(e) => out.violations.push(fail(e)),
                Ok(response) => {
                    // The shed paths answer with an attributed error
                    // line before closing; these two scenarios have a
                    // deterministic response shape worth pinning.
                    let text = String::from_utf8_lossy(&response);
                    if *name == "server-no-begin" && !text.contains("Error: expected 'begin'") {
                        out.violations
                            .push(fail(format!("missing begin-error line, got {text:?}")));
                    }
                    if *name == "server-endless-line" && !text.contains("Error: line exceeds") {
                        out.violations
                            .push(fail(format!("missing line-cap error, got {text:?}")));
                    }
                }
            }
            // Health probe: the pool must shed the abuse and keep
            // answering well-formed batches, directly at the server.
            let (_clock, handle) = TestClock::shared();
            let client = BulkClient::with_config(server_addr, fast_config(2), handle);
            let ips_owned = probe_ips.to_vec();
            let probe_outcome = catch_unwind(AssertUnwindSafe(move || client.lookup(&ips_owned)));
            match probe_outcome {
                Err(_) => out
                    .violations
                    .push(fail("health probe panicked".to_string())),
                Ok(res) => {
                    if !res.is_complete() {
                        out.violations.push(fail(format!(
                            "health probe incomplete after abuse: {} failed",
                            res.failed.len()
                        )));
                    } else {
                        out.attributed += probe_ips.len() as u64;
                    }
                }
            }
        }
        scenarios.push(out);
    }
}

/// Run the whole pillar. One synthetic world and one real server are
/// shared by the proxy-fault and server-side families; the scripted
/// scenarios bring their own peers.
pub fn run(config: &FuzzConfig) -> ProtoOutcome {
    let mut scenarios = Vec::new();
    run_client_scenarios(config, &mut scenarios);

    let world = World::generate(WorldConfig::tiny(config.seed ^ 0x5EED));
    let service = Arc::new(MappingService::build(&world));
    let ips: Vec<Ipv4Addr> = world
        .interfaces
        .iter()
        .step_by(97)
        .take(8)
        .map(|i| i.ip)
        .collect();
    let mut server = match WhoisServer::spawn(Arc::clone(&service)) {
        Ok(s) => s,
        Err(e) => {
            scenarios.push(ScenarioOutcome {
                scenario: "harness",
                runs: 0,
                attributed: 0,
                violations: vec![format!("spawn whois server: {e}")],
            });
            return ProtoOutcome { scenarios };
        }
    };
    run_proxy_fault_scenarios(config, &service, server.addr(), &ips, &mut scenarios);

    match ChaosProxy::spawn(
        server.addr(),
        FaultPlan::pass_through(),
        SystemClock::shared(),
    ) {
        Ok(mut proxy) => {
            run_server_scenarios(config, server.addr(), proxy.addr(), &ips, &mut scenarios);
            proxy.shutdown();
        }
        Err(e) => scenarios.push(ScenarioOutcome {
            scenario: "harness",
            runs: 0,
            attributed: 0,
            violations: vec![format!("spawn pass-through proxy: {e}")],
        }),
    }
    server.shutdown();
    ProtoOutcome { scenarios }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_single_round_is_clean() {
        let config = FuzzConfig {
            seed: 0xF00D,
            trials_per_class: 1,
            proto_runs: 1,
            diff_addrs: 4,
        };
        let outcome = run(&config);
        // 6 client + 3 proxy-fault + 5 server scenarios.
        assert_eq!(outcome.scenarios.len(), 14);
        for s in &outcome.scenarios {
            assert!(
                s.violations.is_empty(),
                "{}: {:#?}",
                s.scenario,
                s.violations
            );
            assert_eq!(s.runs, 1);
        }
    }
}

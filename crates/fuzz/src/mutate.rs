//! Grammar-aware RGDB mutators.
//!
//! A naive byte-flipping fuzzer dies at the image checksum: the reader
//! validates FNV-1a over the payload before anything structural, so
//! every mutation would be rejected at the same shallow check and the
//! deep decode paths would never run. These mutators know the format —
//! they target specific sections and then **re-fix the checksum** so
//! the structural validation is what gets exercised. The `Truncate`
//! class deliberately skips the re-fix: length/checksum rejection is a
//! path worth fuzzing too.
//!
//! Layout facts used here mirror `crates/db/src/rgdb.rs` and
//! `rgdb2.rs`: all formats share the 28-byte header (`magic u32 |
//! version u16 | name_len u16 | node_count u32 | record_count u32 |
//! len u32 | checksum u64`), then name. What follows differs: v1 lays
//! out `node_count × 12` bytes of nodes then its variable-length data
//! section (the header `len` field); v2 the same nodes then
//! `record_count × 20` fixed-width records and a string table whose
//! length the `len` field holds; v2.1 (header version 3) inserts a
//! 512 KiB stride-16 root table (65 536 × 8-byte `record u32 | node
//! u32` entries) between the name and the nodes. [`geometry`]
//! dispatches on the version field so every mutator targets the real
//! payload region of any format, and the three root-table classes
//! target the v2.1 section specifically.

use crate::rng::FuzzRng;

/// Fixed header length (see the format doc in `rgdb.rs`).
const HEADER_LEN: usize = 28;

/// The typed mutation classes. Each is a distinct grammar production,
/// not a distinct byte pattern — `cargo xtask fuzz` reports coverage
/// per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationClass {
    /// Overwrite one header field (version, name_len, node_count,
    /// record_count, data_len) with an adversarial value.
    HeaderFieldFlip,
    /// Copy one payload range over another (length-preserving splice),
    /// tearing section boundaries without changing the total size.
    SectionSplice,
    /// Overwrite trie node links/data offsets with out-of-range values,
    /// self-loops, or offsets pointing at the end of the data section.
    NodeLinkCorrupt,
    /// Flip individual bits in the record data section.
    RecordBitFlip,
    /// Saturate data-section bytes to 0xFF so length-prefixed string
    /// fields claim more bytes than the section holds.
    StringLenOversize,
    /// Cut the image at an arbitrary point (checksum left stale on
    /// purpose: rejection-by-length/checksum is also a fuzzed path).
    Truncate,
    /// Copy one v2.1 root-table range over another (length-preserving
    /// splice confined to the root table), breaking entries away from
    /// what the trie derives. No-op below version 3.
    RootTableSplice,
    /// Overwrite v2.1 root entries (`record u32 | node u32`) with
    /// out-of-range indices, NONE-vs-valid flips, and random words.
    /// No-op below version 3.
    RootEntryOutOfRange,
    /// Cut the image *inside* the v2.1 root table (checksum left stale
    /// like [`MutationClass::Truncate`]) so the 512 KiB stride section
    /// itself is what falls short.
    StrideTruncate,
}

impl MutationClass {
    /// Every class, in reporting order.
    pub const ALL: [MutationClass; 9] = [
        MutationClass::HeaderFieldFlip,
        MutationClass::SectionSplice,
        MutationClass::NodeLinkCorrupt,
        MutationClass::RecordBitFlip,
        MutationClass::StringLenOversize,
        MutationClass::Truncate,
        MutationClass::RootTableSplice,
        MutationClass::RootEntryOutOfRange,
        MutationClass::StrideTruncate,
    ];

    /// Stable kebab-case label (used in replay specs and JSON).
    pub fn label(self) -> &'static str {
        match self {
            MutationClass::HeaderFieldFlip => "header-field-flip",
            MutationClass::SectionSplice => "section-splice",
            MutationClass::NodeLinkCorrupt => "node-link-corrupt",
            MutationClass::RecordBitFlip => "record-bit-flip",
            MutationClass::StringLenOversize => "string-len-oversize",
            MutationClass::Truncate => "truncate",
            MutationClass::RootTableSplice => "root-table-splice",
            MutationClass::RootEntryOutOfRange => "root-entry-out-of-range",
            MutationClass::StrideTruncate => "stride-truncate",
        }
    }

    /// Inverse of [`MutationClass::label`].
    pub fn parse(s: &str) -> Option<MutationClass> {
        MutationClass::ALL.into_iter().find(|c| c.label() == s)
    }
}

/// Little-endian u16 read with a zero default — mutation helpers must
/// be total on arbitrary (already-mutated) inputs.
fn u16_at(bytes: &[u8], at: usize) -> u16 {
    match bytes.get(at..at + 2) {
        Some([a, b]) => u16::from_le_bytes([*a, *b]),
        _ => 0,
    }
}

/// Little-endian u32 read with a zero default.
fn u32_at(bytes: &[u8], at: usize) -> u32 {
    match bytes.get(at..at + 4) {
        Some([a, b, c, d]) => u32::from_le_bytes([*a, *b, *c, *d]),
        _ => 0,
    }
}

/// Little-endian u32 write (no-op when out of bounds).
fn put_u32(bytes: &mut [u8], at: usize, value: u32) {
    if let Some(slot) = bytes.get_mut(at..at + 4) {
        slot.copy_from_slice(&value.to_le_bytes());
    }
}

/// FNV-1a64 — must match the reader's checksum exactly.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Recompute the payload checksum and patch header bytes 20..28, so a
/// structurally-mutated image passes the checksum gate and reaches the
/// deep validation paths.
pub fn refix_checksum(bytes: &mut [u8]) {
    if bytes.len() < HEADER_LEN {
        return;
    }
    let sum = match bytes.get(HEADER_LEN..) {
        Some(payload) => fnv1a(payload),
        None => return,
    };
    if let Some(slot) = bytes.get_mut(20..28) {
        slot.copy_from_slice(&sum.to_le_bytes());
    }
}

/// Size of the v2.1 stride-16 root table (65 536 × 8-byte entries).
const ROOT_TABLE_BYTES: usize = (1 << 16) * 8;

/// Section geometry as *claimed by the header* (which mutation may have
/// already falsified — all uses stay bounds-checked).
struct Geometry {
    root_start: usize,
    root_len: usize,
    nodes_start: usize,
    nodes_len: usize,
    data_start: usize,
    data_len: usize,
}

fn geometry(bytes: &[u8]) -> Geometry {
    let version = u16_at(bytes, 4);
    let name_len = usize::from(u16_at(bytes, 6));
    let node_count = usize::try_from(u32_at(bytes, 8)).unwrap_or(0);
    let data_len = if version >= 2 {
        // v2/v2.1: fixed-width records then the string table; the
        // header's length field at 16 covers only the strings.
        let records = usize::try_from(u32_at(bytes, 12))
            .unwrap_or(0)
            .saturating_mul(20);
        let strings = usize::try_from(u32_at(bytes, 16)).unwrap_or(0);
        records.saturating_add(strings)
    } else {
        usize::try_from(u32_at(bytes, 16)).unwrap_or(0)
    };
    // v2.1 (version 3) inserts the stride-16 root table between the
    // name and the nodes.
    let root_start = HEADER_LEN + name_len;
    let root_len = if version == 3 { ROOT_TABLE_BYTES } else { 0 };
    let nodes_start = root_start + root_len;
    let nodes_len = node_count.saturating_mul(12);
    Geometry {
        root_start,
        root_len,
        nodes_start,
        nodes_len,
        data_start: nodes_start + nodes_len,
        data_len,
    }
}

/// Apply one seeded mutation of `class` to a copy of `image`. Total:
/// degenerate images come back unchanged rather than panicking.
pub fn apply(class: MutationClass, image: &[u8], rng: &mut FuzzRng) -> Vec<u8> {
    let mut out = image.to_vec();
    match class {
        MutationClass::HeaderFieldFlip => {
            // (offset, width) of each mutable header field.
            const FIELDS: [(usize, usize); 5] = [(4, 2), (6, 2), (8, 4), (12, 4), (16, 4)];
            let ix = usize::try_from(rng.below(FIELDS.len() as u64)).unwrap_or(0);
            let (at, width) = FIELDS[ix % FIELDS.len()];
            let original = if width == 2 {
                u64::from(u16_at(&out, at))
            } else {
                u64::from(u32_at(&out, at))
            };
            let value = match rng.below(5) {
                0 => 0,
                1 => 1,
                2 => original.wrapping_add(1),
                3 => original.wrapping_sub(1),
                _ => rng.next_u64(),
            };
            if width == 2 {
                let short = u16::try_from(value & 0xFFFF).unwrap_or(0);
                if let Some(slot) = out.get_mut(at..at + 2) {
                    slot.copy_from_slice(&short.to_le_bytes());
                }
            } else {
                put_u32(
                    &mut out,
                    at,
                    u32::try_from(value & 0xFFFF_FFFF).unwrap_or(0),
                );
            }
            refix_checksum(&mut out);
        }
        MutationClass::SectionSplice => {
            let payload = out.len().saturating_sub(HEADER_LEN);
            if payload >= 2 {
                let max_span = (payload / 2).max(1) as u64;
                let span = usize::try_from(rng.range(1, max_span)).unwrap_or(1);
                let src = HEADER_LEN
                    + usize::try_from(rng.below((payload - span + 1) as u64)).unwrap_or(0);
                let dst = HEADER_LEN
                    + usize::try_from(rng.below((payload - span + 1) as u64)).unwrap_or(0);
                if src != dst {
                    let chunk: Vec<u8> = out
                        .get(src..src + span)
                        .map(<[u8]>::to_vec)
                        .unwrap_or_default();
                    if let Some(slot) = out.get_mut(dst..dst + chunk.len()) {
                        slot.copy_from_slice(&chunk);
                    }
                }
            }
            refix_checksum(&mut out);
        }
        MutationClass::NodeLinkCorrupt => {
            let g = geometry(&out);
            let node_count = (g.nodes_len / 12) as u64;
            if node_count > 0 {
                let hits = rng.range(1, 4);
                for _ in 0..hits {
                    let node = usize::try_from(rng.below(node_count)).unwrap_or(0);
                    let slot = usize::try_from(rng.below(3)).unwrap_or(0);
                    let at = g.nodes_start + node * 12 + slot * 4;
                    let value = match rng.below(6) {
                        0 => u32::MAX - 1,                           // huge link
                        1 => u32::try_from(node_count).unwrap_or(0), // first out-of-range node
                        2 => u32::try_from(node).unwrap_or(0),       // self-loop
                        3 => 0,                                      // loop back to the root
                        4 => u32::try_from(g.data_len).unwrap_or(0), // offset at data end
                        _ => u32::try_from(rng.next_u64() & 0xFFFF_FFFF).unwrap_or(1) | 1,
                    };
                    put_u32(&mut out, at, value);
                }
            }
            refix_checksum(&mut out);
        }
        MutationClass::RecordBitFlip => {
            let g = geometry(&out);
            let end = out.len().min(g.data_start + g.data_len);
            if end > g.data_start {
                let span = (end - g.data_start) as u64;
                let flips = rng.range(1, 8);
                for _ in 0..flips {
                    let at = g.data_start + usize::try_from(rng.below(span)).unwrap_or(0);
                    let bit = rng.below(8);
                    if let Some(b) = out.get_mut(at) {
                        *b ^= 1u8 << bit;
                    }
                }
            }
            refix_checksum(&mut out);
        }
        MutationClass::StringLenOversize => {
            let g = geometry(&out);
            let end = out.len().min(g.data_start + g.data_len);
            if end > g.data_start {
                let span = (end - g.data_start) as u64;
                let hits = rng.range(1, 4);
                for _ in 0..hits {
                    let at = g.data_start + usize::try_from(rng.below(span)).unwrap_or(0);
                    if let Some(b) = out.get_mut(at) {
                        *b = 0xFF;
                    }
                }
            }
            refix_checksum(&mut out);
        }
        MutationClass::Truncate => {
            let cut = usize::try_from(rng.below(out.len().saturating_add(1) as u64)).unwrap_or(0);
            out.truncate(cut);
            // No checksum re-fix: stale-checksum rejection is the point.
        }
        MutationClass::RootTableSplice => {
            let g = geometry(&out);
            let end = out.len().min(g.root_start + g.root_len);
            let span_total = end.saturating_sub(g.root_start);
            if span_total >= 16 {
                // Entry-aligned splice so whole (record, node) pairs
                // move — the canonical-table check must catch it.
                let entries = (span_total / 8) as u64;
                let count = rng.range(1, (entries / 2).max(2));
                let src =
                    g.root_start + usize::try_from(rng.below(entries - count + 1)).unwrap_or(0) * 8;
                let dst =
                    g.root_start + usize::try_from(rng.below(entries - count + 1)).unwrap_or(0) * 8;
                let len = usize::try_from(count).unwrap_or(1) * 8;
                if src != dst {
                    let chunk: Vec<u8> = out
                        .get(src..src + len)
                        .map(<[u8]>::to_vec)
                        .unwrap_or_default();
                    if let Some(slot) = out.get_mut(dst..dst + chunk.len()) {
                        slot.copy_from_slice(&chunk);
                    }
                }
            }
            refix_checksum(&mut out);
        }
        MutationClass::RootEntryOutOfRange => {
            let g = geometry(&out);
            let end = out.len().min(g.root_start + g.root_len);
            let entries = (end.saturating_sub(g.root_start) / 8) as u64;
            if entries > 0 {
                let node_count = (g.nodes_len / 12) as u64;
                let hits = rng.range(1, 4);
                for _ in 0..hits {
                    let entry = usize::try_from(rng.below(entries)).unwrap_or(0);
                    let half = usize::try_from(rng.below(2)).unwrap_or(0); // record | node
                    let at = g.root_start + entry * 8 + half * 4;
                    let value = match rng.below(6) {
                        0 => u32::MAX - 1,                           // huge index
                        1 => u32::try_from(node_count).unwrap_or(0), // first out-of-range node
                        2 => 0,                                      // point everything at the root
                        3 => u32::MAX, // NONE where the trie has a value
                        4 => u32::try_from(entry).unwrap_or(0), // entry index as payload
                        _ => u32::try_from(rng.next_u64() & 0xFFFF_FFFF).unwrap_or(1),
                    };
                    put_u32(&mut out, at, value);
                }
            }
            refix_checksum(&mut out);
        }
        MutationClass::StrideTruncate => {
            let g = geometry(&out);
            if g.root_len > 0 {
                // Cut inside the root table itself: the 512 KiB stride
                // section is what falls short of the claimed layout.
                let cut = g.root_start
                    + usize::try_from(rng.below(g.root_len.saturating_add(1) as u64)).unwrap_or(0);
                out.truncate(cut.min(out.len()));
            } else {
                // v1/v2 carry no root table; cut at the equivalent
                // section boundary so the class stays total.
                out.truncate(g.root_start.min(out.len()));
            }
            // No checksum re-fix: stale-checksum rejection is the point.
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{build_entry, Scale};

    #[test]
    fn mutations_are_deterministic() {
        let image = build_entry(5, Scale::Tiny).image();
        for class in MutationClass::ALL {
            let a = apply(class, &image, &mut FuzzRng::new(99));
            let b = apply(class, &image, &mut FuzzRng::new(99));
            assert_eq!(a, b, "{}", class.label());
        }
    }

    #[test]
    fn checksum_refix_reaches_structural_validation() {
        // A node-link mutation with the checksum re-fixed must get past
        // ChecksumMismatch: open either succeeds or fails structurally.
        let image = build_entry(5, Scale::Small).image();
        let mut deep = 0;
        for t in 0..50u64 {
            let mut rng = FuzzRng::new(t);
            let mutated = apply(MutationClass::NodeLinkCorrupt, &image, &mut rng);
            match routergeo_db::rgdb::RgdbReader::open(bytes::Bytes::from(mutated)) {
                Err(routergeo_db::rgdb::RgdbError::ChecksumMismatch) => {
                    panic!("mutation died at the checksum gate")
                }
                Err(_) => deep += 1,
                Ok(_) => deep += 1,
            }
        }
        assert!(deep > 0);
    }

    #[test]
    fn v2_geometry_reaches_the_record_and_string_sections() {
        // The same refix property must hold for the flat format: a
        // record bit-flip on a v2 image gets past the checksum gate and
        // is judged by the canonical-encoding validation instead.
        let image = build_entry(5, Scale::Small).image_v2();
        let mut rejected_structurally = 0;
        for t in 0..50u64 {
            let mut rng = FuzzRng::new(t);
            let mutated = apply(MutationClass::RecordBitFlip, &image, &mut rng);
            match routergeo_db::rgdb2::Rgdb2Reader::open(bytes::Bytes::from(mutated)) {
                Err(routergeo_db::rgdb::RgdbError::ChecksumMismatch) => {
                    panic!("v2 mutation died at the checksum gate")
                }
                Err(_) => rejected_structurally += 1,
                Ok(_) => {}
            }
        }
        // Canonical-encoding validation makes most record flips fatal
        // at open; if none were, the mutator missed the record section.
        assert!(rejected_structurally > 0);
    }

    #[test]
    fn labels_roundtrip() {
        for class in MutationClass::ALL {
            assert_eq!(MutationClass::parse(class.label()), Some(class));
        }
        assert_eq!(MutationClass::parse("nope"), None);
    }
}

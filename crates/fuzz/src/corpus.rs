//! Seeded corpus builder: valid `(prefix, record)` sets at three sizes.
//!
//! Every corpus entry is a pure function of `(seed, scale)`. Two
//! properties are deliberate, because the differential pillar compares
//! the RGDB trie against [`routergeo_db::InMemoryDb`]:
//!
//! * **Prefixes are pairwise disjoint.** Each record owns a distinct
//!   /16 block and its prefix is carved inside it, so there is no
//!   nested longest-prefix matching — `InMemoryDb` (a flat range map)
//!   rejects overlapping ranges outright.
//! * **Coordinates are micro-degree-valued** (`k / 1e6`). RGDB stores
//!   integer micro-degrees and CSV prints six decimals, so exact
//!   three-way agreement is only possible when the source values sit on
//!   that grid. `k / 1e6` and the CSV decimal parse produce the same
//!   correctly-rounded `f64`, which the round-trip battery relies on.

use crate::rng::FuzzRng;
use bytes::Bytes;
use routergeo_db::record::{Granularity, LocationRecord};
use routergeo_db::{rgdb, rgdb2};
use routergeo_geo::{Coordinate, CountryCode};
use routergeo_net::Prefix;
use std::net::Ipv4Addr;

/// Corpus sizes. These are fuzz-corpus scales (record counts), not the
/// world scales in `routergeo-world` — kept small so a full replay of
/// every (seed, scale) pair stays inside a CI budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 16 records.
    Tiny,
    /// 64 records.
    Small,
    /// 256 records.
    Tenth,
}

impl Scale {
    /// All scales, smallest first.
    pub const ALL: [Scale; 3] = [Scale::Tiny, Scale::Small, Scale::Tenth];

    /// Records per corpus entry at this scale.
    pub fn records(self) -> usize {
        match self {
            Scale::Tiny => 16,
            Scale::Small => 64,
            Scale::Tenth => 256,
        }
    }

    /// Stable lower-case label (used in specs and JSON).
    pub fn label(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Tenth => "tenth",
        }
    }

    /// Inverse of [`Scale::label`].
    pub fn parse(s: &str) -> Option<Scale> {
        Scale::ALL.into_iter().find(|sc| sc.label() == s)
    }
}

/// Which RGDB wire format a fuzzed image is serialized in. All
/// writers consume the same `(prefix, record)` sets, so every corpus
/// entry exists in every format and the harness fuzzes each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageFormat {
    /// The v1 pointer-chasing layout (`rgdb::write`).
    V1,
    /// The v2 flat zero-copy layout (`rgdb2::write`).
    V2,
    /// The v2.1 cache-locality layout: stride-16 root table +
    /// level-order nodes (`rgdb2::write_v21`).
    V21,
}

impl ImageFormat {
    /// Every format, oldest first (reporting and spec order).
    pub const ALL: [ImageFormat; 3] = [ImageFormat::V1, ImageFormat::V2, ImageFormat::V21];

    /// Stable lower-case label (used in specs and JSON).
    pub fn label(self) -> &'static str {
        match self {
            ImageFormat::V1 => "v1",
            ImageFormat::V2 => "v2",
            ImageFormat::V21 => "v21",
        }
    }

    /// Inverse of [`ImageFormat::label`].
    pub fn parse(s: &str) -> Option<ImageFormat> {
        ImageFormat::ALL.into_iter().find(|f| f.label() == s)
    }
}

/// One synthesized record set plus its provenance.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Seed the entry was derived from.
    pub seed: u64,
    /// Corpus scale.
    pub scale: Scale,
    /// Disjoint prefixes with their records.
    pub entries: Vec<(Prefix, LocationRecord)>,
}

impl CorpusEntry {
    /// Serialize this entry into a valid RGDB v1 image via the
    /// production writer.
    pub fn image(&self) -> Bytes {
        rgdb::write(
            &format!("fuzz-{}-{}", self.scale.label(), self.seed),
            self.entries.iter().map(|(p, r)| (*p, r)),
        )
    }

    /// Serialize this entry into a valid RGDB v2 (flat) image.
    pub fn image_v2(&self) -> Bytes {
        rgdb2::write(
            &format!("fuzz-{}-{}", self.scale.label(), self.seed),
            self.entries.iter().map(|(p, r)| (*p, r)),
        )
    }

    /// Serialize this entry into a valid RGDB v2.1 image (root table +
    /// level-order nodes).
    pub fn image_v21(&self) -> Bytes {
        rgdb2::write_v21(
            &format!("fuzz-{}-{}", self.scale.label(), self.seed),
            self.entries.iter().map(|(p, r)| (*p, r)),
        )
    }

    /// Serialize in any format.
    pub fn image_as(&self, format: ImageFormat) -> Bytes {
        match format {
            ImageFormat::V1 => self.image(),
            ImageFormat::V2 => self.image_v2(),
            ImageFormat::V21 => self.image_v21(),
        }
    }
}

/// Country pool for synthesized records. Real codes so
/// `CountryCode::from_str_exact` accepts them.
const COUNTRIES: [&str; 8] = ["US", "DE", "FR", "JP", "BR", "IN", "AU", "ZA"];

/// Build the deterministic corpus entry for `(seed, scale)`.
pub fn build_entry(seed: u64, scale: Scale) -> CorpusEntry {
    let mut rng = FuzzRng::new(seed ^ 0xC0_4155_2017_0301);
    let mut entries = Vec::with_capacity(scale.records());
    for i in 0..scale.records() {
        let prefix = carve_prefix(i, &mut rng);
        let record = synth_record(&mut rng);
        entries.push((prefix, record));
    }
    CorpusEntry {
        seed,
        scale,
        entries,
    }
}

/// Carve a prefix inside record `i`'s private /16 block. Distinct `i`
/// means a distinct block, so all carved prefixes are pairwise disjoint
/// regardless of their lengths.
fn carve_prefix(i: usize, rng: &mut FuzzRng) -> Prefix {
    let a = 10 + u32::try_from(i >> 8).unwrap_or(0) % 120;
    let b = u32::try_from(i & 0xFF).unwrap_or(0);
    let base = (a << 24) | (b << 16);
    let len = u8::try_from(rng.range(16, 32)).unwrap_or(16);
    let host_bits = 32 - u32::from(len);
    // Random sub-block offset, aligned to the prefix length.
    let slots = 1u32.checked_shl(u32::from(len) - 16).unwrap_or(1);
    let offset = u32::try_from(rng.below(u64::from(slots))).unwrap_or(0);
    let network = base | offset.checked_shl(host_bits).unwrap_or(0);
    match Prefix::new(Ipv4Addr::from(network), len) {
        Ok(p) => p,
        // Unreachable by construction (network is aligned); fall back to
        // the whole block rather than panicking in a fuzz harness.
        Err(_) => Prefix::containing(Ipv4Addr::from(base), 16).unwrap_or_else(|_| {
            // /0 accepts any address; the double fallback keeps this
            // path total without a panic.
            Prefix::default_route()
        }),
    }
}

/// Random address inside some record's private /16 block (same block
/// geometry as [`carve_prefix`]). Address sweeps over mutated images
/// use this to actually reach record decode paths — a uniform draw
/// over all 2³² addresses almost never lands inside the corpus.
pub fn block_addr(scale: Scale, rng: &mut FuzzRng) -> Ipv4Addr {
    let i = usize::try_from(rng.below(scale.records() as u64)).unwrap_or(0);
    let a = 10 + u32::try_from(i >> 8).unwrap_or(0) % 120;
    let b = u32::try_from(i & 0xFF).unwrap_or(0);
    let low = u32::try_from(rng.below(1 << 16)).unwrap_or(0);
    Ipv4Addr::from((a << 24) | (b << 16) | low)
}

/// Synthesize one record with every field shape the wire format can
/// carry: present/absent fields, one-char and near-cap strings,
/// coordinate extremes — all on the micro-degree grid.
fn synth_record(rng: &mut FuzzRng) -> LocationRecord {
    let country = if rng.chance(90) {
        let ix = usize::try_from(rng.below(COUNTRIES.len() as u64)).unwrap_or(0);
        let pick = COUNTRIES[ix % COUNTRIES.len()];
        CountryCode::from_str_exact(pick)
    } else {
        None
    };
    let region = if rng.chance(60) {
        Some(synth_string(rng, "Region"))
    } else {
        None
    };
    let city = if rng.chance(55) {
        Some(synth_string(rng, "City"))
    } else {
        None
    };
    let coord = if rng.chance(70) {
        let lat_micro = rng.range_i64(-90_000_000, 90_000_000);
        let lon_micro = rng.range_i64(-180_000_000, 180_000_000);
        // Micro-degree grid: exact under RGDB quantization and CSV's
        // six-decimal print.
        let lat = lat_micro as f64 / 1e6;
        let lon = lon_micro as f64 / 1e6;
        Coordinate::new(lat, lon).ok()
    } else {
        None
    };
    let granularity = match rng.below(3) {
        0 => Granularity::Aggregate,
        1 => Granularity::Block24,
        _ => Granularity::SubBlock,
    };
    LocationRecord {
        country,
        region,
        city,
        coord,
        granularity,
    }
}

/// ASCII name of varying length: mostly short, occasionally a single
/// character, the empty string, or close to the format's 255-byte cap
/// (never over it — the writer truncates at 255). `Some("")` is a
/// legal present-but-empty name everywhere: the binary formats carry
/// it as a set flag with length 0 and CSV as a quoted-empty cell, so
/// the differential backends all round-trip it.
fn synth_string(rng: &mut FuzzRng, kind: &str) -> String {
    match rng.below(10) {
        0 => "X".to_string(),
        2 => String::new(),
        1 => {
            let n = usize::try_from(rng.range(200, 255)).unwrap_or(200);
            let mut s = String::with_capacity(n);
            while s.len() < n {
                s.push(char::from(b'a' + u8::try_from(rng.below(26)).unwrap_or(0)));
            }
            s
        }
        _ => format!("{kind} {}", rng.below(10_000)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        let a = build_entry(3, Scale::Tiny);
        let b = build_entry(3, Scale::Tiny);
        assert_eq!(a.entries.len(), 16);
        for ((pa, ra), (pb, rb)) in a.entries.iter().zip(&b.entries) {
            assert_eq!(pa, pb);
            assert_eq!(ra, rb);
        }
        assert_eq!(a.image(), b.image());
    }

    #[test]
    fn prefixes_are_pairwise_disjoint() {
        for seed in [1, 2, 3] {
            let e = build_entry(seed, Scale::Tenth);
            for (i, (p, _)) in e.entries.iter().enumerate() {
                for (q, _) in e.entries.iter().skip(i + 1) {
                    assert!(
                        !p.contains(q.first()) && !q.contains(p.first()),
                        "{p} overlaps {q}"
                    );
                }
            }
        }
    }

    #[test]
    fn images_open_cleanly_in_both_formats() {
        for scale in Scale::ALL {
            let e = build_entry(11, scale);
            assert!(routergeo_db::rgdb::RgdbReader::open(e.image()).is_ok());
            assert!(routergeo_db::rgdb2::Rgdb2Reader::open(e.image_v2()).is_ok());
            for format in ImageFormat::ALL {
                assert!(routergeo_db::rgdb2::AnyReader::open(e.image_as(format)).is_ok());
            }
        }
    }

    #[test]
    fn corpus_strings_cover_the_empty_present_shape() {
        // The differential pillar is only as strong as the corpus: the
        // `Some("")` shape (fixed in CsvDb this cycle) must actually
        // occur across the seeds the harness replays.
        let mut empties = 0usize;
        for seed in 1..=8u64 {
            for (_, record) in build_entry(seed, Scale::Tenth).entries {
                if record.region.as_deref() == Some("") || record.city.as_deref() == Some("") {
                    empties += 1;
                }
            }
        }
        assert!(empties > 0, "no empty-present strings in 8 tenth entries");
    }
}

//! The aggregated fuzz report and its hand-rolled JSON rendering.
//!
//! The JSON is the CI artifact (`target/ci-artifacts/fuzz_ci.json`) and the
//! acceptance bar requires it to be byte-identical across runs and
//! machines, so it is rendered by hand with a fixed field order and no
//! floats, timestamps, or platform-dependent strings — everything in
//! it is a pure function of the [`crate::FuzzConfig`] trial plan.

use crate::diff::DiffOutcome;
use crate::proto_fuzz::ProtoOutcome;
use crate::rgdb_fuzz::RgdbOutcome;
use std::fmt::Write as _;

/// The full three-pillar report.
#[derive(Debug)]
pub struct FuzzReport {
    /// RGDB mutation pillar.
    pub rgdb: RgdbOutcome,
    /// Protocol pillar.
    pub proto: ProtoOutcome,
    /// Differential pillar.
    pub diff: DiffOutcome,
}

/// Escape a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn str_array(items: &[String]) -> String {
    let inner: Vec<String> = items.iter().map(|s| format!("\"{}\"", esc(s))).collect();
    format!("[{}]", inner.join(","))
}

impl FuzzReport {
    /// Every violation across the three pillars, in report order. An
    /// empty list is the passing condition.
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for class in &self.rgdb.classes {
            out.extend(class.violations.iter().cloned());
        }
        for scenario in &self.proto.scenarios {
            out.extend(scenario.violations.iter().cloned());
        }
        for scale in &self.diff.scales {
            out.extend(scale.mismatches.iter().cloned());
        }
        out
    }

    /// Whether the run passed: no panics, no unattributed errors, no
    /// protocol invariant breaches, no differential mismatches.
    pub fn is_clean(&self) -> bool {
        self.violations().is_empty()
    }

    /// Render the deterministic JSON document (fixed field order, no
    /// timestamps, trailing newline included).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"rgdb\": {\n");
        let _ = write!(
            s,
            "    \"entries\": {},\n    \"classes\": [\n",
            self.rgdb.entries
        );
        for (i, c) in self.rgdb.classes.iter().enumerate() {
            let _ = write!(
                s,
                "      {{\"class\": \"{}\", \"trials\": {}, \"rejected\": {}, \"opened\": {}, \
                 \"lookup_rejections\": {}, \"panics\": {}, \"violations\": {}}}",
                c.class.label(),
                c.trials,
                c.rejected,
                c.opened,
                c.lookup_rejections,
                c.panics,
                str_array(&c.violations)
            );
            s.push_str(if i + 1 < self.rgdb.classes.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("    ]\n  },\n  \"proto\": {\n    \"scenarios\": [\n");
        for (i, sc) in self.proto.scenarios.iter().enumerate() {
            let _ = write!(
                s,
                "      {{\"scenario\": \"{}\", \"runs\": {}, \"attributed\": {}, \
                 \"violations\": {}}}",
                esc(sc.scenario),
                sc.runs,
                sc.attributed,
                str_array(&sc.violations)
            );
            s.push_str(if i + 1 < self.proto.scenarios.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("    ]\n  },\n  \"diff\": {\n    \"scales\": [\n");
        for (i, d) in self.diff.scales.iter().enumerate() {
            let _ = write!(
                s,
                "      {{\"scale\": \"{}\", \"entries\": {}, \"addresses\": {}, \
                 \"mismatches\": {}}}",
                d.scale.label(),
                d.entries,
                d.addresses,
                str_array(&d.mismatches)
            );
            s.push_str(if i + 1 < self.diff.scales.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        let _ = write!(s, "    ]\n  }},\n  \"clean\": {}\n}}\n", self.is_clean());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_and_control_bytes() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_is_stable_for_identical_reports() {
        let config = crate::FuzzConfig {
            seed: 3,
            trials_per_class: 2,
            proto_runs: 1,
            diff_addrs: 4,
        };
        let a = crate::run(config).to_json();
        let b = crate::run(config).to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"clean\": true"), "{a}");
    }
}

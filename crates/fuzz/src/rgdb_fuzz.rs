//! Pillar 1: grammar-aware mutation fuzzing of the RGDB reader.
//!
//! Every trial mutates a valid corpus image with one typed
//! [`MutationClass`] production and feeds the result to
//! [`AnyReader::open`] plus an address sweep. The reader is held to
//! three promises: it never panics, every structural rejection is
//! attributed (a [`RgdbError::Corrupt`] carries its section and
//! offset), and it never loops (the trie walk is depth-bounded in the
//! reader itself, so a wedge would surface as a harness timeout).
//!
//! A trial is a pure function of `(corpus_seed, scale, class, trial,
//! format)` — see [`trial_seed`] — which is what lets a violation
//! collapse to the one-line spec format replayed by [`crate::replay`].
//! Both wire formats are fuzzed: each corpus entry is serialized as a
//! v1 and a v2 image, and the mutant goes through `AnyReader::open` so
//! the version dispatch itself is under fire too.

use crate::corpus::{build_entry, ImageFormat, Scale};
use crate::mutate::{self, MutationClass};
use crate::rng::FuzzRng;
use crate::FuzzConfig;
use bytes::Bytes;
use routergeo_db::rgdb::RgdbError;
use routergeo_db::rgdb2::AnyReader;
use std::net::Ipv4Addr;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Addresses swept against every mutant that still opens.
const SWEEP_ADDRS: u64 = 32;

/// Corpus seeds fuzzed per run, each paired with every [`Scale`].
pub const CORPUS_SEEDS: [u64; 2] = [1, 2];

/// Derive the deterministic seed for one mutation trial. Pure in all
/// five coordinates so `crates/fuzz/corpus/` spec lines can re-create
/// the exact mutant bytes. The v1 format chains no extra bytes, so
/// every pre-v2 spec line regenerates its exact historical mutant.
pub fn trial_seed(
    corpus_seed: u64,
    scale: Scale,
    class: MutationClass,
    trial: u64,
    format: ImageFormat,
) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let format_bytes: &[u8] = match format {
        ImageFormat::V1 => b"",
        ImageFormat::V2 => b"v2",
        ImageFormat::V21 => b"v21",
    };
    for b in scale
        .label()
        .bytes()
        .chain(class.label().bytes())
        .chain(format_bytes.iter().copied())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ corpus_seed.rotate_left(17) ^ trial.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// What one mutation trial did.
#[derive(Debug)]
pub enum TrialOutcome {
    /// `open()` rejected the mutant with an attributed error — the
    /// expected fate of most mutations.
    Rejected,
    /// The mutant still opened; the sweep completed and this many
    /// lookups returned (attributed) structural errors.
    Opened {
        /// `try_lookup` calls that returned `Err`.
        lookup_rejections: u64,
    },
    /// The reader panicked — always a violation.
    Panicked,
    /// An error came back without section/offset context — a violation
    /// of the attribution promise.
    Unattributed(String),
}

/// The attribution promise: `Corrupt` must carry context; the other
/// variants (truncated/magic/version/checksum) describe the whole
/// image and are inherently attributed.
fn attributed(e: &RgdbError) -> bool {
    match e {
        RgdbError::Corrupt(_) => e.context().is_some(),
        _ => true,
    }
}

/// Run one trial: open the mutant and, if it opens, sweep seeded
/// addresses through `try_lookup` — alternating between addresses
/// inside the corpus blocks (so mutated records actually decode) and
/// uniform global addresses (so empty trie regions walk too). All
/// reader work happens under `catch_unwind` so a panic becomes a
/// reportable outcome instead of tearing down the harness.
pub fn execute_trial(mutated: Vec<u8>, scale: Scale, sweep_seed: u64) -> TrialOutcome {
    let result = catch_unwind(AssertUnwindSafe(move || {
        match AnyReader::open(Bytes::from(mutated)) {
            Err(e) => {
                if attributed(&e) {
                    TrialOutcome::Rejected
                } else {
                    TrialOutcome::Unattributed(e.to_string())
                }
            }
            Ok(reader) => {
                let mut rng = FuzzRng::new(sweep_seed);
                let mut rejections = 0u64;
                for probe in 0..SWEEP_ADDRS {
                    let ip = if probe % 2 == 0 {
                        crate::corpus::block_addr(scale, &mut rng)
                    } else {
                        Ipv4Addr::from(u32::try_from(rng.next_u64() & 0xFFFF_FFFF).unwrap_or(0))
                    };
                    match reader.try_lookup(ip) {
                        Ok(_) => {}
                        Err(e) if attributed(&e) => rejections += 1,
                        Err(e) => return TrialOutcome::Unattributed(e.to_string()),
                    }
                }
                TrialOutcome::Opened {
                    lookup_rejections: rejections,
                }
            }
        }
    }));
    result.unwrap_or(TrialOutcome::Panicked)
}

/// Aggregated counts for one mutation class.
#[derive(Debug)]
pub struct ClassOutcome {
    /// The class these counts describe.
    pub class: MutationClass,
    /// Trials executed.
    pub trials: u64,
    /// Mutants rejected at `open()`.
    pub rejected: u64,
    /// Mutants that opened and survived the sweep.
    pub opened: u64,
    /// Structural errors returned by swept lookups (across all opened
    /// mutants).
    pub lookup_rejections: u64,
    /// Reader panics (must be zero).
    pub panics: u64,
    /// Replayable spec lines for every violation.
    pub violations: Vec<String>,
}

/// Report for the whole RGDB pillar.
#[derive(Debug)]
pub struct RgdbOutcome {
    /// Corpus images fuzzed (seeds × scales).
    pub entries: u64,
    /// Per-class aggregates, in [`MutationClass::ALL`] order.
    pub classes: Vec<ClassOutcome>,
}

/// Run the pillar: every class against every corpus image — each
/// `(seed, scale)` entry in both wire formats — `trials_per_class`
/// times each.
pub fn run(config: &FuzzConfig) -> RgdbOutcome {
    let corpus: Vec<(u64, Scale, ImageFormat, Bytes)> = CORPUS_SEEDS
        .iter()
        .flat_map(|&seed| {
            Scale::ALL.into_iter().flat_map(move |scale| {
                ImageFormat::ALL.into_iter().map(move |format| {
                    (
                        seed,
                        scale,
                        format,
                        build_entry(seed, scale).image_as(format),
                    )
                })
            })
        })
        .collect();

    let mut classes = Vec::with_capacity(MutationClass::ALL.len());
    for class in MutationClass::ALL {
        let mut out = ClassOutcome {
            class,
            trials: 0,
            rejected: 0,
            opened: 0,
            lookup_rejections: 0,
            panics: 0,
            violations: Vec::new(),
        };
        for (seed, scale, format, image) in &corpus {
            for trial in 0..config.trials_per_class {
                // v1 specs keep the historical four-key shape so the
                // checked-in regression corpus stays replayable as-is.
                let spec = || {
                    let suffix = match format {
                        ImageFormat::V1 => String::new(),
                        _ => format!(" format={}", format.label()),
                    };
                    format!(
                        "seed={seed} scale={} class={} trial={trial}{suffix}",
                        scale.label(),
                        class.label()
                    )
                };
                let ts = trial_seed(*seed, *scale, class, trial, *format);
                let mut rng = FuzzRng::new(ts);
                let mutated = mutate::apply(class, image, &mut rng);
                out.trials += 1;
                match execute_trial(mutated, *scale, ts ^ 0xA5A5) {
                    TrialOutcome::Rejected => out.rejected += 1,
                    TrialOutcome::Opened { lookup_rejections } => {
                        out.opened += 1;
                        out.lookup_rejections += lookup_rejections;
                    }
                    TrialOutcome::Panicked => {
                        out.panics += 1;
                        out.violations.push(format!("panic at {}", spec()));
                    }
                    TrialOutcome::Unattributed(msg) => {
                        out.violations
                            .push(format!("unattributed error \"{msg}\" at {}", spec()));
                    }
                }
            }
        }
        classes.push(out);
    }
    RgdbOutcome {
        entries: corpus.len() as u64,
        classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_survives_a_short_run() {
        let config = FuzzConfig {
            seed: 1,
            trials_per_class: 4,
            proto_runs: 1,
            diff_addrs: 8,
        };
        let outcome = run(&config);
        assert_eq!(outcome.classes.len(), MutationClass::ALL.len());
        for class in &outcome.classes {
            assert_eq!(class.panics, 0, "{}", class.class.label());
            assert!(class.violations.is_empty(), "{:?}", class.violations);
            assert_eq!(class.trials, class.rejected + class.opened);
        }
    }

    #[test]
    fn trial_seeds_separate_coordinates() {
        let a = trial_seed(1, Scale::Tiny, MutationClass::Truncate, 0, ImageFormat::V1);
        let b = trial_seed(1, Scale::Tiny, MutationClass::Truncate, 1, ImageFormat::V1);
        let c = trial_seed(1, Scale::Small, MutationClass::Truncate, 0, ImageFormat::V1);
        let d = trial_seed(2, Scale::Tiny, MutationClass::Truncate, 0, ImageFormat::V1);
        let e = trial_seed(1, Scale::Tiny, MutationClass::Truncate, 0, ImageFormat::V2);
        assert!(a != b && a != c && a != d && a != e);
    }

    #[test]
    fn both_formats_are_fuzzed() {
        let config = FuzzConfig {
            seed: 1,
            trials_per_class: 1,
            proto_runs: 1,
            diff_addrs: 8,
        };
        let outcome = run(&config);
        // seeds × scales × formats.
        assert_eq!(
            outcome.entries,
            (CORPUS_SEEDS.len() * Scale::ALL.len() * ImageFormat::ALL.len()) as u64
        );
    }
}

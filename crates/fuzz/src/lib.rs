//! routergeo-fuzz — seed-driven structural fuzzing and differential
//! testing for the two surfaces that consume untrusted bytes:
//!
//! 1. **RGDB images** ([`rgdb_fuzz`]) — grammar-aware mutations of
//!    valid images in both wire formats ([`corpus`] + [`mutate`]); the
//!    reader must reject with an attributed
//!    [`routergeo_db::rgdb::RgdbError`], never panic, and never loop.
//! 2. **The whois wire protocol** ([`proto_fuzz`]) — adversarial byte
//!    streams against both `BulkClient` and `WhoisServer`; per-address
//!    error attribution must survive and workers must shed, not wedge.
//! 3. **Differential lookups** ([`diff`]) — the RGDB v1 trie, the flat
//!    v2 image, the v2.1 root-table image (heap **and** file-backed),
//!    `CsvDb`, and `InMemoryDb` built from the same records must agree
//!    exactly (and the binary formats on match depth).
//!
//! There is no coverage feedback and no OS-level fuzzer here — just
//! seeded replayable trials, which is what a dependency-free CI gate
//! can afford. Every trial is a pure function of `(seed, scale,
//! class, trial)` so any failure collapses to a one-line spec that
//! [`replay`] re-executes (see `crates/fuzz/corpus/`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod diff;
pub mod mutate;
pub mod proto_fuzz;
pub mod replay;
pub mod report;
pub mod rgdb_fuzz;
pub mod rng;

pub use corpus::{build_entry, CorpusEntry, ImageFormat, Scale};
pub use mutate::MutationClass;
pub use report::FuzzReport;
pub use rng::FuzzRng;

/// Tunable knobs for one harness run. Everything is derived from the
/// millisecond budget by [`FuzzConfig::from_budget`] so that a given
/// budget always produces the same trial plan (and therefore the same
/// JSON report) regardless of machine speed or thread count.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Root seed for the whole run.
    pub seed: u64,
    /// Mutation trials per class per corpus entry.
    pub trials_per_class: u64,
    /// Scenario repetitions for the protocol pillar.
    pub proto_runs: u64,
    /// Random addresses swept per corpus entry in the differential
    /// pillar (on top of the per-prefix boundary probes).
    pub diff_addrs: u64,
}

impl FuzzConfig {
    /// Derive a deterministic trial plan from a millisecond budget.
    ///
    /// The plan is a pure function of the budget — wall-clock time is
    /// never consulted, so `--budget-ms N` yields byte-identical
    /// reports on any machine. The constants were sized so the default
    /// CI budget (30 000 ms) finishes in well under half that on the
    /// slowest builder we care about; the v2.1 additions (a third wire
    /// format and three root-table mutation classes) multiplied the
    /// per-trial units ×2.25, so `trials_per_class` was rescaled from
    /// `budget / 250` to keep the total trial count — and the wall
    /// clock — roughly where it was.
    pub fn from_budget(budget_ms: u64) -> FuzzConfig {
        FuzzConfig {
            seed: 0x9060_17C0_FFEE,
            trials_per_class: (budget_ms / 550).clamp(8, 96),
            proto_runs: (budget_ms / 6000).clamp(1, 5),
            diff_addrs: (budget_ms / 500).clamp(16, 128),
        }
    }
}

/// Run all three pillars and aggregate the report. Serial and
/// deterministic by construction.
pub fn run(config: FuzzConfig) -> FuzzReport {
    let rgdb = rgdb_fuzz::run(&config);
    let proto = proto_fuzz::run(&config);
    let diff = diff::run(&config);
    FuzzReport { rgdb, proto, diff }
}

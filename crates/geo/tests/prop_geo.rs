//! Property-based tests for the geographic primitives.

use proptest::prelude::*;
use routergeo_geo::distance::{bearing_deg, destination, haversine_km, min_rtt_ms};
use routergeo_geo::{rtt_to_max_distance_km, Coordinate, EmpiricalCdf, EARTH_RADIUS_KM};

fn arb_coord() -> impl Strategy<Value = Coordinate> {
    (-90.0f64..=90.0, -180.0f64..=180.0)
        .prop_map(|(lat, lon)| Coordinate::new(lat, lon).expect("in range"))
}

proptest! {
    #[test]
    fn haversine_symmetric(a in arb_coord(), b in arb_coord()) {
        let ab = haversine_km(&a, &b);
        let ba = haversine_km(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn haversine_nonnegative_and_bounded(a in arb_coord(), b in arb_coord()) {
        let d = haversine_km(&a, &b);
        prop_assert!(d >= 0.0);
        // No two points are farther apart than half the great circle.
        prop_assert!(d <= std::f64::consts::PI * EARTH_RADIUS_KM + 1e-6);
    }

    #[test]
    fn haversine_identity(a in arb_coord()) {
        prop_assert_eq!(haversine_km(&a, &a), 0.0);
    }

    #[test]
    fn haversine_triangle_inequality(a in arb_coord(), b in arb_coord(), c in arb_coord()) {
        let ab = haversine_km(&a, &b);
        let bc = haversine_km(&b, &c);
        let ac = haversine_km(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-6, "ac={ac} ab={ab} bc={bc}");
    }

    #[test]
    fn destination_distance_is_exact(
        origin in arb_coord(),
        bearing in 0.0f64..360.0,
        dist in 0.0f64..5000.0,
    ) {
        let p = destination(&origin, bearing, dist);
        let measured = haversine_km(&origin, &p);
        // Within 2 km or 0.5% — destination+haversine agree on the sphere,
        // slack covers pole-adjacent float noise.
        prop_assert!(
            (measured - dist).abs() < (2.0f64).max(dist * 0.005),
            "asked {dist}, got {measured}"
        );
    }

    #[test]
    fn destination_bearing_roundtrip(
        origin in arb_coord(),
        bearing in 0.0f64..360.0,
        dist in 10.0f64..2000.0,
    ) {
        // Avoid polar singularities where bearings degenerate.
        prop_assume!(origin.lat().abs() < 70.0);
        let p = destination(&origin, bearing, dist);
        prop_assume!(p.lat().abs() < 85.0);
        let back = bearing_deg(&origin, &p);
        let diff = (back - bearing).abs();
        let diff = diff.min(360.0 - diff);
        prop_assert!(diff < 1.0, "bearing {bearing} measured {back}");
    }

    #[test]
    fn rtt_distance_inverse(rtt in 0.0f64..1000.0) {
        let d = rtt_to_max_distance_km(rtt);
        prop_assert!(d >= 0.0);
        let back = min_rtt_ms(d);
        prop_assert!((back - rtt).abs() < 1e-9);
    }

    #[test]
    fn coordinate_wrapped_always_valid(lat in -1e6f64..1e6, lon in -1e6f64..1e6) {
        let c = Coordinate::wrapped(lat, lon);
        prop_assert!(Coordinate::new(c.lat(), c.lon()).is_ok());
    }

    #[test]
    fn cdf_fraction_monotone(mut xs in proptest::collection::vec(0.0f64..1e5, 1..200)) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let cdf = EmpiricalCdf::new(xs.clone()).unwrap();
        let mut prev = 0.0;
        for x in [0.0, 1.0, 10.0, 40.0, 100.0, 1e3, 1e4, 1e5] {
            let f = cdf.fraction_leq(x);
            prop_assert!(f >= prev - 1e-12);
            prop_assert!((0.0..=1.0).contains(&f));
            prev = f;
        }
    }

    #[test]
    fn cdf_quantile_within_range(xs in proptest::collection::vec(-1e4f64..1e4, 1..200), q in 0.0f64..=1.0) {
        let cdf = EmpiricalCdf::new(xs).unwrap();
        let v = cdf.quantile(q).unwrap();
        prop_assert!(v >= cdf.min().unwrap() && v <= cdf.max().unwrap());
    }

    #[test]
    fn cdf_quantile_fraction_consistent(xs in proptest::collection::vec(0.0f64..1e4, 1..100), q in 0.01f64..=1.0) {
        let cdf = EmpiricalCdf::new(xs).unwrap();
        let v = cdf.quantile(q).unwrap();
        // At least q of the mass lies at or below the q-quantile.
        prop_assert!(cdf.fraction_leq(v) + 1e-12 >= q);
    }

    #[test]
    fn cdf_samples_are_sorted_whatever_the_input_order(xs in proptest::collection::vec(-1e6f64..1e6, 0..200)) {
        let (cdf, dropped) = EmpiricalCdf::from_iter_lossy(xs.iter().copied());
        prop_assert_eq!(dropped, 0, "finite inputs are never dropped");
        prop_assert_eq!(cdf.samples().len(), xs.len());
        prop_assert!(cdf.samples().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn cdf_median_equals_half_quantile(xs in proptest::collection::vec(-1e4f64..1e4, 1..200)) {
        // The midpoint convention makes median() and quantile(0.5) the
        // same estimator for both parities of the sample count.
        let cdf = EmpiricalCdf::new(xs).unwrap();
        prop_assert_eq!(cdf.median(), cdf.quantile(0.5));
    }

    #[test]
    fn cdf_lossy_drops_exactly_the_nans(
        raw in proptest::collection::vec((-1e5f64..1e5, 0u8..5), 0..100),
    ) {
        // Poison roughly a fifth of the samples with NaN.
        let xs: Vec<f64> = raw
            .iter()
            .map(|&(v, tag)| if tag == 0 { f64::NAN } else { v })
            .collect();
        let nans = xs.iter().filter(|v| v.is_nan()).count();
        let (cdf, dropped) = EmpiricalCdf::from_iter_lossy(xs.iter().copied());
        prop_assert_eq!(dropped, nans);
        prop_assert_eq!(cdf.len() + dropped, xs.len());
    }
}
